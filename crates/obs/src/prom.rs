//! Rendering: Prometheus text exposition format and a JSON mirror.
//!
//! The Prometheus renderer follows the text exposition format of the
//! Prometheus client-library spec: one `# HELP` and `# TYPE` line per
//! family, label values escaped (`\\`, `\"`, `\n`), histograms rendered
//! as cumulative `_bucket{le="…"}` rows ending in `le="+Inf"` plus
//! `_sum`/`_count`. The JSON mirror carries the same families with
//! pre-extracted quantiles, so scrapers that want p50/p99 without
//! bucket math (the `loadgen` benchmark) read them directly.

use crate::metrics::{Handle, MetricsRegistry};
use std::fmt::Write as _;

/// Escapes a HELP text: backslash and newline.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslash, double quote, newline.
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Renders a label set (possibly with an extra `le` pair appended) as
/// `{k="v",…}`, or the empty string for no labels.
fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Renders the given registries (in order) as Prometheus text exposition.
/// Families with the same name across registries are rendered as separate
/// family blocks only once per registry — callers keep names disjoint
/// (the `gts_serve_*` / library-layer split does).
pub fn render_prometheus(registries: &[&MetricsRegistry]) -> String {
    let mut out = String::new();
    for reg in registries {
        let fams = reg.families.lock().unwrap();
        for (name, fam) in fams.iter() {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&fam.help));
            let _ = writeln!(out, "# TYPE {name} {}", fam.kind.as_str());
            for (labels, handle) in &fam.cells {
                match handle {
                    Handle::Counter(c) => {
                        let _ = writeln!(out, "{name}{} {}", render_labels(labels, None), c.get());
                    }
                    Handle::Gauge(g) => {
                        let _ = writeln!(out, "{name}{} {}", render_labels(labels, None), g.get());
                    }
                    Handle::Histogram(h) => {
                        let s = h.snapshot();
                        for (le, cum) in s.cumulative_rows() {
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cum}",
                                render_labels(labels, Some(("le", &le.to_string())))
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {}",
                            render_labels(labels, Some(("le", "+Inf"))),
                            s.count
                        );
                        let _ =
                            writeln!(out, "{name}_sum{} {}", render_labels(labels, None), s.sum);
                        let _ = writeln!(
                            out,
                            "{name}_count{} {}",
                            render_labels(labels, None),
                            s.count
                        );
                    }
                }
            }
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the given registries as one JSON document:
/// `{"metrics":[{name, kind, labels, …value fields…}, …]}`. Histogram
/// entries carry `count`, `sum`, `mean`, `max`, and `p50`/`p90`/`p99`
/// extracted server-side.
pub fn render_json(registries: &[&MetricsRegistry]) -> String {
    let mut entries: Vec<String> = Vec::new();
    for reg in registries {
        let fams = reg.families.lock().unwrap();
        for (name, fam) in fams.iter() {
            for (labels, handle) in &fam.cells {
                let mut e = String::from("{");
                let _ = write!(
                    e,
                    "\"name\":\"{}\",\"kind\":\"{}\",\"labels\":{{",
                    json_escape(name),
                    fam.kind.as_str()
                );
                let pairs: Vec<String> = labels
                    .iter()
                    .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
                    .collect();
                e.push_str(&pairs.join(","));
                e.push_str("},");
                match handle {
                    Handle::Counter(c) => {
                        let _ = write!(e, "\"value\":{}", c.get());
                    }
                    Handle::Gauge(g) => {
                        let _ = write!(e, "\"value\":{}", g.get());
                    }
                    Handle::Histogram(h) => {
                        let s = h.snapshot();
                        let _ = write!(
                            e,
                            "\"count\":{},\"sum\":{},\"mean\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}",
                            s.count,
                            s.sum,
                            s.mean(),
                            s.max,
                            s.quantile(0.50),
                            s.quantile(0.90),
                            s.quantile(0.99)
                        );
                    }
                }
                e.push('}');
                entries.push(e);
            }
        }
    }
    format!("{{\"metrics\":[{}]}}", entries.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_has_help_type_and_escaped_labels() {
        let _serial = crate::metrics::test_serial();
        let reg = MetricsRegistry::new();
        reg.counter("t_total", "a help\nwith newline \\ backslash", &[("q", "a\"b\\c\nd")]).inc();
        let text = render_prometheus(&[&reg]);
        assert!(text.contains("# HELP t_total a help\\nwith newline \\\\ backslash\n"));
        assert!(text.contains("# TYPE t_total counter\n"));
        assert!(text.contains("t_total{q=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }

    #[test]
    fn histogram_rows_are_cumulative_and_end_with_inf() {
        let _serial = crate::metrics::test_serial();
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_micros", "latency", &[("verb", "x")]);
        for v in [1u64, 1, 100, 10_000] {
            h.record(v);
        }
        let text = render_prometheus(&[&reg]);
        assert!(text.contains("# TYPE lat_micros histogram"));
        assert!(text.contains("lat_micros_bucket{verb=\"x\",le=\"1\"} 2\n"));
        assert!(text.contains("lat_micros_bucket{verb=\"x\",le=\"+Inf\"} 4\n"));
        assert!(text.contains("lat_micros_sum{verb=\"x\"} 10102\n"));
        assert!(text.contains("lat_micros_count{verb=\"x\"} 4\n"));
        // Cumulative counts never decrease down the bucket list.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("lat_micros_bucket")) {
            let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(n >= last, "cumulative: {line}");
            last = n;
        }
    }

    #[test]
    fn json_mirror_carries_quantiles() {
        let _serial = crate::metrics::test_serial();
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_micros", "latency", &[("verb", "analyze")]);
        for v in 1..=100u64 {
            h.record(v);
        }
        reg.counter("n_total", "n", &[]).add(7);
        let json = render_json(&[&reg]);
        assert!(json.contains("\"name\":\"n_total\""));
        assert!(json.contains("\"value\":7"));
        assert!(json.contains("\"verb\":\"analyze\""));
        assert!(json.contains("\"count\":100"));
        assert!(json.contains("\"p99\":"));
    }
}
