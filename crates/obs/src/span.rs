//! Span-based tracing: thread-local span stacks with enter/exit timing,
//! a renderable span tree, and a bounded ring-buffer event log.
//!
//! Tracing is *opt-in per call tree*: [`trace`] installs a collector on
//! the current thread, runs a closure, and returns the merged span tree.
//! Instrumentation sites call [`span`] unconditionally — when no
//! collector is installed the guard is inert and the cost is one
//! thread-local read (no clock read, no allocation), so the library
//! layers stay instrumented at all times without a tracing tax.
//!
//! Spans are captured on the *calling thread only*: work fanned out to
//! worker threads (parallel choice solving, sharded rule evaluation)
//! shows up as the enclosing span's time. Guards are `!Send` and
//! panic-safe — an unwind pops every open span and uninstalls the
//! collector, leaving the thread clean for the next trace.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::marker::PhantomData;
use std::sync::Mutex;
use std::time::Instant;

/// Raw in-flight span storage; converted to [`SpanNode`]s when the trace
/// finishes.
struct RawSpan {
    name: &'static str,
    start: Instant,
    micros: u64,
    children: Vec<usize>,
}

/// Hard cap on raw spans per trace — a runaway loop of spans degrades to
/// counting (the open guards still balance) instead of unbounded memory.
const MAX_RAW_SPANS: usize = 65_536;

struct TraceState {
    spans: Vec<RawSpan>,
    /// Indices of currently-open spans; `stack[0]` is the root.
    stack: Vec<usize>,
    /// Depth of spans entered past [`MAX_RAW_SPANS`] (not recorded).
    overflow_depth: usize,
    /// Spans dropped due to the cap (reported on the root node's name).
    overflowed: u64,
}

thread_local! {
    static TRACE: RefCell<Option<TraceState>> = const { RefCell::new(None) };
}

/// `true` iff a [`trace`] collector is installed on this thread (used by
/// callers that only want to build trace metadata when it will be kept).
pub fn tracing_active() -> bool {
    TRACE.with(|t| t.borrow().is_some())
}

/// How the guard must undo its enter.
enum GuardKind {
    /// No collector installed: nothing to undo.
    Inert,
    /// A recorded span to close.
    Recorded,
    /// Entered past the span cap: only the overflow depth to unwind.
    Overflow,
}

/// Closes its span on drop (including during unwinding). `!Send`: spans
/// belong to the thread that opened them.
pub struct SpanGuard {
    kind: GuardKind,
    _not_send: PhantomData<*const ()>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        match self.kind {
            GuardKind::Inert => {}
            GuardKind::Recorded => TRACE.with(|t| {
                if let Some(state) = t.borrow_mut().as_mut() {
                    if let Some(idx) = state.stack.pop() {
                        let span = &mut state.spans[idx];
                        span.micros = span.start.elapsed().as_micros() as u64;
                    }
                }
            }),
            GuardKind::Overflow => TRACE.with(|t| {
                if let Some(state) = t.borrow_mut().as_mut() {
                    state.overflow_depth = state.overflow_depth.saturating_sub(1);
                }
            }),
        }
    }
}

/// Opens a span named `name` under the current span of this thread's
/// active trace. Inert (and nearly free) when no trace is active.
pub fn span(name: &'static str) -> SpanGuard {
    let kind = TRACE.with(|t| {
        let mut borrow = t.borrow_mut();
        let Some(state) = borrow.as_mut() else {
            return GuardKind::Inert;
        };
        if state.overflow_depth > 0 || state.spans.len() >= MAX_RAW_SPANS {
            state.overflow_depth += 1;
            state.overflowed += 1;
            return GuardKind::Overflow;
        }
        let idx = state.spans.len();
        state.spans.push(RawSpan { name, start: Instant::now(), micros: 0, children: Vec::new() });
        if let Some(&parent) = state.stack.last() {
            state.spans[parent].children.push(idx);
        }
        state.stack.push(idx);
        GuardKind::Recorded
    });
    SpanGuard { kind, _not_send: PhantomData }
}

/// One node of a finished span tree. Same-name siblings are merged: a
/// loop that opens `oracle_decide` 400 times becomes one node with
/// `count = 400` and summed `micros`.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// Span name (instrumentation-site static string).
    pub name: String,
    /// Total time in this span across all merged occurrences, µs.
    pub micros: u64,
    /// Number of merged occurrences.
    pub count: u64,
    /// Child spans, first-seen order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn leaf(name: &str) -> SpanNode {
        SpanNode { name: name.to_string(), micros: 0, count: 1, children: Vec::new() }
    }

    /// Builds the merged node for raw span `idx`.
    fn build(spans: &[RawSpan], idx: usize) -> SpanNode {
        let raw = &spans[idx];
        let mut node = SpanNode {
            name: raw.name.to_string(),
            micros: raw.micros,
            count: 1,
            children: Vec::new(),
        };
        for &child in &raw.children {
            let built = SpanNode::build(spans, child);
            match node.children.iter_mut().find(|c| c.name == built.name) {
                Some(existing) => existing.merge(built),
                None => node.children.push(built),
            }
        }
        node
    }

    fn merge(&mut self, other: SpanNode) {
        self.micros += other.micros;
        self.count += other.count;
        for child in other.children {
            match self.children.iter_mut().find(|c| c.name == child.name) {
                Some(existing) => existing.merge(child),
                None => self.children.push(child),
            }
        }
    }

    /// Renders the tree as indented text with human-readable durations,
    /// e.g. `oracle_decide ×42  8.9ms`.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.name);
        if self.count > 1 {
            let _ = write!(out, " \u{00d7}{}", self.count);
        }
        let _ = writeln!(out, "  {}", format_micros(self.micros));
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }

    /// Renders the tree as a compact JSON object:
    /// `{"name":…,"micros":…,"count":…,"children":[…]}`.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.json_into(&mut out);
        out
    }

    fn json_into(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"micros\":{},\"count\":{},\"children\":[",
            self.name.replace('\\', "\\\\").replace('"', "\\\""),
            self.micros,
            self.count
        );
        for (i, child) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            child.json_into(out);
        }
        out.push_str("]}");
    }
}

/// Formats a microsecond duration for humans: `17µs`, `4.2ms`, `1.73s`.
pub fn format_micros(us: u64) -> String {
    if us < 1_000 {
        format!("{us}\u{00b5}s")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

/// Uninstalls the collector on drop so a panicking closure leaves the
/// thread clean for the next trace.
struct Uninstall;

impl Drop for Uninstall {
    fn drop(&mut self) {
        TRACE.with(|t| t.borrow_mut().take());
    }
}

/// Runs `f` with a span collector installed on this thread, returning its
/// result and the merged span tree rooted at `name`.
///
/// A nested `trace` on a thread that is already tracing degrades
/// gracefully: the inner call contributes a [`span`] to the outer trace
/// and returns an empty tree of its own.
pub fn trace<R>(name: &'static str, f: impl FnOnce() -> R) -> (R, SpanNode) {
    if tracing_active() {
        let _inner = span(name);
        return (f(), SpanNode::leaf(name));
    }
    TRACE.with(|t| {
        *t.borrow_mut() = Some(TraceState {
            spans: Vec::new(),
            stack: Vec::new(),
            overflow_depth: 0,
            overflowed: 0,
        });
    });
    let uninstall = Uninstall;
    let result = {
        let _root = span(name);
        f()
    };
    let state = TRACE.with(|t| t.borrow_mut().take()).expect("trace state still installed");
    drop(uninstall);
    let mut root = if state.spans.is_empty() {
        SpanNode::leaf(name)
    } else {
        SpanNode::build(&state.spans, 0)
    };
    if state.overflowed > 0 {
        root.children.push(SpanNode {
            name: format!("(+{} spans over cap)", state.overflowed),
            micros: 0,
            count: state.overflowed,
            children: Vec::new(),
        });
    }
    record_event(&root.name, root.micros);
    (result, root)
}

/// One entry of the process-wide event ring buffer.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Monotone sequence number (process-wide).
    pub seq: u64,
    /// Event name (usually a trace root name).
    pub name: String,
    /// Duration in microseconds.
    pub micros: u64,
}

/// Ring-buffer capacity for [`recent_events`].
const EVENT_CAP: usize = 256;

static EVENTS: Mutex<Option<(u64, VecDeque<TraceEvent>)>> = Mutex::new(None);

/// Appends an entry to the bounded process-wide event log (completed
/// traces land here automatically; servers also push slow-request
/// markers). The oldest entry is evicted past the 256-entry cap.
pub fn record_event(name: &str, micros: u64) {
    let mut guard = EVENTS.lock().unwrap_or_else(|e| e.into_inner());
    let (next_seq, buf) = guard.get_or_insert_with(|| (0, VecDeque::new()));
    let seq = *next_seq;
    *next_seq += 1;
    if buf.len() == EVENT_CAP {
        buf.pop_front();
    }
    buf.push_back(TraceEvent { seq, name: name.to_string(), micros });
}

/// The most recent event-log entries, oldest first (bounded by the
/// 256-entry cap).
pub fn recent_events() -> Vec<TraceEvent> {
    let guard = EVENTS.lock().unwrap_or_else(|e| e.into_inner());
    guard.as_ref().map(|(_, buf)| buf.iter().cloned().collect()).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_without_a_trace_are_inert() {
        assert!(!tracing_active());
        let g = span("orphan");
        assert!(matches!(g.kind, GuardKind::Inert));
        drop(g);
        assert!(!tracing_active());
    }

    #[test]
    fn trace_builds_a_nested_merged_tree() {
        let (value, tree) = trace("request", || {
            {
                let _p = span("parse");
            }
            for _ in 0..3 {
                let _d = span("decide");
                let _probe = span("probe");
            }
            42
        });
        assert_eq!(value, 42);
        assert_eq!(tree.name, "request");
        assert_eq!(tree.count, 1);
        let names: Vec<&str> = tree.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["parse", "decide"]);
        let decide = &tree.children[1];
        assert_eq!(decide.count, 3, "same-name siblings merge");
        assert_eq!(decide.children.len(), 1);
        assert_eq!(decide.children[0].name, "probe");
        assert_eq!(decide.children[0].count, 3);
        let rendered = tree.render_tree();
        assert!(rendered.contains("decide \u{00d7}3"), "{rendered}");
        assert!(rendered.starts_with("request"));
        let json = tree.to_json_string();
        assert!(json.contains("\"name\":\"decide\",") && json.contains("\"count\":3"));
        assert!(!tracing_active(), "collector uninstalled after trace");
    }

    #[test]
    fn panicking_closure_unwinds_guards_and_uninstalls() {
        let caught = std::panic::catch_unwind(|| {
            trace("doomed", || {
                let _inner = span("inner");
                panic!("boom");
            })
        });
        assert!(caught.is_err());
        assert!(!tracing_active(), "panic left a collector installed");
        // The thread is clean: a fresh trace works and sees no leftovers.
        let (_, tree) = trace("after", || {
            let _s = span("child");
        });
        assert_eq!(tree.name, "after");
        assert_eq!(tree.children.len(), 1);
    }

    #[test]
    fn nested_trace_degrades_to_a_span() {
        let ((), outer) = trace("outer", || {
            let ((), inner) = trace("inner", || ());
            assert_eq!(inner.name, "inner");
            assert!(inner.children.is_empty());
        });
        assert_eq!(outer.children.len(), 1);
        assert_eq!(outer.children[0].name, "inner");
    }

    #[test]
    fn event_log_is_bounded_and_ordered() {
        for i in 0..(EVENT_CAP + 10) {
            record_event("tick", i as u64);
        }
        let events = recent_events();
        assert!(events.len() <= EVENT_CAP);
        for pair in events.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "oldest first");
        }
    }

    #[test]
    fn format_micros_picks_sane_units() {
        assert_eq!(format_micros(17), "17\u{00b5}s");
        assert_eq!(format_micros(4_200), "4.2ms");
        assert_eq!(format_micros(1_730_000), "1.73s");
    }
}
