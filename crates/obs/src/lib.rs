//! gts-obs — the unified observability layer.
//!
//! Std-only substrate for seeing where time goes across the stack:
//!
//! * **Metrics** ([`MetricsRegistry`]): atomic counters, gauges, and
//!   fixed-log-bucket latency histograms with lock-free recording and
//!   p50/p90/p99/max extraction, organized into labeled families
//!   (`verb`, `family`, `phase`). Library layers record into the
//!   process-global registry ([`global`]); `gts-serve` keeps a second,
//!   per-server registry for protocol-level series.
//! * **Exposition** ([`render_prometheus`], [`render_json`]): the
//!   Prometheus text format served by the `metrics` protocol verb, and a
//!   JSON mirror with pre-extracted quantiles for benchmarks.
//! * **Tracing** ([`trace`], [`span`], [`SpanNode`]): thread-local span
//!   stacks that decompose one `analyze` request into
//!   parse → session checkout → oracle decide → completion sweep → exec,
//!   with same-name sibling merging, a renderable tree, and a bounded
//!   ring-buffer event log ([`recent_events`]).
//! * **Snapshots** ([`Snapshot`]): the ordered key-value tree every
//!   stats surface (`--stats`, `gts batch --stats`, the `stats` verb)
//!   renders from, so their JSON shapes agree by construction.
//!
//! Overhead: recording is a relaxed atomic add behind one relaxed load
//! of a process-wide enable flag ([`set_enabled`]); spans outside an
//! active [`trace`] are a thread-local read. The `loadgen` benchmark
//! records the measured metrics-on vs metrics-off delta in
//! `BENCH_server.json`.

#![warn(missing_docs)]

mod metrics;
mod prom;
mod snapshot;
mod span;

pub use metrics::{
    enabled, global, set_enabled, Counter, Gauge, Histogram, HistogramSnapshot, MetricKind,
    MetricsRegistry,
};
pub use prom::{render_json, render_prometheus};
pub use snapshot::{Snapshot, Value};
pub use span::{
    format_micros, recent_events, record_event, span, trace, tracing_active, SpanGuard, SpanNode,
    TraceEvent,
};
