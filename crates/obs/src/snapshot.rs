//! `Snapshot`: an ordered key-value tree that every stats surface renders
//! from.
//!
//! `gts batch --stats`, the CLI `--stats` flag, and the serve `stats`
//! verb all used to build overlapping-but-divergent JSON objects by
//! hand. They now build one [`Snapshot`] (via the helpers in
//! `gts-engine`) and render it — to a JSON string here, or converted to
//! a richer document model by the caller — so field names and shapes
//! agree across surfaces by construction. Insertion order is preserved,
//! keeping output diffable.

use std::fmt::Write as _;

/// A leaf or nested value of a [`Snapshot`].
#[derive(Clone, Debug)]
pub enum Value {
    /// Boolean.
    Bool(bool),
    /// Unsigned integer (counters, sizes).
    U64(u64),
    /// Signed integer (gauges).
    I64(i64),
    /// Floating point (rates, ratios).
    F64(f64),
    /// String.
    Str(String),
    /// Nested object.
    Nested(Snapshot),
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Snapshot> for Value {
    fn from(v: Snapshot) -> Self {
        Value::Nested(v)
    }
}

/// An ordered key→[`Value`] map (one stats object).
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    entries: Vec<(String, Value)>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends (or replaces) `key`, preserving first-insertion order.
    pub fn set(&mut self, key: &str, value: impl Into<Value>) -> &mut Self {
        let value = value.into();
        match self.entries.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => self.entries.push((key.to_string(), value)),
        }
        self
    }

    /// The entries in insertion order (for conversion into richer
    /// document models).
    pub fn entries(&self) -> &[(String, Value)] {
        &self.entries
    }

    /// Looks up a top-level key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Renders as a compact JSON object string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.json_into(&mut out);
        out
    }

    fn json_into(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":", escape(k));
            match v {
                Value::Bool(b) => {
                    let _ = write!(out, "{b}");
                }
                Value::U64(n) => {
                    let _ = write!(out, "{n}");
                }
                Value::I64(n) => {
                    let _ = write!(out, "{n}");
                }
                Value::F64(x) => {
                    if x.is_finite() {
                        let _ = write!(out, "{x}");
                    } else {
                        out.push_str("null");
                    }
                }
                Value::Str(s) => {
                    let _ = write!(out, "\"{}\"", escape(s));
                }
                Value::Nested(s) => s.json_into(out),
            }
        }
        out.push('}');
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_preserves_order_and_nests() {
        let mut inner = Snapshot::new();
        inner.set("hits", 3u64).set("rate", 0.75);
        let mut s = Snapshot::new();
        s.set("name", "oracle").set("ok", true).set("cache", inner).set("delta", -2i64);
        assert_eq!(
            s.to_json(),
            "{\"name\":\"oracle\",\"ok\":true,\"cache\":{\"hits\":3,\"rate\":0.75},\"delta\":-2}"
        );
    }

    #[test]
    fn set_replaces_in_place() {
        let mut s = Snapshot::new();
        s.set("a", 1u64).set("b", 2u64).set("a", 9u64);
        assert_eq!(s.to_json(), "{\"a\":9,\"b\":2}");
        assert!(matches!(s.get("a"), Some(Value::U64(9))));
    }

    #[test]
    fn strings_are_escaped() {
        let mut s = Snapshot::new();
        s.set("k\"ey", "v\nal\\ue");
        assert_eq!(s.to_json(), "{\"k\\\"ey\":\"v\\nal\\\\ue\"}");
    }
}
