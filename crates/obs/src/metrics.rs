//! The metrics core: counters, gauges, log-bucket latency histograms, and
//! the registry of labeled families.
//!
//! Recording is lock-free: every handle wraps `Arc`ed atomics, so the hot
//! path is a relaxed fetch-add (plus one relaxed load of the process-wide
//! enable flag). The registry lock is only taken to *resolve* a handle —
//! callers on hot paths cache handles in `OnceLock` statics.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Process-wide metrics enable flag ([`set_enabled`]). Checked by every
/// record operation of every registry, so benchmarks can measure the
/// metrics-off baseline without rebuilding.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns metric recording on or off process-wide (handles stay valid;
/// recording while disabled is a no-op). Used by the `loadgen` benchmark
/// to measure instrumentation overhead and by `gts serve --no-metrics`.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// `true` iff metric recording is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A monotonically increasing counter. Cloning shares the underlying
/// cell.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrites the value. For *scrape-time synchronization* of a
    /// counter whose source of truth lives elsewhere (e.g. mirroring an
    /// existing stats struct into the exposition) — event-driven code
    /// should use [`Counter::inc`]/[`Counter::add`].
    pub fn store(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
}

/// A gauge: a value that can go up and down (occupancy, queue depth).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value. Gauges are typically synchronized at scrape time
    /// from their source of truth, so `set` ignores the enable flag.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sub-bucket resolution bits: 8 sub-buckets per power of two, bounding
/// the relative error of percentile extraction at `1/8 = 12.5%`.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count for the full `u64` range under this scheme: the
/// largest index is `bucket_index(u64::MAX)` = `(61·SUB) + (SUB-1)`.
pub(crate) const N_BUCKETS: usize = ((64 - SUB_BITS) as usize + 1) * (SUB as usize);

/// Bucket index of a recorded value: values below [`SUB`] map directly
/// (exact at the low end); above, the top [`SUB_BITS`]+1 significant bits
/// select (octave, sub-bucket). Monotone in `v`.
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = (v >> shift) - SUB;
    ((shift as u64 + 1) * SUB + sub) as usize
}

/// Inclusive `[lo, hi]` value range of bucket `idx` (the inverse of
/// [`bucket_index`]). `hi - lo < lo / SUB` for all buckets past the exact
/// low range, which is what bounds the percentile error.
pub(crate) fn bucket_bounds(idx: usize) -> (u64, u64) {
    let idx = idx as u64;
    if idx < SUB {
        return (idx, idx);
    }
    let shift = (idx / SUB - 1) as u32;
    let sub = idx % SUB;
    let lo = (SUB + sub) << shift;
    let hi = lo + ((1u64 << shift) - 1);
    (lo, hi)
}

struct HistogramCore {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A fixed-log-bucket latency histogram: lock-free recording, quantile
/// extraction with ≤ 12.5% relative error (the estimate is the upper
/// bound of the bucket holding the true order statistic, clamped at the
/// observed maximum — so it never under-reports).
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("sum", &s.sum)
            .field("max", &s.max)
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCore {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Records one observation (e.g. a latency in microseconds).
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        let c = &self.0;
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A consistent-enough copy of the current state (individual loads are
    /// relaxed; concurrent recording can skew `count` vs buckets by the
    /// in-flight handful, which is immaterial for reporting).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &self.0;
        HistogramSnapshot {
            buckets: c.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: c.count.load(Ordering::Relaxed),
            sum: c.sum.load(Ordering::Relaxed),
            max: c.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a histogram, with quantile extraction.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    pub(crate) buckets: Vec<u64>,
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0 ..= 1.0`): the upper bound of the bucket
    /// containing the `ceil(q·count)`-th smallest observation, clamped at
    /// the observed maximum. `0` when nothing was recorded.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Mean of recorded values (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `(upper_bound, cumulative_count)` rows for every non-empty bucket,
    /// in increasing order — the Prometheus `le` series (the renderer
    /// appends the `+Inf` row).
    pub fn cumulative_rows(&self) -> Vec<(u64, u64)> {
        let mut rows = Vec::new();
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                cum += n;
                rows.push((bucket_bounds(i).1, cum));
            }
        }
        rows
    }
}

/// What kind of metric a family is (drives the `# TYPE` line and the
/// rendering shape).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Distribution with log buckets.
    Histogram,
}

impl MetricKind {
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Clone)]
pub(crate) enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// One registered family: help text, kind, and the per-label-set cells.
pub(crate) struct Family {
    pub(crate) help: String,
    pub(crate) kind: MetricKind,
    /// Keyed by the rendered label pairs (sorted by label name).
    pub(crate) cells: BTreeMap<Vec<(String, String)>, Handle>,
}

/// A registry of metric families. Handle resolution
/// ([`MetricsRegistry::counter`] & co.) takes the registry lock and is
/// idempotent: the same `(name, labels)` always yields handles sharing
/// one cell. Recording through a resolved handle never locks.
///
/// There is one process-global registry ([`crate::global`]) that
/// library-layer instrumentation records into, and `gts-serve` creates
/// one *per server* for its protocol-level series, so per-server counters
/// stay exact even when several servers share a process (test suites).
#[derive(Default)]
pub struct MetricsRegistry {
    pub(crate) families: Mutex<BTreeMap<String, Family>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let fams = self.families.lock().unwrap();
        f.debug_struct("MetricsRegistry").field("families", &fams.len()).finish()
    }
}

fn label_key(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut key: Vec<(String, String)> =
        labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    key.sort();
    key
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn resolve(&self, name: &str, help: &str, kind: MetricKind, labels: &[(&str, &str)]) -> Handle {
        let mut fams = self.families.lock().unwrap();
        let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            cells: BTreeMap::new(),
        });
        assert_eq!(fam.kind, kind, "metric family `{name}` registered twice with different kinds");
        fam.cells
            .entry(label_key(labels))
            .or_insert_with(|| match kind {
                MetricKind::Counter => Handle::Counter(Counter(Arc::new(AtomicU64::new(0)))),
                MetricKind::Gauge => Handle::Gauge(Gauge(Arc::new(AtomicI64::new(0)))),
                MetricKind::Histogram => Handle::Histogram(Histogram::default()),
            })
            .clone()
    }

    /// The counter cell for `(name, labels)`, registering it on first use.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.resolve(name, help, MetricKind::Counter, labels) {
            Handle::Counter(c) => c,
            _ => unreachable!("kind checked in resolve"),
        }
    }

    /// The gauge cell for `(name, labels)`, registering it on first use.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.resolve(name, help, MetricKind::Gauge, labels) {
            Handle::Gauge(g) => g,
            _ => unreachable!("kind checked in resolve"),
        }
    }

    /// The histogram cell for `(name, labels)`, registering it on first
    /// use.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.resolve(name, help, MetricKind::Histogram, labels) {
            Handle::Histogram(h) => h,
            _ => unreachable!("kind checked in resolve"),
        }
    }

    /// The current value of a counter cell, `None` if never registered.
    /// (Read-side convenience for tests and benchmarks; does not
    /// register.)
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let fams = self.families.lock().unwrap();
        match fams.get(name)?.cells.get(&label_key(labels))? {
            Handle::Counter(c) => Some(c.get()),
            _ => None,
        }
    }
}

/// The process-global registry: where library-layer instrumentation
/// (`gts-sat`, `gts-containment`, `gts-exec`, `gts-engine`) records.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Serializes unit tests that record metrics against the one that toggles
/// the process-wide enable flag (tests run in parallel threads).
#[cfg(test)]
pub(crate) fn test_serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_are_inverse_and_monotone() {
        let mut last = 0usize;
        for v in [0u64, 1, 7, 8, 9, 15, 16, 100, 1000, 4095, 4096, 1 << 20, u64::MAX / 2, u64::MAX]
        {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "v={v} i={i} lo={lo} hi={hi}");
            assert!(i >= last, "monotone");
            last = i;
        }
        // Exhaustive inverse check over every bucket.
        for i in 0..N_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
            if i + 1 < N_BUCKETS {
                assert_eq!(bucket_bounds(i + 1).0, hi + 1, "buckets tile the range");
            }
        }
    }

    #[test]
    fn counters_and_gauges_share_cells_by_name_and_labels() {
        let _serial = test_serial();
        let reg = MetricsRegistry::new();
        let a = reg.counter("x_total", "help", &[("verb", "ping")]);
        let b = reg.counter("x_total", "help", &[("verb", "ping")]);
        let other = reg.counter("x_total", "help", &[("verb", "stats")]);
        a.inc();
        b.add(2);
        other.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(reg.counter_value("x_total", &[("verb", "ping")]), Some(3));
        assert_eq!(reg.counter_value("x_total", &[("verb", "stats")]), Some(1));
        let g = reg.gauge("occupancy", "help", &[]);
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _serial = test_serial();
        let reg = MetricsRegistry::new();
        let c = reg.counter("y_total", "h", &[]);
        let h = reg.histogram("y_micros", "h", &[]);
        set_enabled(false);
        c.inc();
        h.record(10);
        set_enabled(true);
        assert_eq!(c.get(), 0);
        assert_eq!(h.snapshot().count, 0);
        c.inc();
        h.record(10);
        assert_eq!(c.get(), 1);
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn histogram_quantiles_track_the_distribution() {
        let _serial = test_serial();
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        let p50 = s.quantile(0.5);
        // True median is 500; the estimate is the containing bucket's
        // upper bound, within 12.5% above.
        assert!((500..=563).contains(&p50), "p50={p50}");
        let p99 = s.quantile(0.99);
        assert!((990..=1000).contains(&p99), "p99={p99}");
        assert_eq!(s.quantile(1.0), 1000);
        assert!(s.mean() > 499.0 && s.mean() < 502.0);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }
}
