//! Workload generators: random schemas and random graphs conforming to a
//! schema. These feed the property tests (differential oracles need a
//! supply of conforming inputs) and the benchmark harness (the paper has no
//! datasets; conforming graphs of scalable size are the workload).

use crate::{Mult, Schema};
use gts_graph::{EdgeSym, FxHashMap, Graph, NodeId, NodeLabel, Vocab};
use rand::prelude::*;

/// Configuration for [`random_schema`].
#[derive(Clone, Debug)]
pub struct SchemaGenConfig {
    /// Number of node labels to create.
    pub num_node_labels: usize,
    /// Number of edge labels to create.
    pub num_edge_labels: usize,
    /// Probability that a `(A, r, B)` triple gets a non-zero constraint.
    pub edge_density: f64,
    /// Allow `1`/`+` (lower-bound) multiplicities. Disabling them makes
    /// conforming graphs trivial to generate (useful to avoid discards in
    /// property tests).
    pub allow_lower_bounds: bool,
}

impl Default for SchemaGenConfig {
    fn default() -> Self {
        SchemaGenConfig {
            num_node_labels: 3,
            num_edge_labels: 2,
            edge_density: 0.4,
            allow_lower_bounds: true,
        }
    }
}

/// Generates a random schema. Labels are named `L0, L1, …` / `e0, e1, …`.
pub fn random_schema<R: Rng>(cfg: &SchemaGenConfig, vocab: &mut Vocab, rng: &mut R) -> Schema {
    let labels: Vec<NodeLabel> =
        (0..cfg.num_node_labels).map(|i| vocab.node_label(&format!("L{i}"))).collect();
    let edges: Vec<_> =
        (0..cfg.num_edge_labels).map(|i| vocab.edge_label(&format!("e{i}"))).collect();
    let mut s = Schema::new();
    for &l in &labels {
        s.add_node_label(l);
    }
    for &e in &edges {
        s.add_edge_label(e);
    }
    let upper = [Mult::Opt, Mult::Star];
    let lower = [Mult::One, Mult::Plus, Mult::Opt, Mult::Star];
    for &a in &labels {
        for &r in &edges {
            for &b in &labels {
                if rng.gen_bool(cfg.edge_density) {
                    let fwd = if cfg.allow_lower_bounds {
                        *lower.choose(rng).unwrap()
                    } else {
                        *upper.choose(rng).unwrap()
                    };
                    // Keep the reverse direction upper-bound-free so that a
                    // conforming graph always exists (greedy generation).
                    s.set_edge(a, r, b, fwd, Mult::Star);
                }
            }
        }
    }
    s
}

/// Generates a random finite graph conforming to `schema`, with roughly
/// `size_per_label` nodes per node label. Returns `None` if the repair loop
/// fails within `attempts` tries (e.g. jointly unsatisfiable `1`/`1`
/// constraints with mismatched node counts).
pub fn random_conforming_graph<R: Rng>(
    schema: &Schema,
    size_per_label: usize,
    attempts: usize,
    rng: &mut R,
) -> Option<Graph> {
    for _ in 0..attempts.max(1) {
        if let Some(g) = try_generate(schema, size_per_label, rng) {
            return Some(g);
        }
    }
    None
}

fn try_generate<R: Rng>(schema: &Schema, size_per_label: usize, rng: &mut R) -> Option<Graph> {
    // 1) node counts: requested size, bumped to ≥1 for labels required as
    //    witnesses of some lower-bound constraint of a populated label.
    let labels = schema.node_labels().to_vec();
    let mut count: FxHashMap<NodeLabel, usize> =
        labels.iter().map(|&l| (l, size_per_label)).collect();
    loop {
        let mut changed = false;
        for &a in &labels {
            if count[&a] == 0 {
                continue;
            }
            for sym in schema.syms() {
                for &b in &labels {
                    if schema.mult(a, sym, b).min_count() > 0 && count[&b] == 0 {
                        count.insert(b, 1);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut g = Graph::new();
    let mut pool: FxHashMap<NodeLabel, Vec<NodeId>> = FxHashMap::default();
    for &l in &labels {
        let nodes: Vec<NodeId> = (0..count[&l]).map(|_| g.add_labeled_node([l])).collect();
        pool.insert(l, nodes);
    }

    // 2) satisfy lower bounds greedily, respecting upper bounds on the
    //    opposite side.
    for &a in &labels {
        for sym in schema.syms() {
            for &b in &labels {
                let need = schema.mult(a, sym, b).min_count();
                if need == 0 {
                    continue;
                }
                let rev_cap = schema.mult(b, sym.inv(), a).max_count();
                let targets = pool[&b].clone();
                if targets.is_empty() {
                    return None;
                }
                for &src in &pool[&a] {
                    let have = g.count_labeled_successors(src, sym, b);
                    if have >= need {
                        continue;
                    }
                    // Pick a target with remaining reverse capacity.
                    let mut shuffled = targets.clone();
                    shuffled.shuffle(rng);
                    let mut placed = false;
                    for tgt in shuffled {
                        let tgt_in = g.count_labeled_successors(tgt, sym.inv(), a);
                        if rev_cap.is_none_or(|c| tgt_in < c) {
                            let (s_node, t_node) = orient(sym, src, tgt);
                            if g.add_edge(s_node, sym.label, t_node) {
                                placed = true;
                                break;
                            }
                        }
                    }
                    if !placed {
                        return None;
                    }
                }
            }
        }
    }

    // 3) sprinkle optional edges where both sides allow more.
    for &a in &labels {
        for sym in schema.syms().filter(|s| !s.inverse) {
            for &b in &labels {
                let fwd = schema.mult(a, sym, b);
                if fwd == Mult::Zero {
                    continue;
                }
                for &src in &pool[&a] {
                    if !rng.gen_bool(0.3) {
                        continue;
                    }
                    let have = g.count_labeled_successors(src, sym, b);
                    if fwd.max_count().is_some_and(|c| have >= c) {
                        continue;
                    }
                    if let Some(&tgt) = pool[&b].choose(rng) {
                        let rev = schema.mult(b, sym.inv(), a);
                        let tgt_in = g.count_labeled_successors(tgt, sym.inv(), a);
                        if rev.max_count().is_none_or(|c| tgt_in < c) {
                            g.add_edge(src, sym.label, tgt);
                        }
                    }
                }
            }
        }
    }

    schema.conforms(&g).ok().map(|_| g)
}

fn orient(sym: EdgeSym, src: NodeId, tgt: NodeId) -> (NodeId, NodeId) {
    if sym.inverse {
        (tgt, src)
    } else {
        (src, tgt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn medical(v: &mut Vocab) -> Schema {
        let vaccine = v.node_label("Vaccine");
        let antigen = v.node_label("Antigen");
        let pathogen = v.node_label("Pathogen");
        let dt = v.edge_label("designTarget");
        let cr = v.edge_label("crossReacting");
        let ex = v.edge_label("exhibits");
        let mut s = Schema::new();
        s.set_edge(vaccine, dt, antigen, Mult::One, Mult::Star);
        s.set_edge(antigen, cr, antigen, Mult::Star, Mult::Star);
        s.set_edge(pathogen, ex, antigen, Mult::Plus, Mult::Star);
        s
    }

    #[test]
    fn generated_medical_graphs_conform() {
        let mut v = Vocab::new();
        let s = medical(&mut v);
        let mut rng = StdRng::seed_from_u64(42);
        for size in [1, 3, 10] {
            let g = random_conforming_graph(&s, size, 5, &mut rng)
                .expect("medical schema is satisfiable");
            assert_eq!(s.conforms(&g), Ok(()));
            assert!(g.num_nodes() >= 3 * size);
        }
    }

    #[test]
    fn random_schemas_admit_conforming_graphs() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut ok = 0;
        for _ in 0..20 {
            let mut v = Vocab::new();
            let s = random_schema(&SchemaGenConfig::default(), &mut v, &mut rng);
            if let Some(g) = random_conforming_graph(&s, 3, 10, &mut rng) {
                assert_eq!(s.conforms(&g), Ok(()));
                ok += 1;
            }
        }
        // The generator's schemas keep reverse multiplicities at `*`, so
        // generation should essentially always succeed.
        assert!(ok >= 18, "only {ok}/20 generations succeeded");
    }

    /// Exact node/edge counts at the scales the scenario corpus and the
    /// differential harness sample at. The generator is deterministic
    /// given a seed; silent drift here would invisibly re-baseline every
    /// corpus fixture and BENCH_*.json per-family section downstream.
    #[test]
    fn generated_graph_sizes_are_pinned_at_corpus_scales() {
        let mut v = Vocab::new();
        let s = medical(&mut v);
        let mut rng = StdRng::seed_from_u64(2026);
        for (size, want) in [(10, (30, 25)), (40, (120, 102)), (100, (300, 246))] {
            let g = random_conforming_graph(&s, size, 5, &mut rng).expect("satisfiable");
            assert_eq!(
                (g.num_nodes(), g.num_edges()),
                want,
                "size_per_label {size}: generator output drifted"
            );
        }
    }

    #[test]
    fn empty_schema_yields_empty_graph() {
        let s = Schema::new();
        let mut rng = StdRng::seed_from_u64(1);
        let g = random_conforming_graph(&s, 3, 1, &mut rng).unwrap();
        assert_eq!(g.num_nodes(), 0);
    }
}
