//! # gts-schema
//!
//! Graph schemas with participation constraints, as defined in
//! *Static Analysis of Graph Database Transformations* (PODS 2023,
//! Section 3): a schema declares allowed node labels `Γ_S`, edge labels
//! `Σ_S`, and a multiplicity `δ_S(A, R, B) ∈ {0, 1, ?, +, *}` for every
//! `(A, R, B) ∈ Γ_S × Σ±_S × Γ_S`.
//!
//! The crate provides conformance checking, syntactic schema containment
//! (Proposition B.3), the schema ↔ `L0`-TBox correspondence of Appendix B
//! (Propositions B.1/B.4), and workload generators for random schemas and
//! random conforming graphs.
//!
//! ```
//! use gts_graph::{Vocab, EdgeSym, Graph};
//! use gts_schema::{Schema, Mult};
//!
//! // The designTarget edge of Figure 1: every Vaccine has exactly one
//! // design-target Antigen; an Antigen may be targeted by any number.
//! let mut v = Vocab::new();
//! let vaccine = v.node_label("Vaccine");
//! let antigen = v.node_label("Antigen");
//! let dt = v.edge_label("designTarget");
//!
//! let mut s = Schema::new();
//! s.set_edge(vaccine, dt, antigen, Mult::One, Mult::Star);
//!
//! let mut g = Graph::new();
//! let vac = g.add_labeled_node([vaccine]);
//! let ant = g.add_labeled_node([antigen]);
//! g.add_edge(vac, dt, ant);
//! assert!(s.conforms(&g).is_ok());
//! ```

#![warn(missing_docs)]

mod generate;
mod mult;
mod schema;

pub use generate::{random_conforming_graph, random_schema, SchemaGenConfig};
pub use mult::Mult;
pub use schema::{ConformanceError, Schema};
