//! Participation-constraint multiplicities `{0, 1, ?, +, *}` (Section 3).
//!
//! A multiplicity denotes a set of allowed successor counts:
//! `0 = {0}`, `1 = {1}`, `? = {0,1}`, `+ = {1,2,…}`, `* = {0,1,…}`.
//!
//! The syntactic order `≼` of Proposition B.3 is implemented as inclusion of
//! these count sets. Note: the paper's listing of the generators of `≼`
//! contains the typo `? ≼ +`; that ordering would contradict Proposition
//! B.3 itself (an `A`-node with zero `r`-edges conforms under `?` but not
//! under `+`), so we use the count-set semantics `0,1 ≼ ? ≼ *` and
//! `1 ≼ + ≼ *`. A unit test documents the counterexample.

use std::fmt;

/// A participation-constraint multiplicity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Mult {
    /// `0` — no successors allowed.
    Zero,
    /// `1` — exactly one successor.
    One,
    /// `?` — at most one successor.
    Opt,
    /// `+` — at least one successor.
    Plus,
    /// `*` — any number of successors.
    Star,
}

impl Mult {
    /// Does this multiplicity allow `count` successors?
    pub fn allows(self, count: usize) -> bool {
        match self {
            Mult::Zero => count == 0,
            Mult::One => count == 1,
            Mult::Opt => count <= 1,
            Mult::Plus => count >= 1,
            Mult::Star => true,
        }
    }

    /// Minimal allowed count (`0` or `1`).
    pub fn min_count(self) -> usize {
        match self {
            Mult::One | Mult::Plus => 1,
            _ => 0,
        }
    }

    /// Maximal allowed count (`None` = unbounded).
    pub fn max_count(self) -> Option<usize> {
        match self {
            Mult::Zero => Some(0),
            Mult::One | Mult::Opt => Some(1),
            Mult::Plus | Mult::Star => None,
        }
    }

    /// The order `≼` of Proposition B.3: inclusion of allowed-count sets.
    pub fn leq(self, other: Mult) -> bool {
        let lower_ok = other.min_count() <= self.min_count();
        let upper_ok = match (self.max_count(), other.max_count()) {
            (_, None) => true,
            (None, Some(_)) => false,
            (Some(a), Some(b)) => a <= b,
        };
        lower_ok && upper_ok
    }

    /// All five multiplicities.
    pub fn all() -> [Mult; 5] {
        [Mult::Zero, Mult::One, Mult::Opt, Mult::Plus, Mult::Star]
    }
}

impl fmt::Display for Mult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Mult::Zero => "0",
            Mult::One => "1",
            Mult::Opt => "?",
            Mult::Plus => "+",
            Mult::Star => "*",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allows_matches_count_sets() {
        assert!(Mult::Zero.allows(0) && !Mult::Zero.allows(1));
        assert!(!Mult::One.allows(0) && Mult::One.allows(1) && !Mult::One.allows(2));
        assert!(Mult::Opt.allows(0) && Mult::Opt.allows(1) && !Mult::Opt.allows(2));
        assert!(!Mult::Plus.allows(0) && Mult::Plus.allows(5));
        assert!(Mult::Star.allows(0) && Mult::Star.allows(100));
    }

    #[test]
    fn leq_is_count_set_inclusion() {
        // Exhaustive check against the semantic definition.
        for a in Mult::all() {
            for b in Mult::all() {
                let semantic = (0..=3usize).chain([10]).all(|c| !a.allows(c) || b.allows(c));
                assert_eq!(a.leq(b), semantic, "{a} ≼ {b}");
            }
        }
    }

    #[test]
    fn expected_order_relations() {
        assert!(Mult::Zero.leq(Mult::Opt));
        assert!(Mult::One.leq(Mult::Opt));
        assert!(Mult::One.leq(Mult::Plus));
        assert!(Mult::Opt.leq(Mult::Star));
        assert!(Mult::Plus.leq(Mult::Star));
        // The paper's typo `? ≼ +` must NOT hold: an A-node with zero
        // r-successors conforms under `?` but violates `+`.
        assert!(!Mult::Opt.leq(Mult::Plus));
        assert!(!Mult::Star.leq(Mult::Plus));
        assert!(!Mult::Opt.leq(Mult::One));
    }

    #[test]
    fn leq_is_a_partial_order() {
        for a in Mult::all() {
            assert!(a.leq(a));
            for b in Mult::all() {
                if a.leq(b) && b.leq(a) {
                    assert_eq!(a, b);
                }
                for c in Mult::all() {
                    if a.leq(b) && b.leq(c) {
                        assert!(a.leq(c));
                    }
                }
            }
        }
    }
}
