//! Graph schemas with participation constraints (Section 3).
//!
//! A schema is a triple `S = (Γ_S, Σ_S, δ_S)` where `δ_S` maps each
//! `(A, R, B) ∈ Γ_S × Σ±_S × Γ_S` to a multiplicity in `{?, 1, +, *, 0}`;
//! absent entries are implicitly `0` (Example 3.1). A finite graph conforms
//! to `S` iff every node carries exactly one label, from `Γ_S`, every edge
//! label is in `Σ_S`, and every count of labeled `R`-successors matches
//! `δ_S`.

use crate::Mult;
use gts_dl::{HornCi, HornTbox, L0Kind, L0Statement, L0Tbox};
use gts_graph::{EdgeLabel, EdgeSym, FxHashMap, Graph, LabelSet, NodeId, NodeLabel, Vocab};

/// Why a graph fails to conform to a schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConformanceError {
    /// A node does not carry exactly one label from `Γ_S`.
    BadNodeLabels {
        /// The offending node.
        node: NodeId,
        /// How many allowed labels it carries.
        count: usize,
    },
    /// An edge uses a label outside `Σ_S`.
    EdgeLabelNotAllowed {
        /// Edge source.
        src: NodeId,
        /// The offending label.
        label: EdgeLabel,
        /// Edge target.
        tgt: NodeId,
    },
    /// A participation constraint `δ_S(a, sym, b)` is violated.
    MultiplicityViolated {
        /// The constrained node.
        node: NodeId,
        /// Its label `A`.
        a: NodeLabel,
        /// The edge symbol `R`.
        sym: EdgeSym,
        /// The successor label `B`.
        b: NodeLabel,
        /// Observed count of labeled successors.
        count: usize,
        /// The multiplicity required by the schema.
        expected: Mult,
    },
}

/// A graph schema with participation constraints.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Schema {
    node_labels: Vec<NodeLabel>,
    edge_labels: Vec<EdgeLabel>,
    delta: FxHashMap<(NodeLabel, EdgeSym, NodeLabel), Mult>,
}

impl Schema {
    /// An empty schema (accepts only the empty graph).
    pub fn new() -> Self {
        Schema::default()
    }

    /// Declares a node label in `Γ_S` (idempotent).
    pub fn add_node_label(&mut self, l: NodeLabel) {
        if !self.node_labels.contains(&l) {
            self.node_labels.push(l);
            self.node_labels.sort();
        }
    }

    /// Declares an edge label in `Σ_S` (idempotent).
    pub fn add_edge_label(&mut self, l: EdgeLabel) {
        if !self.edge_labels.contains(&l) {
            self.edge_labels.push(l);
            self.edge_labels.sort();
        }
    }

    /// Sets `δ_S(a, sym, b) = m`, declaring the labels as needed.
    pub fn set(&mut self, a: NodeLabel, sym: EdgeSym, b: NodeLabel, m: Mult) {
        self.add_node_label(a);
        self.add_node_label(b);
        self.add_edge_label(sym.label);
        if m == Mult::Zero {
            self.delta.remove(&(a, sym, b));
        } else {
            self.delta.insert((a, sym, b), m);
        }
    }

    /// Declares an `r`-edge from `A`-nodes to `B`-nodes with forward
    /// multiplicity `fwd = δ(A, r, B)` and backward multiplicity
    /// `bwd = δ(B, r⁻, A)` — the two annotations of an edge in a schema
    /// diagram like Figure 1.
    pub fn set_edge(&mut self, a: NodeLabel, r: EdgeLabel, b: NodeLabel, fwd: Mult, bwd: Mult) {
        self.set(a, EdgeSym::fwd(r), b, fwd);
        self.set(b, EdgeSym::bwd(r), a, bwd);
    }

    /// Looks up `δ_S(a, sym, b)` (implicitly `0` when absent or when the
    /// labels are not part of the schema).
    pub fn mult(&self, a: NodeLabel, sym: EdgeSym, b: NodeLabel) -> Mult {
        self.delta.get(&(a, sym, b)).copied().unwrap_or(Mult::Zero)
    }

    /// The declared node labels `Γ_S` (sorted).
    pub fn node_labels(&self) -> &[NodeLabel] {
        &self.node_labels
    }

    /// The declared edge labels `Σ_S` (sorted).
    pub fn edge_labels(&self) -> &[EdgeLabel] {
        &self.edge_labels
    }

    /// `Γ_S` as a label set.
    pub fn node_label_set(&self) -> LabelSet {
        LabelSet::from_iter(self.node_labels.iter().map(|l| l.0))
    }

    /// All symbols in `Σ±_S`.
    pub fn syms(&self) -> impl Iterator<Item = EdgeSym> + '_ {
        self.edge_labels.iter().flat_map(|&l| [EdgeSym::fwd(l), EdgeSym::bwd(l)])
    }

    /// `true` iff `l ∈ Γ_S`.
    pub fn has_node_label(&self, l: NodeLabel) -> bool {
        self.node_labels.binary_search(&l).is_ok()
    }

    /// `true` iff `l ∈ Σ_S`.
    pub fn has_edge_label(&self, l: EdgeLabel) -> bool {
        self.edge_labels.binary_search(&l).is_ok()
    }

    /// Checks conformance of a finite graph (Section 3).
    pub fn conforms(&self, g: &Graph) -> Result<(), ConformanceError> {
        // 1) every node has exactly one label, and it is allowed.
        for n in g.nodes() {
            let labels = g.labels(n);
            let allowed = labels.iter().filter(|&l| self.has_node_label(NodeLabel(l))).count();
            if labels.len() != 1 || allowed != 1 {
                return Err(ConformanceError::BadNodeLabels { node: n, count: allowed });
            }
        }
        // 2) every edge label is allowed.
        for (src, l, tgt) in g.edges() {
            if !self.has_edge_label(l) {
                return Err(ConformanceError::EdgeLabelNotAllowed { src, label: l, tgt });
            }
        }
        // 3) participation constraints.
        for n in g.nodes() {
            let a = NodeLabel(g.labels(n).first().expect("checked above"));
            for sym in self.syms() {
                for &b in &self.node_labels {
                    let count = g.count_labeled_successors(n, sym, b);
                    let expected = self.mult(a, sym, b);
                    if !expected.allows(count) {
                        return Err(ConformanceError::MultiplicityViolated {
                            node: n,
                            a,
                            sym,
                            b,
                            count,
                            expected,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Syntactic schema containment `L(self) ⊆ L(other)` via the order `≼`
    /// (Proposition B.3, generalized to `Γ_self ⊆ Γ_other`).
    pub fn contains_in(&self, other: &Schema) -> bool {
        let gamma_ok = self.node_labels.iter().all(|l| other.has_node_label(*l));
        let sigma_ok = self.edge_labels.iter().all(|l| other.has_edge_label(*l));
        if !gamma_ok || !sigma_ok {
            return false;
        }
        // For every source label that graphs of `self` may use, every
        // constraint of `other` must be ≽ the (possibly implicit 0)
        // constraint of `self`.
        for &a in &self.node_labels {
            for sym in other.syms() {
                for &b in other.node_labels() {
                    if !self.mult(a, sym, b).leq(other.mult(a, sym, b)) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Schema equivalence: mutual containment.
    pub fn equivalent(&self, other: &Schema) -> bool {
        self.contains_in(other) && other.contains_in(self)
    }

    /// The `L0` TBox `T_S` corresponding to the schema (Appendix B):
    /// `∃` for multiplicities `{1, +}`, `∃≤1` for `{1, ?, 0}`, `∄` for `{0}`.
    pub fn to_l0(&self) -> L0Tbox {
        let mut t = L0Tbox::new();
        for &a in &self.node_labels {
            for sym in self.syms() {
                for &b in &self.node_labels {
                    let m = self.mult(a, sym, b);
                    if matches!(m, Mult::One | Mult::Plus) {
                        t.insert(L0Statement { lhs: a, kind: L0Kind::Exists, role: sym, rhs: b });
                    }
                    if matches!(m, Mult::One | Mult::Opt | Mult::Zero) {
                        t.insert(L0Statement {
                            lhs: a,
                            kind: L0Kind::AtMostOne,
                            role: sym,
                            rhs: b,
                        });
                    }
                    if m == Mult::Zero {
                        t.insert(L0Statement {
                            lhs: a,
                            kind: L0Kind::NotExists,
                            role: sym,
                            rhs: b,
                        });
                    }
                }
            }
        }
        t
    }

    /// Reconstructs the unique schema over (`node_labels`, `edge_labels`)
    /// whose `L0` TBox is `t` (Appendix B); `None` if `t` is incoherent.
    pub fn from_l0(
        t: &L0Tbox,
        node_labels: &[NodeLabel],
        edge_labels: &[EdgeLabel],
    ) -> Option<Schema> {
        if !t.is_coherent() {
            return None;
        }
        let mut s = Schema::new();
        for &l in node_labels {
            s.add_node_label(l);
        }
        for &l in edge_labels {
            s.add_edge_label(l);
        }
        for &a in node_labels {
            for sym in edge_labels.iter().flat_map(|&l| [EdgeSym::fwd(l), EdgeSym::bwd(l)]) {
                for &b in node_labels {
                    let has =
                        |kind: L0Kind| t.contains(&L0Statement { lhs: a, kind, role: sym, rhs: b });
                    let m = if has(L0Kind::NotExists) {
                        Mult::Zero
                    } else if has(L0Kind::Exists) && has(L0Kind::AtMostOne) {
                        Mult::One
                    } else if has(L0Kind::Exists) {
                        Mult::Plus
                    } else if has(L0Kind::AtMostOne) {
                        Mult::Opt
                    } else {
                        Mult::Star
                    };
                    s.set(a, sym, b, m);
                }
            }
        }
        Some(s)
    }

    /// The Horn TBox `T̂_S` of Theorem 5.6: `T_S` plus pairwise disjointness
    /// `A ⊓ B ⊑ ⊥` of the labels in `Γ_S` (ensuring *at most* one label per
    /// node; *at least* one is enforced on the query side).
    pub fn hat_tbox(&self) -> HornTbox {
        let mut t = self.to_l0().to_horn();
        for (i, &a) in self.node_labels.iter().enumerate() {
            for &b in &self.node_labels[i + 1..] {
                t.push(HornCi::Bottom { lhs: LabelSet::from_iter([a.0, b.0]) });
            }
        }
        t
    }

    /// Renders the schema as a `δ` table using `vocab`.
    pub fn render(&self, vocab: &Vocab) -> String {
        let mut lines = vec![format!(
            "Γ = {{{}}}  Σ = {{{}}}",
            self.node_labels.iter().map(|&l| vocab.node_name(l)).collect::<Vec<_>>().join(", "),
            self.edge_labels.iter().map(|&l| vocab.edge_name(l)).collect::<Vec<_>>().join(", ")
        )];
        let mut entries: Vec<_> = self.delta.iter().collect();
        entries.sort_by_key(|((a, sym, b), _)| (*a, *sym, *b));
        for ((a, sym, b), m) in entries {
            lines.push(format!(
                "δ({}, {}, {}) = {}",
                vocab.node_name(*a),
                vocab.sym_name(*sym),
                vocab.node_name(*b),
                m
            ));
        }
        lines.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_dl::Concept;

    /// The schema S0 of Figure 1 (medical knowledge graph).
    pub fn medical_s0(v: &mut Vocab) -> Schema {
        let vaccine = v.node_label("Vaccine");
        let antigen = v.node_label("Antigen");
        let pathogen = v.node_label("Pathogen");
        let dt = v.edge_label("designTarget");
        let cr = v.edge_label("crossReacting");
        let ex = v.edge_label("exhibits");
        let mut s = Schema::new();
        s.set_edge(vaccine, dt, antigen, Mult::One, Mult::Star);
        s.set_edge(antigen, cr, antigen, Mult::Star, Mult::Star);
        s.set_edge(pathogen, ex, antigen, Mult::Plus, Mult::Star);
        s
    }

    fn medical_graph(v: &mut Vocab) -> Graph {
        let vaccine = v.node_label("Vaccine");
        let antigen = v.node_label("Antigen");
        let pathogen = v.node_label("Pathogen");
        let dt = v.edge_label("designTarget");
        let cr = v.edge_label("crossReacting");
        let ex = v.edge_label("exhibits");
        let mut g = Graph::new();
        let vac = g.add_labeled_node([vaccine]);
        let a1 = g.add_labeled_node([antigen]);
        let a2 = g.add_labeled_node([antigen]);
        let p = g.add_labeled_node([pathogen]);
        g.add_edge(vac, dt, a1);
        g.add_edge(a1, cr, a2);
        g.add_edge(p, ex, a1);
        g.add_edge(p, ex, a2);
        g
    }

    #[test]
    fn example_3_1_delta_entries() {
        let mut v = Vocab::new();
        let s = medical_s0(&mut v);
        let vaccine = v.find_node_label("Vaccine").unwrap();
        let antigen = v.find_node_label("Antigen").unwrap();
        let pathogen = v.find_node_label("Pathogen").unwrap();
        let dt = v.find_edge_label("designTarget").unwrap();
        let ex = v.find_edge_label("exhibits").unwrap();
        assert_eq!(s.mult(vaccine, EdgeSym::fwd(dt), antigen), Mult::One);
        assert_eq!(s.mult(antigen, EdgeSym::bwd(dt), vaccine), Mult::Star);
        // Implicitly forbidden edges are 0 (Example 3.1).
        assert_eq!(s.mult(vaccine, EdgeSym::fwd(ex), pathogen), Mult::Zero);
        assert_eq!(s.mult(pathogen, EdgeSym::bwd(ex), vaccine), Mult::Zero);
    }

    #[test]
    fn conforming_medical_graph() {
        let mut v = Vocab::new();
        let s = medical_s0(&mut v);
        let g = medical_graph(&mut v);
        assert_eq!(s.conforms(&g), Ok(()));
    }

    #[test]
    fn missing_design_target_violates() {
        let mut v = Vocab::new();
        let s = medical_s0(&mut v);
        let vaccine = v.find_node_label("Vaccine").unwrap();
        let mut g = Graph::new();
        g.add_labeled_node([vaccine]);
        let err = s.conforms(&g).unwrap_err();
        assert!(matches!(
            err,
            ConformanceError::MultiplicityViolated { expected: Mult::One, count: 0, .. }
        ));
    }

    #[test]
    fn pathogen_needs_at_least_one_antigen() {
        let mut v = Vocab::new();
        let s = medical_s0(&mut v);
        let pathogen = v.find_node_label("Pathogen").unwrap();
        let mut g = Graph::new();
        g.add_labeled_node([pathogen]);
        assert!(s.conforms(&g).is_err());
    }

    #[test]
    fn two_design_targets_violate() {
        let mut v = Vocab::new();
        let s = medical_s0(&mut v);
        let mut g = medical_graph(&mut v);
        let dt = v.find_edge_label("designTarget").unwrap();
        // vac already targets a1; add a second target a2.
        g.add_edge(NodeId(0), dt, NodeId(2));
        assert!(matches!(
            s.conforms(&g).unwrap_err(),
            ConformanceError::MultiplicityViolated { count: 2, .. }
        ));
    }

    #[test]
    fn unlabeled_or_multiply_labeled_nodes_rejected() {
        let mut v = Vocab::new();
        let s = medical_s0(&mut v);
        let mut g = Graph::new();
        g.add_node();
        assert!(matches!(s.conforms(&g).unwrap_err(), ConformanceError::BadNodeLabels { .. }));

        let mut g2 = Graph::new();
        let vaccine = v.find_node_label("Vaccine").unwrap();
        let antigen = v.find_node_label("Antigen").unwrap();
        g2.add_labeled_node([vaccine, antigen]);
        assert!(matches!(s.conforms(&g2).unwrap_err(), ConformanceError::BadNodeLabels { .. }));
    }

    #[test]
    fn foreign_edge_label_rejected() {
        let mut v = Vocab::new();
        let s = medical_s0(&mut v);
        let mut g = medical_graph(&mut v);
        let foreign = v.edge_label("foreign");
        g.add_edge(NodeId(0), foreign, NodeId(1));
        assert!(matches!(
            s.conforms(&g).unwrap_err(),
            ConformanceError::EdgeLabelNotAllowed { .. }
        ));
    }

    #[test]
    fn containment_reflexive_and_star_widening() {
        let mut v = Vocab::new();
        let s = medical_s0(&mut v);
        assert!(s.contains_in(&s));
        let vaccine = v.find_node_label("Vaccine").unwrap();
        let antigen = v.find_node_label("Antigen").unwrap();
        let dt = v.find_edge_label("designTarget").unwrap();
        let mut wider = s.clone();
        wider.set(vaccine, EdgeSym::fwd(dt), antigen, Mult::Star);
        assert!(s.contains_in(&wider));
        assert!(!wider.contains_in(&s));
        assert!(!s.equivalent(&wider));
        assert!(s.equivalent(&s.clone()));
    }

    #[test]
    fn l0_roundtrip_is_identity() {
        let mut v = Vocab::new();
        let s = medical_s0(&mut v);
        let t = s.to_l0();
        assert!(t.is_coherent());
        let s2 = Schema::from_l0(&t, s.node_labels(), s.edge_labels()).unwrap();
        assert!(s.equivalent(&s2));
        assert_eq!(s, s2);
    }

    #[test]
    fn example_3_3_statements_present() {
        let mut v = Vocab::new();
        let s = medical_s0(&mut v);
        let pathogen = v.find_node_label("Pathogen").unwrap();
        let antigen = v.find_node_label("Antigen").unwrap();
        let vaccine = v.find_node_label("Vaccine").unwrap();
        let ex = v.find_edge_label("exhibits").unwrap();
        let t = s.to_l0();
        // Pathogen ⊑ ∃exhibits.Antigen
        assert!(t.contains(&L0Statement {
            lhs: pathogen,
            kind: L0Kind::Exists,
            role: EdgeSym::fwd(ex),
            rhs: antigen
        }));
        // Vaccine ⊑ ∄exhibits.Antigen (implicitly forbidden edge)
        assert!(t.contains(&L0Statement {
            lhs: vaccine,
            kind: L0Kind::NotExists,
            role: EdgeSym::fwd(ex),
            rhs: antigen
        }));
    }

    /// Proposition B.1: G conforms to S iff G ⊨ T_S, G ⊨ ⊤⊑⊔Γ_S, and the
    /// labels of Γ_S are pairwise disjoint on G.
    #[test]
    fn proposition_b1() {
        let mut v = Vocab::new();
        let s = medical_s0(&mut v);
        let good = medical_graph(&mut v);
        let mut bad = Graph::new();
        bad.add_labeled_node([v.find_node_label("Pathogen").unwrap()]);

        for (g, expect) in [(&good, true), (&bad, false)] {
            let tbox = s.to_l0().to_horn();
            // General ALCIF semantics of T_S (the semantic oracle).
            let horn_ok = tbox.cis.iter().all(|ci| ci.to_general().satisfied_by(g));
            // Horn model checker must agree with the oracle.
            assert_eq!(tbox.check_graph(g).is_ok(), horn_ok);
            // ⊤ ⊑ ⊔Γ_S as a general concept inclusion.
            let cover_concept = s
                .node_labels()
                .iter()
                .fold(Concept::Bottom, |acc, &l| Concept::or(acc, Concept::Atom(l)));
            let cover = g.nodes().all(|n| cover_concept.holds_at(g, n));
            let disjoint = g.nodes().all(|n| {
                g.labels(n).iter().filter(|&l| s.has_node_label(NodeLabel(l))).count() <= 1
            });
            assert_eq!(horn_ok && cover && disjoint, expect);
            assert_eq!(s.conforms(g).is_ok(), expect);
        }
    }

    #[test]
    fn hat_tbox_adds_disjointness() {
        let mut v = Vocab::new();
        let s = medical_s0(&mut v);
        let hat = s.hat_tbox();
        let bottoms = hat.cis.iter().filter(|c| matches!(c, HornCi::Bottom { .. })).count();
        // 3 labels → 3 unordered pairs.
        assert_eq!(bottoms, 3);
    }

    #[test]
    fn render_is_stable() {
        let mut v = Vocab::new();
        let s = medical_s0(&mut v);
        let r = s.render(&v);
        assert!(r.contains("δ(Vaccine, designTarget, Antigen) = 1"));
        // Labels render in interning order (Vaccine was interned first).
        assert!(r.contains("Γ = {Vaccine, Antigen, Pathogen}"));
    }
}
