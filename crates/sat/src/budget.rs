//! Resource budgets and three-valued verdicts for the satisfiability
//! engine.
//!
//! The paper's Theorem E.3 procedure is (nondeterministic) EXPTIME; a
//! deterministic implementation must search, and the search is bounded by
//! explicit budgets. The engine never guesses: `Sat` comes with a checkable
//! finite core, `Unsat` is only reported when the search space was covered
//! *exhaustively* (all atom languages finite and fully enumerated, no cap
//! hit), and anything else is `Unknown` with the binding budget.

use gts_graph::Graph;

/// Search budgets for [`crate::decide`].
#[derive(Clone, Debug)]
pub struct Budget {
    /// Maximum total number of *edge* symbols across all witnessing words
    /// of one connected query component (the iterative-deepening bound of
    /// the core search).
    pub max_total_edge_syms: usize,
    /// Maximum number of symbols (node tests + edges) of a single
    /// witnessing word.
    pub max_word_syms: usize,
    /// Cap on enumerated words per atom.
    pub max_words_per_atom: usize,
    /// Cap on chased cores per component.
    pub max_cores: usize,
    /// Cap on realizability candidates (type, role, parent-type) explored.
    pub max_candidates: usize,
    /// Cap on requirement-grouping options enumerated per node.
    pub max_groupings: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_total_edge_syms: 8,
            max_word_syms: 40,
            max_words_per_atom: 600,
            max_cores: 50_000,
            max_candidates: 60_000,
            max_groupings: 20_000,
        }
    }
}

impl Budget {
    /// The budget as a cache-key tuple — every field that bounds the
    /// search, in declaration order. All caches keyed by budget must use
    /// this (adding a field here updates them all at once).
    pub fn cache_key(&self) -> [usize; 6] {
        [
            self.max_total_edge_syms,
            self.max_word_syms,
            self.max_words_per_atom,
            self.max_cores,
            self.max_candidates,
            self.max_groupings,
        ]
    }

    /// A generous budget for stress tests and benchmarks.
    pub fn large() -> Budget {
        Budget {
            max_total_edge_syms: 12,
            max_word_syms: 60,
            max_words_per_atom: 4_000,
            max_cores: 500_000,
            max_candidates: 400_000,
            max_groupings: 100_000,
        }
    }
}

/// Which budget was exhausted (making a negative answer uncertified).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnknownReason {
    /// Some atom's language is infinite — word enumeration cannot be
    /// exhaustive at any finite bound.
    InfiniteLanguage,
    /// The per-atom word cap or word-length cap was hit.
    WordBudget,
    /// The core cap was hit.
    CoreBudget,
    /// The realizability candidate cap was hit.
    CandidateBudget,
    /// The grouping cap was hit.
    GroupingBudget,
    /// A merged-witness option was rejected beyond the saturation's
    /// guarantees; negative answers cannot be certified.
    Saturation,
}

/// A satisfiability witness: the finite core of a `|p|`-sparse model.
///
/// Every node of the core satisfies all universal constraints of the TBox,
/// and each remaining `∃`-requirement was proved fulfillable by attaching
/// (possibly infinite, finitely branching) witness trees — the coinductive
/// check of Lemma E.5/E.6.
#[derive(Clone, Debug)]
pub struct Witness {
    /// The core graph (match image plus witnessing paths, after chasing).
    pub core: Graph,
}

/// The engine's verdict.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// Satisfiable, with a core witness.
    Sat(Witness),
    /// Certified unsatisfiable (exhaustive search).
    Unsat,
    /// Budget exhausted without a certificate.
    Unknown(UnknownReason),
}

impl Verdict {
    /// `true` for `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, Verdict::Sat(_))
    }

    /// `true` for certified `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, Verdict::Unsat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_reasonable() {
        let b = Budget::default();
        assert!(b.max_total_edge_syms >= 4);
        assert!(b.max_cores >= 1000);
        assert!(Budget::large().max_cores > b.max_cores);
    }

    #[test]
    fn verdict_predicates() {
        assert!(Verdict::Unsat.is_unsat());
        assert!(!Verdict::Unsat.is_sat());
        assert!(Verdict::Sat(Witness { core: Graph::new() }).is_sat());
        assert!(!Verdict::Unknown(UnknownReason::WordBudget).is_sat());
    }
}
