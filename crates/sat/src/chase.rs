//! Candidate cores and the deterministic Horn chase.
//!
//! Following the proof of Theorem 6.3, a satisfiability witness is sought
//! as a finite *core*: one node per query variable plus a fresh simple path
//! per atom (a chosen word of its regular expression), after which the only
//! repairs a Horn TBox can force are deterministic — label closure,
//! `∀`-propagation along both edge directions, and merges of same-role
//! successors demanded by at-most-one constraints. The chase either
//! reaches a fixpoint (a locally consistent core) or fails (this word
//! combination admits no model).
//!
//! The edge set is stored as per-node sorted adjacency (forward and
//! inverse), plus a per-node bitset of incident edge labels — the same
//! layout `gts-exec::IndexedGraph` uses — so neighborhood queries
//! (`incident`, at-most counting) read one node's lists instead of
//! scanning every edge of the core. Merges move the vanishing node's lists
//! onto the survivor; entries referencing merged-away nodes are resolved
//! through the union-find on read.

use gts_dl::HornTbox;
use gts_graph::{EdgeLabel, EdgeSym, Graph, LabelSet, NodeId};

/// Why a core candidate was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaseFail {
    /// Some node's label set became inconsistent (`K ⊑ ⊥`).
    Inconsistent,
    /// Some edge violates a `∄`-constraint.
    ForbiddenEdge,
}

/// A mutable core under construction: a labeled multigraph with a
/// union-find over nodes (merges happen when at-most constraints fire).
#[derive(Clone, Debug, Default)]
pub struct Core {
    parent: Vec<usize>,
    labels: Vec<LabelSet>,
    /// Forward adjacency per node: sorted `(label, target)` pairs. Stored
    /// on the representative; targets may be merged-away nodes and are
    /// resolved via `find` on read.
    out: Vec<Vec<(EdgeLabel, usize)>>,
    /// Inverse adjacency per node: sorted `(label, source)` pairs.
    inc: Vec<Vec<(EdgeLabel, usize)>>,
    /// Edge labels incident to each node (either direction) — a quick
    /// filter for at-most scans.
    touch: Vec<LabelSet>,
}

impl Core {
    /// An empty core.
    pub fn new() -> Self {
        Core::default()
    }

    /// Adds a node with the given seed labels; returns its index.
    pub fn add_node(&mut self, seed: LabelSet) -> usize {
        self.parent.push(self.parent.len());
        self.labels.push(seed);
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        self.touch.push(LabelSet::new());
        self.parent.len() - 1
    }

    /// Adds a label to a node's seed set.
    pub fn add_label(&mut self, node: usize, label: u32) {
        let r = self.find(node);
        self.labels[r].insert(label);
    }

    /// Representative of `node`'s merge class.
    pub fn find(&mut self, mut node: usize) -> usize {
        while self.parent[node] != node {
            self.parent[node] = self.parent[self.parent[node]];
            node = self.parent[node];
        }
        node
    }

    /// Adds an edge along `sym` from `u` to `v` (inverse symbols store the
    /// underlying forward edge).
    pub fn add_sym_edge(&mut self, u: usize, sym: EdgeSym, v: usize) {
        let (src, tgt) = if sym.inverse { (v, u) } else { (u, v) };
        let (src, tgt) = (self.find(src), self.find(tgt));
        insert_sorted(&mut self.out[src], (sym.label, tgt));
        insert_sorted(&mut self.inc[tgt], (sym.label, src));
        self.touch[src].insert(sym.label.0);
        self.touch[tgt].insert(sym.label.0);
    }

    /// Merges the classes of `u` and `v` (identifying two nodes), moving
    /// the vanishing class's adjacency onto the surviving representative.
    pub fn merge(&mut self, u: usize, v: usize) {
        let (ru, rv) = (self.find(u), self.find(v));
        if ru == rv {
            return;
        }
        let (keep, gone) = (ru.min(rv), ru.max(rv));
        self.parent[gone] = keep;
        let moved = std::mem::take(&mut self.labels[gone]);
        self.labels[keep].union_with(&moved);
        let moved_out = std::mem::take(&mut self.out[gone]);
        let moved_inc = std::mem::take(&mut self.inc[gone]);
        self.out[keep].extend(moved_out);
        self.inc[keep].extend(moved_inc);
        self.out[keep].sort_unstable();
        self.out[keep].dedup();
        self.inc[keep].sort_unstable();
        self.inc[keep].dedup();
        let moved_touch = std::mem::take(&mut self.touch[gone]);
        self.touch[keep].union_with(&moved_touch);
    }

    /// Current representatives, sorted.
    pub fn roots(&mut self) -> Vec<usize> {
        let mut out: Vec<usize> = (0..self.parent.len()).map(|i| self.find(i)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Labels of a node's class.
    pub fn labels_of(&mut self, node: usize) -> &LabelSet {
        let r = self.find(node);
        &self.labels[r]
    }

    /// Overwrites a class's labels (used by the saturation loop of the
    /// engine, which may only grow them).
    pub fn set_labels(&mut self, node: usize, labels: LabelSet) {
        let r = self.find(node);
        self.labels[r] = labels;
    }

    /// The distinct `(source-root, label, target-root)` edges of the core,
    /// sorted.
    pub fn edge_list(&mut self) -> Vec<(usize, EdgeLabel, usize)> {
        let mut edges = Vec::new();
        for r in self.roots() {
            let pairs = self.out[r].clone();
            for (l, t) in pairs {
                let t = self.find(t);
                edges.push((r, l, t));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    /// All `(sym, neighbor-root)` pairs incident to a root, *with
    /// multiplicity per distinct edge* (a self-loop contributes both
    /// directions). Used by the extension check, whose at-most counting
    /// needs each distinct edge once per direction.
    pub fn incident(&mut self, root: usize) -> Vec<(EdgeSym, usize)> {
        let root = self.find(root);
        let mut out = Vec::new();
        let fwd = self.out[root].clone();
        for (l, t) in fwd {
            let t = self.find(t);
            out.push((EdgeSym::fwd(l), t));
        }
        let bwd = self.inc[root].clone();
        for (l, s) in bwd {
            let s = self.find(s);
            out.push((EdgeSym::bwd(l), s));
        }
        out.sort();
        out.dedup();
        out
    }

    /// Distinct `role`-successor roots of `root` whose labels include `k`.
    fn labeled_successors(&mut self, root: usize, role: EdgeSym, k: &LabelSet) -> Vec<usize> {
        let root = self.find(root);
        let pairs = if role.inverse { self.inc[root].clone() } else { self.out[root].clone() };
        let mut out: Vec<usize> = pairs
            .into_iter()
            .filter(|(l, _)| *l == role.label)
            .map(|(_, n)| self.find(n))
            .collect();
        out.sort_unstable();
        out.dedup();
        out.retain(|&n| k.is_subset(&self.labels[n]));
        out
    }

    /// Runs the deterministic chase to fixpoint: label closure,
    /// `∀`-propagation, `∄`-checks, and functionality merges.
    pub fn chase(&mut self, tbox: &HornTbox) -> Result<(), ChaseFail> {
        self.chase_steps(&mut PlainOracle { tbox })
    }

    /// [`Core::chase`] with all TBox rule applications answered by
    /// `universe`'s memos — the hot path of the satisfiability engine,
    /// where every candidate core over one TBox closes and propagates the
    /// same label sets.
    pub fn chase_in(&mut self, universe: &mut crate::types::TypeUniverse) -> Result<(), ChaseFail> {
        self.chase_steps(universe)
    }

    fn chase_steps(&mut self, ops: &mut dyn ChaseOracle) -> Result<(), ChaseFail> {
        loop {
            let mut changed = false;

            // 1) Close labels under K ⊑ A rules; detect ⊥.
            for root in self.roots() {
                let closed = ops.close(&self.labels[root]).ok_or(ChaseFail::Inconsistent)?;
                if closed != self.labels[root] {
                    self.labels[root] = closed;
                    changed = true;
                }
            }

            // 2) ∀-propagation along both directions of every edge.
            for (s, l, t) in self.edge_list() {
                let (s, t) = (self.find(s), self.find(t));
                let push_fwd = ops.propagate(&self.labels[s], EdgeSym::fwd(l));
                if !push_fwd.is_subset(&self.labels[t]) {
                    self.labels[t].union_with(&push_fwd);
                    changed = true;
                }
                let push_bwd = ops.propagate(&self.labels[t], EdgeSym::bwd(l));
                if !push_bwd.is_subset(&self.labels[s]) {
                    self.labels[s].union_with(&push_bwd);
                    changed = true;
                }
            }

            // 3) ∄-checks on every edge.
            for (s, l, t) in self.edge_list() {
                let (s, t) = (self.find(s), self.find(t));
                if ops.forbidden(&self.labels[s], EdgeSym::fwd(l), &self.labels[t]) {
                    return Err(ChaseFail::ForbiddenEdge);
                }
            }

            // 4) Functionality merges: two distinct K'-successors under an
            //    at-most-one constraint must be identified.
            'merge_scan: for root in self.roots() {
                let ams = ops.at_most(&self.labels[root]);
                for (role, k) in ams.iter() {
                    // Bitset filter: no incident edge with this label means
                    // no successors to count.
                    if !self.touch[root].contains(role.label.0) {
                        continue;
                    }
                    let succs = self.labeled_successors(root, *role, k);
                    if succs.len() >= 2 {
                        self.merge(succs[0], succs[1]);
                        changed = true;
                        break 'merge_scan;
                    }
                }
            }

            if !changed {
                return Ok(());
            }
        }
    }

    /// Freezes the core into a [`Graph`], returning the graph and the map
    /// from original node indices to graph node ids.
    pub fn to_graph(&mut self) -> (Graph, Vec<NodeId>) {
        let roots = self.roots();
        let mut g = Graph::new();
        let mut root_to_id = vec![NodeId(0); self.parent.len()];
        for &r in &roots {
            let id = g.add_node();
            g.add_label_set(id, &self.labels[r]);
            root_to_id[r] = id;
        }
        for (s, l, t) in self.edge_list() {
            g.add_edge(root_to_id[s], l, root_to_id[t]);
        }
        let map = (0..self.parent.len())
            .map(|i| {
                let r = self.find(i);
                root_to_id[r]
            })
            .collect();
        (g, map)
    }
}

/// Inserts into a sorted vector, keeping it sorted and deduplicated.
fn insert_sorted(v: &mut Vec<(EdgeLabel, usize)>, item: (EdgeLabel, usize)) {
    if let Err(pos) = v.binary_search(&item) {
        v.insert(pos, item);
    }
}

/// The TBox rule applications the chase needs, abstracted so the engine
/// can answer them from the per-TBox memos of
/// [`crate::types::TypeUniverse`] while standalone callers use the TBox
/// directly.
trait ChaseOracle {
    fn close(&mut self, set: &LabelSet) -> Option<LabelSet>;
    fn propagate(&mut self, set: &LabelSet, role: EdgeSym) -> std::sync::Arc<LabelSet>;
    fn forbidden(&mut self, src: &LabelSet, role: EdgeSym, tgt: &LabelSet) -> bool;
    fn at_most(&mut self, set: &LabelSet) -> std::sync::Arc<Vec<(EdgeSym, LabelSet)>>;
}

struct PlainOracle<'t> {
    tbox: &'t HornTbox,
}

impl ChaseOracle for PlainOracle<'_> {
    fn close(&mut self, set: &LabelSet) -> Option<LabelSet> {
        self.tbox.closure(set)
    }
    fn propagate(&mut self, set: &LabelSet, role: EdgeSym) -> std::sync::Arc<LabelSet> {
        std::sync::Arc::new(self.tbox.propagate(set, role))
    }
    fn forbidden(&mut self, src: &LabelSet, role: EdgeSym, tgt: &LabelSet) -> bool {
        self.tbox.edge_forbidden(src, role, tgt)
    }
    fn at_most(&mut self, set: &LabelSet) -> std::sync::Arc<Vec<(EdgeSym, LabelSet)>> {
        std::sync::Arc::new(self.tbox.at_most(set))
    }
}

impl ChaseOracle for crate::types::TypeUniverse {
    fn close(&mut self, set: &LabelSet) -> Option<LabelSet> {
        crate::types::TypeUniverse::close(self, set).map(|t| self.labels(t).clone())
    }
    fn propagate(&mut self, set: &LabelSet, role: EdgeSym) -> std::sync::Arc<LabelSet> {
        self.propagate_set(set, role)
    }
    fn forbidden(&mut self, src: &LabelSet, role: EdgeSym, tgt: &LabelSet) -> bool {
        self.edge_forbidden_memo(src, role, tgt)
    }
    fn at_most(&mut self, set: &LabelSet) -> std::sync::Arc<Vec<(EdgeSym, LabelSet)>> {
        self.at_most_set(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_dl::HornCi;
    use gts_graph::NodeLabel;

    fn sym(i: u32) -> EdgeSym {
        EdgeSym::fwd(EdgeLabel(i))
    }
    fn set(labels: &[u32]) -> LabelSet {
        LabelSet::from_iter(labels.iter().copied())
    }

    #[test]
    fn closure_and_propagation() {
        // 0 ⊑ 1;  1 ⊑ ∀r.2
        let mut t = HornTbox::new();
        t.push(HornCi::SubAtom { lhs: set(&[0]), rhs: NodeLabel(1) });
        t.push(HornCi::AllValues { lhs: set(&[1]), role: sym(0), rhs: set(&[2]) });
        let mut c = Core::new();
        let u = c.add_node(set(&[0]));
        let v = c.add_node(LabelSet::new());
        c.add_sym_edge(u, sym(0), v);
        c.chase(&t).unwrap();
        assert!(c.labels_of(u).contains(1));
        assert!(c.labels_of(v).contains(2));
    }

    #[test]
    fn inverse_propagation() {
        // 0 ⊑ ∀r⁻.1 : labels flow from target to source.
        let mut t = HornTbox::new();
        t.push(HornCi::AllValues { lhs: set(&[0]), role: sym(0).inv(), rhs: set(&[1]) });
        let mut c = Core::new();
        let u = c.add_node(LabelSet::new());
        let v = c.add_node(set(&[0]));
        c.add_sym_edge(u, sym(0), v);
        c.chase(&t).unwrap();
        assert!(c.labels_of(u).contains(1));
    }

    #[test]
    fn bottom_fails() {
        let mut t = HornTbox::new();
        t.push(HornCi::Bottom { lhs: set(&[0, 1]) });
        let mut c = Core::new();
        c.add_node(set(&[0, 1]));
        assert_eq!(c.chase(&t), Err(ChaseFail::Inconsistent));
    }

    #[test]
    fn forbidden_edge_fails() {
        let mut t = HornTbox::new();
        t.push(HornCi::NotExists { lhs: set(&[0]), role: sym(0), rhs: set(&[1]) });
        let mut c = Core::new();
        let u = c.add_node(set(&[0]));
        let v = c.add_node(set(&[1]));
        c.add_sym_edge(u, sym(0), v);
        assert_eq!(c.chase(&t), Err(ChaseFail::ForbiddenEdge));
    }

    #[test]
    fn functionality_merges_successors() {
        // 0 ⊑ ∃≤1 r.⊤ with two r-successors → they merge.
        let mut t = HornTbox::new();
        t.push(HornCi::AtMostOne { lhs: set(&[0]), role: sym(0), rhs: LabelSet::new() });
        let mut c = Core::new();
        let u = c.add_node(set(&[0]));
        let v1 = c.add_node(set(&[5]));
        let v2 = c.add_node(set(&[6]));
        c.add_sym_edge(u, sym(0), v1);
        c.add_sym_edge(u, sym(0), v2);
        c.chase(&t).unwrap();
        assert_eq!(c.find(v1), c.find(v2));
        // Merged node carries both label sets.
        assert!(c.labels_of(v1).contains(5) && c.labels_of(v1).contains(6));
        let (g, map) = c.to_graph();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(map[v1], map[v2]);
    }

    #[test]
    fn merge_cascade_detects_inconsistency() {
        // Merging forced successors 1 and 2 triggers 1⊓2 ⊑ ⊥.
        let mut t = HornTbox::new();
        t.push(HornCi::AtMostOne { lhs: set(&[0]), role: sym(0), rhs: LabelSet::new() });
        t.push(HornCi::Bottom { lhs: set(&[1, 2]) });
        let mut c = Core::new();
        let u = c.add_node(set(&[0]));
        let v1 = c.add_node(set(&[1]));
        let v2 = c.add_node(set(&[2]));
        c.add_sym_edge(u, sym(0), v1);
        c.add_sym_edge(u, sym(0), v2);
        assert_eq!(c.chase(&t), Err(ChaseFail::Inconsistent));
    }

    #[test]
    fn at_most_ignores_differently_labeled_successors() {
        // At-most counts only K'-successors: one labeled, one unlabeled.
        let mut t = HornTbox::new();
        t.push(HornCi::AtMostOne { lhs: set(&[0]), role: sym(0), rhs: set(&[1]) });
        let mut c = Core::new();
        let u = c.add_node(set(&[0]));
        let v1 = c.add_node(set(&[1]));
        let v2 = c.add_node(set(&[9]));
        c.add_sym_edge(u, sym(0), v1);
        c.add_sym_edge(u, sym(0), v2);
        c.chase(&t).unwrap();
        assert_ne!(c.find(v1), c.find(v2));
    }

    #[test]
    fn inverse_edge_storage_roundtrip() {
        let mut c = Core::new();
        let u = c.add_node(LabelSet::new());
        let v = c.add_node(LabelSet::new());
        // Adding an r⁻ edge u→v stores the forward edge v→u.
        c.add_sym_edge(u, sym(0).inv(), v);
        let inc_u = c.incident(u);
        assert!(inc_u.contains(&(sym(0).inv(), v)));
        let inc_v = c.incident(v);
        assert!(inc_v.contains(&(sym(0), u)));
    }

    #[test]
    fn self_loop_incident_has_both_directions() {
        let mut c = Core::new();
        let u = c.add_node(LabelSet::new());
        c.add_sym_edge(u, sym(0), u);
        let inc = c.incident(u);
        assert!(inc.contains(&(sym(0), u)));
        assert!(inc.contains(&(sym(0).inv(), u)));
    }

    #[test]
    fn merged_adjacency_is_rewritten_onto_survivor() {
        let mut c = Core::new();
        let a = c.add_node(LabelSet::new());
        let b = c.add_node(LabelSet::new());
        let d = c.add_node(LabelSet::new());
        c.add_sym_edge(a, sym(0), b);
        c.add_sym_edge(b, sym(1), d);
        c.merge(a, b);
        let r = c.find(a);
        // The survivor sees both the incoming self-loop edge and b's
        // outgoing edge.
        let inc = c.incident(r);
        assert!(inc.contains(&(sym(1), c.find(d))));
        assert_eq!(c.edge_list().len(), 2);
        let (g, _) = c.to_graph();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 2);
    }
}
