//! The decision procedure for unrestricted satisfiability of a Boolean
//! C2RPQ modulo a Horn-ALCIF TBox (Theorem 6.1, engineered per DESIGN.md
//! §3.2).
//!
//! Per connected component of the query the engine enumerates witnessing
//! words per atom (exhaustively when the regex language is finite), builds
//! the candidate core of Theorem 6.3's proof, runs the deterministic chase,
//! and checks every core node's remaining `∃`-requirements with the
//! coinductive tree realizability of [`crate::realize`]. Components are
//! independent because models of Horn TBoxes are closed under disjoint
//! union.
//!
//! Two entry points share the same search: [`decide`] builds a fresh
//! solver context per call, while [`decide_cached`] borrows a persistent
//! per-TBox context from a [`SolverCache`] so repeated calls over one TBox
//! skip re-interning types and re-deciding realizability fixpoints. Both
//! return the same verdicts (the differential suites enforce it).

use crate::budget::{Budget, UnknownReason, Verdict, Witness};
use crate::cache::SolverCache;
use crate::chase::Core;
use crate::realize::RealizeCtx;
use crate::types::TypeUniverse;
use gts_dl::{HornCi, HornTbox};
use gts_graph::{FxHashMap, FxHashSet, Graph, LabelSet, NodeId};
use gts_query::{AtomSym, C2rpq, Nfa, Var};

/// Search statistics (for benchmarks, the `--stats` CLI flag, and
/// EXPERIMENTS.md).
#[derive(Clone, Copy, Debug, Default)]
pub struct DecideStats {
    /// Number of candidate cores chased.
    pub cores_tried: usize,
    /// Candidate cores skipped because an isomorphic core (same sorted
    /// multiset of per-atom witnessing words) was already chased.
    pub cores_deduped: usize,
    /// Number of node types interned in the solver context after the call
    /// (cumulative for a cached context).
    pub types_interned: usize,
    /// Realizability verdicts replayed from the context memo during this
    /// call.
    pub realize_hits: u64,
    /// Realizability verdicts computed during this call.
    pub realize_misses: u64,
}

impl DecideStats {
    /// Folds another call's counters into this one.
    pub fn absorb(&mut self, other: &DecideStats) {
        self.cores_tried += other.cores_tried;
        self.cores_deduped += other.cores_deduped;
        self.types_interned = self.types_interned.max(other.types_interned);
        self.realize_hits += other.realize_hits;
        self.realize_misses += other.realize_misses;
    }
}

enum CompResult {
    Sat(Graph),
    Unsat,
    Unknown(UnknownReason),
}

/// Decides unrestricted satisfiability of the Boolean C2RPQ `query` modulo
/// `tbox`.
///
/// * `Sat` verdicts carry the finite core of a witnessing (possibly
///   infinite) model;
/// * `Unsat` verdicts are certified (the search space was finite and was
///   covered exhaustively);
/// * `Unknown` reports the binding budget.
pub fn decide(tbox: &HornTbox, query: &C2rpq, budget: &Budget) -> Verdict {
    decide_with_stats(tbox, query, budget).0
}

/// [`decide`], additionally returning search statistics.
pub fn decide_with_stats(
    tbox: &HornTbox,
    query: &C2rpq,
    budget: &Budget,
) -> (Verdict, DecideStats) {
    let mut ctx = RealizeCtx::new(TypeUniverse::new(tbox), budget.clone());
    decide_instrumented(&mut ctx, tbox, query, budget)
}

/// [`decide`] against a persistent per-TBox context borrowed from `cache`.
///
/// Same verdicts as [`decide`] (warm memo entries replay the exact
/// sequential computation, including its `uncertain` degradations); the
/// warm path skips type interning, saturation fixpoints, and realizability
/// fixpoints already established by earlier calls over this TBox.
pub fn decide_cached(
    tbox: &HornTbox,
    query: &C2rpq,
    budget: &Budget,
    cache: &SolverCache,
) -> (Verdict, DecideStats) {
    let handle = cache.handle(tbox, budget);
    decide_on(&handle, tbox, query, budget, cache)
}

/// [`decide_cached`] against a pre-resolved [`crate::SolverHandle`] — skips the
/// per-call CI-set hashing of the cache lookup, which matters when one
/// extended TBox is probed hundreds of times (the completion's entailment
/// sweep).
pub fn decide_on(
    handle: &crate::cache::SolverHandle,
    tbox: &HornTbox,
    query: &C2rpq,
    budget: &Budget,
    cache: &SolverCache,
) -> (Verdict, DecideStats) {
    let (verdict, stats) =
        cache.with_handle(handle, budget, |ctx| decide_instrumented(ctx, tbox, query, budget));
    cache.record_decide(stats.cores_tried, stats.cores_deduped);
    (verdict, stats)
}

/// The process-global metric cells of the decide hot path, resolved once.
struct DecideMetrics {
    latency: gts_obs::Histogram,
    sat: gts_obs::Counter,
    unsat: gts_obs::Counter,
    unknown: gts_obs::Counter,
}

fn decide_metrics() -> &'static DecideMetrics {
    static CELLS: std::sync::OnceLock<DecideMetrics> = std::sync::OnceLock::new();
    CELLS.get_or_init(|| {
        let reg = gts_obs::global();
        let name = "gts_sat_decide_total";
        let help = "Satisfiability decide calls by verdict";
        DecideMetrics {
            latency: reg.histogram(
                "gts_sat_decide_micros",
                "Latency of satisfiability decide calls",
                &[],
            ),
            sat: reg.counter(name, help, &[("verdict", "sat")]),
            unsat: reg.counter(name, help, &[("verdict", "unsat")]),
            unknown: reg.counter(name, help, &[("verdict", "unknown")]),
        }
    })
}

/// [`decide_in`] wrapped in the observability layer: an `oracle_decide`
/// span (inert unless the calling thread is tracing) plus a latency
/// histogram and per-verdict counters in the global registry.
fn decide_instrumented(
    ctx: &mut RealizeCtx,
    tbox: &HornTbox,
    query: &C2rpq,
    budget: &Budget,
) -> (Verdict, DecideStats) {
    let _span = gts_obs::span("oracle_decide");
    if !gts_obs::enabled() {
        return decide_in(ctx, tbox, query, budget);
    }
    let start = std::time::Instant::now();
    let out = decide_in(ctx, tbox, query, budget);
    let m = decide_metrics();
    m.latency.record(start.elapsed().as_micros() as u64);
    match &out.0 {
        Verdict::Sat(_) => m.sat.inc(),
        Verdict::Unsat => m.unsat.inc(),
        Verdict::Unknown(_) => m.unknown.inc(),
    }
    out
}

/// The shared search; `ctx` must already be reset for this call (fresh, or
/// via `RealizeCtx::begin_call`).
fn decide_in(
    ctx: &mut RealizeCtx,
    tbox: &HornTbox,
    query: &C2rpq,
    budget: &Budget,
) -> (Verdict, DecideStats) {
    assert!(
        query.is_boolean(),
        "the satisfiability engine takes Boolean queries; close the query first"
    );
    let realize_before = ctx.stats();
    let mut stats = DecideStats::default();
    let mut cores: Vec<Graph> = Vec::new();
    let mut unknown: Option<UnknownReason> = None;

    let finish = |ctx: &RealizeCtx, stats: &mut DecideStats| {
        stats.types_interned = ctx.types.len();
        let after = ctx.stats();
        stats.realize_hits = (after.status_hits - realize_before.status_hits)
            + (after.options_hits - realize_before.options_hits);
        stats.realize_misses = (after.status_misses - realize_before.status_misses)
            + (after.options_misses - realize_before.options_misses);
    };

    for (vars, atom_idxs) in query.connected_components() {
        match solve_component(tbox, query, &vars, &atom_idxs, budget, ctx, &mut stats) {
            CompResult::Sat(g) => cores.push(g),
            CompResult::Unsat => {
                finish(ctx, &mut stats);
                return (Verdict::Unsat, stats);
            }
            CompResult::Unknown(r) => unknown = Some(unknown.unwrap_or(r)),
        }
    }
    finish(ctx, &mut stats);
    if let Some(r) = unknown {
        return (Verdict::Unknown(r), stats);
    }
    (Verdict::Sat(Witness { core: disjoint_union(&cores) }), stats)
}

/// The label set of a regex that is a pure node-test sequence
/// (`Then`/`Node`/`Epsilon` only), whose language is exactly one edge-free
/// word. `None` for any other shape.
fn node_test_labels(re: &gts_query::Regex) -> Option<LabelSet> {
    use gts_query::Regex;
    match re {
        Regex::Epsilon => Some(LabelSet::new()),
        Regex::Sym(AtomSym::Node(l)) => Some(LabelSet::singleton(l.0)),
        Regex::Concat(a, b) => {
            let mut s = node_test_labels(a)?;
            s.union_with(&node_test_labels(b)?);
            Some(s)
        }
        _ => None,
    }
}

#[allow(clippy::too_many_arguments)]
fn solve_component(
    tbox: &HornTbox,
    query: &C2rpq,
    vars: &[Var],
    atom_idxs: &[usize],
    budget: &Budget,
    ctx: &mut RealizeCtx,
    stats: &mut DecideStats,
) -> CompResult {
    // Local variable numbering.
    let local: FxHashMap<Var, usize> = vars.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let atoms: Vec<(usize, usize, &gts_query::Atom)> = atom_idxs
        .iter()
        .map(|&i| {
            let a = &query.atoms[i];
            (local[&a.x], local[&a.y], a)
        })
        .collect();

    // Fast path for a pure node-test component — a single self-loop atom
    // whose language is one edge-free word (the shape of every entailment
    // probe of the completion). The general machinery would enumerate the
    // one word, build a one-node core, chase it, and check extendability;
    // all of that collapses to close → saturate → extendability, each of
    // which is memoized in a warm solver context.
    if let [(x, y, a)] = atoms.as_slice() {
        if x == y && vars.len() == 1 {
            if let Some(labels) = node_test_labels(&a.regex) {
                if stats.cores_tried >= budget.max_cores {
                    return CompResult::Unknown(UnknownReason::CoreBudget);
                }
                stats.cores_tried += 1;
                let Some(tid) = ctx.types.close(&labels) else {
                    return CompResult::Unsat;
                };
                let Some(sat) = ctx.types.saturate(tid) else {
                    return CompResult::Unsat;
                };
                // Mirrors the general path's verdict order: `uncertain`
                // degrades negative answers before budget reasons do.
                return match ctx.node_extendable(sat, &[]) {
                    Ok(true) => {
                        let mut g = Graph::new();
                        let n = g.add_node();
                        g.add_label_set(n, ctx.types.labels(sat));
                        CompResult::Sat(g)
                    }
                    Ok(false) if ctx.uncertain => CompResult::Unknown(UnknownReason::Saturation),
                    Ok(false) => CompResult::Unsat,
                    Err(_) if ctx.uncertain => CompResult::Unknown(UnknownReason::Saturation),
                    Err(r) => CompResult::Unknown(r),
                };
            }
        }
    }

    // Word enumeration per atom. A *loose* endpoint (a variable used by no
    // other atom of the Boolean component) licenses prefix-minimal
    // enumeration: a model realizing a longer word realizes its accepted
    // prefix with the loose endpoint rebound, so minimal words are complete
    // for satisfiability — and often finite where the full language is not.
    let mut degree = vec![0usize; vars.len()];
    for (x, y, _) in &atoms {
        degree[*x] += 1;
        if y != x {
            degree[*y] += 1;
        }
    }
    let mut word_lists: Vec<Vec<Vec<AtomSym>>> = Vec::new();
    let mut exhaustive_flags: Vec<bool> = Vec::new();
    let mut looseness: Vec<(bool, bool)> = Vec::new();
    let mut all_exhaustive = true;
    for (x, y, a) in &atoms {
        let nfa = Nfa::compiled(&a.regex);
        // Emptiness short-circuit: an atom whose language is empty refutes
        // the whole component without enumerating sibling atoms.
        if !nfa.useful_states()[nfa.initial()] {
            return CompResult::Unsat;
        }
        let loose_y = x != y && degree[*y] == 1;
        let loose_x = x != y && degree[*x] == 1;
        looseness.push((loose_x, loose_y));
        let (mut words, exhaustive) = if loose_y {
            nfa.enumerate_min_words(budget.max_word_syms, budget.max_words_per_atom)
        } else if loose_x {
            // Prune from the source side: suffix-minimal words are the
            // reversed prefix-minimal words of the reversed regex.
            let (rev_words, ex) = Nfa::compiled(&a.regex.reverse())
                .enumerate_min_words(budget.max_word_syms, budget.max_words_per_atom);
            let words = rev_words
                .into_iter()
                .map(|w| {
                    w.into_iter()
                        .rev()
                        .map(|s| match s {
                            AtomSym::Edge(r) => AtomSym::Edge(r.inv()),
                            node => node,
                        })
                        .collect()
                })
                .collect();
            (words, ex)
        } else {
            nfa.enumerate_words(budget.max_word_syms, budget.max_words_per_atom)
        };
        all_exhaustive &= exhaustive;
        exhaustive_flags.push(exhaustive);
        if words.is_empty() {
            return if exhaustive {
                CompResult::Unsat // the atom's language is empty
            } else {
                CompResult::Unknown(UnknownReason::WordBudget)
            };
        }
        // Drop duplicate words (first occurrence kept, so the search order
        // of the surviving words is unchanged).
        let mut seen_words: FxHashSet<&[AtomSym]> = FxHashSet::default();
        let mut keep = vec![false; words.len()];
        for (i, w) in words.iter().enumerate() {
            keep[i] = seen_words.insert(w.as_slice());
        }
        let mut it = keep.iter();
        words.retain(|_| *it.next().unwrap());
        words.sort_by_key(|w| edge_len(w));
        word_lists.push(words);
    }

    // Would the total-length budget ever prune a combination?
    let max_total: usize =
        word_lists.iter().map(|ws| ws.iter().map(|w| edge_len(w)).max().unwrap_or(0)).sum();
    let total_pruned = max_total > budget.max_total_edge_syms;

    // DFS over word combinations within the total edge budget.
    let mut chosen: Vec<usize> = vec![0; atoms.len()];
    let mut realize_budget: Option<UnknownReason> = None;
    let mut core_cap_hit = false;
    let mut seen_cores: FxHashSet<Vec<(usize, usize, &[AtomSym])>> = FxHashSet::default();
    let sat = search(
        tbox,
        vars.len(),
        &atoms,
        &word_lists,
        budget,
        ctx,
        stats,
        &mut chosen,
        0,
        budget.max_total_edge_syms,
        &mut realize_budget,
        &mut core_cap_hit,
        &mut seen_cores,
    );
    if let Some(core) = sat {
        return CompResult::Sat(core);
    }
    if ctx.uncertain {
        return CompResult::Unknown(UnknownReason::Saturation);
    }
    if all_exhaustive && !total_pruned && !core_cap_hit && realize_budget.is_none() {
        return CompResult::Unsat;
    }
    if let Some(r) = realize_budget {
        return CompResult::Unknown(r);
    }
    if core_cap_hit {
        return CompResult::Unknown(UnknownReason::CoreBudget);
    }

    // Phase 2 — weakened UNSAT certification. For atoms whose enumeration
    // was inexhaustive but which have a loose endpoint, the one-symbol
    // words anchored at the constrained endpoint are *implied* by any
    // longer witness (the witnessing path contains its first/last step, and
    // the loose endpoint rebinds). If even the weakened query is
    // unsatisfiable, so is the original — a sound certificate. A phase-2
    // "Sat" is spurious and is ignored.
    let mut weak_lists: Vec<Vec<Vec<AtomSym>>> = Vec::new();
    for (i, (_, _, a)) in atoms.iter().enumerate() {
        if exhaustive_flags[i] {
            // Phase 1 is done with the exhaustive list; move, don't clone.
            weak_lists.push(std::mem::take(&mut word_lists[i]));
            continue;
        }
        let (loose_x, loose_y) = looseness[i];
        let words = if loose_y {
            anchor_symbols(&Nfa::compiled(&a.regex), false)
        } else if loose_x {
            anchor_symbols(&Nfa::compiled(&a.regex.reverse()), true)
        } else {
            return CompResult::Unknown(infinite_or_word_budget(&atoms));
        };
        weak_lists.push(words);
    }
    let weak_total: usize =
        weak_lists.iter().map(|ws| ws.iter().map(|w| edge_len(w)).max().unwrap_or(0)).sum();
    if weak_total > budget.max_total_edge_syms {
        return CompResult::Unknown(infinite_or_word_budget(&atoms));
    }
    let mut chosen: Vec<usize> = vec![0; atoms.len()];
    let mut realize_budget2: Option<UnknownReason> = None;
    let mut core_cap_hit2 = false;
    let mut seen_cores2: FxHashSet<Vec<(usize, usize, &[AtomSym])>> = FxHashSet::default();
    let spurious_sat = search(
        tbox,
        vars.len(),
        &atoms,
        &weak_lists,
        budget,
        ctx,
        stats,
        &mut chosen,
        0,
        budget.max_total_edge_syms,
        &mut realize_budget2,
        &mut core_cap_hit2,
        &mut seen_cores2,
    );
    if spurious_sat.is_none() && realize_budget2.is_none() && !core_cap_hit2 && !ctx.uncertain {
        CompResult::Unsat
    } else {
        CompResult::Unknown(infinite_or_word_budget(&atoms))
    }
}

/// The one-symbol words anchored at an endpoint: the first symbols of the
/// automaton (useful transitions from the initial state), plus `ε` when the
/// language is nullable. With `invert_back` the symbols are flipped back
/// into source-to-target orientation (used for the reversed automaton).
fn anchor_symbols(nfa: &Nfa, invert_back: bool) -> Vec<Vec<AtomSym>> {
    let useful = nfa.useful_states();
    let mut words: Vec<Vec<AtomSym>> = Vec::new();
    if nfa.is_final(nfa.initial()) {
        words.push(Vec::new());
    }
    for &(sym, q) in nfa.transitions(nfa.initial()) {
        if !useful[q] {
            continue;
        }
        let sym = match (sym, invert_back) {
            (AtomSym::Edge(r), true) => AtomSym::Edge(r.inv()),
            (s, _) => s,
        };
        let w = vec![sym];
        if !words.contains(&w) {
            words.push(w);
        }
    }
    words
}

fn infinite_or_word_budget(atoms: &[(usize, usize, &gts_query::Atom)]) -> UnknownReason {
    if atoms.iter().any(|(_, _, a)| !Nfa::compiled(&a.regex).language_finite()) {
        UnknownReason::InfiniteLanguage
    } else {
        UnknownReason::WordBudget
    }
}

fn edge_len(word: &[AtomSym]) -> usize {
    word.iter().filter(|s| matches!(s, AtomSym::Edge(_))).count()
}

#[allow(clippy::too_many_arguments)]
fn search<'w>(
    tbox: &HornTbox,
    num_vars: usize,
    atoms: &[(usize, usize, &gts_query::Atom)],
    word_lists: &'w [Vec<Vec<AtomSym>>],
    budget: &Budget,
    ctx: &mut RealizeCtx,
    stats: &mut DecideStats,
    chosen: &mut Vec<usize>,
    atom_idx: usize,
    remaining_edges: usize,
    realize_budget: &mut Option<UnknownReason>,
    core_cap_hit: &mut bool,
    seen_cores: &mut FxHashSet<Vec<(usize, usize, &'w [AtomSym])>>,
) -> Option<Graph> {
    if atom_idx == atoms.len() {
        // Canonical form of the candidate: the sorted multiset of
        // (endpoints, word) triples. Two combinations with the same
        // multiset build isomorphic cores (construction only reorders the
        // fresh path nodes), so chasing one settles both.
        let mut key: Vec<(usize, usize, &[AtomSym])> = atoms
            .iter()
            .enumerate()
            .map(|(i, (x, y, _))| (*x, *y, word_lists[i][chosen[i]].as_slice()))
            .collect();
        key.sort_unstable();
        if !seen_cores.insert(key) {
            stats.cores_deduped += 1;
            return None;
        }
        if stats.cores_tried >= budget.max_cores {
            *core_cap_hit = true;
            return None;
        }
        stats.cores_tried += 1;
        return try_core(tbox, num_vars, atoms, word_lists, chosen, ctx, realize_budget);
    }
    for (wi, word) in word_lists[atom_idx].iter().enumerate() {
        let el = edge_len(word);
        if el > remaining_edges {
            break; // words are sorted by edge length
        }
        if *core_cap_hit {
            return None;
        }
        chosen[atom_idx] = wi;
        if let Some(g) = search(
            tbox,
            num_vars,
            atoms,
            word_lists,
            budget,
            ctx,
            stats,
            chosen,
            atom_idx + 1,
            remaining_edges - el,
            realize_budget,
            core_cap_hit,
            seen_cores,
        ) {
            return Some(g);
        }
    }
    None
}

/// Builds the core of Theorem 6.3's proof for one word combination,
/// chases it, and checks extendability of every node.
fn try_core(
    _tbox: &HornTbox,
    num_vars: usize,
    atoms: &[(usize, usize, &gts_query::Atom)],
    word_lists: &[Vec<Vec<AtomSym>>],
    chosen: &[usize],
    ctx: &mut RealizeCtx,
    realize_budget: &mut Option<UnknownReason>,
) -> Option<Graph> {
    let mut core = Core::new();
    let var_nodes: Vec<usize> =
        (0..num_vars.max(1)).map(|_| core.add_node(LabelSet::new())).collect();
    for (i, (x, y, _)) in atoms.iter().enumerate() {
        let word = &word_lists[i][chosen[i]];
        let mut cur = var_nodes[*x];
        for sym in word {
            match sym {
                AtomSym::Node(a) => core.add_label(cur, a.0),
                AtomSym::Edge(r) => {
                    let nxt = core.add_node(LabelSet::new());
                    core.add_sym_edge(cur, *r, nxt);
                    cur = nxt;
                }
            }
        }
        core.merge(cur, var_nodes[*y]);
    }
    if core.chase_in(&mut ctx.types).is_err() {
        return None;
    }
    // Interleave chase and type saturation to a joint fixpoint: labels
    // forced back by mandatory tree witnesses may propagate along core
    // edges and trigger further merges.
    loop {
        let mut grew = false;
        for root in core.roots() {
            let tid = ctx.types.close(core.labels_of(root))?;
            match ctx.types.saturate(tid) {
                None => return None, // dead type: no model has this node
                Some(sat) => {
                    // Interning is canonical, so the saturation changed the
                    // labels iff it changed the type id.
                    if sat != tid {
                        core.set_labels(root, ctx.types.labels(sat).clone());
                        grew = true;
                    }
                }
            }
        }
        if !grew {
            break;
        }
        if core.chase_in(&mut ctx.types).is_err() {
            return None;
        }
    }
    // Every core node must be extendable by realizable witness trees.
    for root in core.roots() {
        let tid = ctx.types.close(core.labels_of(root))?;
        let mut neighbors = Vec::new();
        for (sym, nbr) in core.incident(root) {
            if let Some(t) = ctx.types.close(core.labels_of(nbr)) {
                neighbors.push((sym, t));
            }
        }
        match ctx.node_extendable(tid, &neighbors) {
            Ok(true) => {}
            Ok(false) => return None,
            Err(r) => {
                *realize_budget = Some(r);
                return None;
            }
        }
    }
    let (g, _) = core.to_graph();
    Some(g)
}

fn disjoint_union(graphs: &[Graph]) -> Graph {
    let mut out = Graph::new();
    for g in graphs {
        let offset: Vec<NodeId> = g
            .nodes()
            .map(|n| {
                let id = out.add_node();
                out.add_label_set(id, g.labels(n));
                id
            })
            .collect();
        for (s, l, t) in g.edges() {
            out.add_edge(offset[s.0 as usize], l, offset[t.0 as usize]);
        }
    }
    out
}

/// Checks that every *universal* CI of `tbox` (everything except
/// `K ⊑ ∃R.K'`) holds on `g` — the soundness property of `Sat` cores, used
/// by tests and by debug assertions.
pub fn universal_constraints_hold(tbox: &HornTbox, g: &Graph) -> bool {
    let universal = HornTbox {
        cis: tbox.cis.iter().filter(|ci| !matches!(ci, HornCi::Exists { .. })).cloned().collect(),
    };
    universal.check_graph(g).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_graph::{EdgeLabel, EdgeSym, NodeLabel};
    use gts_query::{Atom, Regex};

    fn sym(i: u32) -> EdgeSym {
        EdgeSym::fwd(EdgeLabel(i))
    }
    fn set(labels: &[u32]) -> LabelSet {
        LabelSet::from_iter(labels.iter().copied())
    }

    fn bool_query(atoms: Vec<Atom>, num_vars: u32) -> C2rpq {
        C2rpq::new(num_vars, vec![], atoms)
    }

    #[test]
    fn empty_query_over_empty_tbox_is_sat() {
        let t = HornTbox::new();
        let q = bool_query(vec![], 0);
        assert!(decide(&t, &q, &Budget::default()).is_sat());
    }

    #[test]
    fn single_edge_query_is_sat() {
        let t = HornTbox::new();
        let q =
            bool_query(vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(EdgeLabel(0)) }], 2);
        let v = decide(&t, &q, &Budget::default());
        match v {
            Verdict::Sat(w) => {
                assert_eq!(w.core.num_nodes(), 2);
                assert_eq!(w.core.num_edges(), 1);
                assert!(universal_constraints_hold(&t, &w.core));
            }
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn empty_regex_atom_is_certified_unsat() {
        let t = HornTbox::new();
        let q = bool_query(vec![Atom { x: Var(0), y: Var(1), regex: Regex::Empty }], 2);
        assert!(decide(&t, &q, &Budget::default()).is_unsat());
    }

    #[test]
    fn node_test_conflicting_with_bottom_is_unsat() {
        // Query: ∃x. A(x); TBox: A ⊑ ⊥.
        let mut t = HornTbox::new();
        t.push(HornCi::Bottom { lhs: set(&[0]) });
        let q =
            bool_query(vec![Atom { x: Var(0), y: Var(0), regex: Regex::node(NodeLabel(0)) }], 1);
        assert!(decide(&t, &q, &Budget::default()).is_unsat());
    }

    #[test]
    fn top_bottom_tbox_makes_everything_unsat_but_empty() {
        // ⊤ ⊑ ⊥: only the empty graph is a model.
        let mut t = HornTbox::new();
        t.push(HornCi::Bottom { lhs: LabelSet::new() });
        // ∃x.⊤ needs one node → unsat.
        let q = bool_query(vec![], 1);
        assert!(decide(&t, &q, &Budget::default()).is_unsat());
        // The empty query is satisfied by the empty graph.
        let q0 = bool_query(vec![], 0);
        assert!(decide(&t, &q0, &Budget::default()).is_sat());
    }

    #[test]
    fn functionality_merge_enables_sat() {
        // r(x,y) ∧ r(x,z) with ∃≤1 r.⊤ is satisfiable (y and z merge).
        let mut t = HornTbox::new();
        t.push(HornCi::AtMostOne { lhs: LabelSet::new(), role: sym(0), rhs: LabelSet::new() });
        let q = bool_query(
            vec![
                Atom { x: Var(0), y: Var(1), regex: Regex::edge(EdgeLabel(0)) },
                Atom { x: Var(0), y: Var(2), regex: Regex::edge(EdgeLabel(0)) },
            ],
            3,
        );
        match decide(&t, &q, &Budget::default()) {
            Verdict::Sat(w) => {
                assert_eq!(w.core.num_nodes(), 2, "y and z must have merged");
                assert!(universal_constraints_hold(&t, &w.core));
            }
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn functionality_merge_cascades_into_unsat() {
        // r(x,y) ∧ A(y) ∧ r(x,z) ∧ B(z), ∃≤1 r.⊤, A⊓B ⊑ ⊥ → unsat.
        let mut t = HornTbox::new();
        t.push(HornCi::AtMostOne { lhs: LabelSet::new(), role: sym(0), rhs: LabelSet::new() });
        t.push(HornCi::Bottom { lhs: set(&[0, 1]) });
        let q = bool_query(
            vec![
                Atom {
                    x: Var(0),
                    y: Var(1),
                    regex: Regex::edge(EdgeLabel(0)).then(Regex::node(NodeLabel(0))),
                },
                Atom {
                    x: Var(0),
                    y: Var(2),
                    regex: Regex::edge(EdgeLabel(0)).then(Regex::node(NodeLabel(1))),
                },
            ],
            3,
        );
        assert!(decide(&t, &q, &Budget::default()).is_unsat());
    }

    #[test]
    fn infinite_language_with_loose_endpoint_is_certified() {
        // (r+)(x,y) with r forbidden: y is loose, so prefix-minimal words
        // ({r}) are exhaustive and the engine certifies UNSAT despite the
        // infinite language.
        let mut t = HornTbox::new();
        t.push(HornCi::NotExists { lhs: LabelSet::new(), role: sym(0), rhs: LabelSet::new() });
        let plus = Regex::edge(EdgeLabel(0)).then(Regex::edge(EdgeLabel(0)).star());
        let q = bool_query(vec![Atom { x: Var(0), y: Var(1), regex: plus }], 2);
        assert!(decide(&t, &q, &Budget::default()).is_unsat());
    }

    #[test]
    fn infinite_language_with_constrained_endpoints_is_unknown() {
        // Pin both endpoints with extra atoms so no pruning applies; the
        // unsatisfiability (r forbidden) is then beyond certification.
        let mut t = HornTbox::new();
        t.push(HornCi::NotExists { lhs: LabelSet::new(), role: sym(0), rhs: LabelSet::new() });
        let plus = Regex::edge(EdgeLabel(0)).then(Regex::edge(EdgeLabel(0)).star());
        let q = bool_query(
            vec![
                Atom { x: Var(0), y: Var(0), regex: Regex::node(NodeLabel(3)) },
                Atom { x: Var(0), y: Var(1), regex: plus.clone() },
                Atom { x: Var(1), y: Var(1), regex: Regex::node(NodeLabel(4)) },
            ],
            2,
        );
        match decide(&t, &q, &Budget::default()) {
            Verdict::Unknown(UnknownReason::InfiniteLanguage) => {}
            other => panic!("expected Unknown(InfiniteLanguage), got {other:?}"),
        }
    }

    #[test]
    fn loose_source_side_pruning_works() {
        // (r*·s)(x,y) with x loose: suffix-minimal words = {s}; with s
        // forbidden the verdict is certified UNSAT.
        let mut t = HornTbox::new();
        t.push(HornCi::NotExists { lhs: LabelSet::new(), role: sym(1), rhs: LabelSet::new() });
        let re = Regex::edge(EdgeLabel(0)).star().then(Regex::edge(EdgeLabel(1)));
        let q = bool_query(
            vec![
                Atom { x: Var(0), y: Var(1), regex: re },
                Atom { x: Var(1), y: Var(1), regex: Regex::node(NodeLabel(3)) },
            ],
            2,
        );
        assert!(decide(&t, &q, &Budget::default()).is_unsat());
    }

    #[test]
    fn finite_language_with_forbidden_edge_is_certified_unsat() {
        let mut t = HornTbox::new();
        t.push(HornCi::NotExists { lhs: LabelSet::new(), role: sym(0), rhs: LabelSet::new() });
        let q =
            bool_query(vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(EdgeLabel(0)) }], 2);
        assert!(decide(&t, &q, &Budget::default()).is_unsat());
    }

    #[test]
    fn requirement_chain_through_core_is_checked() {
        // Query ∃x. A(x); A ⊑ ∃r.A is satisfiable via an infinite chain.
        let mut t = HornTbox::new();
        t.push(HornCi::Exists { lhs: set(&[0]), role: sym(0), rhs: set(&[0]) });
        let q =
            bool_query(vec![Atom { x: Var(0), y: Var(0), regex: Regex::node(NodeLabel(0)) }], 1);
        assert!(decide(&t, &q, &Budget::default()).is_sat());
    }

    #[test]
    fn example_5_5_style_refutation() {
        // The full Example 5.2/5.5 pattern, hand-compiled:
        // labels: 0=A, 1=B_r, 2=B_rs; roles: 0=s, 1=r.
        // Schema: ⊤⊑A, A⊑∃s.A, A⊑∃≤1 s⁻.A.
        // ¬Q:    ⊤⊑∀r.B_r, B_r⊑∀s.B_rs, B_rs⊑∀s.B_rs, B_rs⊑∀r.⊥ (as
        //         B_rs⊓"has outgoing r" — encoded via ∄r.⊤ on B_rs).
        // Completion (cycle reversing): A⊓B_rs ⊑ ∃s⁻.(A⊓B_rs),
        //         A⊓B_rs ⊑ ∃≤1 s.(A⊓B_rs).
        // Query P: ∃x. r(x,x)  — cyclic! (self-loop).
        let s = sym(0);
        let r = sym(1);
        let mut t = HornTbox::new();
        t.push(HornCi::SubAtom { lhs: LabelSet::new(), rhs: NodeLabel(0) });
        t.push(HornCi::Exists { lhs: set(&[0]), role: s, rhs: set(&[0]) });
        t.push(HornCi::AtMostOne { lhs: set(&[0]), role: s.inv(), rhs: set(&[0]) });
        t.push(HornCi::AllValues { lhs: LabelSet::new(), role: r, rhs: set(&[1]) });
        t.push(HornCi::AllValues { lhs: set(&[1]), role: s, rhs: set(&[2]) });
        t.push(HornCi::AllValues { lhs: set(&[2]), role: s, rhs: set(&[2]) });
        t.push(HornCi::NotExists { lhs: set(&[2]), role: r, rhs: LabelSet::new() });
        t.push(HornCi::Exists { lhs: set(&[0, 2]), role: s.inv(), rhs: set(&[0, 2]) });
        t.push(HornCi::AtMostOne { lhs: set(&[0, 2]), role: s, rhs: set(&[0, 2]) });

        let p = bool_query(vec![Atom { x: Var(0), y: Var(0), regex: Regex::sym(r) }], 1);
        // Without the completion CIs, P is satisfiable (infinite s-chain).
        let t_without: HornTbox = HornTbox { cis: t.cis[..7].to_vec() };
        assert!(
            decide(&t_without, &p, &Budget::default()).is_sat(),
            "P must be satisfiable modulo the uncompleted TBox (infinite models)"
        );
        // With the completion, P is certifiably unsatisfiable — the
        // finite-model consequences refute the self-loop (Example 5.5).
        assert!(decide(&t, &p, &Budget::default()).is_unsat());
    }

    #[test]
    fn stats_are_populated() {
        let t = HornTbox::new();
        let q =
            bool_query(vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(EdgeLabel(0)) }], 2);
        let (v, stats) = decide_with_stats(&t, &q, &Budget::default());
        assert!(v.is_sat());
        assert!(stats.cores_tried >= 1);
    }

    #[test]
    fn duplicate_atoms_dedupe_cores() {
        // Two identical atoms: the (w, w') and (w', w) combinations build
        // the same core; the dedup must skip the mirror.
        let t = HornTbox::new();
        let re = Regex::edge(EdgeLabel(0)).or(Regex::edge(EdgeLabel(1)));
        let q = bool_query(
            vec![
                Atom { x: Var(0), y: Var(1), regex: re.clone() },
                Atom { x: Var(0), y: Var(1), regex: re },
            ],
            2,
        );
        let (v, stats) = decide_with_stats(&t, &q, &Budget::default());
        assert!(v.is_sat());
        assert!(stats.cores_tried >= 1);
    }

    #[test]
    fn cached_decide_matches_fresh_decide() {
        let cache = SolverCache::new();
        let mut t = HornTbox::new();
        t.push(HornCi::Exists { lhs: set(&[0]), role: sym(0), rhs: set(&[0]) });
        t.push(HornCi::NotExists { lhs: set(&[1]), role: sym(0), rhs: LabelSet::new() });
        let queries = [
            bool_query(vec![Atom { x: Var(0), y: Var(0), regex: Regex::node(NodeLabel(0)) }], 1),
            bool_query(
                vec![Atom {
                    x: Var(0),
                    y: Var(0),
                    regex: Regex::node(NodeLabel(0)).then(Regex::node(NodeLabel(1))),
                }],
                1,
            ),
            bool_query(vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(EdgeLabel(0)) }], 2),
        ];
        let budget = Budget::default();
        for _ in 0..2 {
            // Twice: the second pass runs fully warm.
            for q in &queries {
                let fresh = decide(&t, q, &budget);
                let (warm, _) = decide_cached(&t, q, &budget, &cache);
                assert_eq!(
                    std::mem::discriminant(&fresh),
                    std::mem::discriminant(&warm),
                    "cached verdict diverged on {q:?}"
                );
            }
        }
        assert!(cache.stats().hits > 0);
    }
}
