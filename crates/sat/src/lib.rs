//! # gts-sat
//!
//! The satisfiability engine of the `gts` workspace: unrestricted (finite
//! or infinite) satisfiability of Boolean C2RPQs modulo Horn-ALCIF
//! TBoxes — the computational core that *Static Analysis of Graph Database
//! Transformations* (PODS 2023) reduces everything to (Theorem 6.1,
//! Appendix E).
//!
//! The implementation follows the proof of the `|p|`-sparse-model property
//! (Theorem 6.3) rather than the paper's nondeterministic skeleton-guessing
//! presentation: candidate cores (query match + witnessing paths) are
//! enumerated and chased deterministically, and the remaining existential
//! obligations are discharged by a coinductive tree-witness check that is
//! the paper's pre-type elimination (Lemma E.5/E.6) restated for Horn
//! TBoxes. See DESIGN.md §3.2 for the complete/certified-answer contract.
//!
//! ```
//! use gts_dl::{HornTbox, HornCi};
//! use gts_graph::{LabelSet, EdgeSym, EdgeLabel, NodeLabel};
//! use gts_query::{C2rpq, Atom, Var, Regex};
//! use gts_sat::{decide, Budget};
//!
//! // A ⊑ ∃r.A is satisfiable together with ∃x. A(x) — by an infinite
//! // chain (a finite model does not exist when each node must be fresh).
//! let mut tbox = HornTbox::new();
//! tbox.push(HornCi::Exists {
//!     lhs: LabelSet::singleton(0),
//!     role: EdgeSym::fwd(EdgeLabel(0)),
//!     rhs: LabelSet::singleton(0),
//! });
//! let query = C2rpq::new(1, vec![], vec![Atom {
//!     x: Var(0), y: Var(0), regex: Regex::node(NodeLabel(0)),
//! }]);
//! assert!(decide(&tbox, &query, &Budget::default()).is_sat());
//! ```

#![warn(missing_docs)]

mod budget;
mod cache;
mod chase;
mod engine;
pub mod portable;
mod realize;
mod types;

pub use budget::{Budget, UnknownReason, Verdict, Witness};
pub use cache::{tbox_fingerprint, OracleStats, SolverCache, SolverCacheStats, SolverHandle};
pub use chase::{ChaseFail, Core};
pub use engine::{
    decide, decide_cached, decide_on, decide_with_stats, universal_constraints_hold, DecideStats,
};
pub use portable::{portable_tbox_key, ImportReport};
pub use realize::{Cand, RealizeCtx, RealizeStats};
pub use types::{TypeId, TypeUniverse};
