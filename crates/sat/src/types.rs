//! Interned node *types*: TBox-closed, consistent label sets.
//!
//! Every node of a candidate model carries a label set closed under the
//! `K ⊑ A` rules of the TBox and not triggering any `K ⊑ ⊥` rule. The
//! engine interns these closed sets so that the realizability fixpoint can
//! key its candidates by small integers.

use gts_dl::HornTbox;
use gts_graph::{FxHashMap, FxHashSet, LabelSet};

/// An interned closed label set.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TypeId(pub u32);

/// Interning table of closed types, with a closure memo and the
/// *saturation* fixpoint (see [`TypeUniverse::saturate`]).
pub struct TypeUniverse<'t> {
    tbox: &'t HornTbox,
    sets: Vec<LabelSet>,
    by_set: FxHashMap<LabelSet, TypeId>,
    closure_memo: FxHashMap<LabelSet, Option<TypeId>>,
    /// Current saturation approximation per type (monotonically growing).
    sat: FxHashMap<TypeId, TypeId>,
    /// Types whose requirements are unfulfillable (no model has a node of
    /// this type).
    dead: FxHashSet<TypeId>,
}

impl<'t> TypeUniverse<'t> {
    /// Creates an empty universe over `tbox`.
    pub fn new(tbox: &'t HornTbox) -> Self {
        TypeUniverse {
            tbox,
            sets: Vec::new(),
            by_set: FxHashMap::default(),
            closure_memo: FxHashMap::default(),
            sat: FxHashMap::default(),
            dead: FxHashSet::default(),
        }
    }

    /// The TBox this universe closes under.
    pub fn tbox(&self) -> &'t HornTbox {
        self.tbox
    }

    /// Closes `seed` under the TBox and interns the result; `None` if the
    /// closure is inconsistent (`K ⊑ ⊥` fires).
    pub fn close(&mut self, seed: &LabelSet) -> Option<TypeId> {
        if let Some(&id) = self.closure_memo.get(seed) {
            return id;
        }
        let closed = self.tbox.closure(seed);
        let id = closed.map(|set| self.intern_closed(set));
        self.closure_memo.insert(seed.clone(), id);
        id
    }

    fn intern_closed(&mut self, set: LabelSet) -> TypeId {
        if let Some(&id) = self.by_set.get(&set) {
            return id;
        }
        let id = TypeId(self.sets.len() as u32);
        self.sets.push(set.clone());
        self.by_set.insert(set, id);
        id
    }

    /// The label set of a type.
    pub fn labels(&self, id: TypeId) -> &LabelSet {
        &self.sets[id.0 as usize]
    }

    /// *Saturates* a type: the least fixpoint adding every label that is
    /// forced on a node of this type in **every** model. A `K ⊑ ∃R.K'`
    /// requirement forces *some* `R`-successor `w ⊇ close(K' ∪ ∀-push)`,
    /// and `∀R⁻`-rules firing on (the saturation of) that minimal witness
    /// push labels back onto the node itself. Returns `None` when the
    /// requirements are unfulfillable (an inconsistent forced witness):
    /// no model contains a node of this type.
    ///
    /// Soundness of the lower bound: any actual witness `w` has at least
    /// the minimal witness's labels, saturation is monotone, and
    /// `propagate` is monotone — so the absorbed push-back is forced.
    pub fn saturate(&mut self, t: TypeId) -> Option<TypeId> {
        self.sat.entry(t).or_insert(t);
        // Global monotone fixpoint over all registered types.
        loop {
            let mut changed = false;
            let originals: Vec<TypeId> = self.sat.keys().copied().collect();
            for orig in originals {
                if self.dead.contains(&orig) {
                    continue;
                }
                let cur = self.sat[&orig];
                let labels = self.labels(cur).clone();
                let mut grown = labels.clone();
                let mut died = false;
                for (role, kp) in self.tbox.requirements(&labels) {
                    let mut seed = self.tbox.propagate(&labels, role);
                    seed.union_with(&kp);
                    let child = match self.close(&seed) {
                        Some(c) => c,
                        None => {
                            died = true;
                            break;
                        }
                    };
                    // Register the child; use its current approximation.
                    self.sat.entry(child).or_insert(child);
                    if self.dead.contains(&child) {
                        died = true;
                        break;
                    }
                    let child_cur = self.sat[&child];
                    let push_back = self.tbox.propagate(self.labels(child_cur), role.inv());
                    grown.union_with(&push_back);
                }
                if died {
                    self.dead.insert(orig);
                    changed = true;
                    continue;
                }
                match self.tbox.closure(&grown) {
                    None => {
                        self.dead.insert(orig);
                        changed = true;
                    }
                    Some(closed) => {
                        if closed != labels {
                            let new_id = self.intern_closed(closed);
                            self.sat.insert(orig, new_id);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        if self.dead.contains(&t) {
            None
        } else {
            Some(self.sat[&t])
        }
    }

    /// Number of interned types.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// `true` iff no types were interned yet.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_dl::HornCi;
    use gts_graph::NodeLabel;

    #[test]
    fn closure_interns_canonically() {
        let mut t = HornTbox::new();
        t.push(HornCi::SubAtom { lhs: LabelSet::singleton(0), rhs: NodeLabel(1) });
        let mut u = TypeUniverse::new(&t);
        let a = u.close(&LabelSet::singleton(0)).unwrap();
        let b = u.close(&LabelSet::from_iter([0, 1])).unwrap();
        assert_eq!(a, b);
        assert_eq!(u.len(), 1);
        assert!(u.labels(a).contains(1));
    }

    #[test]
    fn inconsistent_seed_returns_none() {
        let mut t = HornTbox::new();
        t.push(HornCi::Bottom { lhs: LabelSet::singleton(0) });
        let mut u = TypeUniverse::new(&t);
        assert!(u.close(&LabelSet::singleton(0)).is_none());
        assert!(u.close(&LabelSet::new()).is_some());
        // Memoized second call.
        assert!(u.close(&LabelSet::singleton(0)).is_none());
    }
}
