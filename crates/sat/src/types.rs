//! Interned node *types*: TBox-closed, consistent label sets.
//!
//! Every node of a candidate model carries a label set closed under the
//! `K ⊑ A` rules of the TBox and not triggering any `K ⊑ ⊥` rule. The
//! engine interns these closed sets so that the realizability fixpoint can
//! key its candidates by small integers.
//!
//! The universe *owns* its TBox (behind an [`Arc`]), so it can outlive the
//! `decide` call that built it — this is what lets [`crate::SolverCache`]
//! keep one universe per TBox fingerprint and share interned types,
//! saturation fixpoints, and dead-type verdicts across calls.

use gts_dl::{HornCi, HornTbox};
use gts_graph::{EdgeSym, FxHashMap, FxHashSet, LabelSet};
use std::sync::Arc;

/// CIs of one TBox grouped by kind (and by role where it pays), built once
/// per universe so every rule application scans only the relevant rules
/// instead of the whole CI list. Semantics match the corresponding
/// `HornTbox` methods exactly, including result order (flat lists keep CI
/// order).
#[derive(Clone, Default)]
struct TboxIndex {
    subatoms: Vec<(LabelSet, u32)>,
    bottoms: Vec<LabelSet>,
    allvalues_by_role: FxHashMap<EdgeSym, Vec<(LabelSet, LabelSet)>>,
    exists: Vec<(EdgeSym, LabelSet, LabelSet)>,
    notexists_by_role: FxHashMap<EdgeSym, Vec<(LabelSet, LabelSet)>>,
    atmost: Vec<(EdgeSym, LabelSet, LabelSet)>,
}

impl TboxIndex {
    fn build(tbox: &HornTbox) -> TboxIndex {
        let mut idx = TboxIndex::default();
        for ci in &tbox.cis {
            match ci {
                HornCi::SubAtom { lhs, rhs } => idx.subatoms.push((lhs.clone(), rhs.0)),
                HornCi::Bottom { lhs } => idx.bottoms.push(lhs.clone()),
                HornCi::AllValues { lhs, role, rhs } => {
                    idx.allvalues_by_role.entry(*role).or_default().push((lhs.clone(), rhs.clone()))
                }
                HornCi::Exists { lhs, role, rhs } => {
                    idx.exists.push((*role, lhs.clone(), rhs.clone()))
                }
                HornCi::NotExists { lhs, role, rhs } => {
                    idx.notexists_by_role.entry(*role).or_default().push((lhs.clone(), rhs.clone()))
                }
                HornCi::AtMostOne { lhs, role, rhs } => {
                    idx.atmost.push((*role, lhs.clone(), rhs.clone()))
                }
            }
        }
        idx
    }

    /// `HornTbox::closure` over the index.
    fn closure(&self, seed: &LabelSet) -> Option<LabelSet> {
        let mut cur = seed.clone();
        loop {
            let mut changed = false;
            for (lhs, rhs) in &self.subatoms {
                if lhs.is_subset(&cur) && cur.insert(*rhs) {
                    changed = true;
                }
            }
            if self.bottoms.iter().any(|lhs| lhs.is_subset(&cur)) {
                return None;
            }
            if !changed {
                return Some(cur);
            }
        }
    }

    /// `HornTbox::propagate` over the index.
    fn propagate(&self, src: &LabelSet, role: EdgeSym) -> LabelSet {
        let mut out = LabelSet::new();
        if let Some(rules) = self.allvalues_by_role.get(&role) {
            for (lhs, rhs) in rules {
                if lhs.is_subset(src) {
                    out.union_with(rhs);
                }
            }
        }
        out
    }

    /// `HornTbox::edge_forbidden` over the index.
    fn edge_forbidden(&self, src: &LabelSet, role: EdgeSym, tgt: &LabelSet) -> bool {
        let fwd = self.notexists_by_role.get(&role).is_some_and(|rules| {
            rules.iter().any(|(lhs, rhs)| lhs.is_subset(src) && rhs.is_subset(tgt))
        });
        fwd || self.notexists_by_role.get(&role.inv()).is_some_and(|rules| {
            rules.iter().any(|(lhs, rhs)| lhs.is_subset(tgt) && rhs.is_subset(src))
        })
    }

    /// `HornTbox::requirements` over the index (same dedup and order).
    fn requirements(&self, set: &LabelSet) -> Vec<(EdgeSym, LabelSet)> {
        let mut reqs: Vec<(EdgeSym, LabelSet)> = Vec::new();
        for (role, lhs, rhs) in &self.exists {
            if lhs.is_subset(set) && !reqs.iter().any(|(r, k)| r == role && k == rhs) {
                reqs.push((*role, rhs.clone()));
            }
        }
        reqs
    }

    /// `HornTbox::at_most` over the index (same dedup and order).
    fn at_most(&self, set: &LabelSet) -> Vec<(EdgeSym, LabelSet)> {
        let mut out: Vec<(EdgeSym, LabelSet)> = Vec::new();
        for (role, lhs, rhs) in &self.atmost {
            if lhs.is_subset(set) && !out.iter().any(|(r, k)| r == role && k == rhs) {
                out.push((*role, rhs.clone()));
            }
        }
        out
    }
}

/// An interned closed label set.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TypeId(pub u32);

/// Interning table of closed types, with a closure memo and the
/// *saturation* fixpoint (see [`TypeUniverse::saturate`]).
#[derive(Clone)]
pub struct TypeUniverse {
    tbox: Arc<HornTbox>,
    index: TboxIndex,
    sets: Vec<LabelSet>,
    by_set: FxHashMap<LabelSet, TypeId>,
    closure_memo: FxHashMap<LabelSet, Option<TypeId>>,
    /// Current saturation approximation per type (monotonically growing).
    sat: FxHashMap<TypeId, TypeId>,
    /// Types whose requirements are unfulfillable (no model has a node of
    /// this type).
    dead: FxHashSet<TypeId>,
    /// Per-type `∃`-requirements (`HornTbox::requirements` is a full CI
    /// scan; types are probed repeatedly across calls).
    reqs_memo: FxHashMap<TypeId, Arc<Vec<(gts_graph::EdgeSym, LabelSet)>>>,
    /// Per-type at-most constraints.
    at_most_memo: FxHashMap<TypeId, Arc<Vec<(gts_graph::EdgeSym, LabelSet)>>>,
    /// `HornTbox::propagate` memo over arbitrary (possibly unclosed) label
    /// sets — the chase's hottest operation. Keyed by source set first so
    /// probes hash one set and never clone.
    propagate_memo: FxHashMap<LabelSet, Vec<(gts_graph::EdgeSym, Arc<LabelSet>)>>,
    /// `HornTbox::edge_forbidden` memo, keyed by source set.
    forbidden_memo: FxHashMap<LabelSet, Vec<(gts_graph::EdgeSym, LabelSet, bool)>>,
    /// `HornTbox::at_most` memo over arbitrary label sets.
    at_most_set_memo: FxHashMap<LabelSet, Arc<Vec<(gts_graph::EdgeSym, LabelSet)>>>,
}

impl TypeUniverse {
    /// Creates an empty universe over a clone of `tbox`.
    pub fn new(tbox: &HornTbox) -> Self {
        Self::with_arc(Arc::new(tbox.clone()))
    }

    /// Creates an empty universe sharing `tbox`.
    pub fn with_arc(tbox: Arc<HornTbox>) -> Self {
        let index = TboxIndex::build(&tbox);
        TypeUniverse {
            tbox,
            index,
            sets: Vec::new(),
            by_set: FxHashMap::default(),
            closure_memo: FxHashMap::default(),
            sat: FxHashMap::default(),
            dead: FxHashSet::default(),
            reqs_memo: FxHashMap::default(),
            at_most_memo: FxHashMap::default(),
            propagate_memo: FxHashMap::default(),
            forbidden_memo: FxHashMap::default(),
            at_most_set_memo: FxHashMap::default(),
        }
    }

    /// The TBox this universe closes under.
    pub fn tbox(&self) -> &HornTbox {
        &self.tbox
    }

    /// A shareable reference to the TBox (for callers that need it while
    /// mutating the universe).
    pub fn tbox_arc(&self) -> Arc<HornTbox> {
        Arc::clone(&self.tbox)
    }

    /// Memoized [`HornTbox::requirements`] of a type's label set.
    pub fn requirements_of(&mut self, t: TypeId) -> Arc<Vec<(gts_graph::EdgeSym, LabelSet)>> {
        if let Some(r) = self.reqs_memo.get(&t) {
            return Arc::clone(r);
        }
        let r = Arc::new(self.index.requirements(&self.sets[t.0 as usize]));
        self.reqs_memo.insert(t, Arc::clone(&r));
        r
    }

    /// Memoized [`HornTbox::at_most`] of a type's label set.
    pub fn at_most_of(&mut self, t: TypeId) -> Arc<Vec<(gts_graph::EdgeSym, LabelSet)>> {
        if let Some(r) = self.at_most_memo.get(&t) {
            return Arc::clone(r);
        }
        let r = Arc::new(self.index.at_most(&self.sets[t.0 as usize]));
        self.at_most_memo.insert(t, Arc::clone(&r));
        r
    }

    /// Memoized [`HornTbox::propagate`] over an arbitrary label set.
    pub fn propagate_set(&mut self, set: &LabelSet, role: gts_graph::EdgeSym) -> Arc<LabelSet> {
        if let Some(rows) = self.propagate_memo.get(set) {
            if let Some((_, p)) = rows.iter().find(|(r, _)| *r == role) {
                return Arc::clone(p);
            }
        }
        let p = Arc::new(self.index.propagate(set, role));
        self.propagate_memo.entry(set.clone()).or_default().push((role, Arc::clone(&p)));
        p
    }

    /// Memoized [`HornTbox::edge_forbidden`].
    pub fn edge_forbidden_memo(
        &mut self,
        src: &LabelSet,
        role: gts_graph::EdgeSym,
        tgt: &LabelSet,
    ) -> bool {
        if let Some(rows) = self.forbidden_memo.get(src) {
            if let Some((_, _, b)) = rows.iter().find(|(r, t, _)| *r == role && t == tgt) {
                return *b;
            }
        }
        let b = self.index.edge_forbidden(src, role, tgt);
        self.forbidden_memo.entry(src.clone()).or_default().push((role, tgt.clone(), b));
        b
    }

    /// Memoized [`HornTbox::at_most`] over an arbitrary label set.
    pub fn at_most_set(&mut self, set: &LabelSet) -> Arc<Vec<(gts_graph::EdgeSym, LabelSet)>> {
        if let Some(r) = self.at_most_set_memo.get(set) {
            return Arc::clone(r);
        }
        let r = Arc::new(self.index.at_most(set));
        self.at_most_set_memo.insert(set.clone(), Arc::clone(&r));
        r
    }

    /// Closes `seed` under the TBox and interns the result; `None` if the
    /// closure is inconsistent (`K ⊑ ⊥` fires).
    pub fn close(&mut self, seed: &LabelSet) -> Option<TypeId> {
        if let Some(&id) = self.closure_memo.get(seed) {
            return id;
        }
        let closed = self.index.closure(seed);
        let id = closed.map(|set| self.intern_closed(set));
        self.closure_memo.insert(seed.clone(), id);
        id
    }

    fn intern_closed(&mut self, set: LabelSet) -> TypeId {
        if let Some(&id) = self.by_set.get(&set) {
            return id;
        }
        let id = TypeId(self.sets.len() as u32);
        self.sets.push(set.clone());
        self.by_set.insert(set, id);
        id
    }

    /// The label set of a type.
    pub fn labels(&self, id: TypeId) -> &LabelSet {
        &self.sets[id.0 as usize]
    }

    /// *Saturates* a type: the least fixpoint adding every label that is
    /// forced on a node of this type in **every** model. A `K ⊑ ∃R.K'`
    /// requirement forces *some* `R`-successor `w ⊇ close(K' ∪ ∀-push)`,
    /// and `∀R⁻`-rules firing on (the saturation of) that minimal witness
    /// push labels back onto the node itself. Returns `None` when the
    /// requirements are unfulfillable (an inconsistent forced witness):
    /// no model contains a node of this type.
    ///
    /// Soundness of the lower bound: any actual witness `w` has at least
    /// the minimal witness's labels, saturation is monotone, and
    /// `propagate` is monotone — so the absorbed push-back is forced.
    ///
    /// The per-type result depends only on the TBox and the type itself
    /// (the fixpoint merely amortizes shared children), so cached
    /// saturations replay exactly across `decide` calls.
    ///
    /// Registered types are always at their fixpoint between calls, so a
    /// repeat `saturate` is a hash lookup; a new type runs the fixpoint
    /// over the *new cohort* only (itself plus children registered during
    /// this call). Existing entries cannot be affected: any type whose
    /// requirement-closure child is `c` registered `c` when it was itself
    /// saturated, so a newly registered type is never a child of an
    /// already-saturated one.
    pub fn saturate(&mut self, t: TypeId) -> Option<TypeId> {
        if self.sat.contains_key(&t) {
            return if self.dead.contains(&t) { None } else { Some(self.sat[&t]) };
        }
        // Memo miss: run (and time) the actual fixpoint computation.
        let _span = gts_obs::span("saturate");
        if !gts_obs::enabled() {
            return self.saturate_fixpoint(t);
        }
        let start = std::time::Instant::now();
        let out = self.saturate_fixpoint(t);
        static HIST: std::sync::OnceLock<gts_obs::Histogram> = std::sync::OnceLock::new();
        HIST.get_or_init(|| {
            gts_obs::global().histogram(
                "gts_sat_saturate_micros",
                "Latency of type-saturation fixpoint computations (memo misses)",
                &[],
            )
        })
        .record(start.elapsed().as_micros() as u64);
        out
    }

    fn saturate_fixpoint(&mut self, t: TypeId) -> Option<TypeId> {
        let mut cohort: Vec<TypeId> = vec![t];
        self.sat.insert(t, t);
        loop {
            let mut changed = false;
            let before = cohort.len();
            for idx in 0.. {
                if idx >= cohort.len() {
                    break;
                }
                let orig = cohort[idx];
                if self.dead.contains(&orig) {
                    continue;
                }
                let cur = self.sat[&orig];
                let labels = self.labels(cur).clone();
                let mut grown = labels.clone();
                let mut died = false;
                let reqs = self.requirements_of(cur);
                for (role, kp) in reqs.iter() {
                    let role = *role;
                    let mut seed = (*self.propagate_set(&labels, role)).clone();
                    seed.union_with(kp);
                    let child = match self.close(&seed) {
                        Some(c) => c,
                        None => {
                            died = true;
                            break;
                        }
                    };
                    // Register the child; use its current approximation.
                    if let std::collections::hash_map::Entry::Vacant(e) = self.sat.entry(child) {
                        e.insert(child);
                        cohort.push(child);
                    }
                    if self.dead.contains(&child) {
                        died = true;
                        break;
                    }
                    let child_cur = self.sat[&child];
                    let child_labels = self.labels(child_cur).clone();
                    let push_back = self.propagate_set(&child_labels, role.inv());
                    grown.union_with(&push_back);
                }
                if died {
                    self.dead.insert(orig);
                    changed = true;
                    continue;
                }
                // `cur` is interned (hence closed), so the closure changed
                // the labels iff it changed the type id.
                match self.close(&grown) {
                    None => {
                        self.dead.insert(orig);
                        changed = true;
                    }
                    Some(closed_id) => {
                        if closed_id != cur {
                            self.sat.insert(orig, closed_id);
                            changed = true;
                        }
                    }
                }
            }
            if !changed && cohort.len() == before {
                break;
            }
        }
        if self.dead.contains(&t) {
            None
        } else {
            Some(self.sat[&t])
        }
    }

    /// Every saturation verdict reached so far, as `(type, fixpoint)`
    /// rows; `None` marks a dead type. Every returned row is a final
    /// fixpoint (callers only observe the universe between `saturate`
    /// calls, which drive their whole cohort to convergence).
    pub(crate) fn sat_rows(&self) -> Vec<(TypeId, Option<TypeId>)> {
        self.sat
            .keys()
            .map(|&t| (t, if self.dead.contains(&t) { None } else { Some(self.sat[&t]) }))
            .collect()
    }

    /// Installs an externally computed saturation fixpoint (from a
    /// portable snapshot over the *same* TBox). First verdict wins:
    /// locally computed fixpoints are never overridden.
    pub(crate) fn import_sat_row(&mut self, t: TypeId, sat: Option<TypeId>) {
        if self.sat.contains_key(&t) {
            return;
        }
        match sat {
            Some(s) => {
                self.sat.insert(t, s);
            }
            None => {
                self.sat.insert(t, t);
                self.dead.insert(t);
            }
        }
    }

    /// Number of interned types.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// `true` iff no types were interned yet.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_dl::HornCi;
    use gts_graph::NodeLabel;

    #[test]
    fn closure_interns_canonically() {
        let mut t = HornTbox::new();
        t.push(HornCi::SubAtom { lhs: LabelSet::singleton(0), rhs: NodeLabel(1) });
        let mut u = TypeUniverse::new(&t);
        let a = u.close(&LabelSet::singleton(0)).unwrap();
        let b = u.close(&LabelSet::from_iter([0, 1])).unwrap();
        assert_eq!(a, b);
        assert_eq!(u.len(), 1);
        assert!(u.labels(a).contains(1));
    }

    #[test]
    fn inconsistent_seed_returns_none() {
        let mut t = HornTbox::new();
        t.push(HornCi::Bottom { lhs: LabelSet::singleton(0) });
        let mut u = TypeUniverse::new(&t);
        assert!(u.close(&LabelSet::singleton(0)).is_none());
        assert!(u.close(&LabelSet::new()).is_some());
        // Memoized second call.
        assert!(u.close(&LabelSet::singleton(0)).is_none());
    }

    #[test]
    fn repeat_saturation_is_stable() {
        // A ⊑ ∃r.B, B ⊑ ∀r⁻.C : saturating A absorbs C.
        let mut t = HornTbox::new();
        t.push(HornCi::Exists {
            lhs: LabelSet::singleton(0),
            role: gts_graph::EdgeSym::fwd(gts_graph::EdgeLabel(0)),
            rhs: LabelSet::singleton(1),
        });
        t.push(HornCi::AllValues {
            lhs: LabelSet::singleton(1),
            role: gts_graph::EdgeSym::bwd(gts_graph::EdgeLabel(0)),
            rhs: LabelSet::singleton(2),
        });
        let mut u = TypeUniverse::new(&t);
        let a = u.close(&LabelSet::singleton(0)).unwrap();
        let s1 = u.saturate(a).unwrap();
        assert!(u.labels(s1).contains(2));
        // The converged fast path returns the same answer.
        let s2 = u.saturate(a).unwrap();
        assert_eq!(s1, s2);
    }
}
