//! Coinductive tree-witness realizability — the engine's restatement of the
//! paper's pre-type elimination (Lemma E.5/E.6).
//!
//! A node of type `τ` whose only recorded neighborhood is its parent must
//! fulfil every applicable `K ⊑ ∃R.K'` requirement by pointing at the
//! parent or by spawning fresh children, grouping requirements into shared
//! children when at-most constraints demand it, without violating any
//! `∀`/`∄`/at-most constraint. Children must themselves be realizable —
//! a *greatest* fixpoint, because witness trees may be infinite (finitely
//! branching), which is exactly the unrestricted-satisfiability semantics
//! the cycle-reversing reduction needs.
//!
//! Completeness note (fresh-children-only): in the model surgery of
//! Theorem 6.3, every missing `∃R.K'` witness is added as a *fresh* copy of
//! a witness in the original model, so restricting witness creation to
//! fresh tree children loses no models. Minimal label sets are likewise
//! complete: all constraint kinds of Horn-ALCIF are antitone in extra node
//! labels (extra labels can only trigger more `K ⊑ …` obligations).

use crate::budget::{Budget, UnknownReason};
use crate::types::{TypeId, TypeUniverse};
use gts_graph::{EdgeSym, FxHashMap, FxHashSet, LabelSet};

/// A realizability candidate: a fresh tree node of type `child`, hanging
/// off a `parent`-typed node via the edge `sym_down` (oriented from parent
/// to child).
pub type Cand = (TypeId, EdgeSym, TypeId);

/// One way to discharge a node's requirements: the fresh children to
/// spawn (requirements assigned to existing neighbors need no entry).
type Option_ = Vec<Cand>;

/// Shared realizability context; memoizes candidate verdicts and option
/// sets across the whole `decide` call.
pub struct RealizeCtx<'t> {
    /// Type interner (owns the reference to the TBox).
    pub types: TypeUniverse<'t>,
    /// Set when an option was rejected for reasons the search cannot
    /// guarantee are semantic (merged-witness back-propagation beyond the
    /// parent's saturation) — negative verdicts must then degrade to
    /// `Unknown`.
    pub uncertain: bool,
    budget: Budget,
    status: FxHashMap<Cand, bool>,
    options_memo: FxHashMap<Cand, Vec<Option_>>,
    candidates_seen: usize,
}

impl<'t> RealizeCtx<'t> {
    /// Creates a context over an existing type universe.
    pub fn new(types: TypeUniverse<'t>, budget: Budget) -> Self {
        RealizeCtx {
            types,
            uncertain: false,
            budget,
            status: FxHashMap::default(),
            options_memo: FxHashMap::default(),
            candidates_seen: 0,
        }
    }

    /// Enumerates the ways a node of type `node` with fixed `neighbors`
    /// (existing core neighbors, or the tree parent) can discharge all its
    /// `∃`-requirements. Each returned option lists the fresh children to
    /// spawn; an empty list of options means the node is *not* extendable.
    pub fn extension_options(
        &mut self,
        node: TypeId,
        neighbors: &[(EdgeSym, TypeId)],
    ) -> Result<Vec<Option_>, UnknownReason> {
        let node_labels = self.types.labels(node).clone();
        let reqs = self.types.tbox().requirements(&node_labels);
        let at_most = self.types.tbox().at_most(&node_labels);

        // Baseline at-most counts from the fixed neighborhood; if already
        // violated, nothing helps (core chase should have prevented this).
        let neighbor_count = |role: EdgeSym, k: &LabelSet| {
            neighbors
                .iter()
                .filter(|(s, t)| *s == role && k.is_subset(self.types.labels(*t)))
                .count()
        };
        for (role, k) in &at_most {
            if neighbor_count(*role, k) > 1 {
                return Ok(Vec::new());
            }
        }

        // Requirement choices: an existing satisfying neighbor, or a fresh
        // child group (canonical leader = least requirement index).
        #[derive(Clone, Copy, PartialEq)]
        enum Choice {
            Neighbor,
            Group(usize),
        }
        let neighbor_ok: Vec<bool> = reqs
            .iter()
            .map(|(role, k)| {
                neighbors.iter().any(|(s, t)| s == role && k.is_subset(self.types.labels(*t)))
            })
            .collect();

        let mut options: Vec<Option_> = Vec::new();
        let mut seen_options: FxHashSet<Vec<Cand>> = FxHashSet::default();
        let mut assignment: Vec<Choice> = Vec::new();
        let mut enumerated = 0usize;

        // Depth-first enumeration of canonical assignments.
        #[allow(clippy::too_many_arguments)]
        fn rec(
            ctx: &mut RealizeCtx<'_>,
            node: TypeId,
            node_labels: &LabelSet,
            reqs: &[(EdgeSym, LabelSet)],
            at_most: &[(EdgeSym, LabelSet)],
            neighbors: &[(EdgeSym, TypeId)],
            neighbor_ok: &[bool],
            assignment: &mut Vec<Choice>,
            options: &mut Vec<Option_>,
            seen: &mut FxHashSet<Vec<Cand>>,
            enumerated: &mut usize,
        ) -> Result<(), UnknownReason> {
            if *enumerated >= ctx.budget.max_groupings {
                return Err(UnknownReason::GroupingBudget);
            }
            let i = assignment.len();
            if i == reqs.len() {
                *enumerated += 1;
                // Materialize groups into child candidates.
                let mut children: Vec<Cand> = Vec::new();
                let mut group_types: Vec<(usize, EdgeSym, TypeId)> = Vec::new();
                for leader in 0..reqs.len() {
                    if assignment[leader] != Choice::Group(leader) {
                        continue;
                    }
                    let role = reqs[leader].0;
                    let mut seed = ctx.types.tbox().propagate(node_labels, role);
                    for (j, choice) in assignment.iter().enumerate() {
                        if *choice == Choice::Group(leader) {
                            seed.union_with(&reqs[j].1);
                        }
                    }
                    let child = match ctx.types.close(&seed) {
                        Some(t) => t,
                        None => return Ok(()), // inconsistent child: option dies
                    };
                    // Saturate: labels forced back by the child's own
                    // mandatory witnesses are part of its type.
                    let child = match ctx.types.saturate(child) {
                        Some(t) => t,
                        None => return Ok(()), // dead type: option dies
                    };
                    let child_labels = ctx.types.labels(child).clone();
                    // Local edge consistency. ∄-violations are semantic;
                    // a failing back-propagation check can only happen for
                    // merged witnesses beyond the parent's saturation, so
                    // rejection there is flagged as uncertain.
                    if ctx.types.tbox().edge_forbidden(node_labels, role, &child_labels) {
                        return Ok(());
                    }
                    if !ctx.types.tbox().propagate(&child_labels, role.inv()).is_subset(node_labels)
                    {
                        ctx.uncertain = true;
                        return Ok(());
                    }
                    group_types.push((leader, role, child));
                    children.push((child, role, node));
                }
                // At-most validation across neighbors + fresh children.
                for (role, k) in at_most {
                    let mut count = neighbors
                        .iter()
                        .filter(|(s, t)| s == role && k.is_subset(ctx.types.labels(*t)))
                        .count();
                    count += group_types
                        .iter()
                        .filter(|(_, r, c)| r == role && k.is_subset(ctx.types.labels(*c)))
                        .count();
                    if count > 1 {
                        return Ok(());
                    }
                }
                children.sort();
                children.dedup();
                if seen.insert(children.clone()) {
                    options.push(children);
                }
                return Ok(());
            }
            // Choice 1: an existing neighbor satisfies requirement i.
            if neighbor_ok[i] {
                assignment.push(Choice::Neighbor);
                rec(
                    ctx,
                    node,
                    node_labels,
                    reqs,
                    at_most,
                    neighbors,
                    neighbor_ok,
                    assignment,
                    options,
                    seen,
                    enumerated,
                )?;
                assignment.pop();
            }
            // Choice 2: join an existing group with the same role.
            for leader in 0..i {
                if assignment[leader] == Choice::Group(leader) && reqs[leader].0 == reqs[i].0 {
                    assignment.push(Choice::Group(leader));
                    rec(
                        ctx,
                        node,
                        node_labels,
                        reqs,
                        at_most,
                        neighbors,
                        neighbor_ok,
                        assignment,
                        options,
                        seen,
                        enumerated,
                    )?;
                    assignment.pop();
                }
            }
            // Choice 3: start a fresh group.
            assignment.push(Choice::Group(i));
            rec(
                ctx,
                node,
                node_labels,
                reqs,
                at_most,
                neighbors,
                neighbor_ok,
                assignment,
                options,
                seen,
                enumerated,
            )?;
            assignment.pop();
            Ok(())
        }

        rec(
            self,
            node,
            &node_labels,
            &reqs,
            &at_most,
            neighbors,
            &neighbor_ok,
            &mut assignment,
            &mut options,
            &mut seen_options,
            &mut enumerated,
        )?;
        Ok(options)
    }

    fn options_of(&mut self, cand: Cand) -> Result<Vec<Option_>, UnknownReason> {
        if let Some(opts) = self.options_memo.get(&cand) {
            return Ok(opts.clone());
        }
        let (child, sym_down, parent) = cand;
        let neighbors = [(sym_down.inv(), parent)];
        let opts = self.extension_options(child, &neighbors)?;
        self.options_memo.insert(cand, opts.clone());
        Ok(opts)
    }

    /// Decides whether `cand` can root an infinite witness tree — the
    /// greatest fixpoint over the dependency-closed candidate set.
    pub fn realizable(&mut self, cand: Cand) -> Result<bool, UnknownReason> {
        if let Some(&v) = self.status.get(&cand) {
            return Ok(v);
        }
        // Phase A: discover the dependency closure of undecided candidates.
        let mut discovered: FxHashSet<Cand> = FxHashSet::default();
        let mut frontier = vec![cand];
        discovered.insert(cand);
        while let Some(c) = frontier.pop() {
            self.candidates_seen += 1;
            if self.candidates_seen > self.budget.max_candidates {
                return Err(UnknownReason::CandidateBudget);
            }
            let opts = self.options_of(c)?;
            for opt in &opts {
                for &dep in opt {
                    if !self.status.contains_key(&dep) && discovered.insert(dep) {
                        frontier.push(dep);
                    }
                }
            }
        }
        // Phase B: greatest-fixpoint elimination on the discovered set.
        let mut alive: FxHashMap<Cand, bool> = discovered.iter().map(|&c| (c, true)).collect();
        loop {
            let mut changed = false;
            for &c in &discovered {
                if !alive[&c] {
                    continue;
                }
                let opts = self.options_of(c)?;
                let ok = opts.iter().any(|opt| {
                    opt.iter()
                        .all(|dep| self.status.get(dep).copied().unwrap_or_else(|| alive[dep]))
                });
                if !ok {
                    alive.insert(c, false);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for (c, v) in alive {
            self.status.insert(c, v);
        }
        Ok(self.status[&cand])
    }

    /// Decides whether a *core* node of type `node` with the given fixed
    /// core neighborhood can have all its remaining requirements fulfilled
    /// by realizable witness trees.
    pub fn node_extendable(
        &mut self,
        node: TypeId,
        neighbors: &[(EdgeSym, TypeId)],
    ) -> Result<bool, UnknownReason> {
        let opts = self.extension_options(node, neighbors)?;
        for opt in opts {
            let mut all_ok = true;
            for dep in &opt {
                if !self.realizable(*dep)? {
                    all_ok = false;
                    break;
                }
            }
            if all_ok {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_dl::{HornCi, HornTbox};
    use gts_graph::EdgeLabel;

    fn sym(i: u32) -> EdgeSym {
        EdgeSym::fwd(EdgeLabel(i))
    }
    fn set(labels: &[u32]) -> LabelSet {
        LabelSet::from_iter(labels.iter().copied())
    }

    /// A ⊑ ∃r.A — realizable by an infinite chain (coinduction).
    #[test]
    fn infinite_chain_is_realizable() {
        let mut t = HornTbox::new();
        t.push(HornCi::Exists { lhs: set(&[0]), role: sym(0), rhs: set(&[0]) });
        let mut ctx = RealizeCtx::new(TypeUniverse::new(&t), Budget::default());
        let a = ctx.types.close(&set(&[0])).unwrap();
        let cand = (a, sym(0), a);
        assert!(ctx.realizable(cand).unwrap());
        assert!(ctx.node_extendable(a, &[]).unwrap());
    }

    /// A ⊑ ∃r.B, B ⊑ ⊥ — not realizable: the required child is
    /// inconsistent.
    #[test]
    fn inconsistent_witness_fails() {
        let mut t = HornTbox::new();
        t.push(HornCi::Exists { lhs: set(&[0]), role: sym(0), rhs: set(&[1]) });
        t.push(HornCi::Bottom { lhs: set(&[1]) });
        let mut ctx = RealizeCtx::new(TypeUniverse::new(&t), Budget::default());
        let a = ctx.types.close(&set(&[0])).unwrap();
        assert!(!ctx.node_extendable(a, &[]).unwrap());
    }

    /// A ⊑ ∃r.B with an existing B-neighbor: satisfied without children.
    #[test]
    fn neighbor_satisfies_requirement() {
        let mut t = HornTbox::new();
        t.push(HornCi::Exists { lhs: set(&[0]), role: sym(0), rhs: set(&[1]) });
        t.push(HornCi::Bottom { lhs: set(&[1, 2]) }); // irrelevant noise
        let mut ctx = RealizeCtx::new(TypeUniverse::new(&t), Budget::default());
        let a = ctx.types.close(&set(&[0])).unwrap();
        let b = ctx.types.close(&set(&[1])).unwrap();
        assert!(ctx.node_extendable(a, &[(sym(0), b)]).unwrap());
    }

    /// Example 5.5's refutation pattern: the child needs an s⁻-witness that
    /// the parent cannot provide and at-most-1 forbids duplicating.
    #[test]
    fn at_most_blocks_second_parentlike_child() {
        // Labels: 0 = A, 1 = B (the "B_{r·s+}" marker).
        // A ⊑ ∃s.A            (schema: outgoing s-edge)
        // A⊓B ⊑ ∃s⁻.(A⊓B)     (completion: reversed cycle)
        // A ⊑ ∃≤1 s⁻.A        (schema: at most one incoming s)
        // A ⊑ ∀s.B            (marker propagation)
        let s = sym(0);
        let mut t = HornTbox::new();
        t.push(HornCi::Exists { lhs: set(&[0]), role: s, rhs: set(&[0]) });
        t.push(HornCi::Exists { lhs: set(&[0, 1]), role: s.inv(), rhs: set(&[0, 1]) });
        t.push(HornCi::AtMostOne { lhs: set(&[0]), role: s.inv(), rhs: set(&[0]) });
        t.push(HornCi::AllValues { lhs: set(&[0]), role: s, rhs: set(&[1]) });
        let mut ctx = RealizeCtx::new(TypeUniverse::new(&t), Budget::default());
        let a = ctx.types.close(&set(&[0])).unwrap();
        let ab = ctx.types.close(&set(&[0, 1])).unwrap();
        // The child {A,B} with parent {A} via s cannot be realized: its
        // ∃s⁻.(A⊓B) needs a second incoming-s neighbor, but the parent
        // already occupies the unique incoming-s slot.
        assert!(!ctx.realizable((ab, s, a)).unwrap());
        // Hence an {A}-node with no neighborhood is not extendable either:
        // its only option spawns exactly that child.
        assert!(!ctx.node_extendable(a, &[]).unwrap());
        // But {A,B} hanging off an {A,B} parent IS realizable (the parent
        // provides the s⁻-witness, the chain continues downward).
        assert!(ctx.realizable((ab, s, ab)).unwrap());
    }

    /// Two requirements with the same role can share one child when the
    /// merged child type is consistent.
    #[test]
    fn requirement_grouping_merges_children() {
        // A ⊑ ∃r.B, A ⊑ ∃r.C, A ⊑ ∃≤1 r.⊤ — forces B and C into one child.
        let mut t = HornTbox::new();
        t.push(HornCi::Exists { lhs: set(&[0]), role: sym(0), rhs: set(&[1]) });
        t.push(HornCi::Exists { lhs: set(&[0]), role: sym(0), rhs: set(&[2]) });
        t.push(HornCi::AtMostOne { lhs: set(&[0]), role: sym(0), rhs: LabelSet::new() });
        let mut ctx = RealizeCtx::new(TypeUniverse::new(&t), Budget::default());
        let a = ctx.types.close(&set(&[0])).unwrap();
        assert!(ctx.node_extendable(a, &[]).unwrap());

        // Now make the merge inconsistent: B ⊓ C ⊑ ⊥.
        let mut t2 = t.clone();
        t2.push(HornCi::Bottom { lhs: set(&[1, 2]) });
        let mut ctx2 = RealizeCtx::new(TypeUniverse::new(&t2), Budget::default());
        let a2 = ctx2.types.close(&set(&[0])).unwrap();
        assert!(!ctx2.node_extendable(a2, &[]).unwrap());
    }

    #[test]
    fn no_requirements_is_trivially_extendable() {
        let t = HornTbox::new();
        let mut ctx = RealizeCtx::new(TypeUniverse::new(&t), Budget::default());
        let top = ctx.types.close(&LabelSet::new()).unwrap();
        assert!(ctx.node_extendable(top, &[]).unwrap());
    }
}
