//! Coinductive tree-witness realizability — the engine's restatement of the
//! paper's pre-type elimination (Lemma E.5/E.6).
//!
//! A node of type `τ` whose only recorded neighborhood is its parent must
//! fulfil every applicable `K ⊑ ∃R.K'` requirement by pointing at the
//! parent or by spawning fresh children, grouping requirements into shared
//! children when at-most constraints demand it, without violating any
//! `∀`/`∄`/at-most constraint. Children must themselves be realizable —
//! a *greatest* fixpoint, because witness trees may be infinite (finitely
//! branching), which is exactly the unrestricted-satisfiability semantics
//! the cycle-reversing reduction needs.
//!
//! Completeness note (fresh-children-only): in the model surgery of
//! Theorem 6.3, every missing `∃R.K'` witness is added as a *fresh* copy of
//! a witness in the original model, so restricting witness creation to
//! fresh tree children loses no models. Minimal label sets are likewise
//! complete: all constraint kinds of Horn-ALCIF are antitone in extra node
//! labels (extra labels can only trigger more `K ⊑ …` obligations).
//!
//! ## Persistence across `decide` calls
//!
//! The candidate verdicts (`status`) and option sets (`options_memo`) are
//! facts about `(TBox, candidate)` alone, so a [`crate::SolverCache`] can
//! keep one `RealizeCtx` per TBox and replay them across calls. Two pieces
//! of bookkeeping make the replay *exact* (verdict-for-verdict equal to a
//! fresh context):
//!
//! * every memo entry carries a **taint bit** recording whether its
//!   original computation raised the `uncertain` flag; replaying a tainted
//!   entry re-raises the flag, so a warm call degrades to `Unknown`
//!   exactly when a cold call would;
//! * the per-call state (`uncertain`, the candidate budget counter) is
//!   reset by [`RealizeCtx::begin_call`], while the memo tables persist.

use crate::budget::{Budget, UnknownReason};
use crate::types::{TypeId, TypeUniverse};
use gts_graph::{EdgeSym, FxHashMap, FxHashSet, LabelSet};

/// A realizability candidate: a fresh tree node of type `child`, hanging
/// off a `parent`-typed node via the edge `sym_down` (oriented from parent
/// to child).
pub type Cand = (TypeId, EdgeSym, TypeId);

/// One way to discharge a node's requirements: the fresh children to
/// spawn (requirements assigned to existing neighbors need no entry).
type Option_ = Vec<Cand>;

/// A memoized extendability row: sorted neighborhood, verdict, taint.
type ExtendableRow = (Vec<(EdgeSym, TypeId)>, bool, bool);

/// Memo-effectiveness counters of one [`RealizeCtx`] (cumulative over its
/// lifetime, which spans every `decide` call sharing the context).
#[derive(Clone, Copy, Debug, Default)]
pub struct RealizeStats {
    /// Candidate verdicts answered from the `status` memo.
    pub status_hits: u64,
    /// Candidate verdicts computed by the greatest fixpoint.
    pub status_misses: u64,
    /// Option sets answered from the memo.
    pub options_hits: u64,
    /// Option sets enumerated.
    pub options_misses: u64,
}

/// Shared realizability context; memoizes candidate verdicts and option
/// sets across every `decide` call over the same TBox.
#[derive(Clone)]
pub struct RealizeCtx {
    /// Type interner (owns the TBox).
    pub types: TypeUniverse,
    /// Set when an option was rejected for reasons the search cannot
    /// guarantee are semantic (merged-witness back-propagation beyond the
    /// parent's saturation) — negative verdicts must then degrade to
    /// `Unknown`. Per-call state; reset by [`RealizeCtx::begin_call`].
    pub uncertain: bool,
    budget: Budget,
    /// Candidate verdict and its taint: `true` in the second slot means a
    /// fresh recomputation of this verdict would raise `uncertain`.
    pub(crate) status: FxHashMap<Cand, (bool, bool)>,
    /// Option sets with the taint of their enumeration.
    options_memo: FxHashMap<Cand, (Vec<Option_>, bool)>,
    /// Extendability of a type given a fixed core neighborhood (sorted,
    /// so the key is canonical), with taint. Keyed per type first so
    /// probes hash one `TypeId` and scan a short list.
    pub(crate) extendable_memo: FxHashMap<TypeId, Vec<ExtendableRow>>,
    candidates_seen: usize,
    stats: RealizeStats,
}

impl RealizeCtx {
    /// Creates a context over an existing type universe.
    pub fn new(types: TypeUniverse, budget: Budget) -> Self {
        RealizeCtx {
            types,
            uncertain: false,
            budget,
            status: FxHashMap::default(),
            options_memo: FxHashMap::default(),
            extendable_memo: FxHashMap::default(),
            candidates_seen: 0,
            stats: RealizeStats::default(),
        }
    }

    /// Resets the per-call state (the `uncertain` flag and the candidate
    /// budget counter) while keeping every memo table. Must be called at
    /// the start of each `decide` sharing this context; `budget` becomes
    /// the call's budget.
    pub fn begin_call(&mut self, budget: Budget) {
        self.uncertain = false;
        self.candidates_seen = 0;
        self.budget = budget;
    }

    /// Cumulative memo counters.
    pub fn stats(&self) -> RealizeStats {
        self.stats
    }

    /// Enumerates the ways a node of type `node` with fixed `neighbors`
    /// (existing core neighbors, or the tree parent) can discharge all its
    /// `∃`-requirements. Each returned option lists the fresh children to
    /// spawn; an empty list of options means the node is *not* extendable.
    pub fn extension_options(
        &mut self,
        node: TypeId,
        neighbors: &[(EdgeSym, TypeId)],
    ) -> Result<Vec<Option_>, UnknownReason> {
        let node_labels = self.types.labels(node).clone();
        let reqs = self.types.requirements_of(node);
        let at_most = self.types.at_most_of(node);

        // Baseline at-most counts from the fixed neighborhood; if already
        // violated, nothing helps (core chase should have prevented this).
        for (role, k) in at_most.iter() {
            let count = neighbors
                .iter()
                .filter(|(s, t)| s == role && k.is_subset(self.types.labels(*t)))
                .count();
            if count > 1 {
                return Ok(Vec::new());
            }
        }

        // Requirement choices: an existing satisfying neighbor, or a fresh
        // child group (canonical leader = least requirement index).
        #[derive(Clone, Copy, PartialEq)]
        enum Choice {
            Neighbor,
            Group(usize),
        }
        let neighbor_ok: Vec<bool> = reqs
            .iter()
            .map(|(role, k)| {
                neighbors.iter().any(|(s, t)| s == role && k.is_subset(self.types.labels(*t)))
            })
            .collect();

        let mut options: Vec<Option_> = Vec::new();
        let mut seen_options: FxHashSet<Vec<Cand>> = FxHashSet::default();
        let mut assignment: Vec<Choice> = Vec::new();
        let mut enumerated = 0usize;

        // Depth-first enumeration of canonical assignments.
        #[allow(clippy::too_many_arguments)]
        fn rec(
            ctx: &mut RealizeCtx,
            node: TypeId,
            node_labels: &LabelSet,
            reqs: &[(EdgeSym, LabelSet)],
            at_most: &[(EdgeSym, LabelSet)],
            neighbors: &[(EdgeSym, TypeId)],
            neighbor_ok: &[bool],
            assignment: &mut Vec<Choice>,
            options: &mut Vec<Option_>,
            seen: &mut FxHashSet<Vec<Cand>>,
            enumerated: &mut usize,
        ) -> Result<(), UnknownReason> {
            if *enumerated >= ctx.budget.max_groupings {
                return Err(UnknownReason::GroupingBudget);
            }
            let i = assignment.len();
            if i == reqs.len() {
                *enumerated += 1;
                // Materialize groups into child candidates.
                let mut children: Vec<Cand> = Vec::new();
                let mut group_types: Vec<(usize, EdgeSym, TypeId)> = Vec::new();
                for leader in 0..reqs.len() {
                    if assignment[leader] != Choice::Group(leader) {
                        continue;
                    }
                    let role = reqs[leader].0;
                    let mut seed = (*ctx.types.propagate_set(node_labels, role)).clone();
                    for (j, choice) in assignment.iter().enumerate() {
                        if *choice == Choice::Group(leader) {
                            seed.union_with(&reqs[j].1);
                        }
                    }
                    let child = match ctx.types.close(&seed) {
                        Some(t) => t,
                        None => return Ok(()), // inconsistent child: option dies
                    };
                    // Saturate: labels forced back by the child's own
                    // mandatory witnesses are part of its type.
                    let child = match ctx.types.saturate(child) {
                        Some(t) => t,
                        None => return Ok(()), // dead type: option dies
                    };
                    let child_labels = ctx.types.labels(child).clone();
                    // Local edge consistency. ∄-violations are semantic;
                    // a failing back-propagation check can only happen for
                    // merged witnesses beyond the parent's saturation, so
                    // rejection there is flagged as uncertain.
                    if ctx.types.edge_forbidden_memo(node_labels, role, &child_labels) {
                        return Ok(());
                    }
                    if !ctx.types.propagate_set(&child_labels, role.inv()).is_subset(node_labels) {
                        ctx.uncertain = true;
                        return Ok(());
                    }
                    group_types.push((leader, role, child));
                    children.push((child, role, node));
                }
                // At-most validation across neighbors + fresh children.
                for (role, k) in at_most {
                    let mut count = neighbors
                        .iter()
                        .filter(|(s, t)| s == role && k.is_subset(ctx.types.labels(*t)))
                        .count();
                    count += group_types
                        .iter()
                        .filter(|(_, r, c)| r == role && k.is_subset(ctx.types.labels(*c)))
                        .count();
                    if count > 1 {
                        return Ok(());
                    }
                }
                children.sort();
                children.dedup();
                if seen.insert(children.clone()) {
                    options.push(children);
                }
                return Ok(());
            }
            // Choice 1: an existing neighbor satisfies requirement i.
            if neighbor_ok[i] {
                assignment.push(Choice::Neighbor);
                rec(
                    ctx,
                    node,
                    node_labels,
                    reqs,
                    at_most,
                    neighbors,
                    neighbor_ok,
                    assignment,
                    options,
                    seen,
                    enumerated,
                )?;
                assignment.pop();
            }
            // Choice 2: join an existing group with the same role.
            for leader in 0..i {
                if assignment[leader] == Choice::Group(leader) && reqs[leader].0 == reqs[i].0 {
                    assignment.push(Choice::Group(leader));
                    rec(
                        ctx,
                        node,
                        node_labels,
                        reqs,
                        at_most,
                        neighbors,
                        neighbor_ok,
                        assignment,
                        options,
                        seen,
                        enumerated,
                    )?;
                    assignment.pop();
                }
            }
            // Choice 3: start a fresh group.
            assignment.push(Choice::Group(i));
            rec(
                ctx,
                node,
                node_labels,
                reqs,
                at_most,
                neighbors,
                neighbor_ok,
                assignment,
                options,
                seen,
                enumerated,
            )?;
            assignment.pop();
            Ok(())
        }

        rec(
            self,
            node,
            &node_labels,
            &reqs,
            &at_most,
            neighbors,
            &neighbor_ok,
            &mut assignment,
            &mut options,
            &mut seen_options,
            &mut enumerated,
        )?;
        Ok(options)
    }

    /// Memoized option sets of a tree candidate. On a hit, the entry's
    /// taint re-raises `uncertain` exactly as recomputing it would.
    fn options_of(&mut self, cand: Cand) -> Result<Vec<Option_>, UnknownReason> {
        if let Some((opts, taint)) = self.options_memo.get(&cand) {
            self.stats.options_hits += 1;
            self.uncertain |= *taint;
            return Ok(opts.clone());
        }
        self.stats.options_misses += 1;
        let (child, sym_down, parent) = cand;
        let neighbors = [(sym_down.inv(), parent)];
        let saved = self.uncertain;
        self.uncertain = false;
        let result = self.extension_options(child, &neighbors);
        let raised = self.uncertain;
        self.uncertain = saved || raised;
        let opts = result?;
        self.options_memo.insert(cand, (opts.clone(), raised));
        Ok(opts)
    }

    /// The taint an options-memo entry recorded (used by the taint
    /// fixpoint; entries exist for every discovered candidate).
    fn option_taint(&self, cand: Cand) -> bool {
        self.options_memo.get(&cand).map(|(_, t)| *t).unwrap_or(false)
    }

    /// Decides whether `cand` can root an infinite witness tree — the
    /// greatest fixpoint over the dependency-closed candidate set.
    pub fn realizable(&mut self, cand: Cand) -> Result<bool, UnknownReason> {
        if let Some(&(v, taint)) = self.status.get(&cand) {
            self.stats.status_hits += 1;
            self.uncertain |= taint;
            return Ok(v);
        }
        self.stats.status_misses += 1;
        // Phase A: discover the dependency closure of undecided candidates.
        // Crossing into already-decided candidates replays their taint (a
        // fresh context would recompute their whole subtree, raising
        // `uncertain` iff the taint is set).
        let mut discovered: FxHashSet<Cand> = FxHashSet::default();
        let mut frontier = vec![cand];
        discovered.insert(cand);
        while let Some(c) = frontier.pop() {
            self.candidates_seen += 1;
            if self.candidates_seen > self.budget.max_candidates {
                return Err(UnknownReason::CandidateBudget);
            }
            let opts = self.options_of(c)?;
            for opt in &opts {
                for &dep in opt {
                    if let Some(&(_, taint)) = self.status.get(&dep) {
                        self.uncertain |= taint;
                    } else if discovered.insert(dep) {
                        frontier.push(dep);
                    }
                }
            }
        }
        // Phase B: greatest-fixpoint elimination on the discovered set.
        let mut alive: FxHashMap<Cand, bool> = discovered.iter().map(|&c| (c, true)).collect();
        loop {
            let mut changed = false;
            for &c in &discovered {
                if !alive[&c] {
                    continue;
                }
                let opts = self.options_of(c)?;
                let ok = opts.iter().any(|opt| {
                    opt.iter().all(|dep| {
                        self.status.get(dep).map(|&(v, _)| v).unwrap_or_else(|| alive[dep])
                    })
                });
                if !ok {
                    alive.insert(c, false);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Taint fixpoint: a candidate's verdict is tainted iff uncertainty
        // was raised anywhere in its own dependency closure — the exact
        // condition under which a fresh context deciding *it* would end
        // uncertain. (Least fixpoint of reachability-OR over the option
        // graph, with already-decided boundary taints folded in.)
        let mut taint: FxHashMap<Cand, bool> =
            discovered.iter().map(|&c| (c, self.option_taint(c))).collect();
        let dep_lists: Vec<(Cand, Vec<Cand>)> = discovered
            .iter()
            .map(|&c| {
                let deps = self
                    .options_memo
                    .get(&c)
                    .map(|(opts, _)| opts.iter().flatten().copied().collect())
                    .unwrap_or_default();
                (c, deps)
            })
            .collect();
        loop {
            let mut changed = false;
            for (c, deps) in &dep_lists {
                if taint[c] {
                    continue;
                }
                let dep_taint = deps.iter().any(|dep| {
                    taint
                        .get(dep)
                        .copied()
                        .unwrap_or_else(|| self.status.get(dep).map(|&(_, t)| t).unwrap_or(false))
                });
                if dep_taint {
                    taint.insert(*c, true);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for (c, v) in alive {
            self.status.insert(c, (v, taint[&c]));
        }
        Ok(self.status[&cand].0)
    }

    /// Decides whether a *core* node of type `node` with the given fixed
    /// core neighborhood can have all its remaining requirements fulfilled
    /// by realizable witness trees.
    pub fn node_extendable(
        &mut self,
        node: TypeId,
        neighbors: &[(EdgeSym, TypeId)],
    ) -> Result<bool, UnknownReason> {
        // Extendability is a pure function of (type, neighborhood
        // multiset) — the checks below are order-insensitive — so the key
        // is the sorted neighbor list. Memoized with taint like every
        // other verdict.
        let mut key: Vec<(EdgeSym, TypeId)> = neighbors.to_vec();
        key.sort_unstable();
        if let Some(rows) = self.extendable_memo.get(&node) {
            if let Some((_, v, taint)) = rows.iter().find(|(n, _, _)| *n == key) {
                self.stats.status_hits += 1;
                self.uncertain |= *taint;
                return Ok(*v);
            }
        }
        self.stats.status_misses += 1;
        let saved = self.uncertain;
        self.uncertain = false;
        let result = self.node_extendable_uncached(node, neighbors);
        let raised = self.uncertain;
        self.uncertain = saved || raised;
        if let Ok(v) = result {
            self.extendable_memo.entry(node).or_default().push((key, v, raised));
        }
        result
    }

    fn node_extendable_uncached(
        &mut self,
        node: TypeId,
        neighbors: &[(EdgeSym, TypeId)],
    ) -> Result<bool, UnknownReason> {
        let opts = self.extension_options(node, neighbors)?;
        for opt in opts {
            let mut all_ok = true;
            for dep in &opt {
                if !self.realizable(*dep)? {
                    all_ok = false;
                    break;
                }
            }
            if all_ok {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_dl::{HornCi, HornTbox};
    use gts_graph::EdgeLabel;

    fn sym(i: u32) -> EdgeSym {
        EdgeSym::fwd(EdgeLabel(i))
    }
    fn set(labels: &[u32]) -> LabelSet {
        LabelSet::from_iter(labels.iter().copied())
    }

    /// A ⊑ ∃r.A — realizable by an infinite chain (coinduction).
    #[test]
    fn infinite_chain_is_realizable() {
        let mut t = HornTbox::new();
        t.push(HornCi::Exists { lhs: set(&[0]), role: sym(0), rhs: set(&[0]) });
        let mut ctx = RealizeCtx::new(TypeUniverse::new(&t), Budget::default());
        let a = ctx.types.close(&set(&[0])).unwrap();
        let cand = (a, sym(0), a);
        assert!(ctx.realizable(cand).unwrap());
        assert!(ctx.node_extendable(a, &[]).unwrap());
        // The second query hit the verdict memo.
        assert!(ctx.stats().status_hits > 0);
    }

    /// A ⊑ ∃r.B, B ⊑ ⊥ — not realizable: the required child is
    /// inconsistent.
    #[test]
    fn inconsistent_witness_fails() {
        let mut t = HornTbox::new();
        t.push(HornCi::Exists { lhs: set(&[0]), role: sym(0), rhs: set(&[1]) });
        t.push(HornCi::Bottom { lhs: set(&[1]) });
        let mut ctx = RealizeCtx::new(TypeUniverse::new(&t), Budget::default());
        let a = ctx.types.close(&set(&[0])).unwrap();
        assert!(!ctx.node_extendable(a, &[]).unwrap());
    }

    /// A ⊑ ∃r.B with an existing B-neighbor: satisfied without children.
    #[test]
    fn neighbor_satisfies_requirement() {
        let mut t = HornTbox::new();
        t.push(HornCi::Exists { lhs: set(&[0]), role: sym(0), rhs: set(&[1]) });
        t.push(HornCi::Bottom { lhs: set(&[1, 2]) }); // irrelevant noise
        let mut ctx = RealizeCtx::new(TypeUniverse::new(&t), Budget::default());
        let a = ctx.types.close(&set(&[0])).unwrap();
        let b = ctx.types.close(&set(&[1])).unwrap();
        assert!(ctx.node_extendable(a, &[(sym(0), b)]).unwrap());
    }

    /// Example 5.5's refutation pattern: the child needs an s⁻-witness that
    /// the parent cannot provide and at-most-1 forbids duplicating.
    #[test]
    fn at_most_blocks_second_parentlike_child() {
        // Labels: 0 = A, 1 = B (the "B_{r·s+}" marker).
        // A ⊑ ∃s.A            (schema: outgoing s-edge)
        // A⊓B ⊑ ∃s⁻.(A⊓B)     (completion: reversed cycle)
        // A ⊑ ∃≤1 s⁻.A        (schema: at most one incoming s)
        // A ⊑ ∀s.B            (marker propagation)
        let s = sym(0);
        let mut t = HornTbox::new();
        t.push(HornCi::Exists { lhs: set(&[0]), role: s, rhs: set(&[0]) });
        t.push(HornCi::Exists { lhs: set(&[0, 1]), role: s.inv(), rhs: set(&[0, 1]) });
        t.push(HornCi::AtMostOne { lhs: set(&[0]), role: s.inv(), rhs: set(&[0]) });
        t.push(HornCi::AllValues { lhs: set(&[0]), role: s, rhs: set(&[1]) });
        let mut ctx = RealizeCtx::new(TypeUniverse::new(&t), Budget::default());
        let a = ctx.types.close(&set(&[0])).unwrap();
        let ab = ctx.types.close(&set(&[0, 1])).unwrap();
        // The child {A,B} with parent {A} via s cannot be realized: its
        // ∃s⁻.(A⊓B) needs a second incoming-s neighbor, but the parent
        // already occupies the unique incoming-s slot.
        assert!(!ctx.realizable((ab, s, a)).unwrap());
        // Hence an {A}-node with no neighborhood is not extendable either:
        // its only option spawns exactly that child.
        assert!(!ctx.node_extendable(a, &[]).unwrap());
        // But {A,B} hanging off an {A,B} parent IS realizable (the parent
        // provides the s⁻-witness, the chain continues downward).
        assert!(ctx.realizable((ab, s, ab)).unwrap());
    }

    /// Two requirements with the same role can share one child when the
    /// merged child type is consistent.
    #[test]
    fn requirement_grouping_merges_children() {
        // A ⊑ ∃r.B, A ⊑ ∃r.C, A ⊑ ∃≤1 r.⊤ — forces B and C into one child.
        let mut t = HornTbox::new();
        t.push(HornCi::Exists { lhs: set(&[0]), role: sym(0), rhs: set(&[1]) });
        t.push(HornCi::Exists { lhs: set(&[0]), role: sym(0), rhs: set(&[2]) });
        t.push(HornCi::AtMostOne { lhs: set(&[0]), role: sym(0), rhs: LabelSet::new() });
        let mut ctx = RealizeCtx::new(TypeUniverse::new(&t), Budget::default());
        let a = ctx.types.close(&set(&[0])).unwrap();
        assert!(ctx.node_extendable(a, &[]).unwrap());

        // Now make the merge inconsistent: B ⊓ C ⊑ ⊥.
        let mut t2 = t.clone();
        t2.push(HornCi::Bottom { lhs: set(&[1, 2]) });
        let mut ctx2 = RealizeCtx::new(TypeUniverse::new(&t2), Budget::default());
        let a2 = ctx2.types.close(&set(&[0])).unwrap();
        assert!(!ctx2.node_extendable(a2, &[]).unwrap());
    }

    #[test]
    fn no_requirements_is_trivially_extendable() {
        let t = HornTbox::new();
        let mut ctx = RealizeCtx::new(TypeUniverse::new(&t), Budget::default());
        let top = ctx.types.close(&LabelSet::new()).unwrap();
        assert!(ctx.node_extendable(top, &[]).unwrap());
    }

    /// `begin_call` resets the per-call flags but keeps the memo warm.
    #[test]
    fn begin_call_resets_per_call_state_only() {
        let mut t = HornTbox::new();
        t.push(HornCi::Exists { lhs: set(&[0]), role: sym(0), rhs: set(&[0]) });
        let mut ctx = RealizeCtx::new(TypeUniverse::new(&t), Budget::default());
        let a = ctx.types.close(&set(&[0])).unwrap();
        assert!(ctx.realizable((a, sym(0), a)).unwrap());
        let misses_before = ctx.stats().status_misses;
        ctx.begin_call(Budget::default());
        assert!(!ctx.uncertain);
        assert!(ctx.realizable((a, sym(0), a)).unwrap());
        assert_eq!(ctx.stats().status_misses, misses_before, "second call was a pure memo hit");
    }
}
