//! Persistent per-TBox solver state.
//!
//! Every [`crate::decide`] call over a TBox `T` rebuilds the same
//! expensive artifacts: the interned type universe, its saturation
//! fixpoints and dead-type set, and the coinductive realizability verdicts
//! of witness-tree candidates. All of them are pure functions of `T` (and
//! the engine budgets), so a [`SolverCache`] keeps one [`RealizeCtx`] per
//! *TBox fingerprint* and lets [`crate::decide_cached`] reuse it across
//! calls — the dominant cost of a cold containment analysis, whose
//! reductions ask dozens of satisfiability questions over a handful of
//! completed TBoxes.
//!
//! ## Determinism
//!
//! A cached call must agree verdict-for-verdict with a fresh-context call
//! (the differential suites in `crates/tests` enforce this). Three design
//! points make that hold:
//!
//! * cached state is keyed by the **exact** CI set (order-insensitive) and
//!   the full budget, with hash collisions resolved by comparing the
//!   canonicalized key — no verdict ever bleeds between TBoxes;
//! * memo entries carry taint bits replaying the `uncertain` flag (see
//!   [`crate::RealizeCtx`]);
//! * entries are **lock-striped**: one mutex per fingerprint, so parallel
//!   `decide` calls over different TBoxes proceed concurrently while calls
//!   over the same TBox serialize and observe the exact sequential
//!   algorithm on a warm context.
//!
//! The only intentional divergence is budget accounting: a warm context
//! skips work a fresh context would count against `max_candidates`, so a
//! *budget-bound* fresh `Unknown` can resolve to a cheaper cached verdict.
//! Callers that need bit-identical budget behavior must use budgets the
//! workload does not exhaust (all differential tests do).

use crate::budget::Budget;
use crate::realize::RealizeCtx;
use crate::types::TypeUniverse;
use gts_dl::{HornCi, HornTbox};
use gts_graph::FxHashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A full oracle-statistics snapshot: cache effectiveness plus the search
/// counters of every `decide` routed through the cache. Snapshots are
/// cumulative; use [`OracleStats::delta_since`] to attribute work to one
/// call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// `decide_cached` calls routed through the cache.
    pub decides: u64,
    /// Calls that found a warm per-TBox context.
    pub cache_hits: u64,
    /// Calls that built a fresh per-TBox context.
    pub cache_misses: u64,
    /// Distinct (TBox, budget) entries held.
    pub entries: usize,
    /// Candidate cores chased.
    pub cores_tried: u64,
    /// Candidate cores skipped by canonical-form deduplication.
    pub cores_deduped: u64,
    /// Node types interned across all entries.
    pub types_interned: usize,
    /// Realizability memo hits (verdicts + option sets).
    pub realize_hits: u64,
    /// Realizability memo misses (verdicts + option sets).
    pub realize_misses: u64,
}

impl OracleStats {
    /// The work recorded between `earlier` and `self` (gauges — `entries`
    /// and `types_interned` — keep their current value).
    pub fn delta_since(&self, earlier: &OracleStats) -> OracleStats {
        OracleStats {
            decides: self.decides - earlier.decides,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            entries: self.entries,
            cores_tried: self.cores_tried - earlier.cores_tried,
            cores_deduped: self.cores_deduped - earlier.cores_deduped,
            types_interned: self.types_interned,
            realize_hits: self.realize_hits - earlier.realize_hits,
            realize_misses: self.realize_misses - earlier.realize_misses,
        }
    }

    /// Folds another snapshot's counters into this one (for aggregating
    /// per-call deltas).
    pub fn absorb(&mut self, other: &OracleStats) {
        self.decides += other.decides;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.entries = self.entries.max(other.entries);
        self.cores_tried += other.cores_tried;
        self.cores_deduped += other.cores_deduped;
        self.types_interned = self.types_interned.max(other.types_interned);
        self.realize_hits += other.realize_hits;
        self.realize_misses += other.realize_misses;
    }

    /// Fraction of `decide` calls that found a warm context.
    pub fn cache_hit_rate(&self) -> f64 {
        rate(self.cache_hits, self.cache_misses)
    }

    /// Fraction of realizability questions answered from the memo.
    pub fn realize_hit_rate(&self) -> f64 {
        rate(self.realize_hits, self.realize_misses)
    }
}

/// The global-registry `(hit, miss)` counters for warm-context reuse,
/// resolved once (handle resolution is on the per-decide path).
fn solver_cache_obs() -> &'static (gts_obs::Counter, gts_obs::Counter) {
    static CELLS: std::sync::OnceLock<(gts_obs::Counter, gts_obs::Counter)> =
        std::sync::OnceLock::new();
    CELLS.get_or_init(|| {
        let reg = gts_obs::global();
        let name = "gts_sat_solver_cache_total";
        let help = "Per-TBox solver-context lookups by outcome";
        (
            reg.counter(name, help, &[("outcome", "hit")]),
            reg.counter(name, help, &[("outcome", "miss")]),
        )
    })
}

fn rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// Cache-effectiveness counters of a [`SolverCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverCacheStats {
    /// `decide_cached` calls that found a warm context.
    pub hits: u64,
    /// `decide_cached` calls that created a fresh context.
    pub misses: u64,
    /// Distinct (TBox, budget) entries currently held.
    pub entries: usize,
}

impl SolverCacheStats {
    /// Fraction of calls served warm (`0.0` when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The canonical identity of a cache entry: the CI *set* plus the budget
/// (budgets bound enumeration caps, so they are part of the verdict).
struct CacheKey {
    cis: gts_graph::FxHashSet<HornCi>,
    budget: [usize; 6],
}

impl CacheKey {
    /// Exact set equality against a probe's CI list (which may contain
    /// duplicates when constructed directly rather than via `push`).
    fn matches(&self, tbox: &HornTbox, budget: [usize; 6]) -> bool {
        if self.budget != budget {
            return false;
        }
        if tbox.cis.len() < self.cis.len() {
            return false;
        }
        if !tbox.cis.iter().all(|ci| self.cis.contains(ci)) {
            return false;
        }
        // Containment plus equal *distinct* counts is set equality; the
        // probe's raw length is not enough (it may carry duplicates).
        let distinct: gts_graph::FxHashSet<&HornCi> = tbox.cis.iter().collect();
        distinct.len() == self.cis.len()
    }
}

fn budget_key(budget: &Budget) -> [usize; 6] {
    budget.cache_key()
}

/// Order-insensitive fingerprint of `(tbox, budget)` — a commutative fold
/// of per-CI hashes, so no allocation or sorting on the lookup path;
/// collisions are resolved by an exact CI-set comparison in
/// [`SolverCache`].
pub fn tbox_fingerprint(tbox: &HornTbox, budget: &Budget) -> u64 {
    let mut acc: u64 = 0x9e37_79b9_7f4a_7c15;
    for ci in &tbox.cis {
        let mut h = gts_graph::FxHasher::default();
        ci.hash(&mut h);
        // Wrapping sum commutes; duplicates would shift the sum, but a
        // set-semantics TBox has none and the exact key check catches the
        // rest.
        acc = acc.wrapping_add(h.finish() | 1);
    }
    let mut h = gts_graph::FxHasher::default();
    budget_key(budget).hash(&mut h);
    acc ^ h.finish()
}

struct Entry {
    key: CacheKey,
    ctx: Mutex<RealizeCtx>,
    /// Number of calls served by this entry (first call = the cold miss).
    uses: AtomicU64,
    /// Interned-type count last mirrored into the cache-wide gauge.
    types_reported: AtomicU64,
}

/// A not-yet-claimed portable snapshot: the exact portable TBox key plus
/// the serialized [`RealizeCtx`] memo tables (see [`crate::portable`]).
struct PendingSnapshot {
    key: Vec<u8>,
    payload: Vec<u8>,
}

/// A resolved reference to one per-TBox solver context. Cloning is cheap
/// (an `Arc` bump); the handle stays valid for the cache's lifetime and
/// skips the CI-set hashing of [`SolverCache::handle`] on every reuse.
#[derive(Clone)]
pub struct SolverHandle {
    entry: Arc<Entry>,
}

/// A concurrency-safe store of per-TBox solver contexts (type universe,
/// saturation fixpoints, realizability memos), keyed by TBox fingerprint.
///
/// Shareable across threads (`Arc<SolverCache>`): the outer map lock is
/// held only for entry lookup, and each entry has its own mutex, so
/// parallel `decide` calls stripe by TBox.
#[derive(Default)]
pub struct SolverCache {
    entries: Mutex<FxHashMap<u64, Vec<Arc<Entry>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    decides: AtomicU64,
    cores_tried: AtomicU64,
    cores_deduped: AtomicU64,
    /// Running totals mirrored out of the per-entry contexts, so stats
    /// snapshots (taken on every `contains` call) never touch an entry
    /// mutex a long decide might be holding.
    realize_hits: AtomicU64,
    realize_misses: AtomicU64,
    types_interned_gauge: AtomicU64,
    /// Imported portable snapshots awaiting their TBox's first `handle`
    /// call, keyed by the FNV of the portable key (exact key compared on
    /// claim — a hash collision only wastes the snapshot, never bleeds
    /// state between TBoxes).
    pending: Mutex<FxHashMap<u64, Vec<PendingSnapshot>>>,
    /// Memo entries hydrated out of claimed snapshots.
    hydrated: AtomicU64,
}

impl std::fmt::Debug for SolverCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("SolverCache")
            .field("entries", &stats.entries)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

impl SolverCache {
    /// An empty cache.
    pub fn new() -> Self {
        SolverCache::default()
    }

    /// Current counters.
    pub fn stats(&self) -> SolverCacheStats {
        let entries = self.entries.lock().unwrap().values().map(Vec::len).sum();
        SolverCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Number of distinct (TBox, budget) entries.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().values().map(Vec::len).sum()
    }

    /// `true` iff no entry was created yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolves the (warm or fresh) entry for `(tbox, budget)` into a
    /// reusable handle. The lookup hashes the whole CI set, so callers
    /// that probe one TBox repeatedly should resolve the handle once and
    /// use [`crate::decide_on`].
    pub fn handle(&self, tbox: &HornTbox, budget: &Budget) -> SolverHandle {
        let fp = tbox_fingerprint(tbox, budget);
        let bkey = budget_key(budget);
        let mut map = self.entries.lock().unwrap();
        let bucket = map.entry(fp).or_default();
        let entry = match bucket.iter().find(|e| e.key.matches(tbox, bkey)) {
            Some(e) => Arc::clone(e),
            None => {
                let key = CacheKey { cis: tbox.cis.iter().cloned().collect(), budget: bkey };
                let mut ctx = RealizeCtx::new(TypeUniverse::new(tbox), budget.clone());
                self.try_hydrate(&key, &mut ctx);
                let entry = Arc::new(Entry {
                    key,
                    ctx: Mutex::new(ctx),
                    uses: AtomicU64::new(0),
                    types_reported: AtomicU64::new(0),
                });
                bucket.push(Arc::clone(&entry));
                entry
            }
        };
        SolverHandle { entry }
    }

    /// Runs `f` on the handle's context: resets the per-call state, holds
    /// the entry's lock for the duration of `f` (serializing same-TBox
    /// callers). The first call on an entry counts as the cold miss;
    /// every later call is a warm hit.
    pub fn with_handle<R>(
        &self,
        handle: &SolverHandle,
        budget: &Budget,
        f: impl FnOnce(&mut RealizeCtx) -> R,
    ) -> R {
        debug_assert_eq!(
            handle.entry.key.budget,
            budget_key(budget),
            "handle resolved under a different budget than this call's"
        );
        if handle.entry.uses.fetch_add(1, Ordering::Relaxed) == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            solver_cache_obs().1.inc();
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            solver_cache_obs().0.inc();
        }
        let mut ctx = handle.entry.ctx.lock().unwrap();
        ctx.begin_call(budget.clone());
        let before = ctx.stats();
        let out = f(&mut ctx);
        // Mirror the context's counters into cache-wide atomics, so stats
        // snapshots need no entry locks.
        let after = ctx.stats();
        self.realize_hits.fetch_add(
            (after.status_hits - before.status_hits) + (after.options_hits - before.options_hits),
            Ordering::Relaxed,
        );
        self.realize_misses.fetch_add(
            (after.status_misses - before.status_misses)
                + (after.options_misses - before.options_misses),
            Ordering::Relaxed,
        );
        let types = ctx.types.len() as u64;
        let reported = handle.entry.types_reported.swap(types, Ordering::Relaxed);
        self.types_interned_gauge.fetch_add(types - reported, Ordering::Relaxed);
        out
    }

    /// Runs `f` on the (warm or fresh) solver context for `(tbox, budget)`.
    /// The per-call state is reset before `f` runs; the entry's lock is
    /// held for the duration of `f`, serializing same-TBox callers.
    pub fn with_ctx<R>(
        &self,
        tbox: &HornTbox,
        budget: &Budget,
        f: impl FnOnce(&mut RealizeCtx) -> R,
    ) -> R {
        let handle = self.handle(tbox, budget);
        self.with_handle(&handle, budget, f)
    }

    /// Serializes every entry's durable memo tables as
    /// `(portable key, payload)` pairs — the portable key is
    /// [`crate::portable_tbox_key`] of the entry's exact CI set and
    /// budget; the payload is [`RealizeCtx::export_portable`]. The pairs
    /// round-trip through [`SolverCache::import_portable`] on any process.
    pub fn export_portable(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.snapshot_entries()
            .iter()
            .map(|e| {
                let key = crate::portable::portable_tbox_key(e.key.cis.iter(), e.key.budget);
                let payload = e.ctx.lock().unwrap().export_portable();
                (key, payload)
            })
            .collect()
    }

    /// Stashes portable snapshots (from [`SolverCache::export_portable`],
    /// possibly of another process) for lazy hydration: each snapshot is
    /// claimed — exact-key-compared and replayed into the fresh context —
    /// the first time its TBox reaches [`SolverCache::handle`]. Returns
    /// the number of snapshots stashed.
    pub fn import_portable(
        &self,
        snapshots: impl IntoIterator<Item = (Vec<u8>, Vec<u8>)>,
    ) -> usize {
        let mut pending = self.pending.lock().unwrap();
        let mut n = 0;
        for (key, payload) in snapshots {
            let fp = gts_store::hash64(&key);
            let bucket = pending.entry(fp).or_default();
            // Last import wins per exact key (a re-import carries a
            // superset of the earlier memo tables).
            bucket.retain(|p| p.key != key);
            bucket.push(PendingSnapshot { key, payload });
            n += 1;
        }
        n
    }

    /// Memo entries hydrated from imported snapshots so far.
    pub fn hydrated_entries(&self) -> u64 {
        self.hydrated.load(Ordering::Relaxed)
    }

    /// Snapshots imported but not yet claimed by a `handle` call.
    pub fn pending_snapshots(&self) -> usize {
        self.pending.lock().unwrap().values().map(Vec::len).sum()
    }

    /// Claims a pending snapshot for a freshly built entry, replaying its
    /// memo tables into `ctx`. Exact portable-key equality is required;
    /// the snapshot is consumed either way once matched (a payload that
    /// fails to parse imports nothing — cold path).
    fn try_hydrate(&self, key: &CacheKey, ctx: &mut RealizeCtx) {
        let snap = {
            let mut pending = self.pending.lock().unwrap();
            if pending.is_empty() {
                return;
            }
            let pkey = crate::portable::portable_tbox_key(key.cis.iter(), key.budget);
            let fp = gts_store::hash64(&pkey);
            let Some(bucket) = pending.get_mut(&fp) else { return };
            let Some(pos) = bucket.iter().position(|p| p.key == pkey) else { return };
            let snap = bucket.swap_remove(pos);
            if bucket.is_empty() {
                pending.remove(&fp);
            }
            snap
        };
        if let Some(report) = ctx.import_portable(&snap.payload) {
            self.hydrated.fetch_add(report.entries() as u64, Ordering::Relaxed);
        }
    }

    /// Records the search counters of one `decide_cached` call.
    pub(crate) fn record_decide(&self, cores_tried: usize, cores_deduped: usize) {
        self.decides.fetch_add(1, Ordering::Relaxed);
        self.cores_tried.fetch_add(cores_tried as u64, Ordering::Relaxed);
        self.cores_deduped.fetch_add(cores_deduped as u64, Ordering::Relaxed);
    }

    /// A full cumulative statistics snapshot (cache effectiveness, core
    /// search, realizability memos). Reads only atomics and the entry-map
    /// length — never an entry's context mutex — so it is safe to call
    /// per-question even while decides are in flight.
    pub fn oracle_stats(&self) -> OracleStats {
        OracleStats {
            decides: self.decides.load(Ordering::Relaxed),
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
            cores_tried: self.cores_tried.load(Ordering::Relaxed),
            cores_deduped: self.cores_deduped.load(Ordering::Relaxed),
            types_interned: self.types_interned_gauge.load(Ordering::Relaxed) as usize,
            realize_hits: self.realize_hits.load(Ordering::Relaxed),
            realize_misses: self.realize_misses.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of every entry, taken without holding the map lock while
    /// touching entry contexts (stats readers must not stall `handle`).
    fn snapshot_entries(&self) -> Vec<Arc<Entry>> {
        let map = self.entries.lock().unwrap();
        map.values().flat_map(|bucket| bucket.iter()).cloned().collect()
    }

    /// Sum of interned type counts over all entries (for statistics).
    pub fn types_interned(&self) -> usize {
        self.snapshot_entries().iter().map(|e| e.ctx.lock().unwrap().types.len()).sum()
    }

    /// Aggregated realizability-memo counters over all entries.
    pub fn realize_stats(&self) -> crate::realize::RealizeStats {
        let mut out = crate::realize::RealizeStats::default();
        for e in self.snapshot_entries() {
            let s = e.ctx.lock().unwrap().stats();
            out.status_hits += s.status_hits;
            out.status_misses += s.status_misses;
            out.options_hits += s.options_hits;
            out.options_misses += s.options_misses;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_order_insensitive() {
        let a = HornCi::Bottom { lhs: gts_graph::LabelSet::singleton(0) };
        let b = HornCi::Bottom { lhs: gts_graph::LabelSet::singleton(1) };
        let mut t1 = HornTbox::new();
        t1.push(a.clone());
        t1.push(b.clone());
        let mut t2 = HornTbox::new();
        t2.push(b);
        t2.push(a);
        let budget = Budget::default();
        assert_eq!(tbox_fingerprint(&t1, &budget), tbox_fingerprint(&t2, &budget));
        assert_ne!(tbox_fingerprint(&t1, &budget), tbox_fingerprint(&HornTbox::new(), &budget));
    }

    #[test]
    fn budget_is_part_of_the_key() {
        let t = HornTbox::new();
        assert_ne!(
            tbox_fingerprint(&t, &Budget::default()),
            tbox_fingerprint(&t, &Budget::large())
        );
    }

    #[test]
    fn entries_are_reused_per_tbox() {
        let cache = SolverCache::new();
        let mut t1 = HornTbox::new();
        t1.push(HornCi::Bottom { lhs: gts_graph::LabelSet::singleton(0) });
        let t2 = HornTbox::new();
        let budget = Budget::default();
        cache.with_ctx(&t1, &budget, |_| ());
        cache.with_ctx(&t1, &budget, |_| ());
        cache.with_ctx(&t2, &budget, |_| ());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 2));
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn portable_snapshots_hydrate_fresh_entries() {
        let mut t = HornTbox::new();
        t.push(HornCi::Exists {
            lhs: gts_graph::LabelSet::singleton(0),
            role: gts_graph::EdgeSym::fwd(gts_graph::EdgeLabel(0)),
            rhs: gts_graph::LabelSet::singleton(0),
        });
        let budget = Budget::default();
        let src = SolverCache::new();
        src.with_ctx(&t, &budget, |ctx| {
            let a = ctx.types.close(&gts_graph::LabelSet::singleton(0)).unwrap();
            assert!(ctx.node_extendable(a, &[]).unwrap());
        });
        let snapshots = src.export_portable();
        assert_eq!(snapshots.len(), 1);

        let dst = SolverCache::new();
        assert_eq!(dst.import_portable(snapshots), 1);
        assert_eq!(dst.pending_snapshots(), 1);
        // An unrelated TBox must not claim the snapshot.
        dst.with_ctx(&HornTbox::new(), &budget, |_| ());
        assert_eq!(dst.pending_snapshots(), 1);
        assert_eq!(dst.hydrated_entries(), 0);
        // The matching TBox claims it and answers warm.
        let misses = dst.with_ctx(&t, &budget, |ctx| {
            let a = ctx.types.close(&gts_graph::LabelSet::singleton(0)).unwrap();
            assert!(ctx.node_extendable(a, &[]).unwrap());
            ctx.stats().status_misses
        });
        assert_eq!(misses, 0, "hydrated context answers from the memo");
        assert_eq!(dst.pending_snapshots(), 0);
        assert!(dst.hydrated_entries() > 0);
    }

    #[test]
    fn contexts_persist_between_calls() {
        let cache = SolverCache::new();
        let t = HornTbox::new();
        let budget = Budget::default();
        cache.with_ctx(&t, &budget, |ctx| {
            ctx.types.close(&gts_graph::LabelSet::singleton(3));
        });
        let types = cache.with_ctx(&t, &budget, |ctx| ctx.types.len());
        assert_eq!(types, 1, "interned types survive between calls");
        assert_eq!(cache.types_interned(), 1);
    }
}
