//! Portable (cross-process) serialization of per-TBox solver state.
//!
//! A [`crate::RealizeCtx`]'s memo tables — interned types, saturation
//! fixpoints, candidate realizability verdicts, extendability rows — are
//! pure functions of `(TBox, budget)`, so they can be shipped to another
//! process and replayed there, provided the receiving context is keyed by
//! the **exact same** TBox and budget. `TypeId`s are interner-local and
//! never travel: every type crosses the boundary as its label set and is
//! re-interned via [`crate::TypeUniverse::close`] on import (idempotent on
//! closed sets).
//!
//! Identity is the [`portable_tbox_key`]: the sorted, deduplicated binary
//! encodings of the CI set plus the budget cache key. Two keys are equal
//! iff the CI sets and budgets are equal, so hydrating under an equal key
//! can never smuggle a verdict between TBoxes. Decoding is fail-closed: a
//! payload that does not parse (or references an inconsistent label set)
//! imports nothing and leaves the context cold.

use crate::realize::RealizeCtx;
use crate::types::TypeId;
use gts_dl::HornCi;
use gts_graph::{EdgeSym, LabelSet, NodeLabel};
use gts_store::{Dec, Enc};

/// Encodes a label set as its sorted index list.
pub fn enc_label_set(e: &mut Enc, set: &LabelSet) {
    let indices: Vec<u32> = set.iter().collect();
    e.u32(indices.len() as u32);
    for i in indices {
        e.u32(i);
    }
}

/// Decodes a label set written by [`enc_label_set`].
pub fn dec_label_set(d: &mut Dec) -> Option<LabelSet> {
    let n = d.u32()?;
    let mut set = LabelSet::new();
    for _ in 0..n {
        set.insert(d.u32()?);
    }
    Some(set)
}

/// Encodes an edge symbol (label index + direction).
pub fn enc_edge_sym(e: &mut Enc, sym: EdgeSym) {
    e.u32(sym.label.0);
    e.u8(sym.inverse as u8);
}

/// Decodes an edge symbol written by [`enc_edge_sym`].
pub fn dec_edge_sym(d: &mut Dec) -> Option<EdgeSym> {
    let label = gts_graph::EdgeLabel(d.u32()?);
    let inverse = match d.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    Some(EdgeSym { label, inverse })
}

const CI_SUB_ATOM: u8 = 0;
const CI_BOTTOM: u8 = 1;
const CI_ALL_VALUES: u8 = 2;
const CI_EXISTS: u8 = 3;
const CI_NOT_EXISTS: u8 = 4;
const CI_AT_MOST_ONE: u8 = 5;

/// Encodes one Horn concept inclusion.
pub fn enc_horn_ci(e: &mut Enc, ci: &HornCi) {
    match ci {
        HornCi::SubAtom { lhs, rhs } => {
            e.u8(CI_SUB_ATOM);
            enc_label_set(e, lhs);
            e.u32(rhs.0);
        }
        HornCi::Bottom { lhs } => {
            e.u8(CI_BOTTOM);
            enc_label_set(e, lhs);
        }
        HornCi::AllValues { lhs, role, rhs } => {
            e.u8(CI_ALL_VALUES);
            enc_label_set(e, lhs);
            enc_edge_sym(e, *role);
            enc_label_set(e, rhs);
        }
        HornCi::Exists { lhs, role, rhs } => {
            e.u8(CI_EXISTS);
            enc_label_set(e, lhs);
            enc_edge_sym(e, *role);
            enc_label_set(e, rhs);
        }
        HornCi::NotExists { lhs, role, rhs } => {
            e.u8(CI_NOT_EXISTS);
            enc_label_set(e, lhs);
            enc_edge_sym(e, *role);
            enc_label_set(e, rhs);
        }
        HornCi::AtMostOne { lhs, role, rhs } => {
            e.u8(CI_AT_MOST_ONE);
            enc_label_set(e, lhs);
            enc_edge_sym(e, *role);
            enc_label_set(e, rhs);
        }
    }
}

/// Decodes one Horn concept inclusion written by [`enc_horn_ci`].
pub fn dec_horn_ci(d: &mut Dec) -> Option<HornCi> {
    let kind = d.u8()?;
    Some(match kind {
        CI_SUB_ATOM => HornCi::SubAtom { lhs: dec_label_set(d)?, rhs: NodeLabel(d.u32()?) },
        CI_BOTTOM => HornCi::Bottom { lhs: dec_label_set(d)? },
        CI_ALL_VALUES => HornCi::AllValues {
            lhs: dec_label_set(d)?,
            role: dec_edge_sym(d)?,
            rhs: dec_label_set(d)?,
        },
        CI_EXISTS => HornCi::Exists {
            lhs: dec_label_set(d)?,
            role: dec_edge_sym(d)?,
            rhs: dec_label_set(d)?,
        },
        CI_NOT_EXISTS => HornCi::NotExists {
            lhs: dec_label_set(d)?,
            role: dec_edge_sym(d)?,
            rhs: dec_label_set(d)?,
        },
        CI_AT_MOST_ONE => HornCi::AtMostOne {
            lhs: dec_label_set(d)?,
            role: dec_edge_sym(d)?,
            rhs: dec_label_set(d)?,
        },
        _ => return None,
    })
}

/// The exact portable identity of a `(TBox, budget)` pair: CI encodings
/// sorted and deduplicated (set semantics, order-insensitive) followed by
/// the budget cache key. Byte equality of two keys is equivalent to
/// equality of the CI sets and budgets.
pub fn portable_tbox_key<'a>(
    cis: impl IntoIterator<Item = &'a HornCi>,
    budget_key: [usize; 6],
) -> Vec<u8> {
    let mut encoded: Vec<Vec<u8>> = cis
        .into_iter()
        .map(|ci| {
            let mut e = Enc::new();
            enc_horn_ci(&mut e, ci);
            e.finish()
        })
        .collect();
    encoded.sort();
    encoded.dedup();
    let mut e = Enc::new();
    e.usize(encoded.len());
    for b in &encoded {
        e.bytes(b);
    }
    for v in budget_key {
        e.usize(v);
    }
    e.finish()
}

fn enc_flags(verdict: bool, taint: bool) -> u8 {
    (verdict as u8) | ((taint as u8) << 1)
}

fn dec_flags(b: u8) -> Option<(bool, bool)> {
    if b > 3 {
        return None;
    }
    Some((b & 1 != 0, b & 2 != 0))
}

/// How much of a portable snapshot a context imported.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ImportReport {
    /// Interned types re-closed.
    pub types: usize,
    /// Saturation fixpoints installed.
    pub saturations: usize,
    /// Candidate realizability verdicts installed.
    pub verdicts: usize,
    /// Extendability rows installed.
    pub extendable: usize,
}

impl ImportReport {
    /// Total memo entries installed (types excluded: re-interning is a
    /// warm-up, not a verdict).
    pub fn entries(&self) -> usize {
        self.saturations + self.verdicts + self.extendable
    }
}

impl RealizeCtx {
    /// Serializes this context's durable memo tables (interned types,
    /// saturation fixpoints, realizability verdicts, extendability rows)
    /// into a payload importable by [`RealizeCtx::import_portable`] on a
    /// context over the exact same TBox and budget. Per-call state and
    /// option sets are not exported (status/extendability hits bypass
    /// option enumeration entirely).
    pub fn export_portable(&self) -> Vec<u8> {
        let mut e = Enc::new();
        // Types, in intern order (parents of the id space come first,
        // which keeps re-interning on import cheap and deterministic).
        let n_types = self.types.len();
        e.usize(n_types);
        for i in 0..n_types {
            enc_label_set(&mut e, self.types.labels(TypeId(i as u32)));
        }
        // Saturation fixpoints.
        let sat_rows = self.types.sat_rows();
        e.usize(sat_rows.len());
        for (t, sat) in sat_rows {
            enc_label_set(&mut e, self.types.labels(t));
            match sat {
                None => {
                    e.u8(0);
                }
                Some(s) => {
                    e.u8(1);
                    enc_label_set(&mut e, self.types.labels(s));
                }
            }
        }
        // Candidate verdicts.
        e.usize(self.status.len());
        for (&(child, sym, parent), &(verdict, taint)) in &self.status {
            enc_label_set(&mut e, self.types.labels(child));
            enc_edge_sym(&mut e, sym);
            enc_label_set(&mut e, self.types.labels(parent));
            e.u8(enc_flags(verdict, taint));
        }
        // Extendability rows.
        let n_rows: usize = self.extendable_memo.values().map(Vec::len).sum();
        e.usize(n_rows);
        for (&node, rows) in &self.extendable_memo {
            for (neighbors, verdict, taint) in rows {
                enc_label_set(&mut e, self.types.labels(node));
                e.usize(neighbors.len());
                for &(sym, t) in neighbors {
                    enc_edge_sym(&mut e, sym);
                    enc_label_set(&mut e, self.types.labels(t));
                }
                e.u8(enc_flags(*verdict, *taint));
            }
        }
        e.finish()
    }

    /// Replays a payload produced by [`RealizeCtx::export_portable`] on a
    /// context over the exact same TBox and budget (the caller must have
    /// verified the [`portable_tbox_key`] — this method cannot). Label
    /// sets are re-interned through `close`; entries that fail to close
    /// (corrupt payloads only) are skipped, and locally computed verdicts
    /// are never overridden. Returns `None` — importing nothing — when
    /// the payload does not parse.
    pub fn import_portable(&mut self, payload: &[u8]) -> Option<ImportReport> {
        // Decode fully before touching the memo tables, so a payload that
        // turns out truncated cannot leave a half-imported context.
        let mut d = Dec::new(payload);
        let mut report = ImportReport::default();
        let n_types = d.usize()?;
        let mut types = Vec::with_capacity(n_types.min(1 << 16));
        for _ in 0..n_types {
            types.push(dec_label_set(&mut d)?);
        }
        let n_sat = d.usize()?;
        let mut sats = Vec::with_capacity(n_sat.min(1 << 16));
        for _ in 0..n_sat {
            let t = dec_label_set(&mut d)?;
            let sat = match d.u8()? {
                0 => None,
                1 => Some(dec_label_set(&mut d)?),
                _ => return None,
            };
            sats.push((t, sat));
        }
        let n_status = d.usize()?;
        let mut verdicts = Vec::with_capacity(n_status.min(1 << 16));
        for _ in 0..n_status {
            let child = dec_label_set(&mut d)?;
            let sym = dec_edge_sym(&mut d)?;
            let parent = dec_label_set(&mut d)?;
            let flags = dec_flags(d.u8()?)?;
            verdicts.push((child, sym, parent, flags));
        }
        let n_ext = d.usize()?;
        let mut ext_rows = Vec::with_capacity(n_ext.min(1 << 16));
        for _ in 0..n_ext {
            let node = dec_label_set(&mut d)?;
            let n_neighbors = d.usize()?;
            let mut neighbors = Vec::with_capacity(n_neighbors.min(1 << 16));
            for _ in 0..n_neighbors {
                let sym = dec_edge_sym(&mut d)?;
                let t = dec_label_set(&mut d)?;
                neighbors.push((sym, t));
            }
            let flags = dec_flags(d.u8()?)?;
            ext_rows.push((node, neighbors, flags));
        }
        if !d.done() {
            return None;
        }

        for set in &types {
            if self.types.close(set).is_some() {
                report.types += 1;
            }
        }
        for (t, sat) in &sats {
            let Some(t) = self.types.close(t) else { continue };
            let sat = match sat {
                None => None,
                Some(s) => match self.types.close(s) {
                    Some(s) => Some(s),
                    None => continue,
                },
            };
            self.types.import_sat_row(t, sat);
            report.saturations += 1;
        }
        for (child, sym, parent, (verdict, taint)) in verdicts {
            let (Some(child), Some(parent)) = (self.types.close(&child), self.types.close(&parent))
            else {
                continue;
            };
            self.status.entry((child, sym, parent)).or_insert((verdict, taint));
            report.verdicts += 1;
        }
        for (node, neighbors, (verdict, taint)) in ext_rows {
            let Some(node) = self.types.close(&node) else { continue };
            let mut key = Vec::with_capacity(neighbors.len());
            let mut ok = true;
            for (sym, t) in neighbors {
                match self.types.close(&t) {
                    Some(t) => key.push((sym, t)),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            key.sort_unstable();
            let rows = self.extendable_memo.entry(node).or_default();
            if !rows.iter().any(|(n, _, _)| *n == key) {
                rows.push((key, verdict, taint));
                report.extendable += 1;
            }
        }
        Some(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::types::TypeUniverse;
    use gts_dl::HornTbox;
    use gts_graph::EdgeLabel;

    fn sym(i: u32) -> EdgeSym {
        EdgeSym::fwd(EdgeLabel(i))
    }
    fn set(labels: &[u32]) -> LabelSet {
        LabelSet::from_iter(labels.iter().copied())
    }

    fn demo_tbox() -> HornTbox {
        let s = sym(0);
        let mut t = HornTbox::new();
        t.push(HornCi::Exists { lhs: set(&[0]), role: s, rhs: set(&[0]) });
        t.push(HornCi::Exists { lhs: set(&[0, 1]), role: s.inv(), rhs: set(&[0, 1]) });
        t.push(HornCi::AtMostOne { lhs: set(&[0]), role: s.inv(), rhs: set(&[0]) });
        t.push(HornCi::AllValues { lhs: set(&[0]), role: s, rhs: set(&[1]) });
        t
    }

    #[test]
    fn ci_codec_roundtrips() {
        let t = demo_tbox();
        for ci in &t.cis {
            let mut e = Enc::new();
            enc_horn_ci(&mut e, ci);
            let bytes = e.finish();
            let mut d = Dec::new(&bytes);
            assert_eq!(dec_horn_ci(&mut d).as_ref(), Some(ci));
            assert!(d.done());
        }
    }

    #[test]
    fn portable_key_is_order_insensitive_and_exact() {
        let t = demo_tbox();
        let mut rev = HornTbox::new();
        for ci in t.cis.iter().rev() {
            rev.push(ci.clone());
        }
        let b = Budget::default().cache_key();
        assert_eq!(portable_tbox_key(&t.cis, b), portable_tbox_key(&rev.cis, b));
        assert_ne!(portable_tbox_key(&t.cis, b), portable_tbox_key(&rev.cis[..3], b));
        assert_ne!(
            portable_tbox_key(&t.cis, b),
            portable_tbox_key(&t.cis, Budget::large().cache_key())
        );
    }

    #[test]
    fn export_import_replays_verdicts_without_recomputation() {
        let t = demo_tbox();
        let budget = Budget::default();
        let mut src = RealizeCtx::new(TypeUniverse::new(&t), budget.clone());
        let a = src.types.close(&set(&[0])).unwrap();
        let ab = src.types.close(&set(&[0, 1])).unwrap();
        let s = sym(0);
        assert!(!src.realizable((ab, s, a)).unwrap());
        assert!(src.realizable((ab, s, ab)).unwrap());
        assert!(!src.node_extendable(a, &[]).unwrap());

        let payload = src.export_portable();
        let mut dst = RealizeCtx::new(TypeUniverse::new(&t), budget.clone());
        let report = dst.import_portable(&payload).unwrap();
        assert!(report.verdicts > 0, "verdicts travelled: {report:?}");
        assert!(report.extendable > 0);

        // The imported context answers from the memo: same verdicts, no
        // status misses.
        let a2 = dst.types.close(&set(&[0])).unwrap();
        let ab2 = dst.types.close(&set(&[0, 1])).unwrap();
        dst.begin_call(budget.clone());
        assert!(!dst.realizable((ab2, s, a2)).unwrap());
        assert!(dst.realizable((ab2, s, ab2)).unwrap());
        assert!(!dst.node_extendable(a2, &[]).unwrap());
        assert_eq!(dst.stats().status_misses, 0, "all answers were memo hits");
    }

    #[test]
    fn corrupt_payloads_import_nothing() {
        let t = demo_tbox();
        let budget = Budget::default();
        let mut src = RealizeCtx::new(TypeUniverse::new(&t), budget.clone());
        let a = src.types.close(&set(&[0])).unwrap();
        let _ = src.node_extendable(a, &[]);
        let payload = src.export_portable();
        // Truncations at every prefix must parse-fail (import nothing) or
        // never panic; the full payload imports.
        for cut in 1..payload.len() {
            let mut dst = RealizeCtx::new(TypeUniverse::new(&t), budget.clone());
            if let Some(r) = dst.import_portable(&payload[..cut]) {
                // A shorter prefix can only be valid if it decodes
                // completely — which `done()` rules out here.
                panic!("truncated payload imported: cut={cut} {r:?}");
            }
            assert_eq!(dst.stats().status_hits, 0);
        }
        let mut dst = RealizeCtx::new(TypeUniverse::new(&t), budget);
        assert!(dst.import_portable(&payload).is_some());
    }
}
