//! A process-wide cache of compiled Glushkov automata.
//!
//! Regular expressions recur constantly across the reduction pipeline: the
//! satisfiability engine compiles the regex of every atom (forwards and
//! reversed) on every `decide` call, and the rolling-up construction
//! compiles every atom of every negation choice. Within one analysis —
//! and even more so across the batched analyses of an `AnalysisSession` —
//! the same few expressions are compiled thousands of times.
//!
//! [`Nfa::compiled`] interns the automaton per regex and hands out
//! [`Arc`]s, so repeated compilations are a hash lookup plus a refcount
//! bump. The map is thread-local (no lock contention between worker
//! threads of a batch; each worker warms its own shard), while the
//! hit/miss counters are global atomics so cache effectiveness can be
//! reported from any thread (see [`nfa_cache_stats`]).

use crate::nfa::Nfa;
use crate::regex::Regex;
use gts_graph::FxHashMap;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Entry cap per thread; the cache is cleared when it is exceeded (regexes
/// are tiny, so this bounds memory without an LRU's bookkeeping).
const MAX_ENTRIES: usize = 16_384;

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static CACHE: RefCell<FxHashMap<Regex, Arc<Nfa>>> = RefCell::new(FxHashMap::default());
}

impl Nfa {
    /// Like [`Nfa::from_regex`], but interned: returns a shared handle to
    /// the compiled automaton, compiling at most once per regex per
    /// thread.
    pub fn compiled(re: &Regex) -> Arc<Nfa> {
        CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(nfa) = cache.get(re) {
                HITS.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(nfa);
            }
            MISSES.fetch_add(1, Ordering::Relaxed);
            if cache.len() >= MAX_ENTRIES {
                cache.clear();
            }
            let nfa = Arc::new(Nfa::from_regex(re));
            cache.insert(re.clone(), Arc::clone(&nfa));
            nfa
        })
    }
}

/// Cumulative `(hits, misses)` of [`Nfa::compiled`] across all threads
/// since process start.
pub fn nfa_cache_stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::AtomSym;
    use gts_graph::{EdgeLabel, EdgeSym};

    #[test]
    fn compiled_interns_per_regex() {
        let r = Regex::edge(EdgeLabel(7)).then(Regex::edge(EdgeLabel(8)).star());
        let a = Nfa::compiled(&r);
        let b = Nfa::compiled(&r);
        assert!(Arc::ptr_eq(&a, &b), "second compile must hit the cache");
        let word =
            [AtomSym::Edge(EdgeSym::fwd(EdgeLabel(7))), AtomSym::Edge(EdgeSym::fwd(EdgeLabel(8)))];
        assert!(a.accepts(&word));
    }

    #[test]
    fn stats_move_monotonically() {
        let (h0, m0) = nfa_cache_stats();
        let r = Regex::edge(EdgeLabel(99));
        Nfa::compiled(&r);
        Nfa::compiled(&r);
        let (h1, m1) = nfa_cache_stats();
        assert!(h1 > h0, "the second compile is a hit");
        assert!(m1 >= m0);
    }
}
