//! # gts-query
//!
//! Conjunctive two-way regular path queries for the `gts` workspace —
//! the query language of *Static Analysis of Graph Database
//! Transformations* (PODS 2023, Section 3):
//!
//! * [`Regex`] — two-way regular expressions over node tests `Γ` and edge
//!   symbols `Σ±`, with reversal and the nesting operator `p[q]` of
//!   Appendix F;
//! * [`Nfa`] — Glushkov position automata with graph-product evaluation,
//!   language-finiteness analysis, and exhaustive word enumeration (the
//!   workhorse of the satisfiability engine);
//! * [`C2rpq`] / [`Uc2rpq`] — queries and unions, the acyclicity check on
//!   query multigraphs, and a complete evaluator over finite graphs (also
//!   the brute-force oracle for containment tests).
//!
//! ```
//! use gts_graph::Vocab;
//! use gts_query::{Regex, C2rpq, Atom, Var};
//!
//! // Example 3.2: vaccines with the antigens they target directly or
//! // through cross-reaction.
//! let mut v = Vocab::new();
//! let dt = v.edge_label("designTarget");
//! let cr = v.edge_label("crossReacting");
//! let q = C2rpq::new(2, vec![Var(0), Var(1)], vec![Atom {
//!     x: Var(0),
//!     y: Var(1),
//!     regex: Regex::edge(dt).then(Regex::edge(cr).star()),
//! }]);
//! assert!(q.is_acyclic());
//! ```

#![warn(missing_docs)]

mod c2rpq;
mod cache;
mod nfa;
mod nre;
mod regex;

pub use c2rpq::{Atom, C2rpq, Uc2rpq, Var};
pub use cache::nfa_cache_stats;
pub use nfa::Nfa;
pub use nre::{lower_nre, FlattenError, LoweredNre, NestTable, Nre, NreAtom, NreC2rpq, NreUc2rpq};
pub use regex::{AtomSym, Regex};
