//! Conjunctive two-way regular path queries (C2RPQs) and their unions
//! (Section 3 / Appendix A).
//!
//! A C2RPQ is `q(x̄) = ∃ȳ. φ1(z1, z1') ∧ … ∧ φk(zk, zk')` with two-way
//! regular expressions `φi`. The *query multigraph* has the variables as
//! nodes and an edge per non-trivial atom; the paper's transformations
//! require the multigraph to be acyclic (a forest without parallel edges or
//! self-loops), which is strictly stronger than Gaifman-graph acyclicity.

use crate::nfa::Nfa;
use crate::regex::{AtomSym, Regex};
use gts_graph::{FxHashMap, FxHashSet, Graph, NodeId, Vocab};

/// Per-atom relation views used by the join: `(by_x, by_y, pairs)`.
type RelRefs<'a> = (
    &'a FxHashMap<NodeId, Vec<NodeId>>,
    &'a FxHashMap<NodeId, Vec<NodeId>>,
    &'a FxHashSet<(NodeId, NodeId)>,
);

/// A query variable (an index local to its query).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Var(pub u32);

/// An atom `φ(x, y)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Atom {
    /// Source variable.
    pub x: Var,
    /// Target variable.
    pub y: Var,
    /// The two-way regular expression.
    pub regex: Regex,
}

impl Atom {
    /// Trivial atoms are `∅(x,x)`, `ε(x,x)`, `A(x,x)` — they do not
    /// contribute edges to the query multigraph (Appendix A).
    pub fn is_trivial(&self) -> bool {
        self.x == self.y
            && matches!(self.regex, Regex::Empty | Regex::Epsilon | Regex::Sym(AtomSym::Node(_)))
    }
}

/// A conjunctive two-way regular path query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct C2rpq {
    /// Total number of variables (ids `0..num_vars`).
    pub num_vars: u32,
    /// Free (answer) variables `x̄`, in answer-tuple order; the rest are
    /// existential.
    pub free: Vec<Var>,
    /// The atoms.
    pub atoms: Vec<Atom>,
}

impl C2rpq {
    /// Creates a query, validating variable indices.
    pub fn new(num_vars: u32, free: Vec<Var>, atoms: Vec<Atom>) -> C2rpq {
        for v in free.iter().chain(atoms.iter().flat_map(|a| [&a.x, &a.y])) {
            assert!(v.0 < num_vars, "variable {v:?} out of range (num_vars={num_vars})");
        }
        C2rpq { num_vars, free, atoms }
    }

    /// `true` iff the query is Boolean (no free variables).
    pub fn is_boolean(&self) -> bool {
        self.free.is_empty()
    }

    /// Drops all free variables (existential closure).
    pub fn boolean_closure(&self) -> C2rpq {
        C2rpq { num_vars: self.num_vars, free: Vec::new(), atoms: self.atoms.clone() }
    }

    /// Size measure: total regex size plus variable count.
    pub fn size(&self) -> usize {
        self.num_vars as usize + self.atoms.iter().map(|a| a.regex.size()).sum::<usize>()
    }

    /// Acyclicity of the query multigraph: no self-loop atoms, no parallel
    /// atoms, and the underlying undirected multigraph is a forest.
    pub fn is_acyclic(&self) -> bool {
        let mut parent: Vec<u32> = (0..self.num_vars).collect();
        fn find(parent: &mut [u32], mut v: u32) -> u32 {
            while parent[v as usize] != v {
                parent[v as usize] = parent[parent[v as usize] as usize];
                v = parent[v as usize];
            }
            v
        }
        for atom in self.atoms.iter().filter(|a| !a.is_trivial()) {
            if atom.x == atom.y {
                return false;
            }
            let (rx, ry) = (find(&mut parent, atom.x.0), find(&mut parent, atom.y.0));
            if rx == ry {
                return false; // parallel edge or larger cycle
            }
            parent[rx as usize] = ry;
        }
        true
    }

    /// Connected components of the query multigraph (*all* atoms connect
    /// their endpoints here, trivial or not, since `A(x,x)` still constrains
    /// `x`). Isolated variables form their own components. Returns, per
    /// component, the sorted variable list and the atom indices.
    pub fn connected_components(&self) -> Vec<(Vec<Var>, Vec<usize>)> {
        let mut parent: Vec<u32> = (0..self.num_vars).collect();
        fn find(parent: &mut [u32], mut v: u32) -> u32 {
            while parent[v as usize] != v {
                parent[v as usize] = parent[parent[v as usize] as usize];
                v = parent[v as usize];
            }
            v
        }
        for atom in &self.atoms {
            let (rx, ry) = (find(&mut parent, atom.x.0), find(&mut parent, atom.y.0));
            if rx != ry {
                parent[rx as usize] = ry;
            }
        }
        let mut by_root: FxHashMap<u32, (Vec<Var>, Vec<usize>)> = FxHashMap::default();
        for v in 0..self.num_vars {
            let r = find(&mut parent, v);
            by_root.entry(r).or_default().0.push(Var(v));
        }
        for (i, atom) in self.atoms.iter().enumerate() {
            let r = find(&mut parent, atom.x.0);
            by_root.entry(r).or_default().1.push(i);
        }
        let mut comps: Vec<_> = by_root.into_values().collect();
        comps.sort_by_key(|(vars, _)| vars[0]);
        comps
    }

    /// `true` iff the query multigraph is connected (at most one component).
    pub fn is_connected(&self) -> bool {
        self.connected_components().len() <= 1
    }

    /// Evaluates the query over a finite graph, returning the set of answer
    /// tuples (aligned with [`C2rpq::free`]). Uses NFA-product evaluation
    /// per atom followed by a backtracking join, and therefore supports
    /// cyclic queries too (needed by the brute-force containment oracle).
    pub fn eval(&self, g: &Graph) -> FxHashSet<Vec<NodeId>> {
        let mut answers = FxHashSet::default();
        self.eval_inner(g, &mut |asg| {
            answers.insert(self.free.iter().map(|v| asg[v.0 as usize].unwrap()).collect());
            false // keep enumerating
        });
        answers
    }

    /// Boolean satisfaction `G ⊨ q` (early exit on the first match).
    pub fn holds(&self, g: &Graph) -> bool {
        let mut found = false;
        self.eval_inner(g, &mut |_| {
            found = true;
            true // stop
        });
        found
    }

    /// Core join: calls `on_match` for every total assignment satisfying
    /// all atoms; stops early when it returns `true`.
    fn eval_inner(&self, g: &Graph, on_match: &mut dyn FnMut(&[Option<NodeId>]) -> bool) {
        // Per-atom relations with indexes on both columns.
        struct Rel {
            by_x: FxHashMap<NodeId, Vec<NodeId>>,
            by_y: FxHashMap<NodeId, Vec<NodeId>>,
            pairs: FxHashSet<(NodeId, NodeId)>,
        }
        let rels: Vec<Rel> = self
            .atoms
            .iter()
            .map(|a| {
                let pairs = Nfa::from_regex(&a.regex).pairs(g);
                let mut by_x: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();
                let mut by_y: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();
                for &(u, v) in &pairs {
                    by_x.entry(u).or_default().push(v);
                    by_y.entry(v).or_default().push(u);
                }
                Rel { by_x, by_y, pairs }
            })
            .collect();
        // Early exit: an atom with an empty relation has no matches.
        if self.atoms.iter().zip(&rels).any(|(_, r)| r.pairs.is_empty()) && !self.atoms.is_empty() {
            return;
        }

        // Variable order: as given; candidates derived from adjacent
        // already-assigned atoms when possible.
        let mut asg: Vec<Option<NodeId>> = vec![None; self.num_vars as usize];
        self.backtrack(g, &rels_adapter(&rels), 0, &mut asg, on_match);

        fn rels_adapter(rels: &[Rel]) -> Vec<RelRefs<'_>> {
            rels.iter().map(|r| (&r.by_x, &r.by_y, &r.pairs)).collect()
        }
    }

    fn backtrack(
        &self,
        g: &Graph,
        rels: &[RelRefs<'_>],
        var: u32,
        asg: &mut Vec<Option<NodeId>>,
        on_match: &mut dyn FnMut(&[Option<NodeId>]) -> bool,
    ) -> bool {
        if var == self.num_vars {
            return on_match(asg);
        }
        // Candidate narrowing: if some atom connects `var` to an assigned
        // variable, use the indexed relation; otherwise the whole domain.
        let v = Var(var);
        let mut candidates: Option<Vec<NodeId>> = None;
        for (i, a) in self.atoms.iter().enumerate() {
            if a.x == v && a.y.0 < var {
                let fixed = asg[a.y.0 as usize].unwrap();
                let c = rels[i].1.get(&fixed).cloned().unwrap_or_default();
                candidates = Some(restrict(candidates, c));
            } else if a.y == v && a.x.0 < var {
                let fixed = asg[a.x.0 as usize].unwrap();
                let c = rels[i].0.get(&fixed).cloned().unwrap_or_default();
                candidates = Some(restrict(candidates, c));
            }
        }
        let domain: Vec<NodeId> = match candidates {
            Some(c) => c,
            None => g.nodes().collect(),
        };
        'outer: for node in domain {
            asg[var as usize] = Some(node);
            // Check all atoms fully assigned at this point.
            for (i, a) in self.atoms.iter().enumerate() {
                if a.x.0 <= var && a.y.0 <= var {
                    let (ux, uy) = (asg[a.x.0 as usize].unwrap(), asg[a.y.0 as usize].unwrap());
                    if !rels[i].2.contains(&(ux, uy)) {
                        asg[var as usize] = None;
                        continue 'outer;
                    }
                }
            }
            if self.backtrack(g, rels, var + 1, asg, on_match) {
                return true;
            }
            asg[var as usize] = None;
        }
        false
    }

    /// Renders the query using `vocab`, e.g.
    /// `q(x0) = ∃x1. (designTarget·crossReacting*)(x0, x1)`.
    pub fn render(&self, vocab: &Vocab) -> String {
        let head: Vec<String> = self.free.iter().map(|v| format!("x{}", v.0)).collect();
        let exist: Vec<String> = (0..self.num_vars)
            .map(Var)
            .filter(|v| !self.free.contains(v))
            .map(|v| format!("x{}", v.0))
            .collect();
        let body: Vec<String> = self
            .atoms
            .iter()
            .map(|a| format!("{}(x{}, x{})", a.regex.render(vocab), a.x.0, a.y.0))
            .collect();
        let prefix =
            if exist.is_empty() { String::new() } else { format!("∃{}. ", exist.join(",")) };
        format!(
            "q({}) = {}{}",
            head.join(","),
            prefix,
            if body.is_empty() { "⊤".into() } else { body.join(" ∧ ") }
        )
    }
}

fn restrict(current: Option<Vec<NodeId>>, new: Vec<NodeId>) -> Vec<NodeId> {
    match current {
        None => new,
        Some(cur) => {
            let set: FxHashSet<NodeId> = new.into_iter().collect();
            cur.into_iter().filter(|n| set.contains(n)).collect()
        }
    }
}

/// A union of C2RPQs (UC2RPQ), represented as a set of disjuncts of equal
/// arity. The empty union is the unsatisfiable query.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Uc2rpq {
    /// The disjuncts.
    pub disjuncts: Vec<C2rpq>,
}

impl Uc2rpq {
    /// The empty union (no answers on any graph).
    pub fn empty() -> Uc2rpq {
        Uc2rpq::default()
    }

    /// Union of one query.
    pub fn single(q: C2rpq) -> Uc2rpq {
        Uc2rpq { disjuncts: vec![q] }
    }

    /// Arity (number of free variables); `None` for the empty union.
    pub fn arity(&self) -> Option<usize> {
        self.disjuncts.first().map(|q| q.free.len())
    }

    /// `true` iff every disjunct is Boolean.
    pub fn is_boolean(&self) -> bool {
        self.disjuncts.iter().all(|q| q.is_boolean())
    }

    /// `true` iff every disjunct is acyclic (Appendix A).
    pub fn is_acyclic(&self) -> bool {
        self.disjuncts.iter().all(|q| q.is_acyclic())
    }

    /// Union evaluation.
    pub fn eval(&self, g: &Graph) -> FxHashSet<Vec<NodeId>> {
        let mut out = FxHashSet::default();
        for q in &self.disjuncts {
            out.extend(q.eval(g));
        }
        out
    }

    /// Boolean satisfaction.
    pub fn holds(&self, g: &Graph) -> bool {
        self.disjuncts.iter().any(|q| q.holds(g))
    }

    /// Total size.
    pub fn size(&self) -> usize {
        self.disjuncts.iter().map(|q| q.size()).sum()
    }

    /// Renders all disjuncts, one per line.
    pub fn render(&self, vocab: &Vocab) -> String {
        if self.disjuncts.is_empty() {
            return "∅ (empty union)".into();
        }
        self.disjuncts.iter().map(|q| q.render(vocab)).collect::<Vec<_>>().join("\n∪ ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn medical() -> (Vocab, Graph) {
        let mut v = Vocab::new();
        let vaccine = v.node_label("Vaccine");
        let antigen = v.node_label("Antigen");
        let dt = v.edge_label("designTarget");
        let cr = v.edge_label("crossReacting");
        let mut g = Graph::new();
        let vac = g.add_labeled_node([vaccine]);
        let a1 = g.add_labeled_node([antigen]);
        let a2 = g.add_labeled_node([antigen]);
        g.add_edge(vac, dt, a1);
        g.add_edge(a1, cr, a2);
        (v, g)
    }

    /// Example 3.2: Vaccine·designTarget·crossReacting*·Antigen.
    fn example_3_2(v: &mut Vocab) -> C2rpq {
        let vaccine = v.node_label("Vaccine");
        let antigen = v.node_label("Antigen");
        let dt = v.edge_label("designTarget");
        let cr = v.edge_label("crossReacting");
        let re = Regex::node(vaccine)
            .then(Regex::edge(dt))
            .then(Regex::edge(cr).star())
            .then(Regex::node(antigen));
        C2rpq::new(2, vec![Var(0), Var(1)], vec![Atom { x: Var(0), y: Var(1), regex: re }])
    }

    #[test]
    fn example_3_2_selects_direct_and_cross_reacting_targets() {
        let (mut v, g) = medical();
        let q = example_3_2(&mut v);
        let ans = q.eval(&g);
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&vec![NodeId(0), NodeId(1)]));
        assert!(ans.contains(&vec![NodeId(0), NodeId(2)]));
    }

    #[test]
    fn boolean_closure_and_holds() {
        let (mut v, g) = medical();
        let q = example_3_2(&mut v).boolean_closure();
        assert!(q.is_boolean());
        assert!(q.holds(&g));
        let empty_g = Graph::new();
        assert!(!q.holds(&empty_g));
    }

    #[test]
    fn acyclicity_detects_cycles() {
        let re = Regex::edge(gts_graph::EdgeLabel(0));
        // Path x0 -r- x1 -r- x2: acyclic.
        let path = C2rpq::new(
            3,
            vec![],
            vec![
                Atom { x: Var(0), y: Var(1), regex: re.clone() },
                Atom { x: Var(1), y: Var(2), regex: re.clone() },
            ],
        );
        assert!(path.is_acyclic());
        // Parallel atoms between x0, x1: cyclic (Gaifman would say acyclic!).
        let parallel = C2rpq::new(
            2,
            vec![],
            vec![
                Atom { x: Var(0), y: Var(1), regex: re.clone() },
                Atom { x: Var(0), y: Var(1), regex: re.clone() },
            ],
        );
        assert!(!parallel.is_acyclic());
        // Self loop with a non-trivial regex: cyclic.
        let selfloop = C2rpq::new(1, vec![], vec![Atom { x: Var(0), y: Var(0), regex: re }]);
        assert!(!selfloop.is_acyclic());
        // Trivial atom A(x,x): still acyclic.
        let trivial = C2rpq::new(
            1,
            vec![],
            vec![Atom { x: Var(0), y: Var(0), regex: Regex::node(gts_graph::NodeLabel(0)) }],
        );
        assert!(trivial.is_acyclic());
    }

    #[test]
    fn connectivity_and_components() {
        let re = Regex::edge(gts_graph::EdgeLabel(0));
        let q = C2rpq::new(
            4,
            vec![],
            vec![
                Atom { x: Var(0), y: Var(1), regex: re.clone() },
                Atom { x: Var(2), y: Var(3), regex: re },
            ],
        );
        assert!(!q.is_connected());
        let comps = q.connected_components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].0, vec![Var(0), Var(1)]);
        assert_eq!(comps[0].1, vec![0]);
    }

    #[test]
    fn cyclic_queries_evaluate_correctly() {
        // ∃x. r(x,x) — needs a self-loop.
        let mut v = Vocab::new();
        let r = v.edge_label("r");
        let q = C2rpq::new(1, vec![], vec![Atom { x: Var(0), y: Var(0), regex: Regex::edge(r) }]);
        assert!(!q.is_acyclic());
        let mut g = Graph::new();
        let n0 = g.add_node();
        let n1 = g.add_node();
        g.add_edge(n0, r, n1);
        assert!(!q.holds(&g));
        g.add_edge(n1, r, n1);
        assert!(q.holds(&g));
    }

    #[test]
    fn equality_via_epsilon_atom() {
        // ε(x,y) forces x = y (Section 4 note).
        let mut v = Vocab::new();
        let r = v.edge_label("r");
        let q = C2rpq::new(
            2,
            vec![Var(0), Var(1)],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::Epsilon }],
        );
        let mut g = Graph::new();
        let n0 = g.add_node();
        let n1 = g.add_node();
        g.add_edge(n0, r, n1);
        let ans = q.eval(&g);
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&vec![n0, n0]));
        assert!(ans.contains(&vec![n1, n1]));
    }

    #[test]
    fn union_semantics() {
        let (mut v, g) = medical();
        let q1 = example_3_2(&mut v);
        // q2: (Vaccine)(x) × arbitrary y — returns nothing here; use a
        // variant selecting the vaccine and its direct target only.
        let dt = v.find_edge_label("designTarget").unwrap();
        let q2 = C2rpq::new(
            2,
            vec![Var(0), Var(1)],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(dt) }],
        );
        let u = Uc2rpq { disjuncts: vec![q2, q1] };
        assert_eq!(u.eval(&g).len(), 2);
        assert!(u.is_acyclic());
        assert_eq!(u.arity(), Some(2));
        assert!(!Uc2rpq::empty().holds(&g));
    }

    #[test]
    fn render_mentions_quantifiers() {
        let mut v = Vocab::new();
        let q = example_3_2(&mut v);
        let b = q.boolean_closure();
        let r = b.render(&v);
        assert!(r.starts_with("q() = ∃x0,x1."));
    }
}
