//! Two-way *nested* regular expressions (NREs) — the query extension the
//! paper singles out in Section 7 ("It is straightforward to extend our
//! methods to two-way nested regular expressions [52]", the navigational
//! language nSPARQL of Pérez, Arenas & Gutiérrez).
//!
//! An NRE extends two-way regular expressions with a *nesting* operator
//! `⟨φ⟩`: a node test that holds at `u` iff some `φ`-path starts at `u`
//! (an existential branch off the main path). Note this is the genuine
//! nesting semantics, not the `p[q] := p·q·q⁻` expansion of Appendix F,
//! which coincides with it only in the functional situations where the
//! paper applies it ([`crate::Regex::nest`]).
//!
//! Two exact translations back into the plain pipeline are provided:
//!
//! * [`NreC2rpq::lower`] — *interning*: every nest becomes a fresh
//!   synthetic node label whose extension is defined elsewhere (for
//!   finite-graph evaluation, by materializing the label; for the
//!   containment pipeline, by the backward Horn derivation in
//!   `gts-containment`). Works for **all** NREs, including nests under
//!   `*`, but only on positions where the label may be over-approximated
//!   (the contained side of a containment).
//! * [`NreC2rpq::flatten`] — *flattening*: nests become extra existential
//!   variables and atoms, alternatives distribute into a union. Exact and
//!   usable on *both* sides of a containment, but impossible for nests
//!   under `*`/`+` ([`FlattenError::NestUnderStar`]).

use crate::c2rpq::{Atom, C2rpq, Uc2rpq, Var};
use crate::nfa::Nfa;
use crate::regex::{AtomSym, Regex};
use gts_graph::{EdgeSym, FxHashSet, Graph, LabelSet, NodeId, NodeLabel, Vocab};

/// A two-way nested regular expression.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Nre {
    /// `∅` — matches no path.
    Empty,
    /// `ε` — matches the empty path.
    Epsilon,
    /// A plain symbol (node test or edge symbol).
    Sym(AtomSym),
    /// The nesting test `⟨φ⟩` — stays at the current node `u` and requires
    /// some `φ`-path starting at `u`.
    Nest(Box<Nre>),
    /// Concatenation `φ·ψ`.
    Concat(Box<Nre>, Box<Nre>),
    /// Alternation `φ+ψ`.
    Alt(Box<Nre>, Box<Nre>),
    /// Kleene star `φ*`.
    Star(Box<Nre>),
}

impl From<&Regex> for Nre {
    fn from(re: &Regex) -> Nre {
        match re {
            Regex::Empty => Nre::Empty,
            Regex::Epsilon => Nre::Epsilon,
            Regex::Sym(s) => Nre::Sym(*s),
            Regex::Concat(a, b) => Nre::Concat(Box::new((&**a).into()), Box::new((&**b).into())),
            Regex::Alt(a, b) => Nre::Alt(Box::new((&**a).into()), Box::new((&**b).into())),
            Regex::Star(a) => Nre::Star(Box::new((&**a).into())),
        }
    }
}

impl Nre {
    /// Node test `A`.
    pub fn node(a: NodeLabel) -> Nre {
        Nre::Sym(AtomSym::Node(a))
    }

    /// Forward edge symbol `r`.
    pub fn edge(r: gts_graph::EdgeLabel) -> Nre {
        Nre::Sym(AtomSym::Edge(EdgeSym::fwd(r)))
    }

    /// Arbitrary edge symbol (forward or inverse).
    pub fn sym(s: EdgeSym) -> Nre {
        Nre::Sym(AtomSym::Edge(s))
    }

    /// The nesting test `⟨φ⟩`.
    pub fn nest(inner: Nre) -> Nre {
        Nre::Nest(Box::new(inner))
    }

    /// Concatenation with unit/zero simplification.
    pub fn then(self, other: Nre) -> Nre {
        match (self, other) {
            (Nre::Empty, _) | (_, Nre::Empty) => Nre::Empty,
            (Nre::Epsilon, r) | (r, Nre::Epsilon) => r,
            (a, b) => Nre::Concat(Box::new(a), Box::new(b)),
        }
    }

    /// Alternation with zero simplification.
    pub fn or(self, other: Nre) -> Nre {
        match (self, other) {
            (Nre::Empty, r) | (r, Nre::Empty) => r,
            (a, b) => Nre::Alt(Box::new(a), Box::new(b)),
        }
    }

    /// Kleene star with trivial-body simplification.
    pub fn star(self) -> Nre {
        match self {
            Nre::Empty | Nre::Epsilon => Nre::Epsilon,
            r => Nre::Star(Box::new(r)),
        }
    }

    /// `true` iff the expression contains no nesting test (i.e. it is a
    /// plain two-way regular expression).
    pub fn is_plain(&self) -> bool {
        match self {
            Nre::Empty | Nre::Epsilon | Nre::Sym(_) => true,
            Nre::Nest(_) => false,
            Nre::Concat(a, b) | Nre::Alt(a, b) => a.is_plain() && b.is_plain(),
            Nre::Star(a) => a.is_plain(),
        }
    }

    /// Converts back to a plain regex, or `None` if a nest occurs.
    pub fn as_regex(&self) -> Option<Regex> {
        Some(match self {
            Nre::Empty => Regex::Empty,
            Nre::Epsilon => Regex::Epsilon,
            Nre::Sym(s) => Regex::Sym(*s),
            Nre::Nest(_) => return None,
            Nre::Concat(a, b) => a.as_regex()?.then(b.as_regex()?),
            Nre::Alt(a, b) => a.as_regex()?.or(b.as_regex()?),
            Nre::Star(a) => a.as_regex()?.star(),
        })
    }

    /// The reversed expression: nesting tests stay at the node, so they are
    /// self-inverse — the inner branch is *not* reversed.
    pub fn reverse(&self) -> Nre {
        match self {
            Nre::Empty => Nre::Empty,
            Nre::Epsilon => Nre::Epsilon,
            Nre::Sym(AtomSym::Node(a)) => Nre::node(*a),
            Nre::Sym(AtomSym::Edge(r)) => Nre::sym(r.inv()),
            Nre::Nest(inner) => Nre::Nest(inner.clone()),
            Nre::Concat(a, b) => Nre::Concat(Box::new(b.reverse()), Box::new(a.reverse())),
            Nre::Alt(a, b) => Nre::Alt(Box::new(a.reverse()), Box::new(b.reverse())),
            Nre::Star(a) => Nre::Star(Box::new(a.reverse())),
        }
    }

    /// Number of syntax-tree nodes.
    pub fn size(&self) -> usize {
        match self {
            Nre::Empty | Nre::Epsilon | Nre::Sym(_) => 1,
            Nre::Nest(a) | Nre::Star(a) => 1 + a.size(),
            Nre::Concat(a, b) | Nre::Alt(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Maximum nesting depth (0 for plain expressions).
    pub fn nest_depth(&self) -> usize {
        match self {
            Nre::Empty | Nre::Epsilon | Nre::Sym(_) => 0,
            Nre::Nest(a) => 1 + a.nest_depth(),
            Nre::Star(a) => a.nest_depth(),
            Nre::Concat(a, b) | Nre::Alt(a, b) => a.nest_depth().max(b.nest_depth()),
        }
    }

    /// `true` iff some nesting test occurs under a star.
    pub fn has_nest_under_star(&self) -> bool {
        match self {
            Nre::Empty | Nre::Epsilon | Nre::Sym(_) => false,
            Nre::Nest(a) => a.has_nest_under_star(),
            Nre::Star(a) => !a.is_plain(),
            Nre::Concat(a, b) | Nre::Alt(a, b) => {
                a.has_nest_under_star() || b.has_nest_under_star()
            }
        }
    }

    /// The binary relation `[φ]_G` over the nodes of a finite graph,
    /// computed by materializing nest labels bottom-up and running the
    /// plain product evaluator.
    pub fn pairs(&self, g: &Graph, vocab: &mut Vocab) -> FxHashSet<(NodeId, NodeId)> {
        let mut table = NestTable::default();
        let re = lower_nre(self, vocab, &mut table);
        let gm = table.materialize(g);
        Nfa::from_regex(&re).pairs(&gm)
    }

    /// Renders the expression using `vocab`; nests print as `⟨…⟩`.
    pub fn render(&self, vocab: &Vocab) -> String {
        match self {
            Nre::Empty => "∅".into(),
            Nre::Epsilon => "ε".into(),
            Nre::Sym(s) => s.render(vocab),
            Nre::Nest(a) => format!("⟨{}⟩", a.render(vocab)),
            Nre::Concat(a, b) => format!("({}·{})", a.render(vocab), b.render(vocab)),
            Nre::Alt(a, b) => format!("({}+{})", a.render(vocab), b.render(vocab)),
            Nre::Star(a) => format!("{}*", a.render(vocab)),
        }
    }
}

/// An atom `φ(x, y)` with an NRE body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NreAtom {
    /// Source variable.
    pub x: Var,
    /// Target variable.
    pub y: Var,
    /// The nested regular expression.
    pub nre: Nre,
}

/// A conjunctive query over NRE atoms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NreC2rpq {
    /// Total number of variables (ids `0..num_vars`).
    pub num_vars: u32,
    /// Free (answer) variables.
    pub free: Vec<Var>,
    /// The atoms.
    pub atoms: Vec<NreAtom>,
}

/// A union of NRE queries.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct NreUc2rpq {
    /// The disjuncts.
    pub disjuncts: Vec<NreC2rpq>,
}

/// The table of interned nests produced by lowering: one fresh synthetic
/// node label per nest occurrence, with the (already-lowered) inner regex,
/// in dependency order (inner nests first).
#[derive(Clone, Debug, Default)]
pub struct NestTable {
    /// `(label, inner)` pairs: `label` holds at `u` iff some `inner`-path
    /// starts at `u`. `inner` may mention labels of *earlier* entries.
    pub entries: Vec<(NodeLabel, Regex)>,
}

impl NestTable {
    /// The set of all nest labels.
    pub fn labels(&self) -> LabelSet {
        LabelSet::from_iter(self.entries.iter().map(|(l, _)| l.0))
    }

    /// Materializes the nest labels on a copy of `g` (bottom-up), so that
    /// plain evaluation of lowered expressions is exact.
    pub fn materialize(&self, g: &Graph) -> Graph {
        let mut gm = g.clone();
        for (label, inner) in &self.entries {
            let nfa = Nfa::from_regex(inner);
            let holders: Vec<NodeId> =
                gm.nodes().filter(|&u| !nfa.reachable_from(&gm, u).is_empty()).collect();
            for u in holders {
                gm.add_label(u, *label);
            }
        }
        gm
    }
}

/// Lowers an NRE to a plain regex, interning each nest as a fresh
/// synthetic node label appended to `table`.
pub fn lower_nre(nre: &Nre, vocab: &mut Vocab, table: &mut NestTable) -> Regex {
    match nre {
        Nre::Empty => Regex::Empty,
        Nre::Epsilon => Regex::Epsilon,
        Nre::Sym(s) => Regex::Sym(*s),
        Nre::Nest(inner) => {
            let inner_re = lower_nre(inner, vocab, table);
            let label = vocab.fresh_node_label("nest");
            table.entries.push((label, inner_re));
            Regex::node(label)
        }
        Nre::Concat(a, b) => {
            let la = lower_nre(a, vocab, table);
            let lb = lower_nre(b, vocab, table);
            la.then(lb)
        }
        Nre::Alt(a, b) => {
            let la = lower_nre(a, vocab, table);
            let lb = lower_nre(b, vocab, table);
            la.or(lb)
        }
        Nre::Star(a) => lower_nre(a, vocab, table).star(),
    }
}

/// A lowered NRE query: a plain UC2RPQ over an extended label alphabet,
/// plus the nest table defining the synthetic labels.
#[derive(Clone, Debug)]
pub struct LoweredNre {
    /// The plain query (nests replaced by synthetic node tests).
    pub query: Uc2rpq,
    /// Definitions of the synthetic labels.
    pub table: NestTable,
}

/// Why flattening an NRE query failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlattenError {
    /// A nesting test occurs under `*`/`+` — flattening would need
    /// unboundedly many branch variables.
    NestUnderStar,
    /// Distributing alternatives produced more than the cap allows.
    TooManyAlternatives,
}

/// Cap on the number of disjuncts produced by flattening.
const MAX_FLAT_DISJUNCTS: usize = 256;

impl NreC2rpq {
    /// Creates a query, validating variable indices.
    pub fn new(num_vars: u32, free: Vec<Var>, atoms: Vec<NreAtom>) -> NreC2rpq {
        for v in free.iter().chain(atoms.iter().flat_map(|a| [&a.x, &a.y])) {
            assert!(v.0 < num_vars, "variable {v:?} out of range (num_vars={num_vars})");
        }
        NreC2rpq { num_vars, free, atoms }
    }

    /// Trivial atoms stay at one variable: `∅/ε/A/⟨φ⟩ (x,x)`.
    fn atom_is_trivial(a: &NreAtom) -> bool {
        a.x == a.y
            && matches!(
                a.nre,
                Nre::Empty | Nre::Epsilon | Nre::Sym(AtomSym::Node(_)) | Nre::Nest(_)
            )
    }

    /// Acyclicity of the query multigraph (nests live inside the regexes
    /// and do not contribute edges), mirroring [`C2rpq::is_acyclic`].
    pub fn is_acyclic(&self) -> bool {
        let mut parent: Vec<u32> = (0..self.num_vars).collect();
        fn find(parent: &mut [u32], mut v: u32) -> u32 {
            while parent[v as usize] != v {
                parent[v as usize] = parent[parent[v as usize] as usize];
                v = parent[v as usize];
            }
            v
        }
        for atom in self.atoms.iter().filter(|a| !Self::atom_is_trivial(a)) {
            if atom.x == atom.y {
                return false;
            }
            let (rx, ry) = (find(&mut parent, atom.x.0), find(&mut parent, atom.y.0));
            if rx == ry {
                return false;
            }
            parent[rx as usize] = ry;
        }
        true
    }

    /// Total size (variables plus regex sizes).
    pub fn size(&self) -> usize {
        self.num_vars as usize + self.atoms.iter().map(|a| a.nre.size()).sum::<usize>()
    }

    /// Lowers the query by interning nests (exact on the contained side of
    /// a containment, and for finite evaluation after
    /// [`NestTable::materialize`]).
    pub fn lower(&self, vocab: &mut Vocab) -> LoweredNre {
        let mut table = NestTable::default();
        let atoms = self
            .atoms
            .iter()
            .map(|a| Atom { x: a.x, y: a.y, regex: lower_nre(&a.nre, vocab, &mut table) })
            .collect();
        LoweredNre {
            query: Uc2rpq::single(C2rpq::new(self.num_vars, self.free.clone(), atoms)),
            table,
        }
    }

    /// Evaluates the query over a finite graph (exact for all NREs).
    pub fn eval(&self, g: &Graph, vocab: &mut Vocab) -> FxHashSet<Vec<NodeId>> {
        let lowered = self.lower(vocab);
        let gm = lowered.table.materialize(g);
        lowered.query.eval(&gm)
    }

    /// Boolean satisfaction over a finite graph.
    pub fn holds(&self, g: &Graph, vocab: &mut Vocab) -> bool {
        let lowered = self.lower(vocab);
        let gm = lowered.table.materialize(g);
        lowered.query.holds(&gm)
    }

    /// Flattens nests into extra existential variables and atoms — the
    /// exact translation into plain C2RPQs, usable on both sides of a
    /// containment. Alternatives containing nests distribute into a union;
    /// nests under `*`/`+` are rejected.
    pub fn flatten(&self) -> Result<Vec<C2rpq>, FlattenError> {
        let mut next_var = self.num_vars;
        // Alternatives of atom sets, multiplied across the original atoms.
        let mut conjuncts: Vec<Vec<Atom>> = vec![Vec::new()];
        for a in &self.atoms {
            let alts = flatten_nre(&a.nre, a.x, a.y, &mut next_var)?;
            let mut grown = Vec::with_capacity(conjuncts.len() * alts.len());
            for base in &conjuncts {
                for alt in &alts {
                    if grown.len() >= MAX_FLAT_DISJUNCTS {
                        return Err(FlattenError::TooManyAlternatives);
                    }
                    let mut c = base.clone();
                    c.extend(alt.iter().cloned());
                    grown.push(c);
                }
            }
            conjuncts = grown;
            if conjuncts.is_empty() {
                break; // an atom with no alternatives: the query is empty
            }
        }
        Ok(conjuncts
            .into_iter()
            .map(|atoms| C2rpq::new(next_var, self.free.clone(), atoms))
            .collect())
    }

    /// Renders the query using `vocab`.
    pub fn render(&self, vocab: &Vocab) -> String {
        let head: Vec<String> = self.free.iter().map(|v| format!("x{}", v.0)).collect();
        let body: Vec<String> = self
            .atoms
            .iter()
            .map(|a| format!("{}(x{}, x{})", a.nre.render(vocab), a.x.0, a.y.0))
            .collect();
        format!("q({}) = {}", head.join(","), body.join(" ∧ "))
    }
}

/// Flattens one NRE read from `x` to `y`: returns the alternatives, each a
/// set of plain atoms over possibly-fresh existential variables.
fn flatten_nre(
    nre: &Nre,
    x: Var,
    y: Var,
    next_var: &mut u32,
) -> Result<Vec<Vec<Atom>>, FlattenError> {
    // Plain subtrees collapse to a single atom.
    if let Some(re) = nre.as_regex() {
        return Ok(vec![vec![Atom { x, y, regex: re }]]);
    }
    match nre {
        Nre::Alt(a, b) => {
            let mut alts = flatten_nre(a, x, y, next_var)?;
            alts.extend(flatten_nre(b, x, y, next_var)?);
            if alts.len() > MAX_FLAT_DISJUNCTS {
                return Err(FlattenError::TooManyAlternatives);
            }
            Ok(alts)
        }
        Nre::Concat(a, b) => {
            let mid = Var(*next_var);
            *next_var += 1;
            let left = flatten_nre(a, x, mid, next_var)?;
            let right = flatten_nre(b, mid, y, next_var)?;
            let mut out = Vec::with_capacity(left.len() * right.len());
            for l in &left {
                for r in &right {
                    if out.len() >= MAX_FLAT_DISJUNCTS {
                        return Err(FlattenError::TooManyAlternatives);
                    }
                    let mut c = l.clone();
                    c.extend(r.iter().cloned());
                    out.push(c);
                }
            }
            Ok(out)
        }
        Nre::Nest(inner) => {
            // ⟨φ⟩(x,y): x = y and some φ-path leaves x toward a fresh
            // branch variable.
            let branch = Var(*next_var);
            *next_var += 1;
            let inner_alts = flatten_nre(inner, x, branch, next_var)?;
            Ok(inner_alts
                .into_iter()
                .map(|mut atoms| {
                    atoms.push(Atom { x, y, regex: Regex::Epsilon });
                    atoms
                })
                .collect())
        }
        Nre::Star(_) => Err(FlattenError::NestUnderStar),
        // Plain leaves were handled by the `as_regex` fast path.
        Nre::Empty | Nre::Epsilon | Nre::Sym(_) => unreachable!("plain NRE reached match"),
    }
}

impl NreUc2rpq {
    /// Union of one query.
    pub fn single(q: NreC2rpq) -> NreUc2rpq {
        NreUc2rpq { disjuncts: vec![q] }
    }

    /// Embeds a plain union.
    pub fn from_plain(q: &Uc2rpq) -> NreUc2rpq {
        NreUc2rpq {
            disjuncts: q
                .disjuncts
                .iter()
                .map(|d| NreC2rpq {
                    num_vars: d.num_vars,
                    free: d.free.clone(),
                    atoms: d
                        .atoms
                        .iter()
                        .map(|a| NreAtom { x: a.x, y: a.y, nre: (&a.regex).into() })
                        .collect(),
                })
                .collect(),
        }
    }

    /// `true` iff every disjunct is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.disjuncts.iter().all(|d| d.is_acyclic())
    }

    /// Total size.
    pub fn size(&self) -> usize {
        self.disjuncts.iter().map(|d| d.size()).sum()
    }

    /// Lowers all disjuncts into one plain union sharing a nest table.
    pub fn lower(&self, vocab: &mut Vocab) -> LoweredNre {
        let mut table = NestTable::default();
        let disjuncts = self
            .disjuncts
            .iter()
            .map(|d| {
                let atoms = d
                    .atoms
                    .iter()
                    .map(|a| Atom { x: a.x, y: a.y, regex: lower_nre(&a.nre, vocab, &mut table) })
                    .collect();
                C2rpq::new(d.num_vars, d.free.clone(), atoms)
            })
            .collect();
        LoweredNre { query: Uc2rpq { disjuncts }, table }
    }

    /// Flattens all disjuncts into one plain union.
    pub fn flatten(&self) -> Result<Uc2rpq, FlattenError> {
        let mut disjuncts = Vec::new();
        for d in &self.disjuncts {
            disjuncts.extend(d.flatten()?);
            if disjuncts.len() > MAX_FLAT_DISJUNCTS {
                return Err(FlattenError::TooManyAlternatives);
            }
        }
        Ok(Uc2rpq { disjuncts })
    }

    /// Boolean satisfaction over a finite graph (exact for all NREs).
    pub fn holds(&self, g: &Graph, vocab: &mut Vocab) -> bool {
        self.disjuncts.iter().any(|d| d.holds(g, vocab))
    }

    /// Union evaluation over a finite graph.
    pub fn eval(&self, g: &Graph, vocab: &mut Vocab) -> FxHashSet<Vec<NodeId>> {
        let mut out = FxHashSet::default();
        for d in &self.disjuncts {
            out.extend(d.eval(g, vocab));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_graph::EdgeLabel;

    /// A toy social graph: persons 0,1,2 in a follows-chain, person 2 is
    /// verified; a "likes" branch off person 1.
    fn social() -> (Vocab, Graph, NodeLabel, EdgeLabel, EdgeLabel) {
        let mut v = Vocab::new();
        let verified = v.node_label("Verified");
        let follows = v.edge_label("follows");
        let likes = v.edge_label("likes");
        let mut g = Graph::new();
        let p0 = g.add_node();
        let p1 = g.add_node();
        let p2 = g.add_labeled_node([verified]);
        let post = g.add_node();
        g.add_edge(p0, follows, p1);
        g.add_edge(p1, follows, p2);
        g.add_edge(p1, likes, post);
        (v, g, verified, follows, likes)
    }

    #[test]
    fn nest_is_a_node_test() {
        let (mut v, g, _, follows, likes) = social();
        // follows·⟨likes⟩: reach someone who likes something.
        let nre = Nre::edge(follows).then(Nre::nest(Nre::edge(likes)));
        let pairs = nre.pairs(&g, &mut v);
        assert_eq!(pairs.len(), 1);
        assert!(pairs.contains(&(NodeId(0), NodeId(1))));
    }

    #[test]
    fn nest_under_star_evaluates() {
        let (mut v, g, verified, follows, likes) = social();
        // (follows·⟨likes + Verified⟩)*: follow-chains through nodes that
        // like something or are verified.
        let test = Nre::nest(Nre::edge(likes).or(Nre::node(verified)));
        let nre = Nre::edge(follows).then(test).star();
        let pairs = nre.pairs(&g, &mut v);
        // ε everywhere (4) + 0→1 (likes) + 1→2 (verified) + 0→2.
        assert_eq!(pairs.len(), 7);
        assert!(pairs.contains(&(NodeId(0), NodeId(2))));
        assert!(!pairs.contains(&(NodeId(2), NodeId(0))));
    }

    #[test]
    fn reverse_keeps_nests_unreversed() {
        let (_, _, verified, follows, likes) = social();
        let nre = Nre::edge(follows).then(Nre::nest(Nre::edge(likes).then(Nre::node(verified))));
        let rev = nre.reverse();
        // The nest stays in place, only the outer path reverses.
        match &rev {
            Nre::Concat(a, b) => {
                assert!(matches!(**a, Nre::Nest(_)));
                assert_eq!(**b, Nre::sym(EdgeSym::bwd(follows)));
            }
            other => panic!("unexpected reversal shape: {other:?}"),
        }
        assert_eq!(rev.reverse(), nre);
    }

    #[test]
    fn lowering_materialization_matches_flattening() {
        let (mut v, g, verified, follows, likes) = social();
        // q(x) = (follows·⟨likes⟩·follows·Verified)(x, y)
        let nre = Nre::edge(follows)
            .then(Nre::nest(Nre::edge(likes)))
            .then(Nre::edge(follows))
            .then(Nre::node(verified));
        let q = NreC2rpq::new(2, vec![Var(0)], vec![NreAtom { x: Var(0), y: Var(1), nre }]);
        assert!(q.is_acyclic());
        let direct = q.eval(&g, &mut v);
        let flat = q.flatten().unwrap();
        let mut flat_answers = FxHashSet::default();
        for d in &flat {
            flat_answers.extend(d.eval(&g));
        }
        assert_eq!(direct, flat_answers);
        assert_eq!(direct.len(), 1);
        assert!(direct.contains(&vec![NodeId(0)]));
    }

    #[test]
    fn flatten_rejects_nest_under_star() {
        let (_, _, _, follows, likes) = social();
        let nre = Nre::edge(follows).then(Nre::nest(Nre::edge(likes))).star();
        let q = NreC2rpq::new(2, vec![], vec![NreAtom { x: Var(0), y: Var(1), nre }]);
        assert_eq!(q.flatten().unwrap_err(), FlattenError::NestUnderStar);
        assert!(Nre::edge(follows).then(Nre::nest(Nre::edge(likes))).star().has_nest_under_star());
    }

    #[test]
    fn flatten_distributes_alternatives_with_nests() {
        let (mut v, g, verified, follows, likes) = social();
        // follows·(⟨likes⟩ + Verified): either branch.
        let nre = Nre::edge(follows).then(Nre::nest(Nre::edge(likes)).or(Nre::node(verified)));
        let q = NreC2rpq::new(2, vec![Var(1)], vec![NreAtom { x: Var(0), y: Var(1), nre }]);
        let flat = q.flatten().unwrap();
        assert_eq!(flat.len(), 2);
        let mut flat_answers = FxHashSet::default();
        for d in &flat {
            flat_answers.extend(d.eval(&g));
        }
        assert_eq!(flat_answers, q.eval(&g, &mut v));
        assert_eq!(flat_answers.len(), 2); // reach p1 (likes) and p2 (verified)
    }

    #[test]
    fn nested_nests() {
        let (mut v, g, verified, follows, likes) = social();
        // ⟨follows·⟨likes⟩⟩ at x: x follows someone who likes something.
        let nre = Nre::nest(Nre::edge(follows).then(Nre::nest(Nre::edge(likes))));
        let q = NreC2rpq::new(1, vec![Var(0)], vec![NreAtom { x: Var(0), y: Var(0), nre }]);
        let ans = q.eval(&g, &mut v);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&vec![NodeId(0)]));
        assert_eq!(q.atoms[0].nre.nest_depth(), 2);
        let _ = verified;
    }

    #[test]
    fn plain_roundtrip() {
        let (_, _, verified, follows, _) = social();
        let re = Regex::node(verified).then(Regex::edge(follows).star());
        let nre: Nre = (&re).into();
        assert!(nre.is_plain());
        assert_eq!(nre.as_regex().unwrap(), re);
        assert_eq!(nre.nest_depth(), 0);
    }

    #[test]
    fn lowering_under_star_is_exact_on_graphs() {
        let (mut v, g, verified, follows, likes) = social();
        let test = Nre::nest(Nre::edge(likes).or(Nre::node(verified)));
        let nre = Nre::edge(follows).then(test).star();
        let q = NreC2rpq::new(
            2,
            vec![Var(0), Var(1)],
            vec![NreAtom { x: Var(0), y: Var(1), nre: nre.clone() }],
        );
        let lowered = q.lower(&mut v);
        assert_eq!(lowered.table.entries.len(), 1);
        let gm = lowered.table.materialize(&g);
        // The nest label is exactly {p1 (likes), p2 (verified)}.
        let label = lowered.table.entries[0].0;
        let holders: Vec<NodeId> = gm.nodes().filter(|&u| gm.has_label(u, label)).collect();
        assert_eq!(holders, vec![NodeId(1), NodeId(2)]);
        assert_eq!(lowered.query.eval(&gm), q.eval(&g, &mut v));
    }

    #[test]
    fn render_uses_angle_brackets() {
        let (v, _, _, follows, likes) = social();
        let nre = Nre::edge(follows).then(Nre::nest(Nre::edge(likes)));
        assert_eq!(nre.render(&v), "(follows·⟨likes⟩)");
    }
}
