//! Two-way regular expressions (Section 3 / Appendix A):
//!
//! `φ ::= ∅ | ε | A | R | φ·φ | φ+φ | φ*` with `A ∈ Γ` (node tests) and
//! `R ∈ Σ±` (edge symbols, possibly inverse).
//!
//! A word over the alphabet `Γ ∪ Σ±` describes a path: node tests stay at
//! the current node, edge symbols move along a (possibly inverse) edge.

use gts_graph::{EdgeSym, NodeLabel, Vocab};

/// A single symbol of the path alphabet `Γ ∪ Σ±`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AtomSym {
    /// A node test `A ∈ Γ` (stays at the current node).
    Node(NodeLabel),
    /// An edge symbol `R ∈ Σ±` (moves along an edge).
    Edge(EdgeSym),
}

impl AtomSym {
    /// Renders the symbol using `vocab`.
    pub fn render(&self, vocab: &Vocab) -> String {
        match self {
            AtomSym::Node(a) => vocab.node_name(*a).to_owned(),
            AtomSym::Edge(r) => vocab.sym_name(*r),
        }
    }
}

/// A two-way regular expression.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Regex {
    /// `∅` — matches no path.
    Empty,
    /// `ε` — matches the empty path.
    Epsilon,
    /// A single symbol (node test or edge symbol).
    Sym(AtomSym),
    /// Concatenation `φ·ψ`.
    Concat(Box<Regex>, Box<Regex>),
    /// Alternation `φ+ψ`.
    Alt(Box<Regex>, Box<Regex>),
    /// Kleene star `φ*`.
    Star(Box<Regex>),
}

impl Regex {
    /// Node test `A`.
    pub fn node(a: NodeLabel) -> Regex {
        Regex::Sym(AtomSym::Node(a))
    }

    /// Forward edge symbol `r`.
    pub fn edge(r: gts_graph::EdgeLabel) -> Regex {
        Regex::Sym(AtomSym::Edge(EdgeSym::fwd(r)))
    }

    /// Arbitrary edge symbol (forward or inverse).
    pub fn sym(s: EdgeSym) -> Regex {
        Regex::Sym(AtomSym::Edge(s))
    }

    /// Concatenation with unit/zero simplification.
    pub fn then(self, other: Regex) -> Regex {
        match (self, other) {
            (Regex::Empty, _) | (_, Regex::Empty) => Regex::Empty,
            (Regex::Epsilon, r) | (r, Regex::Epsilon) => r,
            (a, b) => Regex::Concat(Box::new(a), Box::new(b)),
        }
    }

    /// Alternation with zero simplification.
    pub fn or(self, other: Regex) -> Regex {
        match (self, other) {
            (Regex::Empty, r) | (r, Regex::Empty) => r,
            (a, b) => Regex::Alt(Box::new(a), Box::new(b)),
        }
    }

    /// Kleene star with trivial-body simplification.
    pub fn star(self) -> Regex {
        match self {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            r => Regex::Star(Box::new(r)),
        }
    }

    /// Concatenation of many parts.
    pub fn concat_all<I: IntoIterator<Item = Regex>>(parts: I) -> Regex {
        parts.into_iter().fold(Regex::Epsilon, |acc, r| acc.then(r))
    }

    /// Alternation of many parts (empty iterator gives `∅`).
    pub fn alt_all<I: IntoIterator<Item = Regex>>(parts: I) -> Regex {
        parts.into_iter().fold(Regex::Empty, |acc, r| acc.or(r))
    }

    /// The *nesting* operator of Appendix F: `p[q] := p · q · q⁻`.
    pub fn nest(self, q: Regex) -> Regex {
        let qrev = q.reverse();
        self.then(q).then(qrev)
    }

    /// The reversed expression `φ⁻` (Appendix F): matches exactly the
    /// reversed paths. Node tests are self-inverse; edge symbols flip
    /// direction; concatenation reverses order.
    pub fn reverse(&self) -> Regex {
        match self {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            Regex::Sym(AtomSym::Node(a)) => Regex::node(*a),
            Regex::Sym(AtomSym::Edge(r)) => Regex::sym(r.inv()),
            Regex::Concat(a, b) => Regex::Concat(Box::new(b.reverse()), Box::new(a.reverse())),
            Regex::Alt(a, b) => Regex::Alt(Box::new(a.reverse()), Box::new(b.reverse())),
            Regex::Star(a) => Regex::Star(Box::new(a.reverse())),
        }
    }

    /// Rewrites every symbol through `f` (used by the `P̂` relativization of
    /// Theorem 5.6: wrapping edge symbols with label alternations and
    /// dropping labels outside the schema).
    pub fn map_syms(&self, f: &impl Fn(AtomSym) -> Regex) -> Regex {
        match self {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            Regex::Sym(s) => f(*s),
            Regex::Concat(a, b) => a.map_syms(f).then(b.map_syms(f)),
            Regex::Alt(a, b) => a.map_syms(f).or(b.map_syms(f)),
            Regex::Star(a) => a.map_syms(f).star(),
        }
    }

    /// Number of syntax-tree nodes (the size measure used by complexity
    /// statements).
    pub fn size(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Sym(_) => 1,
            Regex::Concat(a, b) | Regex::Alt(a, b) => 1 + a.size() + b.size(),
            Regex::Star(a) => 1 + a.size(),
        }
    }

    /// `true` iff `ε ∈ L(φ)` (nullability).
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Sym(_) => false,
            Regex::Epsilon | Regex::Star(_) => true,
            Regex::Concat(a, b) => a.nullable() && b.nullable(),
            Regex::Alt(a, b) => a.nullable() || b.nullable(),
        }
    }

    /// Brzozowski derivative with respect to one symbol. Used as a simple,
    /// obviously-correct membership oracle against the Glushkov automaton.
    pub fn derive(&self, s: AtomSym) -> Regex {
        match self {
            Regex::Empty | Regex::Epsilon => Regex::Empty,
            Regex::Sym(t) => {
                if *t == s {
                    Regex::Epsilon
                } else {
                    Regex::Empty
                }
            }
            Regex::Concat(a, b) => {
                let da_b = a.derive(s).then((**b).clone());
                if a.nullable() {
                    da_b.or(b.derive(s))
                } else {
                    da_b
                }
            }
            Regex::Alt(a, b) => a.derive(s).or(b.derive(s)),
            Regex::Star(a) => a.derive(s).then(self.clone()),
        }
    }

    /// Membership test `word ∈ L(φ)` by repeated derivation.
    pub fn matches(&self, word: &[AtomSym]) -> bool {
        let mut cur = self.clone();
        for &s in word {
            cur = cur.derive(s);
            if cur == Regex::Empty {
                return false;
            }
        }
        cur.nullable()
    }

    /// Renders the expression using `vocab`.
    pub fn render(&self, vocab: &Vocab) -> String {
        match self {
            Regex::Empty => "∅".into(),
            Regex::Epsilon => "ε".into(),
            Regex::Sym(s) => s.render(vocab),
            Regex::Concat(a, b) => format!("({}·{})", a.render(vocab), b.render(vocab)),
            Regex::Alt(a, b) => format!("({}+{})", a.render(vocab), b.render(vocab)),
            Regex::Star(a) => format!("{}*", a.render(vocab)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_graph::EdgeLabel;

    fn syms() -> (AtomSym, AtomSym, AtomSym) {
        (
            AtomSym::Node(NodeLabel(0)),
            AtomSym::Edge(EdgeSym::fwd(EdgeLabel(0))),
            AtomSym::Edge(EdgeSym::bwd(EdgeLabel(0))),
        )
    }

    #[test]
    fn matches_basic_words() {
        let (a, r, _) = syms();
        // A·r*
        let re = Regex::Sym(a).then(Regex::Sym(r).star());
        assert!(re.matches(&[a]));
        assert!(re.matches(&[a, r]));
        assert!(re.matches(&[a, r, r, r]));
        assert!(!re.matches(&[r]));
        assert!(!re.matches(&[]));
    }

    #[test]
    fn empty_and_epsilon() {
        let (a, _, _) = syms();
        assert!(!Regex::Empty.matches(&[]));
        assert!(Regex::Epsilon.matches(&[]));
        assert!(!Regex::Epsilon.matches(&[a]));
        // Smart constructors collapse trivial cases.
        assert_eq!(Regex::Empty.or(Regex::Epsilon), Regex::Epsilon);
        assert_eq!(Regex::Empty.then(Regex::Sym(a)), Regex::Empty);
        assert_eq!(Regex::Epsilon.star(), Regex::Epsilon);
    }

    #[test]
    fn reverse_reverses_words() {
        let (a, r, rinv) = syms();
        // (A·r)⁻ = r⁻·A
        let re = Regex::Sym(a).then(Regex::Sym(r));
        let rev = re.reverse();
        assert!(re.matches(&[a, r]));
        assert!(rev.matches(&[rinv, a]));
        assert!(!rev.matches(&[a, rinv]));
        // Reversal is an involution.
        assert_eq!(rev.reverse(), re);
    }

    #[test]
    fn nesting_expands_to_p_q_qrev() {
        let (_, r, rinv) = syms();
        let p = Regex::Sym(r);
        let q = Regex::Sym(r);
        let nested = p.nest(q);
        assert!(nested.matches(&[r, r, rinv]));
        assert!(!nested.matches(&[r, r, r]));
    }

    #[test]
    fn alternation_and_star() {
        let (a, r, _) = syms();
        let re = Regex::Sym(a).or(Regex::Sym(r)).star();
        assert!(re.matches(&[]));
        assert!(re.matches(&[a, r, a, a]));
    }

    #[test]
    fn map_syms_rewrites() {
        let (a, r, _) = syms();
        let re = Regex::Sym(a).then(Regex::Sym(r));
        // Drop node tests, keep edges.
        let mapped = re.map_syms(&|s| match s {
            AtomSym::Node(_) => Regex::Epsilon,
            AtomSym::Edge(_) => Regex::Sym(s),
        });
        assert!(mapped.matches(&[r]));
        assert!(!mapped.matches(&[a, r]));
    }

    #[test]
    fn size_counts_nodes() {
        let (a, r, _) = syms();
        let re = Regex::Sym(a).then(Regex::Sym(r).star());
        assert_eq!(re.size(), 4);
    }
}
