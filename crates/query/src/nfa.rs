//! Glushkov (position) automata for two-way regular expressions.
//!
//! The rolled-up TBox construction (Lemma C.2) and the satisfiability
//! engine both need small ε-free NFAs for the regular expressions of a
//! query; the paper suggests "the standard Glushkov technique", which is
//! what we implement: one state per symbol occurrence plus a start state,
//! linear in the regex size.

use crate::regex::{AtomSym, Regex};
use gts_graph::{FxHashSet, Graph, NodeId};

/// An ε-free NFA over the alphabet `Γ ∪ Σ±`.
///
/// State `0` is the unique initial state; the remaining states are the
/// symbol positions of the source regex.
#[derive(Clone, Debug)]
pub struct Nfa {
    /// `trans[s]` lists `(symbol, successor)` transitions of state `s`.
    trans: Vec<Vec<(AtomSym, usize)>>,
    /// `finals[s]` iff `s` accepts.
    finals: Vec<bool>,
}

struct GlushkovCtx {
    /// Symbol of each position (1-based positions; index 0 unused).
    syms: Vec<AtomSym>,
    follow: Vec<Vec<usize>>,
}

struct Part {
    nullable: bool,
    first: Vec<usize>,
    last: Vec<usize>,
}

fn glushkov(re: &Regex, ctx: &mut GlushkovCtx) -> Part {
    match re {
        Regex::Empty => Part { nullable: false, first: vec![], last: vec![] },
        Regex::Epsilon => Part { nullable: true, first: vec![], last: vec![] },
        Regex::Sym(s) => {
            ctx.syms.push(*s);
            ctx.follow.push(Vec::new());
            let p = ctx.syms.len(); // 1-based position; state index p.
            Part { nullable: false, first: vec![p], last: vec![p] }
        }
        Regex::Concat(a, b) => {
            let pa = glushkov(a, ctx);
            let pb = glushkov(b, ctx);
            for &p in &pa.last {
                for &q in &pb.first {
                    ctx.follow[p - 1].push(q);
                }
            }
            let mut first = pa.first.clone();
            if pa.nullable {
                first.extend(&pb.first);
            }
            let mut last = pb.last.clone();
            if pb.nullable {
                last.extend(&pa.last);
            }
            Part { nullable: pa.nullable && pb.nullable, first, last }
        }
        Regex::Alt(a, b) => {
            let pa = glushkov(a, ctx);
            let pb = glushkov(b, ctx);
            let mut first = pa.first;
            first.extend(pb.first);
            let mut last = pa.last;
            last.extend(pb.last);
            Part { nullable: pa.nullable || pb.nullable, first, last }
        }
        Regex::Star(a) => {
            let pa = glushkov(a, ctx);
            for &p in &pa.last {
                for &q in &pa.first {
                    ctx.follow[p - 1].push(q);
                }
            }
            Part { nullable: true, first: pa.first, last: pa.last }
        }
    }
}

impl Nfa {
    /// Builds the Glushkov automaton of `re` (size = number of symbol
    /// occurrences + 1).
    pub fn from_regex(re: &Regex) -> Nfa {
        let mut ctx = GlushkovCtx { syms: Vec::new(), follow: Vec::new() };
        let part = glushkov(re, &mut ctx);
        let n = ctx.syms.len() + 1;
        let mut trans = vec![Vec::new(); n];
        for &p in &part.first {
            trans[0].push((ctx.syms[p - 1], p));
        }
        for (p0, follows) in ctx.follow.iter().enumerate() {
            for &q in follows {
                trans[p0 + 1].push((ctx.syms[q - 1], q));
            }
        }
        let mut finals = vec![false; n];
        finals[0] = part.nullable;
        for &p in &part.last {
            finals[p] = true;
        }
        Nfa { trans, finals }
    }

    /// Number of states (`|p|`-linear).
    pub fn num_states(&self) -> usize {
        self.trans.len()
    }

    /// The unique initial state.
    pub fn initial(&self) -> usize {
        0
    }

    /// `true` iff state `s` accepts.
    pub fn is_final(&self, s: usize) -> bool {
        self.finals[s]
    }

    /// Outgoing transitions of state `s`.
    pub fn transitions(&self, s: usize) -> &[(AtomSym, usize)] {
        &self.trans[s]
    }

    /// Membership test by subset simulation.
    pub fn accepts(&self, word: &[AtomSym]) -> bool {
        let mut cur: FxHashSet<usize> = FxHashSet::default();
        cur.insert(0);
        for sym in word {
            let mut next = FxHashSet::default();
            for &s in &cur {
                for &(t, q) in &self.trans[s] {
                    if t == *sym {
                        next.insert(q);
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            cur = next;
        }
        cur.iter().any(|&s| self.finals[s])
    }

    /// States that lie on some accepting path (reachable from the initial
    /// state and co-reachable to a final state).
    pub fn useful_states(&self) -> Vec<bool> {
        let n = self.num_states();
        let mut reach = vec![false; n];
        let mut stack = vec![0usize];
        reach[0] = true;
        while let Some(s) = stack.pop() {
            for &(_, q) in &self.trans[s] {
                if !reach[q] {
                    reach[q] = true;
                    stack.push(q);
                }
            }
        }
        // Reverse reachability from finals.
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (s, ts) in self.trans.iter().enumerate() {
            for &(_, q) in ts {
                rev[q].push(s);
            }
        }
        let mut coreach = vec![false; n];
        let mut stack: Vec<usize> = (0..n).filter(|&s| self.finals[s]).collect();
        for &s in &stack {
            coreach[s] = true;
        }
        while let Some(s) = stack.pop() {
            for &p in &rev[s] {
                if !coreach[p] {
                    coreach[p] = true;
                    stack.push(p);
                }
            }
        }
        (0..n).map(|s| reach[s] && coreach[s]).collect()
    }

    /// `true` iff `L(φ)` is finite (no cycle through useful states).
    pub fn language_finite(&self) -> bool {
        let useful = self.useful_states();
        let n = self.num_states();
        // Iterative DFS cycle detection restricted to useful states.
        let mut color = vec![0u8; n]; // 0 = white, 1 = gray, 2 = black
        for start in 0..n {
            if !useful[start] || color[start] != 0 {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = 1;
            while let Some((s, idx)) = stack.last().copied() {
                if idx < self.trans[s].len() {
                    stack.last_mut().expect("nonempty").1 += 1;
                    let (_, q) = self.trans[s][idx];
                    if !useful[q] {
                        continue;
                    }
                    match color[q] {
                        0 => {
                            color[q] = 1;
                            stack.push((q, 0));
                        }
                        1 => return false, // back edge → useful cycle
                        _ => {}
                    }
                } else {
                    color[s] = 2;
                    stack.pop();
                }
            }
        }
        true
    }

    /// Enumerates accepted words with at most `max_syms` symbols, up to
    /// `cap` distinct words. The second component is `true` iff the result
    /// is the *entire* language (finite, fully within bounds) — which is
    /// what lets the satisfiability engine certify UNSAT verdicts.
    pub fn enumerate_words(&self, max_syms: usize, cap: usize) -> (Vec<Vec<AtomSym>>, bool) {
        let useful = self.useful_states();
        let mut out: Vec<Vec<AtomSym>> = Vec::new();
        let mut seen: FxHashSet<Vec<AtomSym>> = FxHashSet::default();
        let mut truncated = false;
        let mut word: Vec<AtomSym> = Vec::new();
        self.enum_rec(0, max_syms, cap, &useful, &mut word, &mut out, &mut seen, &mut truncated);
        let exhaustive = !truncated && self.language_finite();
        (out, exhaustive)
    }

    #[allow(clippy::too_many_arguments)]
    fn enum_rec(
        &self,
        state: usize,
        budget: usize,
        cap: usize,
        useful: &[bool],
        word: &mut Vec<AtomSym>,
        out: &mut Vec<Vec<AtomSym>>,
        seen: &mut FxHashSet<Vec<AtomSym>>,
        truncated: &mut bool,
    ) {
        if out.len() >= cap {
            *truncated = true;
            return;
        }
        if self.finals[state] && seen.insert(word.clone()) {
            out.push(word.clone());
        }
        for &(sym, q) in &self.trans[state] {
            if !useful[q] {
                continue;
            }
            if budget == 0 {
                *truncated = true;
                continue;
            }
            word.push(sym);
            self.enum_rec(q, budget - 1, cap, useful, word, out, seen, truncated);
            word.pop();
        }
    }

    /// Enumerates the *prefix-minimal* accepted words: accepted words none
    /// of whose proper prefixes are accepted. Runs a subset-construction
    /// DFS that stops at accepting subsets, so the result is often finite
    /// (and exhaustively enumerable) even for infinite languages — e.g.
    /// `designTarget·crossReacting*` has the single minimal word
    /// `designTarget`.
    ///
    /// Soundness of using minimal words for satisfiability under a *loose*
    /// endpoint (a variable occurring in no other atom): any path matching
    /// `w·v` contains a path matching `w`, so a model witnessing a longer
    /// word witnesses its minimal prefix with the endpoint rebound.
    pub fn enumerate_min_words(&self, max_syms: usize, cap: usize) -> (Vec<Vec<AtomSym>>, bool) {
        let useful = self.useful_states();
        let mut out: Vec<Vec<AtomSym>> = Vec::new();
        let mut truncated = false;
        let mut word: Vec<AtomSym> = Vec::new();
        let mut start: Vec<usize> = vec![0];
        start.retain(|&s| useful[s]);
        let mut seen_words: FxHashSet<Vec<AtomSym>> = FxHashSet::default();
        let mut visited_sets: FxHashSet<Vec<usize>> = FxHashSet::default();
        self.min_rec(
            start,
            max_syms,
            cap,
            &useful,
            &mut word,
            &mut out,
            &mut seen_words,
            &mut visited_sets,
            &mut truncated,
        );
        (out, !truncated)
    }

    #[allow(clippy::too_many_arguments)]
    fn min_rec(
        &self,
        states: Vec<usize>,
        budget: usize,
        cap: usize,
        useful: &[bool],
        word: &mut Vec<AtomSym>,
        out: &mut Vec<Vec<AtomSym>>,
        seen_words: &mut FxHashSet<Vec<AtomSym>>,
        visited_sets: &mut FxHashSet<Vec<usize>>,
        truncated: &mut bool,
    ) {
        if out.len() >= cap {
            *truncated = true;
            return;
        }
        if states.iter().any(|&s| self.finals[s]) {
            // Prefix-minimal: accept here and do not extend.
            if seen_words.insert(word.clone()) {
                out.push(word.clone());
            }
            return;
        }
        // Loop protection along the current branch: a repeated subset with
        // no accept in between would pump forever. Its extensions are
        // *distinct* minimal words (not mere prefix-extensions), so cutting
        // here loses completeness — flag the enumeration as inexhaustive.
        let mut key = states.clone();
        key.sort_unstable();
        if !visited_sets.insert(key.clone()) {
            *truncated = true;
            return;
        }
        // Group outgoing transitions by symbol.
        let mut by_sym: Vec<(AtomSym, Vec<usize>)> = Vec::new();
        for &s in &states {
            for &(sym, q) in &self.trans[s] {
                if !useful[q] {
                    continue;
                }
                match by_sym.iter_mut().find(|(t, _)| *t == sym) {
                    Some((_, list)) => {
                        if !list.contains(&q) {
                            list.push(q);
                        }
                    }
                    None => by_sym.push((sym, vec![q])),
                }
            }
        }
        for (sym, next) in by_sym {
            if budget == 0 {
                *truncated = true;
                continue;
            }
            word.push(sym);
            self.min_rec(
                next,
                budget - 1,
                cap,
                useful,
                word,
                out,
                seen_words,
                visited_sets,
                truncated,
            );
            word.pop();
        }
        visited_sets.remove(&key);
    }

    /// Evaluates the regular expression over a finite graph: all node pairs
    /// `(u, v)` connected by a path whose labeling is accepted. This is the
    /// product-reachability evaluation used by C2RPQ semantics.
    pub fn pairs(&self, g: &Graph) -> FxHashSet<(NodeId, NodeId)> {
        let mut out = FxHashSet::default();
        for u in g.nodes() {
            for v in self.reachable_from(g, u) {
                out.insert((u, v));
            }
        }
        out
    }

    /// All nodes `v` such that some path from `start` to `v` is accepted.
    pub fn reachable_from(&self, g: &Graph, start: NodeId) -> Vec<NodeId> {
        let n_states = self.num_states();
        let mut visited = vec![false; g.num_nodes() * n_states];
        let idx = |node: NodeId, s: usize| node.0 as usize * n_states + s;
        let mut stack = vec![(start, 0usize)];
        visited[idx(start, 0)] = true;
        let mut result: FxHashSet<NodeId> = FxHashSet::default();
        while let Some((node, state)) = stack.pop() {
            if self.finals[state] {
                result.insert(node);
            }
            for &(sym, q) in &self.trans[state] {
                match sym {
                    AtomSym::Node(a) => {
                        if g.has_label(node, a) && !visited[idx(node, q)] {
                            visited[idx(node, q)] = true;
                            stack.push((node, q));
                        }
                    }
                    AtomSym::Edge(r) => {
                        for succ in g.successors(node, r) {
                            if !visited[idx(succ, q)] {
                                visited[idx(succ, q)] = true;
                                stack.push((succ, q));
                            }
                        }
                    }
                }
            }
        }
        let mut v: Vec<NodeId> = result.into_iter().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_graph::{EdgeLabel, EdgeSym, NodeLabel, Vocab};

    fn a() -> AtomSym {
        AtomSym::Node(NodeLabel(0))
    }
    fn r() -> AtomSym {
        AtomSym::Edge(EdgeSym::fwd(EdgeLabel(0)))
    }

    #[test]
    fn accepts_agrees_with_derivatives_on_samples() {
        let regexes = [
            Regex::Sym(a()).then(Regex::Sym(r()).star()),
            Regex::Sym(r()).or(Regex::Sym(a())).star(),
            Regex::Sym(r()).then(Regex::Sym(r())).or(Regex::Epsilon),
            Regex::Empty,
            Regex::Epsilon,
        ];
        let words: Vec<Vec<AtomSym>> = vec![
            vec![],
            vec![a()],
            vec![r()],
            vec![a(), r()],
            vec![r(), r()],
            vec![a(), r(), r()],
            vec![r(), a(), r()],
        ];
        for re in &regexes {
            let nfa = Nfa::from_regex(re);
            for w in &words {
                assert_eq!(nfa.accepts(w), re.matches(w), "re={re:?} w={w:?}");
            }
        }
    }

    #[test]
    fn language_finiteness() {
        assert!(Nfa::from_regex(&Regex::Sym(r())).language_finite());
        assert!(Nfa::from_regex(&Regex::Empty).language_finite());
        assert!(!Nfa::from_regex(&Regex::Sym(r()).star()).language_finite());
        // A star over a useless branch stays finite: (∅·r)* ≡ ε.
        let re =
            Regex::Star(Box::new(Regex::Concat(Box::new(Regex::Empty), Box::new(Regex::Sym(r())))));
        assert!(Nfa::from_regex(&re).language_finite());
    }

    #[test]
    fn enumerate_finite_language_exhaustively() {
        // r·(a+ε) has words {r, ra}.
        let re = Regex::Sym(r()).then(Regex::Sym(a()).or(Regex::Epsilon));
        let nfa = Nfa::from_regex(&re);
        let (mut words, exhaustive) = nfa.enumerate_words(5, 100);
        words.sort();
        assert!(exhaustive);
        assert_eq!(words, vec![vec![r()], vec![r(), a()]]);
    }

    #[test]
    fn enumerate_infinite_language_is_not_exhaustive() {
        let re = Regex::Sym(r()).star();
        let nfa = Nfa::from_regex(&re);
        let (words, exhaustive) = nfa.enumerate_words(3, 100);
        assert!(!exhaustive);
        assert_eq!(words.len(), 4); // ε, r, rr, rrr
    }

    #[test]
    fn graph_evaluation_follows_paths() {
        let mut v = Vocab::new();
        let antigen = v.node_label("Antigen");
        let dt = v.edge_label("designTarget");
        let cr = v.edge_label("crossReacting");
        let mut g = Graph::new();
        let vac = g.add_node();
        let a1 = g.add_labeled_node([antigen]);
        let a2 = g.add_labeled_node([antigen]);
        g.add_edge(vac, dt, a1);
        g.add_edge(a1, cr, a2);
        // designTarget · crossReacting* · Antigen   (Example 3.2-ish)
        let re = Regex::edge(dt).then(Regex::edge(cr).star()).then(Regex::node(antigen));
        let nfa = Nfa::from_regex(&re);
        assert_eq!(nfa.reachable_from(&g, vac), vec![a1, a2]);
        let pairs = nfa.pairs(&g);
        assert!(pairs.contains(&(vac, a1)));
        assert!(pairs.contains(&(vac, a2)));
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn inverse_edges_walk_backwards() {
        let mut v = Vocab::new();
        let dt = v.edge_label("designTarget");
        let mut g = Graph::new();
        let n0 = g.add_node();
        let n1 = g.add_node();
        g.add_edge(n0, dt, n1);
        let re = Regex::sym(EdgeSym::bwd(dt));
        let nfa = Nfa::from_regex(&re);
        assert_eq!(nfa.reachable_from(&g, n1), vec![n0]);
        assert!(nfa.reachable_from(&g, n0).is_empty());
    }

    #[test]
    fn two_way_round_trip() {
        // r·r⁻ returns to the start node (possibly via a different edge).
        let mut v = Vocab::new();
        let dt = v.edge_label("r");
        let mut g = Graph::new();
        let n0 = g.add_node();
        let n1 = g.add_node();
        g.add_edge(n0, dt, n1);
        let re = Regex::edge(dt).then(Regex::sym(EdgeSym::bwd(dt)));
        let nfa = Nfa::from_regex(&re);
        assert_eq!(nfa.reachable_from(&g, n0), vec![n0]);
    }
}
