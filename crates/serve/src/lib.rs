//! # gts-serve
//!
//! A long-running analysis/execution server for the paper's decidable
//! static analyses (*Static Analysis of Graph Database Transformations*,
//! PODS 2023). Every other entry point of the workspace is a one-shot
//! process: each `gts` invocation rebuilds schemas, re-interns automata,
//! and discards the `AnalysisSession` verdict memo and the per-TBox
//! `SolverCache` when it exits. This crate makes that state *resident*:
//!
//! * [`SessionRegistry`] — a concurrency-safe pool of
//!   [`gts_engine::AnalysisSession`]s keyed by a [`Fingerprint`] of
//!   (vocabulary, schema, engine budgets), with LRU eviction under entry
//!   and byte budgets, so containment memos and solver caches persist
//!   across connections and clients;
//! * [`Admission`] — a semaphore-style admission controller bounding
//!   in-flight analyses and queue depth, returning backpressure errors
//!   instead of buffering without bound, with per-request deadlines;
//! * [`Server`] — a std-only (`std::net`) thread-per-connection TCP
//!   acceptor speaking newline-delimited JSON over a versioned protocol
//!   ([`PROTO_VERSION`]) that wraps [`gts_engine::Request`] /
//!   [`gts_engine::Verdict`] plus control verbs (`ping`, `stats`,
//!   `metrics`, `load_schema`, `evict`, `cache_export`, `cache_import`,
//!   `shutdown`), with graceful drain;
//! * [`Client`] — a blocking client for the protocol, used by
//!   `gts client`, the `loadgen` benchmark, and the loopback test suites.
//!
//! The crate deliberately does not depend on the `.gts` parser (that
//! lives in `gts-cli`, which itself depends on this crate for the `gts
//! serve` / `gts client` subcommands): the text formats carried on the
//! wire are compiled through an injected [`Frontend`], keeping the
//! dependency graph acyclic.
//!
//! ## Protocol
//!
//! One JSON object per line in each direction; see [`proto`] for the
//! frame grammar and error codes, and ARCHITECTURE.md for the full
//! description.
//!
//! ```text
//! → {"v":1,"op":"ping"}
//! ← {"ok":true,"op":"ping","proto":1}
//! → {"v":1,"op":"analyze","gts":"schema S {...} ...","source":"S",
//!    "requests":[{"kind":"elicit","transform":"T"}]}
//! ← {"ok":true,"op":"analyze","fingerprint":"…","pool":"miss",
//!    "results":[{"label":"elicit T","micros":…,"schema":"…","certified":true}],
//!    "session":{…},"oracle":{…}}
//! ```

#![warn(missing_docs)]

mod admission;
mod client;
pub mod proto;
mod registry;
mod server;

pub use admission::{Admission, AdmissionConfig, AdmissionError, AdmissionStats, Permit};
pub use client::{Client, ClientError};
pub use proto::PROTO_VERSION;
pub use registry::{
    canonical_key, fingerprint, fingerprint_of, Fingerprint, FlushSummary, RegistryConfig,
    RegistryStats, SessionRegistry,
};
pub use server::{Compiled, Frontend, Server, ServerConfig, ServerHandle};
