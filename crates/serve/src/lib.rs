//! # gts-serve
//!
//! A long-running analysis/execution server for the paper's decidable
//! static analyses (*Static Analysis of Graph Database Transformations*,
//! PODS 2023). Every other entry point of the workspace is a one-shot
//! process: each `gts` invocation rebuilds schemas, re-interns automata,
//! and discards the `AnalysisSession` verdict memo and the per-TBox
//! `SolverCache` when it exits. This crate makes that state *resident*:
//!
//! * [`SessionRegistry`] — a concurrency-safe pool of
//!   [`gts_engine::AnalysisSession`]s keyed by a [`Fingerprint`] of
//!   (vocabulary, schema, engine budgets), with LRU eviction under entry
//!   and byte budgets, so containment memos and solver caches persist
//!   across connections and clients;
//! * [`Admission`] — a semaphore-style admission controller bounding
//!   in-flight analyses and queue depth, returning backpressure errors
//!   instead of buffering without bound, with per-request deadlines;
//! * [`Server`] — a readiness-driven TCP server built on the `gts-net`
//!   reactor (one event-loop thread, nonblocking sockets, a worker pool
//!   for oracle work) speaking newline-delimited JSON over a versioned
//!   protocol ([`PROTO_VERSION`], [`MIN_PROTO_VERSION`]) that wraps
//!   [`gts_engine::Request`] / [`gts_engine::Verdict`] plus control
//!   verbs (`ping`, `stats`, `metrics`, `load_schema`, `evict`,
//!   `cache_export`, `cache_import`, `shutdown`), with pipelined
//!   out-of-order version-2 responses, per-tenant fair-share admission,
//!   idle timeouts, and graceful drain;
//! * [`Client`] — a blocking client for the protocol, used by
//!   `gts client`, the `loadgen` benchmark, and the loopback test
//!   suites, including pipelined batch submission.
//!
//! The crate deliberately does not depend on the `.gts` parser (that
//! lives in `gts-cli`, which itself depends on this crate for the `gts
//! serve` / `gts client` subcommands): the text formats carried on the
//! wire are compiled through an injected [`Frontend`], keeping the
//! dependency graph acyclic.
//!
//! ## Protocol
//!
//! One JSON object per line in each direction; see [`proto`] for the
//! frame grammar and error codes, and ARCHITECTURE.md for the full
//! description.
//!
//! ```text
//! → {"v":2,"op":"ping"}
//! ← {"ok":true,"op":"ping","proto":2}
//! → {"v":2,"op":"analyze","id":"a1","gts":"schema S {...} ...","source":"S",
//!    "requests":[{"kind":"elicit","transform":"T"}]}
//! ← {"ok":true,"op":"analyze","fingerprint":"…","pool":"miss",
//!    "results":[{"label":"elicit T","micros":…,"schema":"…","certified":true}],
//!    "session":{…},"oracle":{…},"id":"a1"}
//! ```
//!
//! Version-1 frames remain accepted and are answered strictly in
//! arrival order; version-2 frames carrying an `id` may be pipelined
//! and complete out of order (see [`proto`]).

#![warn(missing_docs)]

mod admission;
mod client;
pub mod proto;
mod registry;
mod server;

pub use admission::{
    Admission, AdmissionConfig, AdmissionError, AdmissionStats, Permit, TenantStats, DEFAULT_TENANT,
};
pub use client::{Client, ClientError};
pub use proto::{MIN_PROTO_VERSION, PROTO_VERSION};
pub use registry::{
    canonical_key, fingerprint, fingerprint_of, Fingerprint, FlushSummary, RegistryConfig,
    RegistryStats, SessionRegistry,
};
pub use server::{Compiled, Frontend, Server, ServerConfig, ServerHandle};
