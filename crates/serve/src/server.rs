//! The resident server: a gts-net reactor speaking the frame protocol.
//!
//! Lifecycle: [`Server::start`] binds the listener (port `0` picks an
//! ephemeral port) and spawns one reactor thread that owns every
//! socket. Frames decode on the reactor through the sans-I/O codec and
//! run on a worker pool — oracle work never blocks the event loop, and
//! one slow analysis never stalls another connection's ping. Version-2
//! frames carrying an `id` are answered out of order as they complete
//! (pipelining); version-1 frames keep their strict arrival-order
//! replies through the reactor's per-connection reorder buffer.
//!
//! A `shutdown` frame (or [`ServerHandle::shutdown`]) flips the server
//! into drain: the listener closes, admission rejects new analyses,
//! in-flight frames run to completion and their responses flush, idle
//! connections get a short window to submit one final frame (and learn
//! the server is draining) before closing, and [`ServerHandle::join`]
//! returns once every connection is gone and the worker pool has
//! drained. Connections idle past [`ServerConfig::idle_timeout`] are
//! closed by the reactor's timer wheel; the clock only resets on
//! *complete* frames, so a byte-at-a-time slowloris drip idles out like
//! any silent peer.

use crate::admission::{Admission, AdmissionConfig, DEFAULT_TENANT};
use crate::proto::{self, MIN_PROTO_VERSION, PROTO_VERSION};
use crate::registry::{
    canonical_key, fingerprint_of, Fingerprint, RegistryConfig, SessionRegistry,
};
use gts_core::containment::ContainmentOptions;
use gts_core::graph::{Graph, GraphDelta, Vocab};
use gts_core::sat::Budget;
use gts_core::schema::Schema;
use gts_core::Transformation;
use gts_engine::{AnalysisSession, Json, Request, Verdict};
use gts_net::{CodecError, ConnId, FrameOutput, ReactorConfig, ReactorControl, Service};
use gts_obs::{Counter, Gauge, Histogram, MetricsRegistry, SpanNode};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A compiled `.gts` document: the artifacts the server resolves request
/// specs against.
pub struct Compiled {
    /// Labels interned in declaration order.
    pub vocab: Vocab,
    /// Named schemas, in file order.
    pub schemas: Vec<(String, Schema)>,
    /// Named transformations, in file order.
    pub transforms: Vec<(String, Transformation)>,
}

/// Compiles a `.gts` source text into analysis artifacts.
pub type CompileFn = dyn Fn(&str) -> Result<Compiled, String> + Send + Sync;
/// Parses the standalone graph-instance format against a vocabulary.
pub type ParseInstanceFn = dyn Fn(&str, &mut Vocab) -> Result<Graph, String> + Send + Sync;
/// Parses an instance text plus a delta text (delta node names resolve
/// against the instance's names) into the base graph and its delta.
pub type ParseDeltaFn =
    dyn Fn(&str, &str, &mut Vocab) -> Result<(Graph, GraphDelta), String> + Send + Sync;
/// Renders a schema for the wire (`elicit` results).
pub type RenderSchemaFn = dyn Fn(&Schema, &Vocab) -> String + Send + Sync;

/// The injected text front end (the server itself has no parser — see
/// the crate docs for why).
#[derive(Clone)]
pub struct Frontend {
    /// Compiles a `.gts` source text.
    pub compile: Arc<CompileFn>,
    /// Parses the standalone graph-instance format against a vocabulary.
    pub parse_instance: Arc<ParseInstanceFn>,
    /// Parses an instance + delta text pair (the `delta` verb).
    pub parse_delta: Arc<ParseDeltaFn>,
    /// Renders a schema (used for `elicit` results on the wire).
    pub render_schema: Arc<RenderSchemaFn>,
}

/// Server configuration. The defaults suit tests and local use; the CLI
/// maps `gts serve` flags onto the fields it exposes.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`"127.0.0.1:0"` picks an ephemeral port).
    pub addr: String,
    /// Admission bounds (in-flight analyses / wait-queue depth).
    pub admission: AdmissionConfig,
    /// Session-pool budgets.
    pub registry: RegistryConfig,
    /// Deadline applied to frames that carry none (`None` = unbounded).
    pub default_deadline_ms: Option<u64>,
    /// Hard cap on one frame's length in bytes; longer frames are
    /// rejected and the connection closed (a malformed peer, not a
    /// workload).
    pub max_frame_bytes: usize,
    /// Honor the `linger_ms` analyze field (holds the admission permit
    /// while sleeping). A test/benchmark hook for making "slow requests"
    /// deterministic; keep `false` in production setups.
    pub allow_linger: bool,
    /// Flush resident disk-bound sessions this often (no-op unless
    /// `registry.cache_dir` is set). `None` = only flush on drain and
    /// on session eviction/drop.
    pub flush_interval: Option<Duration>,
    /// Log one structured JSON line to stderr for every frame slower
    /// than this many milliseconds, including the frame's span
    /// breakdown. `None` disables the slow log (and its per-frame span
    /// collection).
    pub slow_ms: Option<u64>,
    /// Close connections that complete no frame for this long. The
    /// clock resets only on *complete* frames (a slowloris byte-drip
    /// does not count as activity). `None` disables.
    pub idle_timeout: Option<Duration>,
    /// In-flight frames per connection before the reactor stops reading
    /// it (pipelining depth bound; backpressure lands in the kernel
    /// socket buffer).
    pub max_pipeline: usize,
    /// Worker threads executing frames. `None` sizes the pool to
    /// `max_inflight + max_queue + 4`: every admissible analysis plus
    /// every queueable one can occupy a worker while control verbs
    /// still find a free thread.
    pub workers: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            admission: AdmissionConfig::default(),
            registry: RegistryConfig::default(),
            default_deadline_ms: None,
            max_frame_bytes: 16 << 20,
            allow_linger: false,
            flush_interval: None,
            slow_ms: None,
            idle_timeout: Some(Duration::from_secs(300)),
            max_pipeline: 128,
            workers: None,
        }
    }
}

/// Every label the per-verb metric families can carry: the protocol
/// verbs plus two fallbacks — `invalid` for frames that fail to parse
/// or carry the wrong protocol version, `unknown` for well-formed
/// frames naming a verb the server does not speak.
const VERB_LABELS: [&str; 12] = [
    "ping",
    "stats",
    "metrics",
    "load_schema",
    "analyze",
    "delta",
    "evict",
    "cache_export",
    "cache_import",
    "shutdown",
    "invalid",
    "unknown",
];

/// The server's own metrics registry plus pre-resolved handles for every
/// series dispatch touches. Handle resolution takes the registry lock;
/// the per-frame hot path must not, so every cell is resolved once at
/// startup. The registry is per-server (not the process-global one) so
/// that multiple servers in one process — the loopback test suites run
/// several — each report exactly their own traffic, and the `metrics`
/// verb's totals agree with the same server's `stats` verb.
struct ProtoMetrics {
    registry: MetricsRegistry,
    verbs: Vec<(&'static str, Counter, Histogram)>,
    requests_total: Counter,
    deadline_skipped: Counter,
    rejected_overloaded: Counter,
    rejected_deadline: Counter,
    rejected_draining: Counter,
    rejected_quota: Counter,
    idle_closed: Counter,
    memo_served: Counter,
    sessions: Gauge,
    session_bytes: Gauge,
    inflight: Gauge,
    queued: Gauge,
    connections_open: Gauge,
}

impl ProtoMetrics {
    fn new() -> ProtoMetrics {
        let registry = MetricsRegistry::new();
        let verbs = VERB_LABELS
            .iter()
            .map(|&v| {
                (
                    v,
                    registry.counter(
                        "gts_serve_frames_total",
                        "Frames dispatched, by protocol verb",
                        &[("verb", v)],
                    ),
                    registry.histogram(
                        "gts_serve_frame_micros",
                        "Frame dispatch latency by protocol verb (microseconds)",
                        &[("verb", v)],
                    ),
                )
            })
            .collect();
        let rejected = |reason| {
            registry.counter(
                "gts_serve_rejected_total",
                "Analyze frames refused by admission control, by reason",
                &[("reason", reason)],
            )
        };
        let gauge = |name, help| registry.gauge(name, help, &[]);
        ProtoMetrics {
            requests_total: registry.counter(
                "gts_serve_requests_total",
                "Analysis requests carried by analyze frames (skipped ones included)",
                &[],
            ),
            deadline_skipped: registry.counter(
                "gts_serve_deadline_skipped_total",
                "Requests skipped because their frame's deadline had passed",
                &[],
            ),
            rejected_overloaded: rejected("overloaded"),
            rejected_deadline: rejected("deadline"),
            rejected_draining: rejected("draining"),
            rejected_quota: rejected("quota"),
            idle_closed: registry.counter(
                "gts_serve_idle_closed_total",
                "Connections closed by the idle timeout",
                &[],
            ),
            memo_served: registry.counter(
                "gts_serve_memo_served_total",
                "Analyze frames answered from the rendered-response memo",
                &[],
            ),
            sessions: gauge("gts_serve_sessions", "Resident analysis sessions (scrape-time)"),
            session_bytes: gauge(
                "gts_serve_session_bytes",
                "Approximate bytes held by resident sessions (scrape-time)",
            ),
            inflight: gauge("gts_serve_inflight", "Analyses holding an admission slot"),
            queued: gauge("gts_serve_queued", "Analyses waiting for an admission slot"),
            connections_open: gauge("gts_serve_connections_open", "Open client connections"),
            registry,
            verbs,
        }
    }

    /// The pre-resolved (counter, histogram) cell for `label`, which must
    /// be one of [`VERB_LABELS`] (dispatch maps every frame onto one).
    fn verb(&self, label: &str) -> (&Counter, &Histogram) {
        let (_, c, h) = self
            .verbs
            .iter()
            .find(|(v, _, _)| *v == label)
            .unwrap_or_else(|| panic!("unregistered verb label `{label}`"));
        (c, h)
    }

    /// Maps a frame's `op` onto its metrics label (`unknown` for verbs
    /// the server does not speak).
    fn verb_label(&self, op: &str) -> &'static str {
        VERB_LABELS[..10].iter().find(|&&v| v == op).copied().unwrap_or("unknown")
    }
}

/// Compiled `.gts` documents the server has seen recently, keyed by
/// source text. Pipelined workloads ship the same text on every frame;
/// memoizing the compile is what lets frame throughput scale past the
/// parser. Entries are most-recently-used-first.
struct CompileCache {
    entries: Vec<(u64, Arc<String>, Arc<Compiled>)>,
}

/// Distinct `.gts` texts kept compiled. Entries are a vocabulary plus
/// schemas/transforms — small next to a resident session.
const COMPILE_CACHE_CAP: usize = 64;

/// Fully rendered `analyze` responses the server has already produced,
/// keyed by the frame's semantic fields (everything except the `id`/
/// `auth`/`v` envelope). Analysis is a pure function of the shipped
/// text, so a repeated identical frame — the steady state of resident
/// pipelined traffic — is a lookup, not a recomputation. Every entry
/// records the registry's eviction count at insert time and dies the
/// moment any session is evicted (explicitly or by the budget sweep),
/// which keeps evict-then-reanalyze demonstrably rebuilding. Frames
/// carrying `trace`, `deadline_ms`, or `linger_ms` bypass the memo, and
/// responses with deadline-skipped entries are never stored. Entries
/// are most-recently-used-first.
struct ResponseMemo {
    entries: Vec<(u64, String, u64, Fingerprint, Json)>,
}

/// Rendered responses kept. Each is a few KB — bounded and tiny next to
/// one resident session.
const RESPONSE_MEMO_CAP: usize = 128;

/// The memo key for an `analyze` frame: every field except the
/// per-frame envelope. `None` when the frame opts out of memoization
/// (tracing, deadlines, the linger test hook).
fn response_memo_key(frame: &Json) -> Option<String> {
    let Json::Obj(fields) = frame else { return None };
    let mut key = String::new();
    for (k, v) in fields {
        match k.as_str() {
            "id" | "auth" | "v" => {}
            "trace" | "deadline_ms" | "linger_ms" => return None,
            _ => {
                key.push_str(k);
                key.push('=');
                key.push_str(&v.compact());
                key.push('\u{1f}');
            }
        }
    }
    Some(key)
}

/// Replaces an existing field's value in place ([`Json::set`] appends a
/// duplicate key rather than overwriting).
fn replace_field(obj: &mut Json, key: &str, value: Json) {
    if let Json::Obj(fields) = obj {
        if let Some((_, v)) = fields.iter_mut().find(|(k, _)| k == key) {
            *v = value;
        }
    }
}

struct Shared {
    cfg: ServerConfig,
    frontend: Frontend,
    registry: SessionRegistry,
    admission: Admission,
    draining: AtomicBool,
    started: Instant,
    connections_open: AtomicUsize,
    connections_total: AtomicU64,
    frames_total: AtomicU64,
    requests_total: AtomicU64,
    deadline_skipped: AtomicU64,
    errors_total: AtomicU64,
    flushes_total: AtomicU64,
    idle_closed_total: AtomicU64,
    memo_served_total: AtomicU64,
    compile_cache: Mutex<CompileCache>,
    response_memo: Mutex<ResponseMemo>,
    obs: ProtoMetrics,
}

impl Shared {
    fn begin_drain(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            self.admission.begin_drain();
        }
    }

    /// Compiles `gts` through the memo. The hash is a fast reject; the
    /// full text is compared on a hit so a collision can never serve
    /// the wrong document.
    fn compile_cached(&self, gts: &str) -> Result<Arc<Compiled>, String> {
        let hash = gts_store::fnv64(gts.as_bytes());
        {
            let mut cache = self.compile_cache.lock().unwrap();
            if let Some(pos) =
                cache.entries.iter().position(|(h, text, _)| *h == hash && text.as_str() == gts)
            {
                let entry = cache.entries.remove(pos);
                let compiled = Arc::clone(&entry.2);
                cache.entries.insert(0, entry);
                return Ok(compiled);
            }
        }
        // Compile outside the lock: a slow compile must not serialize
        // every other frame's cache hit behind it.
        let compiled = Arc::new((self.frontend.compile)(gts)?);
        let mut cache = self.compile_cache.lock().unwrap();
        cache.entries.insert(0, (hash, Arc::new(gts.to_owned()), Arc::clone(&compiled)));
        cache.entries.truncate(COMPILE_CACHE_CAP);
        Ok(compiled)
    }

    /// Looks up a rendered response. An entry whose eviction epoch is
    /// stale (any session was evicted since it was stored) is dropped
    /// rather than reasoned about — recomputing is always correct.
    fn response_memo_get(&self, hash: u64, key: &str) -> Option<(Fingerprint, Json)> {
        let epoch = self.registry.evictions();
        let mut memo = self.response_memo.lock().unwrap();
        let pos = memo.entries.iter().position(|(h, k, _, _, _)| *h == hash && k == key)?;
        if memo.entries[pos].2 != epoch {
            memo.entries.remove(pos);
            return None;
        }
        let entry = memo.entries.remove(pos);
        let out = (entry.3, entry.4.clone());
        memo.entries.insert(0, entry);
        Some(out)
    }

    fn response_memo_put(&self, hash: u64, key: String, fp: Fingerprint, response: Json) {
        let epoch = self.registry.evictions();
        let mut memo = self.response_memo.lock().unwrap();
        memo.entries.insert(0, (hash, key, epoch, fp, response));
        memo.entries.truncate(RESPONSE_MEMO_CAP);
    }
}

/// The server type; [`Server::start`] is the entry point.
pub struct Server;

/// A running server: address, stats access, shutdown/join.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    control: Arc<ReactorControl>,
    reactor: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `cfg.addr` and starts accepting.
    pub fn start(cfg: ServerConfig, frontend: Frontend) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers =
            cfg.workers.unwrap_or(cfg.admission.max_inflight.max(1) + cfg.admission.max_queue + 4);
        let reactor_cfg = ReactorConfig {
            workers,
            max_frame_bytes: cfg.max_frame_bytes,
            max_pipeline: cfg.max_pipeline.max(1),
            idle_timeout: cfg.idle_timeout,
            tick_interval: cfg.flush_interval,
            ..ReactorConfig::default()
        };
        let shared = Arc::new(Shared {
            admission: Admission::new(cfg.admission),
            registry: SessionRegistry::new(cfg.registry.clone()),
            cfg,
            frontend,
            draining: AtomicBool::new(false),
            started: Instant::now(),
            connections_open: AtomicUsize::new(0),
            connections_total: AtomicU64::new(0),
            frames_total: AtomicU64::new(0),
            requests_total: AtomicU64::new(0),
            deadline_skipped: AtomicU64::new(0),
            errors_total: AtomicU64::new(0),
            flushes_total: AtomicU64::new(0),
            idle_closed_total: AtomicU64::new(0),
            memo_served_total: AtomicU64::new(0),
            compile_cache: Mutex::new(CompileCache { entries: Vec::new() }),
            response_memo: Mutex::new(ResponseMemo { entries: Vec::new() }),
            obs: ProtoMetrics::new(),
        });
        let control = Arc::new(ReactorControl::new());
        let service: Arc<dyn Service> = Arc::new(ProtoService { shared: Arc::clone(&shared) });
        let reactor = {
            let control = Arc::clone(&control);
            std::thread::Builder::new().name("gts-serve-reactor".into()).spawn(move || {
                if let Err(e) = gts_net::run(listener, service, reactor_cfg, control) {
                    eprintln!("{{\"server_error\":\"reactor exited: {e}\"}}");
                }
            })?
        };
        Ok(ServerHandle { addr, shared, control, reactor: Some(reactor) })
    }
}

impl ServerHandle {
    /// The bound address (with the real port when `addr` asked for `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The session pool (stats inspection in tests and benchmarks).
    pub fn registry(&self) -> &SessionRegistry {
        &self.shared.registry
    }

    /// The admission controller (stats inspection).
    pub fn admission(&self) -> &Admission {
        &self.shared.admission
    }

    /// Connections closed by the idle timeout so far.
    pub fn idle_closed(&self) -> u64 {
        self.shared.idle_closed_total.load(Ordering::Relaxed)
    }

    /// Open client connections right now.
    pub fn connections_open(&self) -> usize {
        self.shared.connections_open.load(Ordering::SeqCst)
    }

    /// Begins graceful drain (idempotent): stop accepting, reject new
    /// analyses, let in-flight work finish. Admission flips before this
    /// returns; the reactor notices through its self-pipe.
    pub fn shutdown(&self) {
        self.shared.begin_drain();
        self.control.begin_drain();
    }

    /// Waits until the reactor (and with it every connection and
    /// worker) has exited. Call [`ServerHandle::shutdown`] first (or
    /// have a client send the `shutdown` verb), otherwise this blocks
    /// for the server's lifetime.
    pub fn join(mut self) {
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
    }
}

/// The protocol layer, driven by the gts-net reactor. `handle` runs on
/// a worker thread; the lifecycle callbacks run on the reactor thread
/// and only touch atomics.
struct ProtoService {
    shared: Arc<Shared>,
}

impl Service for ProtoService {
    fn handle(&self, _conn: ConnId, frame: String) -> FrameOutput {
        let shared = &self.shared;
        let line = frame.trim();
        if line.is_empty() {
            return FrameOutput::none(); // blank keep-alive lines: uncounted, unanswered
        }
        shared.frames_total.fetch_add(1, Ordering::Relaxed);
        let (response, control, ordered) = dispatch(shared, line);
        if response.get("ok").and_then(Json::as_bool) == Some(false) {
            shared.errors_total.fetch_add(1, Ordering::Relaxed);
        }
        let shutdown = matches!(control, Control::Shutdown);
        if shutdown {
            // Flip admission before the response is even queued: a frame
            // racing the drain must already see `shutting_down`.
            shared.begin_drain();
        }
        FrameOutput { bytes: response.compact().into_bytes(), ordered, shutdown }
    }

    fn decode_error(&self, _conn: ConnId, err: &CodecError) -> Vec<u8> {
        self.shared.errors_total.fetch_add(1, Ordering::Relaxed);
        let msg = match err {
            CodecError::TooBig { .. } => "frame exceeds size bound",
            CodecError::Utf8 => "frame is not valid UTF-8",
        };
        proto::error_frame(None, proto::BAD_FRAME, msg).compact().into_bytes()
    }

    fn on_connect(&self, _conn: ConnId) {
        self.shared.connections_total.fetch_add(1, Ordering::Relaxed);
        self.shared.connections_open.fetch_add(1, Ordering::SeqCst);
    }

    fn on_disconnect(&self, _conn: ConnId) {
        self.shared.connections_open.fetch_sub(1, Ordering::SeqCst);
    }

    fn on_idle_close(&self, _conn: ConnId) {
        self.shared.idle_closed_total.fetch_add(1, Ordering::Relaxed);
        self.shared.obs.idle_closed.inc();
    }

    fn on_drain(&self) {
        self.shared.begin_drain();
    }

    fn on_tick(&self) {
        // tick_interval mirrors cfg.flush_interval, so every tick is a
        // flush tick.
        self.shared.registry.flush_all();
        self.shared.flushes_total.fetch_add(1, Ordering::Relaxed);
    }

    fn on_exit(&self) {
        // The worker pool has drained, so every admitted analysis has
        // released its permit; this returns immediately and documents
        // the invariant more than it waits.
        self.shared.admission.await_idle();
        // Persist what the pool learned before the process goes away. A
        // no-op when no session is disk-bound.
        self.shared.registry.flush_all();
    }
}

enum Control {
    Continue,
    Shutdown,
}

/// Validates a frame's envelope, routes it to its verb handler, and
/// applies the cross-cutting protocol features: per-verb metrics, `id`
/// echo, the `trace` span tree, and the slow-request log. Every frame
/// that [`ProtoService::handle`] counted in `frames_total` goes through
/// here exactly once, so the per-verb counters tile `frames_total`.
///
/// The returned flag is the response's *ordering class*: `true` means
/// the reactor must hold it until every earlier frame on the connection
/// has answered; `false` (a version-2 frame carrying an `id`) lets it
/// jump the queue the moment it completes.
fn dispatch(shared: &Shared, raw: &str) -> (Json, Control, bool) {
    let start = Instant::now();
    let frame = match Json::parse(raw) {
        Ok(f) if f.get("op").is_some() || f.get("v").is_some() => f,
        Ok(_) => {
            let r =
                proto::error_frame(None, proto::BAD_FRAME, "expected an object with `v` and `op`");
            return finish_frame(shared, "invalid", None, None, start, r, Control::Continue, true);
        }
        Err(e) => {
            let r = proto::error_frame(None, proto::BAD_FRAME, e.to_string());
            return finish_frame(shared, "invalid", None, None, start, r, Control::Continue, true);
        }
    };
    let op = frame.get("op").and_then(Json::as_str).unwrap_or_default().to_owned();
    let id = frame.get("id").cloned();
    let version = frame.get("v").and_then(Json::as_i64);
    match version {
        Some(v) if (MIN_PROTO_VERSION..=PROTO_VERSION).contains(&v) => {}
        other => {
            let msg = format!(
                "this server speaks protocol versions \
                 {MIN_PROTO_VERSION} through {PROTO_VERSION}, frame carries {other:?}"
            );
            let r = proto::error_frame(Some(&op), proto::UNSUPPORTED_VERSION, msg);
            return finish_frame(shared, "invalid", id, None, start, r, Control::Continue, true);
        }
    }
    // Version-2 frames with an `id` opted into out-of-order completion.
    let ordered = !(version == Some(PROTO_VERSION) && id.is_some());
    let verb = shared.obs.verb_label(&op);
    // One span collector serves both consumers: the response's `trace`
    // field (client asked) and the slow log's span breakdown (server
    // configured). Installing it only on demand keeps untraced frames on
    // the inert thread-local path.
    let want_trace = frame.get("trace").and_then(Json::as_bool) == Some(true);
    let ((mut response, control), tree) = if want_trace || shared.cfg.slow_ms.is_some() {
        let (out, tree) = gts_obs::trace("frame", || route(shared, &op, &frame));
        (out, Some(tree))
    } else {
        (route(shared, &op, &frame), None)
    };
    if want_trace {
        if let Some(tree) = &tree {
            response.set("trace", span_tree_json(tree));
        }
    }
    finish_frame(shared, verb, id, tree, start, response, control, ordered)
}

/// Routes one validated frame to its verb handler.
fn route(shared: &Shared, op: &str, frame: &Json) -> (Json, Control) {
    match op {
        "ping" => {
            let mut r = proto::ok_frame("ping");
            r.set("proto", PROTO_VERSION)
                .set("uptime_micros", shared.started.elapsed().as_micros() as u64);
            (r, Control::Continue)
        }
        "stats" => (stats_frame(shared), Control::Continue),
        "metrics" => (metrics_frame(shared, frame), Control::Continue),
        "load_schema" => (load_schema(shared, frame), Control::Continue),
        "analyze" => (analyze(shared, frame), Control::Continue),
        "delta" => (delta_verb(shared, frame), Control::Continue),
        "evict" => (evict(shared, frame), Control::Continue),
        "cache_export" => (cache_export(shared, frame), Control::Continue),
        "cache_import" => (cache_import(shared, frame), Control::Continue),
        "shutdown" => {
            let mut r = proto::ok_frame("shutdown");
            r.set("draining", true);
            (r, Control::Shutdown)
        }
        other => (
            proto::error_frame(Some(other), proto::UNKNOWN_OP, format!("unknown verb `{other}`")),
            Control::Continue,
        ),
    }
}

/// The common tail of every dispatch path: echo the request `id`, record
/// the per-verb counter/histogram cell, and emit the slow-request log
/// line when the frame crossed the configured threshold.
#[allow(clippy::too_many_arguments)]
fn finish_frame(
    shared: &Shared,
    verb: &str,
    id: Option<Json>,
    tree: Option<SpanNode>,
    start: Instant,
    mut response: Json,
    control: Control,
    ordered: bool,
) -> (Json, Control, bool) {
    let elapsed = start.elapsed();
    if let Some(ms) = shared.cfg.slow_ms {
        if elapsed >= Duration::from_millis(ms) {
            let mut line = Json::obj();
            line.set("slow_request", true)
                .set("op", verb)
                .set("micros", elapsed.as_micros() as u64);
            if let Some(id) = &id {
                line.set("id", id.clone());
            }
            if let Some(tree) = &tree {
                line.set("spans", span_tree_json(tree));
            }
            eprintln!("{}", line.compact());
        }
    }
    if let Some(id) = id {
        response.set("id", id);
    }
    let (counter, hist) = shared.obs.verb(verb);
    counter.inc();
    hist.record(elapsed.as_micros() as u64);
    (response, control, ordered)
}

/// Renders a span tree as a JSON object (`name`, `micros`, `count`,
/// recursive `children`).
fn span_tree_json(node: &SpanNode) -> Json {
    let mut obj = Json::obj();
    obj.set("name", node.name.as_str()).set("micros", node.micros).set("count", node.count);
    if !node.children.is_empty() {
        obj.set("children", Json::Arr(node.children.iter().map(span_tree_json).collect()));
    }
    obj
}

/// The tenant a frame's work is accounted to (its `auth` token, or the
/// shared default).
fn tenant_of(frame: &Json) -> &str {
    frame.get("auth").and_then(Json::as_str).unwrap_or(DEFAULT_TENANT)
}

/// Bumps the per-reason rejection counter for an admission refusal.
fn note_rejection(shared: &Shared, e: crate::AdmissionError) {
    match e {
        crate::AdmissionError::Overloaded => shared.obs.rejected_overloaded.inc(),
        crate::AdmissionError::DeadlineExceeded => shared.obs.rejected_deadline.inc(),
        crate::AdmissionError::Draining => shared.obs.rejected_draining.inc(),
        crate::AdmissionError::QuotaExceeded => shared.obs.rejected_quota.inc(),
    }
}

/// The `metrics` verb: render this server's registry merged with the
/// process-global one (oracle, executor, and engine series live there)
/// in Prometheus text exposition (default) or the JSON mirror. Gauges
/// are synced at scrape time rather than maintained on every
/// transition.
fn metrics_frame(shared: &Shared, frame: &Json) -> Json {
    let reg = shared.registry.stats();
    shared.obs.sessions.set(reg.sessions as i64);
    shared.obs.session_bytes.set(reg.approx_bytes as i64);
    let adm = shared.admission.stats();
    shared.obs.inflight.set(adm.inflight as i64);
    shared.obs.queued.set(adm.queued as i64);
    shared.obs.connections_open.set(shared.connections_open.load(Ordering::SeqCst) as i64);
    // Per-tenant gauges are resolved at scrape time: the tenant set is
    // dynamic and the scrape path is cold.
    for t in shared.admission.tenant_stats() {
        let labels = &[("tenant", t.tenant.as_str())];
        shared
            .obs
            .registry
            .gauge("gts_serve_tenant_inflight", "In-flight analyses by tenant", labels)
            .set(t.inflight as i64);
        shared
            .obs
            .registry
            .gauge("gts_serve_tenant_admitted", "Analyses admitted by tenant", labels)
            .set(t.admitted as i64);
    }
    let regs: [&MetricsRegistry; 2] = [&shared.obs.registry, gts_obs::global()];
    let format = frame.get("format").and_then(Json::as_str).unwrap_or("prometheus");
    let body = match format {
        "prometheus" => gts_obs::render_prometheus(&regs),
        "json" => gts_obs::render_json(&regs),
        other => {
            return proto::error_frame(
                Some("metrics"),
                proto::BAD_REQUEST,
                format!("unknown format `{other}` (expected `prometheus` or `json`)"),
            )
        }
    };
    let mut r = proto::ok_frame("metrics");
    r.set("format", format).set("body", body);
    r
}

/// The uniform statistics document: session registry, admission
/// controller, aggregated oracle caches, server counters. The same
/// numbers `gts batch --stats` reports locally.
fn stats_frame(shared: &Shared) -> Json {
    let mut r = proto::ok_frame("stats");
    let reg = shared.registry.stats();
    let mut registry = Json::obj();
    registry
        .set("sessions", reg.sessions)
        .set("approx_bytes", reg.approx_bytes)
        .set("hits", reg.hits)
        .set("misses", reg.misses)
        .set("evictions", reg.evictions)
        .set("collisions", reg.collisions)
        .set("hit_rate", reg.hit_rate())
        .set("oversized", reg.oversized)
        .set("disk_hydrated", reg.disk_hydrated)
        .set("max_sessions", shared.registry.config().max_sessions)
        .set("max_bytes", shared.registry.config().max_bytes);
    if let Some(dir) = shared.registry.cache_dir() {
        registry.set("cache_dir", dir.display().to_string());
    }
    r.set("registry", registry);
    let adm = shared.admission.stats();
    let mut admission = Json::obj();
    admission
        .set("inflight", adm.inflight)
        .set("queued", adm.queued)
        .set("admitted", adm.admitted)
        .set("rejected_overloaded", adm.rejected_overloaded)
        .set("rejected_deadline", adm.rejected_deadline)
        .set("rejected_draining", adm.rejected_draining)
        .set("rejected_quota", adm.rejected_quota)
        .set("peak_inflight", adm.peak_inflight)
        .set("max_inflight", shared.admission.config().max_inflight)
        .set("max_queue", shared.admission.config().max_queue);
    let mut tenants = Json::obj();
    for t in shared.admission.tenant_stats() {
        let mut entry = Json::obj();
        entry
            .set("inflight", t.inflight)
            .set("queued", t.queued)
            .set("admitted", t.admitted)
            .set("rejected_quota", t.rejected_quota);
        tenants.set(&t.tenant, entry);
    }
    admission.set("tenants", tenants);
    r.set("admission", admission);
    r.set(
        "oracle",
        gts_engine::snapshot_to_json(&gts_engine::oracle_snapshot(&shared.registry.oracle_stats())),
    );
    let mut server = Json::obj();
    server
        .set("uptime_micros", shared.started.elapsed().as_micros() as u64)
        .set("connections_open", shared.connections_open.load(Ordering::SeqCst))
        .set("connections_total", shared.connections_total.load(Ordering::Relaxed))
        .set("frames_total", shared.frames_total.load(Ordering::Relaxed))
        .set("requests_total", shared.requests_total.load(Ordering::Relaxed))
        .set("deadline_skipped", shared.deadline_skipped.load(Ordering::Relaxed))
        .set("errors_total", shared.errors_total.load(Ordering::Relaxed))
        .set("flushes_total", shared.flushes_total.load(Ordering::Relaxed))
        .set("memo_served", shared.memo_served_total.load(Ordering::Relaxed))
        .set("idle_closed", shared.idle_closed_total.load(Ordering::Relaxed))
        .set("draining", shared.draining.load(Ordering::SeqCst));
    r.set("server", server);
    r
}

/// Resolves the frame's `.gts` text, source schema, and engine options;
/// shared by `load_schema` and `analyze`.
fn resolve_source(
    shared: &Shared,
    frame: &Json,
    op: &str,
) -> Result<(Arc<Compiled>, usize, ContainmentOptions, Fingerprint, String), Json> {
    let gts = frame
        .get("gts")
        .and_then(Json::as_str)
        .ok_or_else(|| proto::error_frame(Some(op), proto::BAD_FRAME, "missing `gts` text"))?;
    let compiled = {
        // The span covers the memo lookup too, so traced frames always
        // decompose into a `parse` step (a hit is just a fast one).
        let _span = gts_obs::span("parse");
        shared
            .compile_cached(gts)
            .map_err(|e| proto::error_frame(Some(op), proto::COMPILE_ERROR, e))?
    };
    let source_key = if op == "load_schema" { "schema" } else { "source" };
    let source_idx = match frame.get(source_key).and_then(Json::as_str) {
        Some(name) => compiled.schemas.iter().position(|(n, _)| n == name).ok_or_else(|| {
            proto::error_frame(
                Some(op),
                proto::BAD_REQUEST,
                format!("no schema named `{name}` in the shipped text"),
            )
        })?,
        None if !compiled.schemas.is_empty() => 0,
        None => {
            return Err(proto::error_frame(
                Some(op),
                proto::BAD_REQUEST,
                "the shipped text declares no schema",
            ))
        }
    };
    let opts = match frame.get("budget").and_then(Json::as_str) {
        None | Some("default") => ContainmentOptions::default(),
        Some("large") => ContainmentOptions { budget: Budget::large(), ..Default::default() },
        Some(other) => {
            return Err(proto::error_frame(
                Some(op),
                proto::BAD_REQUEST,
                format!("unknown budget `{other}` (expected `default` or `large`)"),
            ))
        }
    };
    let key = canonical_key(&compiled.schemas[source_idx].1, &compiled.vocab, &opts);
    let fp = fingerprint_of(&key);
    Ok((compiled, source_idx, opts, fp, key))
}

fn load_schema(shared: &Shared, frame: &Json) -> Json {
    let (compiled, idx, opts, fp, key) = match resolve_source(shared, frame, "load_schema") {
        Ok(x) => x,
        Err(e) => return e,
    };
    let schema = compiled.schemas[idx].1.clone();
    let vocab = compiled.vocab.clone();
    let _span = gts_obs::span("session_checkout");
    let (_, hit) =
        shared.registry.checkout(fp, &key, || AnalysisSession::with_options(schema, vocab, opts));
    drop(_span);
    let mut r = proto::ok_frame("load_schema");
    r.set("fingerprint", fp.to_string())
        .set("schema", compiled.schemas[idx].0.as_str())
        .set("pool", if hit { "hit" } else { "miss" });
    r
}

fn evict(shared: &Shared, frame: &Json) -> Json {
    match frame.get("fingerprint") {
        // Only a genuinely absent field means "evict everything": a
        // present-but-malformed fingerprint must never escalate a typo
        // into a full pool wipe.
        None => {
            let n = shared.registry.evict_all();
            let mut r = proto::ok_frame("evict");
            r.set("evicted", n as u64);
            r
        }
        Some(v) => match v.as_str().and_then(Fingerprint::parse) {
            Some(fp) if shared.registry.evict(fp) => {
                let mut r = proto::ok_frame("evict");
                r.set("evicted", 1u64);
                r
            }
            Some(fp) => proto::error_frame(
                Some("evict"),
                proto::NOT_FOUND,
                format!("fingerprint {fp} is not resident"),
            ),
            None => proto::error_frame(
                Some("evict"),
                proto::BAD_REQUEST,
                "fingerprint must be a string of 16 hex digits",
            ),
        },
    }
}

/// `cache_export`: serialize the named session's cached state (verdict
/// memo, completion memo, solver snapshots) as a base64 store snapshot.
/// Prefers the resident session (freshest state); falls back to the
/// on-disk store under `cache_dir`, re-encoded to its validated clean
/// prefix so a torn tail never ships over the wire.
fn cache_export(shared: &Shared, frame: &Json) -> Json {
    let fp = match frame.get("fingerprint").and_then(Json::as_str).and_then(Fingerprint::parse) {
        Some(fp) => fp,
        None => {
            return proto::error_frame(
                Some("cache_export"),
                proto::BAD_REQUEST,
                "fingerprint must be a string of 16 hex digits",
            )
        }
    };
    let bytes = shared.registry.export_resident(fp).or_else(|| {
        let dir = shared.registry.cache_dir()?;
        let raw = std::fs::read(gts_store::store_path(dir, fp.0)).ok()?;
        let (identity, _) = gts_store::decode_identity(&raw)?;
        let loaded = gts_store::decode_store(&raw, None);
        Some(gts_store::encode_store(&identity, &loaded.records))
    });
    match bytes {
        Some(bytes) => {
            let mut r = proto::ok_frame("cache_export");
            r.set("fingerprint", fp.to_string())
                .set("bytes", bytes.len() as u64)
                .set("store", gts_store::base64_encode(&bytes));
            r
        }
        None => proto::error_frame(
            Some("cache_export"),
            proto::NOT_FOUND,
            format!("fingerprint {fp} is neither resident nor in the disk cache"),
        ),
    }
}

/// `cache_import`: accept a base64 store snapshot, install it into the
/// disk cache (when configured), and hydrate the matching resident
/// session in place. The snapshot names its own identity; the server
/// derives the fingerprint from it rather than trusting a client field.
fn cache_import(shared: &Shared, frame: &Json) -> Json {
    let op = "cache_import";
    let Some(b64) = frame.get("store").and_then(Json::as_str) else {
        return proto::error_frame(Some(op), proto::BAD_REQUEST, "missing `store` (base64 bytes)");
    };
    let Some(bytes) = gts_store::base64_decode(b64) else {
        return proto::error_frame(Some(op), proto::BAD_REQUEST, "store is not valid base64");
    };
    let Some((identity, _)) = gts_store::decode_identity(&bytes) else {
        return proto::error_frame(
            Some(op),
            proto::BAD_REQUEST,
            "store is not a valid snapshot (bad magic, version, or header)",
        );
    };
    let fp = Fingerprint(gts_store::fnv64(identity.as_bytes()));
    let mut r = proto::ok_frame(op);
    r.set("fingerprint", fp.to_string());
    let mut applied = false;
    if let Some(report) = shared.registry.hydrate_resident(fp, &bytes) {
        let mut h = Json::obj();
        h.set("verdicts", report.verdicts as u64)
            .set("completions", report.completions as u64)
            .set("solver_snapshots", report.solver_snapshots as u64)
            .set("degraded", report.degraded);
        r.set("hydrated", h).set("resident", true);
        applied = true;
    }
    // When a resident session absorbed the snapshot, install its merged
    // export (local state ∪ snapshot) rather than the raw snapshot —
    // overwriting the store file with the import alone would drop
    // locally learned records the snapshot doesn't carry.
    let install = if applied {
        shared.registry.export_resident(fp).unwrap_or_else(|| bytes.clone())
    } else {
        bytes.clone()
    };
    if let Some(dir) = shared.registry.cache_dir() {
        match gts_store::install_snapshot(&gts_store::store_path(dir, fp.0), &install) {
            Ok(_) => {
                r.set("installed", true);
                applied = true;
            }
            Err(e) => {
                return proto::error_frame(
                    Some(op),
                    proto::BAD_REQUEST,
                    format!("store rejected: {e}"),
                )
            }
        }
    }
    if !applied {
        return proto::error_frame(
            Some(op),
            proto::NOT_FOUND,
            "no resident session matches the snapshot and the server has no cache directory",
        );
    }
    r
}

fn analyze(shared: &Shared, frame: &Json) -> Json {
    // Validate the deadline before doing any work: `deadline_ms: 0`
    // would mint an already-expired deadline, so every request in the
    // frame would be skipped while the frame itself reported `ok:true` —
    // a malformed request, not a slow one.
    let deadline_ms = frame.get("deadline_ms").and_then(Json::as_u64);
    if deadline_ms == Some(0) {
        return proto::error_frame(
            Some("analyze"),
            proto::BAD_REQUEST,
            "deadline_ms must be >= 1 (0 expires before any request can run)",
        );
    }
    // A frame the server has answered before is served straight from
    // the response memo — analysis is deterministic in the shipped
    // text, so the resident steady state is a lookup. The cached copy
    // carries the advisory `session`/`micros` numbers from when it was
    // computed; the request counters still advance per spec.
    let memo_key = response_memo_key(frame);
    let memo_hash = memo_key.as_deref().map(|k| gts_store::fnv64(k.as_bytes()));
    if let (Some(key), Some(hash)) = (memo_key.as_deref(), memo_hash) {
        if let Some((fp, cached)) = shared.response_memo_get(hash, key) {
            shared.registry.note_resident_hit(fp);
            let n = cached.get("results").and_then(Json::as_arr).map_or(0, |r| r.len() as u64);
            shared.requests_total.fetch_add(n, Ordering::Relaxed);
            shared.obs.requests_total.add(n);
            shared.memo_served_total.fetch_add(1, Ordering::Relaxed);
            shared.obs.memo_served.inc();
            return cached;
        }
    }
    let (compiled, idx, opts, fp, key) = match resolve_source(shared, frame, "analyze") {
        Ok(x) => x,
        Err(e) => return e,
    };
    let Some(specs) = frame.get("requests").and_then(Json::as_arr) else {
        return proto::error_frame(Some("analyze"), proto::BAD_FRAME, "missing `requests` array");
    };
    // Resolve every spec BEFORE admission: malformed frames must not
    // consume an analysis slot.
    let mut resolved: Vec<(String, Request)> = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        match resolve_spec(shared, &compiled, spec) {
            Ok(labeled) => resolved.push(labeled),
            Err(msg) => {
                return proto::error_frame(
                    Some("analyze"),
                    proto::BAD_REQUEST,
                    format!("request #{i}: {msg}"),
                )
            }
        }
    }
    let deadline = deadline_ms
        .or(shared.cfg.default_deadline_ms)
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let permit = match shared.admission.admit_for(tenant_of(frame), deadline) {
        Ok(p) => p,
        Err(e) => {
            note_rejection(shared, e);
            return proto::error_frame(Some("analyze"), e.code(), admission_message(e));
        }
    };
    // Test/benchmark hook: hold the permit without doing work, so suites
    // can exercise backpressure and drain deterministically.
    if shared.cfg.allow_linger {
        if let Some(ms) = frame.get("linger_ms").and_then(Json::as_u64) {
            std::thread::sleep(Duration::from_millis(ms.min(10_000)));
        }
    }
    let schema = compiled.schemas[idx].1.clone();
    let checkout_span = gts_obs::span("session_checkout");
    let (mut session, pool_hit) = shared
        .registry
        .checkout(fp, &key, || AnalysisSession::with_options(schema, compiled.vocab.clone(), opts));
    drop(checkout_span);
    let mut results = Vec::with_capacity(resolved.len());
    let mut any_skipped = false;
    for (label, request) in resolved {
        // Count every request the frame carried — skipped ones included,
        // or `requests_total` under-reports exactly when the server is
        // pressed hardest (the moment the counters matter most).
        shared.requests_total.fetch_add(1, Ordering::Relaxed);
        shared.obs.requests_total.inc();
        if deadline.is_some_and(|d| Instant::now() >= d) {
            any_skipped = true;
            shared.deadline_skipped.fetch_add(1, Ordering::Relaxed);
            shared.obs.deadline_skipped.inc();
            let mut entry = Json::obj();
            entry.set("label", label).set("error", proto::DEADLINE_EXCEEDED).set("skipped", true);
            results.push(entry);
            continue;
        }
        let start = Instant::now();
        let verdict = request.run(&mut session);
        let micros = start.elapsed().as_micros() as u64;
        results.push(verdict_json(shared, &session, label, verdict, micros));
    }
    drop(permit);
    let stats = session.stats();
    let mut r = proto::ok_frame("analyze");
    r.set("fingerprint", fp.to_string())
        .set("source", compiled.schemas[idx].0.as_str())
        .set("pool", if pool_hit { "hit" } else { "miss" })
        .set("results", Json::Arr(results))
        .set("session", gts_engine::snapshot_to_json(&gts_engine::session_cache_snapshot(&stats)))
        .set(
            "oracle",
            gts_engine::snapshot_to_json(&gts_engine::oracle_snapshot(&session.oracle_stats())),
        );
    // Store the rendered response for the next identical frame. The
    // stored copy reports `pool: hit` — a memo-served answer *is* the
    // resident state answering. Partially-skipped responses depend on
    // timing, not text, so they are never stored.
    if let (Some(key), Some(hash)) = (memo_key, memo_hash) {
        if !any_skipped {
            let mut stored = r.clone();
            replace_field(&mut stored, "pool", Json::Str("hit".into()));
            shared.response_memo_put(hash, key, fp, stored);
        }
    }
    r
}

/// The `delta` verb: one incremental-execution request per frame. The
/// shipped instance is executed in full once, then each delta patches
/// the output through the incremental engine; the response reports the
/// per-delta strategy (incremental vs full-rebuild fallback) alongside
/// the patched output's size. Deltas that do not apply to the instance
/// (out-of-range names/ids, index overflow) come back as `bad_request`.
fn delta_verb(shared: &Shared, frame: &Json) -> Json {
    let op = "delta";
    let (compiled, idx, opts, fp, key) = match resolve_source(shared, frame, op) {
        Ok(x) => x,
        Err(e) => return e,
    };
    let Some(tname) = frame.get("transform").and_then(Json::as_str) else {
        return proto::error_frame(Some(op), proto::BAD_REQUEST, "missing `transform` name");
    };
    let Some((_, transform)) = compiled.transforms.iter().find(|(n, _)| n == tname) else {
        return proto::error_frame(
            Some(op),
            proto::BAD_REQUEST,
            format!("no transform named `{tname}` in the shipped text"),
        );
    };
    let Some(inst_text) = frame.get("instance").and_then(Json::as_str) else {
        return proto::error_frame(Some(op), proto::BAD_REQUEST, "missing `instance` text");
    };
    let Some(delta_text) = frame.get("delta").and_then(Json::as_str) else {
        return proto::error_frame(Some(op), proto::BAD_REQUEST, "missing `delta` text");
    };
    let mut vocab = compiled.vocab.clone();
    let (instance, delta) = {
        let _span = gts_obs::span("parse");
        match (shared.frontend.parse_delta)(inst_text, delta_text, &mut vocab) {
            Ok(x) => x,
            Err(e) => return proto::error_frame(Some(op), proto::BAD_REQUEST, e),
        }
    };
    let check_target = match frame.get("check_target").and_then(Json::as_str) {
        Some(name) => match compiled.schemas.iter().find(|(n, _)| n == name) {
            Some((_, s)) => Some(s.clone()),
            None => {
                return proto::error_frame(
                    Some(op),
                    proto::BAD_REQUEST,
                    format!("no schema named `{name}` in the shipped text"),
                )
            }
        },
        None => None,
    };
    let deadline = frame
        .get("deadline_ms")
        .and_then(Json::as_u64)
        .or(shared.cfg.default_deadline_ms)
        .map(|ms| Instant::now() + Duration::from_millis(ms.max(1)));
    let permit = match shared.admission.admit_for(tenant_of(frame), deadline) {
        Ok(p) => p,
        Err(e) => {
            note_rejection(shared, e);
            return proto::error_frame(Some(op), e.code(), admission_message(e));
        }
    };
    let schema = compiled.schemas[idx].1.clone();
    let (mut session, pool_hit) = shared
        .registry
        .checkout(fp, &key, || AnalysisSession::with_options(schema, compiled.vocab.clone(), opts));
    shared.requests_total.fetch_add(1, Ordering::Relaxed);
    shared.obs.requests_total.inc();
    let request = Request::ExecuteDelta {
        transform: transform.clone(),
        instance,
        deltas: vec![delta],
        check_target,
    };
    let start = Instant::now();
    let verdict = request.run(&mut session);
    let micros = start.elapsed().as_micros() as u64;
    drop(permit);
    if let Err(gts_core::AnalysisError::Delta(msg)) = &verdict {
        return proto::error_frame(Some(op), proto::BAD_REQUEST, msg.clone());
    }
    let entry = verdict_json(shared, &session, format!("delta {tname}"), verdict, micros);
    let mut r = proto::ok_frame(op);
    r.set("fingerprint", fp.to_string())
        .set("source", compiled.schemas[idx].0.as_str())
        .set("pool", if pool_hit { "hit" } else { "miss" })
        .set("result", entry);
    r
}

fn admission_message(e: crate::AdmissionError) -> &'static str {
    match e {
        crate::AdmissionError::Overloaded => {
            "all analysis slots busy and the wait queue is full; retry later"
        }
        crate::AdmissionError::DeadlineExceeded => "deadline passed while queued for a slot",
        crate::AdmissionError::Draining => "server is draining; no new analyses",
        crate::AdmissionError::QuotaExceeded => {
            "tenant is over its fair share of analysis slots; retry later"
        }
    }
}

/// Resolves one request spec against the compiled document.
fn resolve_spec(
    shared: &Shared,
    compiled: &Compiled,
    spec: &Json,
) -> Result<(String, Request), String> {
    let kind = spec.get("kind").and_then(Json::as_str).ok_or("missing `kind`")?;
    let transform = |key: &str| -> Result<Transformation, String> {
        let name = spec
            .get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("missing `{key}` transform name"))?;
        compiled
            .transforms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t.clone())
            .ok_or_else(|| format!("no transform named `{name}` in the shipped text"))
    };
    let schema = |key: &str| -> Result<Schema, String> {
        let name = spec
            .get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("missing `{key}` schema name"))?;
        compiled
            .schemas
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.clone())
            .ok_or_else(|| format!("no schema named `{name}` in the shipped text"))
    };
    let label = |default: String| -> String {
        spec.get("label").and_then(Json::as_str).map(str::to_owned).unwrap_or(default)
    };
    match kind {
        "type_check" => {
            let t = spec.get("transform").and_then(Json::as_str).unwrap_or("?").to_owned();
            let target = spec.get("target").and_then(Json::as_str).unwrap_or("?").to_owned();
            Ok((
                label(format!("check {t} -> {target}")),
                Request::TypeCheck {
                    transform: transform("transform")?,
                    target: schema("target")?,
                },
            ))
        }
        "equivalence" => {
            let l = spec.get("left").and_then(Json::as_str).unwrap_or("?").to_owned();
            let r = spec.get("right").and_then(Json::as_str).unwrap_or("?").to_owned();
            Ok((
                label(format!("equiv {l} ~ {r}")),
                Request::Equivalence { left: transform("left")?, right: transform("right")? },
            ))
        }
        "elicit" => {
            let t = spec.get("transform").and_then(Json::as_str).unwrap_or("?").to_owned();
            Ok((
                label(format!("elicit {t}")),
                Request::Elicit { transform: transform("transform")? },
            ))
        }
        "execute" => {
            let text =
                spec.get("instance").and_then(Json::as_str).ok_or("missing `instance` text")?;
            // Instances may intern new labels; parse against a scratch
            // vocabulary clone (the session keeps its own).
            let mut vocab = compiled.vocab.clone();
            let instance = (shared.frontend.parse_instance)(text, &mut vocab)
                .map_err(|e| format!("instance: {e}"))?;
            let check_target = match spec.get("check_target").and_then(Json::as_str) {
                Some(_) => Some(schema("check_target")?),
                None => None,
            };
            let t = spec.get("transform").and_then(Json::as_str).unwrap_or("?").to_owned();
            Ok((
                label(format!("execute {t}")),
                Request::Execute { transform: transform("transform")?, instance, check_target },
            ))
        }
        other => Err(format!("unknown request kind `{other}`")),
    }
}

/// Renders one request outcome as a result entry (same field names as
/// the `gts batch` JSON).
fn verdict_json(
    shared: &Shared,
    session: &AnalysisSession,
    label: String,
    verdict: Result<Verdict, gts_core::AnalysisError>,
    micros: u64,
) -> Json {
    let mut entry = Json::obj();
    entry.set("label", label).set("micros", micros);
    match verdict {
        Ok(Verdict::Decision(d)) => {
            entry.set("holds", d.holds).set("certified", d.certified);
        }
        Ok(Verdict::Elicited { schema, certified }) => {
            entry
                .set("schema", (shared.frontend.render_schema)(&schema, session.vocab()))
                .set("certified", certified);
        }
        Ok(Verdict::Executed { output, conforms }) => {
            entry
                .set("output_nodes", output.num_nodes() as u64)
                .set("output_edges", output.num_edges() as u64);
            if let Some(ok) = conforms {
                entry.set("conforms", ok);
            }
        }
        Ok(Verdict::DeltaExecuted { output, outcomes, conforms }) => {
            entry
                .set("output_nodes", output.num_nodes() as u64)
                .set("output_edges", output.num_edges() as u64);
            let rendered = outcomes
                .iter()
                .map(|o| {
                    let mut d = Json::obj();
                    d.set("strategy", format!("{:?}", o.strategy))
                        .set("touched", o.touched as u64)
                        .set("affected_sources", o.affected_sources as u64)
                        .set("rules_reevaluated", o.rules_reevaluated as u64)
                        .set("facts_added", o.facts_added as u64)
                        .set("facts_removed", o.facts_removed as u64);
                    d
                })
                .collect();
            entry.set("deltas", Json::Arr(rendered));
            if let Some(ok) = conforms {
                entry.set("conforms", ok);
            }
        }
        Err(e) => {
            entry.set("error", format!("{e:?}"));
        }
    }
    entry
}
