//! The wire protocol: frame grammar, error codes, and spec builders.
//!
//! Transport is TCP; each direction carries one JSON object per `\n`-
//! terminated line (no raw newlines can occur inside a frame — the JSON
//! escaper guarantees it). Every client frame carries the protocol
//! version `"v"` and a verb `"op"`; every server frame carries `"ok"`
//! plus the echoed `"op"`, and on failure an `"error"` code with a
//! human-readable `"message"`.
//!
//! Three fields are honored on *every* frame: an optional `"id"` (any
//! JSON value) is echoed verbatim in the response, so clients
//! multiplexing requests can correlate; an optional `"trace":true` asks
//! the server to collect the frame's span tree and attach it as the
//! response's `"trace"` field; an optional `"auth"` token names the
//! tenant the frame's work is accounted to (absent means the shared
//! `default` tenant).
//!
//! ## Versions 1 and 2
//!
//! The server speaks both protocol versions. They share the grammar
//! below; the difference is *response ordering*. A version-1 frame (and
//! a version-2 frame without an `"id"`) is answered strictly in arrival
//! order on its connection. A version-2 frame carrying an `"id"` may be
//! answered **out of order**: clients may pipeline many such frames
//! without waiting, and each response arrives as soon as its work
//! completes, correlated by the echoed `"id"`. Blocking one-at-a-time
//! clients work identically under both versions.
//!
//! ```text
//! frame      := version-verb fields*    # plus optional "id", "trace", "auth"
//! verbs      := ping | stats | metrics | load_schema | analyze | delta
//!             | evict | cache_export | cache_import | shutdown
//!
//! ping       := {"v":V,"op":"ping"}                       # V ∈ {1, 2}
//! stats      := {"v":V,"op":"stats"}
//! metrics    := {"v":V,"op":"metrics"[,"format":"prometheus"|"json"]}
//! load_schema:= {"v":V,"op":"load_schema","gts":TEXT[,"schema":NAME]}
//! analyze    := {"v":V,"op":"analyze","gts":TEXT[,"source":NAME]
//!                ,"requests":[SPEC...]
//!                [,"deadline_ms":N]    # N >= 1; 0 is a bad_request
//!                [,"budget":"default"|"large"]
//!                [,"linger_ms":N]}     # test hook, off by default
//! delta      := {"v":V,"op":"delta","gts":TEXT[,"source":NAME]
//!                ,"transform":T,"instance":TEXT,"delta":TEXT
//!                [,"check_target":S][,"deadline_ms":N]
//!                [,"budget":"default"|"large"]}
//! evict      := {"v":V,"op":"evict"[,"fingerprint":HEX16]}
//! cache_export := {"v":V,"op":"cache_export","fingerprint":HEX16}
//! cache_import := {"v":V,"op":"cache_import","store":BASE64}
//! shutdown   := {"v":V,"op":"shutdown"}
//!
//! SPEC       := {"kind":"type_check","transform":T,"target":S[,"label":L]}
//!             | {"kind":"equivalence","left":T1,"right":T2[,"label":L]}
//!             | {"kind":"elicit","transform":T[,"label":L]}
//!             | {"kind":"execute","transform":T,"instance":TEXT
//!                [,"check_target":S][,"label":L]}
//! ```
//!
//! Error codes (the `"error"` field of `{"ok":false}` frames):
//! [`BAD_FRAME`], [`UNSUPPORTED_VERSION`], [`UNKNOWN_OP`],
//! [`BAD_REQUEST`], [`COMPILE_ERROR`], [`OVERLOADED`],
//! [`DEADLINE_EXCEEDED`], [`SHUTTING_DOWN`], [`NOT_FOUND`],
//! [`QUOTA_EXCEEDED`].

use gts_engine::Json;

/// The newest protocol version this build speaks (and the one
/// [`frame`] emits). The server also accepts [`MIN_PROTO_VERSION`];
/// frames outside the range are rejected with [`UNSUPPORTED_VERSION`]
/// so that incompatible peers fail loudly instead of mis-parsing each
/// other.
pub const PROTO_VERSION: i64 = 2;

/// The oldest protocol version the server still accepts. Version-1
/// frames are answered strictly in order, as they always were.
pub const MIN_PROTO_VERSION: i64 = 1;

/// The frame was not a JSON object, exceeded the size bound, or lacked
/// required fields.
pub const BAD_FRAME: &str = "bad_frame";
/// The `"v"` field did not match [`PROTO_VERSION`].
pub const UNSUPPORTED_VERSION: &str = "unsupported_version";
/// The `"op"` verb is not part of the protocol.
pub const UNKNOWN_OP: &str = "unknown_op";
/// A request spec was malformed or referenced a missing item.
pub const BAD_REQUEST: &str = "bad_request";
/// The shipped `.gts` (or instance) text did not compile.
pub const COMPILE_ERROR: &str = "compile_error";
/// Admission refused: all slots busy and the wait queue full.
pub const OVERLOADED: &str = "overloaded";
/// The request's deadline passed (queued too long, or mid-frame).
pub const DEADLINE_EXCEEDED: &str = "deadline_exceeded";
/// The server is draining and takes no new work.
pub const SHUTTING_DOWN: &str = "shutting_down";
/// `evict` named a fingerprint that is not resident.
pub const NOT_FOUND: &str = "not_found";
/// Admission refused: global slots remain, but the frame's tenant is
/// over its fair share and the wait queue is full.
pub const QUOTA_EXCEEDED: &str = "quota_exceeded";

/// A client frame skeleton for `op` (version field included).
pub fn frame(op: &str) -> Json {
    let mut f = Json::obj();
    f.set("v", PROTO_VERSION).set("op", op);
    f
}

/// A success response skeleton echoing `op`.
pub fn ok_frame(op: &str) -> Json {
    let mut f = Json::obj();
    f.set("ok", true).set("op", op);
    f
}

/// An error response: `ok:false`, echoed `op` (when known), `error`
/// code, `message`.
pub fn error_frame(op: Option<&str>, code: &str, message: impl Into<String>) -> Json {
    let mut f = Json::obj();
    f.set("ok", false);
    if let Some(op) = op {
        f.set("op", op);
    }
    f.set("error", code).set("message", message.into());
    f
}

/// A `type_check` request spec.
pub fn spec_type_check(transform: &str, target: &str) -> Json {
    let mut s = Json::obj();
    s.set("kind", "type_check").set("transform", transform).set("target", target);
    s
}

/// An `equivalence` request spec.
pub fn spec_equivalence(left: &str, right: &str) -> Json {
    let mut s = Json::obj();
    s.set("kind", "equivalence").set("left", left).set("right", right);
    s
}

/// An `elicit` request spec.
pub fn spec_elicit(transform: &str) -> Json {
    let mut s = Json::obj();
    s.set("kind", "elicit").set("transform", transform);
    s
}

/// An `execute` request spec (`instance` is the standalone instance
/// text; `check_target` optionally names a schema to conformance-check
/// the output against).
pub fn spec_execute(transform: &str, instance: &str, check_target: Option<&str>) -> Json {
    let mut s = Json::obj();
    s.set("kind", "execute").set("transform", transform).set("instance", instance);
    if let Some(t) = check_target {
        s.set("check_target", t);
    }
    s
}

/// An `analyze` frame over `gts` text (`source` defaults to the file's
/// first schema server-side).
pub fn analyze_frame(gts: &str, source: Option<&str>, requests: Vec<Json>) -> Json {
    let mut f = frame("analyze");
    f.set("gts", gts);
    if let Some(s) = source {
        f.set("source", s);
    }
    f.set("requests", Json::Arr(requests));
    f
}

/// A `delta` frame: execute `transform` over `instance`, then patch the
/// output incrementally with `delta` (both in the front end's text
/// syntax; the delta may reference instance node names and declare
/// fresh ones).
pub fn delta_frame(
    gts: &str,
    transform: &str,
    instance: &str,
    delta: &str,
    check_target: Option<&str>,
) -> Json {
    let mut f = frame("delta");
    f.set("gts", gts).set("transform", transform).set("instance", instance).set("delta", delta);
    if let Some(t) = check_target {
        f.set("check_target", t);
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_carry_version_and_op() {
        let f = frame("ping");
        assert_eq!(f.get("v").and_then(Json::as_i64), Some(PROTO_VERSION));
        assert_eq!(f.get("op").and_then(Json::as_str), Some("ping"));
        let ok = ok_frame("stats");
        assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
        let err = error_frame(Some("analyze"), OVERLOADED, "queue full");
        assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(err.get("error").and_then(Json::as_str), Some(OVERLOADED));
        assert_eq!(err.get("message").and_then(Json::as_str), Some("queue full"));
        let anon = error_frame(None, BAD_FRAME, "not json");
        assert!(anon.get("op").is_none());
    }

    #[test]
    fn specs_have_the_documented_shape() {
        let s = spec_execute("T", "node a A", Some("S1"));
        assert_eq!(s.get("kind").and_then(Json::as_str), Some("execute"));
        assert_eq!(s.get("check_target").and_then(Json::as_str), Some("S1"));
        assert!(spec_execute("T", "i", None).get("check_target").is_none());
        let f = analyze_frame("schema S {}", Some("S"), vec![spec_elicit("T")]);
        assert_eq!(f.get("requests").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        // A frame is one line: rendering never contains a raw newline.
        let multi = analyze_frame("line1\nline2", None, vec![spec_type_check("T", "S")]);
        assert!(!multi.compact().contains('\n'));
    }
}
