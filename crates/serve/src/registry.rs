//! The resident session pool: `AnalysisSession`s keyed by schema
//! fingerprint, shared across connections, evicted LRU under budgets.
//!
//! A [`Fingerprint`] identifies everything a cached verdict depends on:
//! the *entire* vocabulary in intern order (label ids on the wire are
//! positional, so two clients only share a session when their label
//! numbering agrees), the source schema, and the engine budgets (a
//! verdict decided under small budgets may be `uncertified` where larger
//! budgets would certify — they must not share a memo). Checkout hands
//! back a *clone* of the pooled session: clones share the verdict memo
//! and oracle cache (that is the point of pooling) but own their
//! vocabulary, so per-request label interning — e.g. by `execute`
//! instances — cannot corrupt the pooled master.

use gts_core::containment::ContainmentOptions;
use gts_core::graph::{FxHashMap, Vocab};
use gts_core::schema::Schema;
use gts_engine::{AnalysisSession, HydrateReport};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// A 64-bit FNV-1a identity of (vocabulary, schema, budgets).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl Fingerprint {
    /// Parses the 16-hex-digit rendering.
    pub fn parse(s: &str) -> Option<Fingerprint> {
        (s.len() == 16).then(|| u64::from_str_radix(s, 16).ok().map(Fingerprint)).flatten()
    }
}

/// The canonical preimage of a [`Fingerprint`]: every byte of session
/// identity, spelled out. The registry stores it alongside each entry
/// and compares it on checkout, so a 64-bit hash collision between two
/// distinct (vocabulary, schema, budgets) identities can never silently
/// share a verdict memo — FNV is not collision-resistant, and the memo
/// is correctness-critical.
pub fn canonical_key(schema: &Schema, vocab: &Vocab, opts: &ContainmentOptions) -> String {
    gts_engine::identity::canonical_key(schema, vocab, opts)
}

/// Hashes a canonical key down to its wire-sized fingerprint. Delegates
/// to [`gts_engine::identity`] so the pool key and the on-disk store
/// filename are the same 64 bits.
pub fn fingerprint_of(key: &str) -> Fingerprint {
    Fingerprint(gts_engine::identity::fingerprint_of(key))
}

/// Computes the pool key of a session over `schema` under `opts`.
pub fn fingerprint(schema: &Schema, vocab: &Vocab, opts: &ContainmentOptions) -> Fingerprint {
    fingerprint_of(&canonical_key(schema, vocab, opts))
}

/// Pool budgets.
#[derive(Clone, Debug)]
pub struct RegistryConfig {
    /// Maximum resident sessions (≥ 1; the most recently used session is
    /// never evicted by the budget sweep).
    pub max_sessions: usize,
    /// Approximate byte budget across all resident verdict memos
    /// ([`gts_engine::CacheStats::approx_bytes`]).
    pub max_bytes: usize,
    /// When set, freshly built sessions hydrate from (and bind to) the
    /// store file for their fingerprint under this directory, and
    /// [`SessionRegistry::flush_all`] persists resident memos back.
    pub cache_dir: Option<PathBuf>,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig { max_sessions: 64, max_bytes: 256 << 20, cache_dir: None }
    }
}

/// Pool counters and occupancy gauges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Checkouts served by a resident session.
    pub hits: u64,
    /// Checkouts that built a fresh session.
    pub misses: u64,
    /// Sessions evicted (LRU budget sweeps + explicit evictions).
    pub evictions: u64,
    /// Checkouts whose fingerprint matched a resident entry but whose
    /// canonical key did not (64-bit hash collisions; the entry is
    /// replaced, never shared).
    pub collisions: u64,
    /// Resident sessions right now.
    pub sessions: usize,
    /// Approximate bytes across resident verdict memos, from the sizes
    /// cached at each session's last checkout (memos grow while clones
    /// are in use; the figure refreshes the next time that session is
    /// checked out).
    pub approx_bytes: usize,
    /// Resident sessions whose memo *alone* exceeds `max_bytes`. The
    /// sweep never evicts the most recently used session, so a single
    /// oversized memo legitimately outlives the budget — this gauge
    /// reports it instead of letting it blow the budget silently.
    pub oversized: usize,
    /// Records hydrated from on-disk stores when sessions were built
    /// (0 unless `cache_dir` is configured).
    pub disk_hydrated: u64,
}

impl RegistryStats {
    /// Fraction of checkouts served from the pool.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    /// The full identity preimage — compared on checkout so hash
    /// collisions can never alias two sessions.
    key: String,
    session: AnalysisSession,
    last_used: u64,
    /// Memo size as of this entry's last checkout. Cached so the budget
    /// sweep works off a running total instead of re-asking every
    /// session (each `stats()` call takes that session's memo lock) on
    /// every eviction step — that rescan made `enforce` O(n²).
    approx_bytes: usize,
}

#[derive(Default)]
struct Inner {
    entries: FxHashMap<u64, Entry>,
    /// Invariant: the sum of `entries[*].approx_bytes`.
    total_bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    collisions: u64,
    disk_hydrated: u64,
}

/// A concurrency-safe LRU pool of [`AnalysisSession`]s keyed by
/// [`Fingerprint`].
pub struct SessionRegistry {
    cfg: RegistryConfig,
    inner: Mutex<Inner>,
}

impl SessionRegistry {
    /// An empty pool under `cfg` (`max_sessions` clamped to ≥ 1).
    pub fn new(mut cfg: RegistryConfig) -> Self {
        cfg.max_sessions = cfg.max_sessions.max(1);
        SessionRegistry { cfg, inner: Mutex::new(Inner::default()) }
    }

    /// The pool budgets.
    pub fn config(&self) -> RegistryConfig {
        self.cfg.clone()
    }

    /// The disk-cache directory sessions hydrate from, when configured.
    pub fn cache_dir(&self) -> Option<&Path> {
        self.cfg.cache_dir.as_deref()
    }

    /// Fetches the session for `fp` (whose canonical preimage is `key`),
    /// building (and pooling) it with `build` on a miss. Returns the
    /// session clone and whether the pool had it. A resident entry is
    /// only shared when its stored key matches `key` byte-for-byte; a
    /// fingerprint collision between distinct identities counts as a
    /// miss and replaces the entry (newest wins — correctness over
    /// retention). Runs the budget sweep after every checkout, since
    /// memos grow as sessions are used.
    pub fn checkout(
        &self,
        fp: Fingerprint,
        key: &str,
        build: impl FnOnce() -> AnalysisSession,
    ) -> (AnalysisSession, bool) {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        // On a hit, refresh the cached size: checkout is the one moment
        // the pool touches an entry, and memos grow while clones are in
        // use between checkouts.
        let mut refreshed: Option<(AnalysisSession, usize, usize)> = None;
        let mut collided = false;
        match inner.entries.get_mut(&fp.0) {
            Some(entry) if entry.key == key => {
                entry.last_used = tick;
                let bytes = entry.session.stats().approx_bytes;
                let stale = std::mem::replace(&mut entry.approx_bytes, bytes);
                refreshed = Some((entry.session.clone(), stale, bytes));
            }
            Some(_) => collided = true,
            None => {}
        }
        let (session, hit) = match refreshed {
            Some((session, stale, fresh)) => {
                inner.total_bytes = inner.total_bytes - stale + fresh;
                inner.hits += 1;
                (session, true)
            }
            None => {
                if collided {
                    inner.collisions += 1;
                }
                // Build OUTSIDE the lock? Building a session is cheap (no
                // analysis runs), and holding the lock keeps the pool
                // single-flight per fingerprint — concurrent first
                // requests for one schema warm a single memo instead of
                // racing on independent ones.
                let mut session = build();
                if let Some(dir) = &self.cfg.cache_dir {
                    let report = session.attach_disk(dir);
                    inner.disk_hydrated += report.total() as u64;
                }
                inner.misses += 1;
                let bytes = session.stats().approx_bytes;
                let prev = inner.entries.insert(
                    fp.0,
                    Entry {
                        key: key.to_owned(),
                        session: session.clone(),
                        last_used: tick,
                        approx_bytes: bytes,
                    },
                );
                if let Some(prev) = prev {
                    inner.total_bytes -= prev.approx_bytes;
                }
                inner.total_bytes += bytes;
                (session, false)
            }
        };
        Self::enforce(&self.cfg, &mut inner);
        drop(inner);
        (session, hit)
    }

    /// The eviction counter alone, without refreshing entry sizes — the
    /// server's response memo checks this on every lookup, so it must
    /// stay O(1) (a full [`SessionRegistry::stats`] walks every memo).
    pub fn evictions(&self) -> u64 {
        self.inner.lock().unwrap().evictions
    }

    /// Notes a frame answered from resident state without a session
    /// checkout (the server's rendered-response memo): bumps the hit
    /// counter and the entry's LRU recency, so memo-served traffic
    /// participates in the same hit/miss accounting and pool aging as
    /// checked-out traffic.
    pub fn note_resident_hit(&self, fp: Fingerprint) {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.entries.get_mut(&fp.0) {
            entry.last_used = tick;
        }
        inner.hits += 1;
    }

    /// Evicts one fingerprint; `true` iff it was resident.
    pub fn evict(&self, fp: Fingerprint) -> bool {
        let mut inner = self.inner.lock().unwrap();
        match inner.entries.remove(&fp.0) {
            Some(entry) => {
                inner.total_bytes -= entry.approx_bytes;
                inner.evictions += 1;
                true
            }
            None => false,
        }
    }

    /// Evicts everything; returns how many sessions were dropped.
    pub fn evict_all(&self) -> usize {
        let mut inner = self.inner.lock().unwrap();
        let n = inner.entries.len();
        inner.entries.clear();
        inner.total_bytes = 0;
        inner.evictions += n as u64;
        n
    }

    /// Counter/occupancy snapshot. Refreshes each entry's cached size
    /// from its live memo first (stats calls are rare and observability
    /// wants current numbers); the eviction sweep itself stays on the
    /// cached values so it never touches memo locks per iteration.
    pub fn stats(&self) -> RegistryStats {
        let mut inner = self.inner.lock().unwrap();
        let mut total = 0;
        for entry in inner.entries.values_mut() {
            entry.approx_bytes = entry.session.stats().approx_bytes;
            total += entry.approx_bytes;
        }
        inner.total_bytes = total;
        RegistryStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            collisions: inner.collisions,
            sessions: inner.entries.len(),
            approx_bytes: inner.total_bytes,
            oversized: inner
                .entries
                .values()
                .filter(|e| e.approx_bytes > self.cfg.max_bytes)
                .count(),
            disk_hydrated: inner.disk_hydrated,
        }
    }

    /// Best-effort flush of every resident disk-bound session. Sessions
    /// are cloned out and flushed outside the pool lock (clones share
    /// the [`gts_engine::DiskBinding`]), so checkouts are never blocked
    /// on I/O.
    pub fn flush_all(&self) -> FlushSummary {
        let sessions: Vec<AnalysisSession> = {
            let inner = self.inner.lock().unwrap();
            inner.entries.values().map(|e| e.session.clone()).collect()
        };
        let mut out = FlushSummary::default();
        for session in sessions {
            match session.flush_disk() {
                None => {}
                Some(Ok(report)) => {
                    out.sessions += 1;
                    out.records += report.records;
                    out.bytes += report.bytes;
                }
                Some(Err(_)) => out.errors += 1,
            }
        }
        out
    }

    /// Exports the resident session for `fp` as store bytes (the same
    /// format [`gts_store`] persists), or `None` if not resident.
    pub fn export_resident(&self, fp: Fingerprint) -> Option<Vec<u8>> {
        let session = {
            let inner = self.inner.lock().unwrap();
            inner.entries.get(&fp.0).map(|e| e.session.clone())
        }?;
        Some(session.export_store_bytes())
    }

    /// Hydrates the resident session for `fp` from exported store bytes.
    /// The clone shares the pooled memo and oracle cache, so imported
    /// state lands in the pool. `None` when no session is resident or
    /// the bytes belong to a different identity.
    pub fn hydrate_resident(&self, fp: Fingerprint, bytes: &[u8]) -> Option<HydrateReport> {
        let mut session = {
            let inner = self.inner.lock().unwrap();
            inner.entries.get(&fp.0).map(|e| e.session.clone())
        }?;
        session.hydrate_from_bytes(bytes)
    }

    /// Aggregated oracle-cache statistics across the resident sessions.
    pub fn oracle_stats(&self) -> gts_core::containment::OracleCacheStats {
        let inner = self.inner.lock().unwrap();
        let mut agg = gts_core::containment::OracleCacheStats::default();
        for e in inner.entries.values() {
            agg.absorb(&e.session.oracle_stats());
        }
        agg
    }

    /// LRU sweep: drop least-recently-used entries while over the entry
    /// or byte budget, always keeping the most recent one. Works off the
    /// running byte total and the per-entry cached sizes — each step is
    /// O(sessions) with no memo locks, so the whole sweep is O(sessions ·
    /// evictions) instead of the former O(sessions²) rescan.
    fn enforce(cfg: &RegistryConfig, inner: &mut Inner) {
        while inner.entries.len() > 1 {
            let over_entries = inner.entries.len() > cfg.max_sessions;
            let over_bytes = inner.total_bytes > cfg.max_bytes;
            if !over_entries && !over_bytes {
                return;
            }
            // Ties on `last_used` cannot arise through checkout (ticks
            // are unique) but can through imported or hand-built state;
            // break them toward the smaller fingerprint so eviction is
            // deterministic rather than hash-iteration-order dependent.
            let oldest = inner
                .entries
                .iter()
                .min_by_key(|(&k, e)| (e.last_used, k))
                .map(|(&k, _)| k)
                .expect("non-empty");
            let entry = inner.entries.remove(&oldest).expect("just found");
            inner.total_bytes -= entry.approx_bytes;
            inner.evictions += 1;
        }
    }

    /// Test hook: overwrite an entry's `last_used` tick to construct
    /// LRU ties deterministically.
    #[cfg(test)]
    fn set_last_used(&self, fp: Fingerprint, tick: u64) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(e) = inner.entries.get_mut(&fp.0) {
            e.last_used = tick;
        }
    }

    /// Test hook: the running byte total and an entry-by-entry recount,
    /// for asserting the invariant after churn.
    #[cfg(test)]
    fn byte_accounting(&self) -> (usize, usize) {
        let inner = self.inner.lock().unwrap();
        (inner.total_bytes, inner.entries.values().map(|e| e.approx_bytes).sum())
    }
}

/// What [`SessionRegistry::flush_all`] wrote.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlushSummary {
    /// Disk-bound sessions flushed without error.
    pub sessions: usize,
    /// Records written across them.
    pub records: usize,
    /// Bytes written across them.
    pub bytes: usize,
    /// Sessions whose flush failed (I/O errors; the store degrades to
    /// its clean prefix on the next load).
    pub errors: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_core::prelude::*;
    use std::sync::Arc;

    fn fixture(n_labels: usize) -> (Vocab, Schema, Transformation) {
        let mut v = Vocab::new();
        let labels: Vec<_> = (0..n_labels.max(1)).map(|i| v.node_label(&format!("A{i}"))).collect();
        let r = v.edge_label("r");
        let a = labels[0];
        let mut s = Schema::new();
        s.set_edge(a, r, a, Mult::Star, Mult::Star);
        for &l in &labels[1..] {
            s.add_node_label(l);
        }
        let mut t = Transformation::new();
        t.add_node_rule(
            a,
            C2rpq::new(1, vec![Var(0)], vec![Atom { x: Var(0), y: Var(0), regex: Regex::node(a) }]),
        );
        (v, s, t)
    }

    fn fp_of(v: &Vocab, s: &Schema) -> Fingerprint {
        fingerprint(s, v, &ContainmentOptions::default())
    }

    fn key_of(v: &Vocab, s: &Schema) -> String {
        canonical_key(s, v, &ContainmentOptions::default())
    }

    #[test]
    fn fingerprints_separate_schemas_budgets_and_vocabularies() {
        let (v, s, _) = fixture(1);
        let base = fp_of(&v, &s);
        assert_eq!(base, fp_of(&v, &s), "deterministic");
        assert_eq!(Fingerprint::parse(&base.to_string()), Some(base), "hex roundtrip");

        // A different schema over the same vocabulary.
        let mut s2 = s.clone();
        let a = v.find_node_label("A0").unwrap();
        let r = v.find_edge_label("r").unwrap();
        s2.set_edge(a, r, a, Mult::One, Mult::Star);
        assert_ne!(base, fp_of(&v, &s2));

        // The same schema under larger budgets.
        let large = ContainmentOptions { budget: Budget::large(), ..Default::default() };
        assert_ne!(base, fingerprint(&s, &v, &large));

        // The same schema text with an extra interned label: positional
        // label ids shift meaning, so the pool must separate them.
        let mut v2 = v.clone();
        v2.node_label("Extra");
        assert_ne!(base, fp_of(&v2, &s));
    }

    #[test]
    fn checkout_pools_and_shares_the_memo() {
        let (v, s, t) = fixture(1);
        let reg = SessionRegistry::new(RegistryConfig::default());
        let fp = fp_of(&v, &s);
        let (mut s1, hit1) =
            reg.checkout(fp, &key_of(&v, &s), || AnalysisSession::new(s.clone(), v.clone()));
        assert!(!hit1);
        s1.type_check(&t, &s).unwrap();
        let warmed = s1.stats().misses;
        assert!(warmed > 0);
        let (mut s2, hit2) =
            reg.checkout(fp, &key_of(&v, &s), || AnalysisSession::new(s.clone(), v.clone()));
        assert!(hit2);
        s2.type_check(&t, &s).unwrap();
        let after = s2.stats();
        assert_eq!(after.misses, warmed, "the re-analysis was answered from the shared memo");
        assert!(after.hits > 0);
        let stats = reg.stats();
        assert_eq!((stats.hits, stats.misses, stats.sessions), (1, 1, 1));
        assert!(stats.approx_bytes > 0);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lru_eviction_under_entry_budget() {
        let reg = SessionRegistry::new(RegistryConfig {
            max_sessions: 2,
            max_bytes: usize::MAX,
            ..Default::default()
        });
        let fixtures: Vec<_> = (1..=3).map(fixture).collect();
        let fps: Vec<_> = fixtures.iter().map(|(v, s, _)| fp_of(v, s)).collect();
        assert_eq!(fps.iter().collect::<std::collections::HashSet<_>>().len(), 3);
        for (v, s, _) in &fixtures {
            reg.checkout(fp_of(v, s), &key_of(v, s), || AnalysisSession::new(s.clone(), v.clone()));
        }
        let stats = reg.stats();
        assert_eq!(stats.sessions, 2);
        assert_eq!(stats.evictions, 1);
        // The least-recently-used (first) fingerprint was the victim.
        let (v0, s0, _) = &fixtures[0];
        let (_, hit) =
            reg.checkout(fps[0], &key_of(v0, s0), || AnalysisSession::new(s0.clone(), v0.clone()));
        assert!(!hit, "fixture 0 was evicted");
        let (v2, s2, _) = &fixtures[2];
        let (_, hit2) =
            reg.checkout(fps[2], &key_of(v2, s2), || AnalysisSession::new(s2.clone(), v2.clone()));
        assert!(hit2, "fixture 2 stayed resident");
    }

    #[test]
    fn byte_budget_evicts_grown_memos_but_keeps_the_newest() {
        let reg = SessionRegistry::new(RegistryConfig {
            max_sessions: 16,
            max_bytes: 1,
            ..Default::default()
        });
        let (v, s, t) = fixture(1);
        let (mut sess, _) = reg.checkout(fp_of(&v, &s), &key_of(&v, &s), || {
            AnalysisSession::new(s.clone(), v.clone())
        });
        sess.type_check(&t, &s).unwrap();
        assert!(sess.stats().approx_bytes > 1);
        // Still resident: the newest session is never evicted.
        assert_eq!(reg.stats().sessions, 1);
        // Growth is observed at the next checkout (sizes are cached per
        // entry; the pool doesn't rescan live sessions).
        reg.checkout(fp_of(&v, &s), &key_of(&v, &s), || unreachable!("resident"));
        assert!(reg.stats().approx_bytes > 1, "refreshed past the budget");
        // A second schema pushes the grown one out.
        let (v2, s2, _) = fixture(2);
        reg.checkout(fp_of(&v2, &s2), &key_of(&v2, &s2), || {
            AnalysisSession::new(s2.clone(), v2.clone())
        });
        let stats = reg.stats();
        assert_eq!(stats.sessions, 1);
        assert!(stats.evictions >= 1);
    }

    #[test]
    fn explicit_eviction_and_evict_all() {
        let reg = SessionRegistry::new(RegistryConfig::default());
        let (v, s, _) = fixture(1);
        let fp = fp_of(&v, &s);
        reg.checkout(fp, &key_of(&v, &s), || AnalysisSession::new(s.clone(), v.clone()));
        assert!(reg.evict(fp));
        assert!(!reg.evict(fp), "double eviction is a no-op");
        reg.checkout(fp, &key_of(&v, &s), || AnalysisSession::new(s.clone(), v.clone()));
        let (v2, s2, _) = fixture(2);
        reg.checkout(fp_of(&v2, &s2), &key_of(&v2, &s2), || {
            AnalysisSession::new(s2.clone(), v2.clone())
        });
        assert_eq!(reg.evict_all(), 2);
        assert_eq!(reg.stats().sessions, 0);
    }

    #[test]
    fn fingerprint_collisions_never_share_a_session() {
        // Simulate a 64-bit collision: same fingerprint, different
        // canonical keys (as two colliding (vocab, schema) identities
        // would produce). The pool must treat the second checkout as a
        // miss, not hand over the first identity's memo.
        let (v, s, t) = fixture(1);
        let reg = SessionRegistry::new(RegistryConfig::default());
        let fp = Fingerprint(0xdead_beef);
        let (mut s1, hit1) =
            reg.checkout(fp, "identity-A", || AnalysisSession::new(s.clone(), v.clone()));
        assert!(!hit1);
        s1.type_check(&t, &s).unwrap();
        let (s2, hit2) =
            reg.checkout(fp, "identity-B", || AnalysisSession::new(s.clone(), v.clone()));
        assert!(!hit2, "a collision is a miss, never a hit");
        assert_eq!(s2.stats().entries, 0, "the colliding checkout got a fresh memo");
        let stats = reg.stats();
        assert_eq!(stats.collisions, 1);
        // Newest wins: identity-B is now resident under that fingerprint.
        let (_, hit3) =
            reg.checkout(fp, "identity-B", || AnalysisSession::new(s.clone(), v.clone()));
        assert!(hit3);
    }

    #[test]
    fn many_threads_hammering_one_schema_share_one_memo() {
        let (v, s, t) = fixture(1);
        let reg = Arc::new(SessionRegistry::new(RegistryConfig::default()));
        let fp = fp_of(&v, &s);
        let key = key_of(&v, &s);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let reg = Arc::clone(&reg);
                let key = key.clone();
                let (v, s, t) = (v.clone(), s.clone(), t.clone());
                std::thread::spawn(move || {
                    for _ in 0..5 {
                        let (mut sess, _) =
                            reg.checkout(fp, &key, || AnalysisSession::new(s.clone(), v.clone()));
                        let d = sess.type_check(&t, &s).unwrap();
                        assert!(d.holds && d.certified);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let stats = reg.stats();
        assert_eq!(stats.sessions, 1, "one fingerprint → one resident session");
        assert_eq!(stats.hits + stats.misses, 8 * 5);
        assert_eq!(stats.misses, 1, "exactly one thread built the session");
        // All 40 analyses shared one memo. Concurrent first-askers can
        // race on a cold key (the decide runs outside the memo lock), so
        // the structural bound is: at most one miss per (thread, key)
        // pair — everything else must have been a shared-memo hit.
        let (mut sess, _) = reg.checkout(fp, &key_of(&v, &s), || unreachable!("resident"));
        let memo = sess.stats();
        assert!(
            memo.misses <= 8 * memo.entries as u64,
            "more misses than cold races can explain: {memo:?}"
        );
        assert!(memo.hits > 0, "repeat questions hit the shared memo: {memo:?}");
        let d = sess.type_check(&t, &s).unwrap();
        assert!(d.holds);
    }

    #[test]
    fn many_schemas_under_budget_evict_consistently_across_threads() {
        let reg = Arc::new(SessionRegistry::new(RegistryConfig {
            max_sessions: 3,
            max_bytes: usize::MAX,
            ..Default::default()
        }));
        let fixtures: Arc<Vec<_>> = Arc::new((1..=10).map(fixture).collect());
        let threads: Vec<_> = (0..8)
            .map(|tid| {
                let reg = Arc::clone(&reg);
                let fixtures = Arc::clone(&fixtures);
                std::thread::spawn(move || {
                    for i in 0..30 {
                        let (v, s, t) = &fixtures[(tid + i) % fixtures.len()];
                        let fp = fp_of(v, s);
                        let (mut sess, _) = reg.checkout(fp, &key_of(v, s), || {
                            AnalysisSession::new(s.clone(), v.clone())
                        });
                        let d = sess.type_check(t, s).unwrap();
                        assert!(d.holds, "verdicts survive eviction churn");
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let stats = reg.stats();
        assert!(stats.sessions <= 3, "budget holds under concurrency: {stats:?}");
        assert!(stats.evictions > 0);
        assert_eq!(stats.hits + stats.misses, 8 * 30);
    }

    #[test]
    fn single_oversized_session_is_counted_not_silently_tolerated() {
        let reg = SessionRegistry::new(RegistryConfig {
            max_sessions: 16,
            max_bytes: 1,
            ..Default::default()
        });
        let (v, s, t) = fixture(1);
        let fp = fp_of(&v, &s);
        let (mut sess, _) =
            reg.checkout(fp, &key_of(&v, &s), || AnalysisSession::new(s.clone(), v.clone()));
        sess.type_check(&t, &s).unwrap();
        // The entry was sized before the analysis grew the shared memo:
        // a second checkout refreshes the cached size past the budget.
        reg.checkout(fp, &key_of(&v, &s), || unreachable!("resident"));
        let stats = reg.stats();
        assert_eq!(stats.sessions, 1, "the sole (newest) session survives the sweep");
        assert!(stats.approx_bytes > 1, "its memo exceeds max_bytes: {stats:?}");
        assert_eq!(stats.oversized, 1, "…and the stats say so: {stats:?}");
        // A small second schema displaces it; the gauge clears.
        let (v2, s2, _) = fixture(2);
        reg.checkout(fp_of(&v2, &s2), &key_of(&v2, &s2), || {
            AnalysisSession::new(s2.clone(), v2.clone())
        });
        let after = reg.stats();
        assert_eq!((after.sessions, after.oversized), (1, 0), "{after:?}");
    }

    #[test]
    fn eviction_ties_on_last_used_break_toward_the_smaller_fingerprint() {
        let reg = SessionRegistry::new(RegistryConfig {
            max_sessions: 2,
            max_bytes: usize::MAX,
            ..Default::default()
        });
        let fixtures: Vec<_> = (1..=2).map(fixture).collect();
        let mut fps: Vec<_> = fixtures.iter().map(|(v, s, _)| fp_of(v, s)).collect();
        for (v, s, _) in &fixtures {
            reg.checkout(fp_of(v, s), &key_of(v, s), || AnalysisSession::new(s.clone(), v.clone()));
        }
        // Force a tie strictly older than any later tick, then overflow
        // the entry budget with a third schema.
        reg.set_last_used(fps[0], 1);
        reg.set_last_used(fps[1], 1);
        let (v3, s3, _) = fixture(3);
        reg.checkout(fp_of(&v3, &s3), &key_of(&v3, &s3), || {
            AnalysisSession::new(s3.clone(), v3.clone())
        });
        fps.sort();
        let (iv, is_, _) = fixtures.iter().find(|(v, s, _)| fp_of(v, s) == fps[1]).unwrap();
        let (_, survived) = reg
            .checkout(fps[1], &key_of(iv, is_), || AnalysisSession::new(is_.clone(), iv.clone()));
        assert!(survived, "the larger tied fingerprint stayed resident");
        let (lv, ls, _) = fixtures.iter().find(|(v, s, _)| fp_of(v, s) == fps[0]).unwrap();
        let (_, hit) =
            reg.checkout(fps[0], &key_of(lv, ls), || AnalysisSession::new(ls.clone(), lv.clone()));
        assert!(!hit, "the smaller tied fingerprint was the victim");
    }

    #[test]
    fn byte_accounting_survives_an_eviction_storm() {
        let reg = SessionRegistry::new(RegistryConfig {
            max_sessions: 2,
            max_bytes: usize::MAX,
            ..Default::default()
        });
        let fixtures: Vec<_> = (1..=6).map(fixture).collect();
        for round in 0..4 {
            for (i, (v, s, t)) in fixtures.iter().enumerate() {
                let (mut sess, _) = reg.checkout(fp_of(v, s), &key_of(v, s), || {
                    AnalysisSession::new(s.clone(), v.clone())
                });
                if (round + i) % 2 == 0 {
                    sess.type_check(t, s).unwrap();
                }
                let (total, recount) = reg.byte_accounting();
                assert_eq!(total, recount, "running total drifted from per-entry sizes");
            }
        }
        let stats = reg.stats();
        assert_eq!(stats.sessions, 2);
        // 6 schemas cycled through a 2-slot pool 4 times: every round
        // after the first evicts all 6 misses' predecessors.
        assert!(stats.evictions >= 6, "{stats:?}");
        assert_eq!(stats.hits + stats.misses, 24);
        let (total, recount) = reg.byte_accounting();
        assert_eq!(total, recount);
        assert_eq!(stats.approx_bytes, total);
    }

    #[test]
    fn cache_dir_hydrates_new_sessions_from_disk() {
        let dir = std::env::temp_dir().join(format!("gts-reg-hydrate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (v, s, t) = fixture(1);
        let fp = fp_of(&v, &s);
        let cfg = RegistryConfig { cache_dir: Some(dir.clone()), ..Default::default() };
        // First life: build cold, analyze, flush to disk.
        {
            let reg = SessionRegistry::new(cfg.clone());
            let (mut sess, _) = reg.checkout(fp, &key_of(&v, &s), || {
                AnalysisSession::with_options(s.clone(), v.clone(), Default::default())
            });
            sess.type_check(&t, &s).unwrap();
            let flush = reg.flush_all();
            assert_eq!(flush.errors, 0);
            assert!(flush.records > 0, "{flush:?}");
        }
        // Second life: a fresh registry (fresh process, morally) warms
        // the session straight from the store file.
        let reg = SessionRegistry::new(cfg);
        let (mut sess, hit) = reg.checkout(fp, &key_of(&v, &s), || {
            AnalysisSession::with_options(s.clone(), v.clone(), Default::default())
        });
        assert!(!hit, "new registry, so a build miss");
        assert!(reg.stats().disk_hydrated > 0, "{:?}", reg.stats());
        let before = sess.stats();
        let d = sess.type_check(&t, &s).unwrap();
        assert!(d.holds && d.certified);
        let after = sess.stats();
        assert_eq!(after.misses, before.misses, "the re-analysis replayed disk verdicts");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
