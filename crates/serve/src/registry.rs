//! The resident session pool: `AnalysisSession`s keyed by schema
//! fingerprint, shared across connections, evicted LRU under budgets.
//!
//! A [`Fingerprint`] identifies everything a cached verdict depends on:
//! the *entire* vocabulary in intern order (label ids on the wire are
//! positional, so two clients only share a session when their label
//! numbering agrees), the source schema, and the engine budgets (a
//! verdict decided under small budgets may be `uncertified` where larger
//! budgets would certify — they must not share a memo). Checkout hands
//! back a *clone* of the pooled session: clones share the verdict memo
//! and oracle cache (that is the point of pooling) but own their
//! vocabulary, so per-request label interning — e.g. by `execute`
//! instances — cannot corrupt the pooled master.

use gts_core::containment::ContainmentOptions;
use gts_core::graph::{FxHashMap, Vocab};
use gts_core::schema::Schema;
use gts_engine::AnalysisSession;
use std::sync::Mutex;

/// A 64-bit FNV-1a identity of (vocabulary, schema, budgets).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl Fingerprint {
    /// Parses the 16-hex-digit rendering.
    pub fn parse(s: &str) -> Option<Fingerprint> {
        (s.len() == 16).then(|| u64::from_str_radix(s, 16).ok().map(Fingerprint)).flatten()
    }
}

/// The canonical preimage of a [`Fingerprint`]: every byte of session
/// identity, spelled out. The registry stores it alongside each entry
/// and compares it on checkout, so a 64-bit hash collision between two
/// distinct (vocabulary, schema, budgets) identities can never silently
/// share a verdict memo — FNV is not collision-resistant, and the memo
/// is correctness-critical.
pub fn canonical_key(schema: &Schema, vocab: &Vocab, opts: &ContainmentOptions) -> String {
    use std::fmt::Write as _;
    let mut key = String::new();
    for l in vocab.node_labels() {
        key.push_str(vocab.node_name(l));
        key.push('\x1f');
    }
    key.push('\x1e');
    for l in vocab.edge_labels() {
        key.push_str(vocab.edge_name(l));
        key.push('\x1f');
    }
    key.push('\x1e');
    key.push_str(&schema.render(vocab));
    key.push('\x1e');
    let _ = write!(
        key,
        "{:?}|{}|{}",
        opts.budget.cache_key(),
        opts.completion.max_nodes,
        opts.completion.max_rounds
    );
    key
}

/// Hashes a canonical key down to its wire-sized fingerprint.
pub fn fingerprint_of(key: &str) -> Fingerprint {
    let mut h = Fnv::new();
    h.write(key.as_bytes());
    Fingerprint(h.finish())
}

/// Computes the pool key of a session over `schema` under `opts`.
pub fn fingerprint(schema: &Schema, vocab: &Vocab, opts: &ContainmentOptions) -> Fingerprint {
    fingerprint_of(&canonical_key(schema, vocab, opts))
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf29ce484222325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Pool budgets.
#[derive(Clone, Copy, Debug)]
pub struct RegistryConfig {
    /// Maximum resident sessions (≥ 1; the most recently used session is
    /// never evicted by the budget sweep).
    pub max_sessions: usize,
    /// Approximate byte budget across all resident verdict memos
    /// ([`gts_engine::CacheStats::approx_bytes`]).
    pub max_bytes: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig { max_sessions: 64, max_bytes: 256 << 20 }
    }
}

/// Pool counters and occupancy gauges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Checkouts served by a resident session.
    pub hits: u64,
    /// Checkouts that built a fresh session.
    pub misses: u64,
    /// Sessions evicted (LRU budget sweeps + explicit evictions).
    pub evictions: u64,
    /// Checkouts whose fingerprint matched a resident entry but whose
    /// canonical key did not (64-bit hash collisions; the entry is
    /// replaced, never shared).
    pub collisions: u64,
    /// Resident sessions right now.
    pub sessions: usize,
    /// Approximate bytes across resident verdict memos right now.
    pub approx_bytes: usize,
}

impl RegistryStats {
    /// Fraction of checkouts served from the pool.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    /// The full identity preimage — compared on checkout so hash
    /// collisions can never alias two sessions.
    key: String,
    session: AnalysisSession,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    entries: FxHashMap<u64, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    collisions: u64,
}

/// A concurrency-safe LRU pool of [`AnalysisSession`]s keyed by
/// [`Fingerprint`].
pub struct SessionRegistry {
    cfg: RegistryConfig,
    inner: Mutex<Inner>,
}

impl SessionRegistry {
    /// An empty pool under `cfg` (`max_sessions` clamped to ≥ 1).
    pub fn new(mut cfg: RegistryConfig) -> Self {
        cfg.max_sessions = cfg.max_sessions.max(1);
        SessionRegistry { cfg, inner: Mutex::new(Inner::default()) }
    }

    /// The pool budgets.
    pub fn config(&self) -> RegistryConfig {
        self.cfg
    }

    /// Fetches the session for `fp` (whose canonical preimage is `key`),
    /// building (and pooling) it with `build` on a miss. Returns the
    /// session clone and whether the pool had it. A resident entry is
    /// only shared when its stored key matches `key` byte-for-byte; a
    /// fingerprint collision between distinct identities counts as a
    /// miss and replaces the entry (newest wins — correctness over
    /// retention). Runs the budget sweep after every checkout, since
    /// memos grow as sessions are used.
    pub fn checkout(
        &self,
        fp: Fingerprint,
        key: &str,
        build: impl FnOnce() -> AnalysisSession,
    ) -> (AnalysisSession, bool) {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        let resident = match inner.entries.get_mut(&fp.0) {
            Some(entry) if entry.key == key => {
                entry.last_used = tick;
                Some(entry.session.clone())
            }
            Some(_) => {
                inner.collisions += 1;
                None
            }
            None => None,
        };
        let (session, hit) = match resident {
            Some(session) => {
                inner.hits += 1;
                (session, true)
            }
            None => {
                // Build OUTSIDE the lock? Building a session is cheap (no
                // analysis runs), and holding the lock keeps the pool
                // single-flight per fingerprint — concurrent first
                // requests for one schema warm a single memo instead of
                // racing on independent ones.
                let session = build();
                inner.misses += 1;
                inner.entries.insert(
                    fp.0,
                    Entry { key: key.to_owned(), session: session.clone(), last_used: tick },
                );
                (session, false)
            }
        };
        Self::enforce(&self.cfg, &mut inner);
        drop(inner);
        (session, hit)
    }

    /// Evicts one fingerprint; `true` iff it was resident.
    pub fn evict(&self, fp: Fingerprint) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let found = inner.entries.remove(&fp.0).is_some();
        if found {
            inner.evictions += 1;
        }
        found
    }

    /// Evicts everything; returns how many sessions were dropped.
    pub fn evict_all(&self) -> usize {
        let mut inner = self.inner.lock().unwrap();
        let n = inner.entries.len();
        inner.entries.clear();
        inner.evictions += n as u64;
        n
    }

    /// Counter/occupancy snapshot.
    pub fn stats(&self) -> RegistryStats {
        let inner = self.inner.lock().unwrap();
        RegistryStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            collisions: inner.collisions,
            sessions: inner.entries.len(),
            approx_bytes: inner.entries.values().map(|e| e.session.stats().approx_bytes).sum(),
        }
    }

    /// Aggregated oracle-cache statistics across the resident sessions.
    pub fn oracle_stats(&self) -> gts_core::containment::OracleCacheStats {
        let inner = self.inner.lock().unwrap();
        let mut agg = gts_core::containment::OracleCacheStats::default();
        for e in inner.entries.values() {
            agg.absorb(&e.session.oracle_stats());
        }
        agg
    }

    /// LRU sweep: drop least-recently-used entries while over the entry
    /// or byte budget, always keeping the most recent one.
    fn enforce(cfg: &RegistryConfig, inner: &mut Inner) {
        loop {
            if inner.entries.len() <= 1 {
                return;
            }
            let over_entries = inner.entries.len() > cfg.max_sessions;
            let over_bytes = {
                let total: usize =
                    inner.entries.values().map(|e| e.session.stats().approx_bytes).sum();
                total > cfg.max_bytes
            };
            if !over_entries && !over_bytes {
                return;
            }
            let oldest = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
                .expect("non-empty");
            inner.entries.remove(&oldest);
            inner.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_core::prelude::*;
    use std::sync::Arc;

    fn fixture(n_labels: usize) -> (Vocab, Schema, Transformation) {
        let mut v = Vocab::new();
        let labels: Vec<_> = (0..n_labels.max(1)).map(|i| v.node_label(&format!("A{i}"))).collect();
        let r = v.edge_label("r");
        let a = labels[0];
        let mut s = Schema::new();
        s.set_edge(a, r, a, Mult::Star, Mult::Star);
        for &l in &labels[1..] {
            s.add_node_label(l);
        }
        let mut t = Transformation::new();
        t.add_node_rule(
            a,
            C2rpq::new(1, vec![Var(0)], vec![Atom { x: Var(0), y: Var(0), regex: Regex::node(a) }]),
        );
        (v, s, t)
    }

    fn fp_of(v: &Vocab, s: &Schema) -> Fingerprint {
        fingerprint(s, v, &ContainmentOptions::default())
    }

    fn key_of(v: &Vocab, s: &Schema) -> String {
        canonical_key(s, v, &ContainmentOptions::default())
    }

    #[test]
    fn fingerprints_separate_schemas_budgets_and_vocabularies() {
        let (v, s, _) = fixture(1);
        let base = fp_of(&v, &s);
        assert_eq!(base, fp_of(&v, &s), "deterministic");
        assert_eq!(Fingerprint::parse(&base.to_string()), Some(base), "hex roundtrip");

        // A different schema over the same vocabulary.
        let mut s2 = s.clone();
        let a = v.find_node_label("A0").unwrap();
        let r = v.find_edge_label("r").unwrap();
        s2.set_edge(a, r, a, Mult::One, Mult::Star);
        assert_ne!(base, fp_of(&v, &s2));

        // The same schema under larger budgets.
        let large = ContainmentOptions { budget: Budget::large(), ..Default::default() };
        assert_ne!(base, fingerprint(&s, &v, &large));

        // The same schema text with an extra interned label: positional
        // label ids shift meaning, so the pool must separate them.
        let mut v2 = v.clone();
        v2.node_label("Extra");
        assert_ne!(base, fp_of(&v2, &s));
    }

    #[test]
    fn checkout_pools_and_shares_the_memo() {
        let (v, s, t) = fixture(1);
        let reg = SessionRegistry::new(RegistryConfig::default());
        let fp = fp_of(&v, &s);
        let (mut s1, hit1) =
            reg.checkout(fp, &key_of(&v, &s), || AnalysisSession::new(s.clone(), v.clone()));
        assert!(!hit1);
        s1.type_check(&t, &s).unwrap();
        let warmed = s1.stats().misses;
        assert!(warmed > 0);
        let (mut s2, hit2) =
            reg.checkout(fp, &key_of(&v, &s), || AnalysisSession::new(s.clone(), v.clone()));
        assert!(hit2);
        s2.type_check(&t, &s).unwrap();
        let after = s2.stats();
        assert_eq!(after.misses, warmed, "the re-analysis was answered from the shared memo");
        assert!(after.hits > 0);
        let stats = reg.stats();
        assert_eq!((stats.hits, stats.misses, stats.sessions), (1, 1, 1));
        assert!(stats.approx_bytes > 0);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lru_eviction_under_entry_budget() {
        let reg = SessionRegistry::new(RegistryConfig { max_sessions: 2, max_bytes: usize::MAX });
        let fixtures: Vec<_> = (1..=3).map(fixture).collect();
        let fps: Vec<_> = fixtures.iter().map(|(v, s, _)| fp_of(v, s)).collect();
        assert_eq!(fps.iter().collect::<std::collections::HashSet<_>>().len(), 3);
        for (v, s, _) in &fixtures {
            reg.checkout(fp_of(v, s), &key_of(v, s), || AnalysisSession::new(s.clone(), v.clone()));
        }
        let stats = reg.stats();
        assert_eq!(stats.sessions, 2);
        assert_eq!(stats.evictions, 1);
        // The least-recently-used (first) fingerprint was the victim.
        let (v0, s0, _) = &fixtures[0];
        let (_, hit) =
            reg.checkout(fps[0], &key_of(v0, s0), || AnalysisSession::new(s0.clone(), v0.clone()));
        assert!(!hit, "fixture 0 was evicted");
        let (v2, s2, _) = &fixtures[2];
        let (_, hit2) =
            reg.checkout(fps[2], &key_of(v2, s2), || AnalysisSession::new(s2.clone(), v2.clone()));
        assert!(hit2, "fixture 2 stayed resident");
    }

    #[test]
    fn byte_budget_evicts_grown_memos_but_keeps_the_newest() {
        let reg = SessionRegistry::new(RegistryConfig { max_sessions: 16, max_bytes: 1 });
        let (v, s, t) = fixture(1);
        let (mut sess, _) = reg.checkout(fp_of(&v, &s), &key_of(&v, &s), || {
            AnalysisSession::new(s.clone(), v.clone())
        });
        sess.type_check(&t, &s).unwrap();
        assert!(sess.stats().approx_bytes > 1);
        // Still resident: the newest session is never evicted.
        assert_eq!(reg.stats().sessions, 1);
        // A second schema pushes the grown one out.
        let (v2, s2, _) = fixture(2);
        reg.checkout(fp_of(&v2, &s2), &key_of(&v2, &s2), || {
            AnalysisSession::new(s2.clone(), v2.clone())
        });
        let stats = reg.stats();
        assert_eq!(stats.sessions, 1);
        assert!(stats.evictions >= 1);
    }

    #[test]
    fn explicit_eviction_and_evict_all() {
        let reg = SessionRegistry::new(RegistryConfig::default());
        let (v, s, _) = fixture(1);
        let fp = fp_of(&v, &s);
        reg.checkout(fp, &key_of(&v, &s), || AnalysisSession::new(s.clone(), v.clone()));
        assert!(reg.evict(fp));
        assert!(!reg.evict(fp), "double eviction is a no-op");
        reg.checkout(fp, &key_of(&v, &s), || AnalysisSession::new(s.clone(), v.clone()));
        let (v2, s2, _) = fixture(2);
        reg.checkout(fp_of(&v2, &s2), &key_of(&v2, &s2), || {
            AnalysisSession::new(s2.clone(), v2.clone())
        });
        assert_eq!(reg.evict_all(), 2);
        assert_eq!(reg.stats().sessions, 0);
    }

    #[test]
    fn fingerprint_collisions_never_share_a_session() {
        // Simulate a 64-bit collision: same fingerprint, different
        // canonical keys (as two colliding (vocab, schema) identities
        // would produce). The pool must treat the second checkout as a
        // miss, not hand over the first identity's memo.
        let (v, s, t) = fixture(1);
        let reg = SessionRegistry::new(RegistryConfig::default());
        let fp = Fingerprint(0xdead_beef);
        let (mut s1, hit1) =
            reg.checkout(fp, "identity-A", || AnalysisSession::new(s.clone(), v.clone()));
        assert!(!hit1);
        s1.type_check(&t, &s).unwrap();
        let (s2, hit2) =
            reg.checkout(fp, "identity-B", || AnalysisSession::new(s.clone(), v.clone()));
        assert!(!hit2, "a collision is a miss, never a hit");
        assert_eq!(s2.stats().entries, 0, "the colliding checkout got a fresh memo");
        let stats = reg.stats();
        assert_eq!(stats.collisions, 1);
        // Newest wins: identity-B is now resident under that fingerprint.
        let (_, hit3) =
            reg.checkout(fp, "identity-B", || AnalysisSession::new(s.clone(), v.clone()));
        assert!(hit3);
    }

    #[test]
    fn many_threads_hammering_one_schema_share_one_memo() {
        let (v, s, t) = fixture(1);
        let reg = Arc::new(SessionRegistry::new(RegistryConfig::default()));
        let fp = fp_of(&v, &s);
        let key = key_of(&v, &s);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let reg = Arc::clone(&reg);
                let key = key.clone();
                let (v, s, t) = (v.clone(), s.clone(), t.clone());
                std::thread::spawn(move || {
                    for _ in 0..5 {
                        let (mut sess, _) =
                            reg.checkout(fp, &key, || AnalysisSession::new(s.clone(), v.clone()));
                        let d = sess.type_check(&t, &s).unwrap();
                        assert!(d.holds && d.certified);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let stats = reg.stats();
        assert_eq!(stats.sessions, 1, "one fingerprint → one resident session");
        assert_eq!(stats.hits + stats.misses, 8 * 5);
        assert_eq!(stats.misses, 1, "exactly one thread built the session");
        // All 40 analyses shared one memo. Concurrent first-askers can
        // race on a cold key (the decide runs outside the memo lock), so
        // the structural bound is: at most one miss per (thread, key)
        // pair — everything else must have been a shared-memo hit.
        let (mut sess, _) = reg.checkout(fp, &key_of(&v, &s), || unreachable!("resident"));
        let memo = sess.stats();
        assert!(
            memo.misses <= 8 * memo.entries as u64,
            "more misses than cold races can explain: {memo:?}"
        );
        assert!(memo.hits > 0, "repeat questions hit the shared memo: {memo:?}");
        let d = sess.type_check(&t, &s).unwrap();
        assert!(d.holds);
    }

    #[test]
    fn many_schemas_under_budget_evict_consistently_across_threads() {
        let reg = Arc::new(SessionRegistry::new(RegistryConfig {
            max_sessions: 3,
            max_bytes: usize::MAX,
        }));
        let fixtures: Arc<Vec<_>> = Arc::new((1..=10).map(fixture).collect());
        let threads: Vec<_> = (0..8)
            .map(|tid| {
                let reg = Arc::clone(&reg);
                let fixtures = Arc::clone(&fixtures);
                std::thread::spawn(move || {
                    for i in 0..30 {
                        let (v, s, t) = &fixtures[(tid + i) % fixtures.len()];
                        let fp = fp_of(v, s);
                        let (mut sess, _) = reg.checkout(fp, &key_of(v, s), || {
                            AnalysisSession::new(s.clone(), v.clone())
                        });
                        let d = sess.type_check(t, s).unwrap();
                        assert!(d.holds, "verdicts survive eviction churn");
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let stats = reg.stats();
        assert!(stats.sessions <= 3, "budget holds under concurrency: {stats:?}");
        assert!(stats.evictions > 0);
        assert_eq!(stats.hits + stats.misses, 8 * 30);
    }
}
