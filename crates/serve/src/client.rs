//! A blocking protocol client: one TCP connection, one frame per call.
//!
//! Used by `gts client`, the `loadgen` benchmark, and the loopback test
//! suites. Each call writes one frame line and reads one response line;
//! the connection is kept open across calls, so a client that issues
//! many `analyze` frames against one schema keeps hitting the same
//! resident session.

use crate::proto;
use gts_engine::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// What went wrong talking to the server.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write).
    Io(std::io::Error),
    /// The server's line was not valid JSON, or the connection closed
    /// mid-exchange.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a server (`"127.0.0.1:4815"`, a `SocketAddr`, …).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { reader, writer: stream })
    }

    /// Sends one frame and reads the one-line response.
    pub fn roundtrip(&mut self, frame: &Json) -> Result<Json, ClientError> {
        writeln!(self.writer, "{}", frame.compact())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Sends raw bytes (malformed-frame tests) and reads the response.
    pub fn roundtrip_raw(&mut self, line: &str) -> Result<Json, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Writes bytes without a frame terminator and drops the connection
    /// (early-disconnect tests).
    pub fn send_partial_and_close(mut self, bytes: &str) -> Result<(), ClientError> {
        self.writer.write_all(bytes.as_bytes())?;
        self.writer.flush()?;
        Ok(())
    }

    /// Sends every frame before reading any response (protocol-v2
    /// pipelining), then collects one response per frame and returns
    /// them **in submission order** regardless of completion order.
    ///
    /// Each frame is stamped with a request `id` (`"p0"`, `"p1"`, …)
    /// unless it already carries one, which is what lets the server
    /// answer out of order and this method reassemble. Frames the
    /// caller pre-stamped must use distinct ids.
    pub fn pipeline(&mut self, frames: &[Json]) -> Result<Vec<Json>, ClientError> {
        let mut batch = String::new();
        let mut ids = Vec::with_capacity(frames.len());
        for (i, frame) in frames.iter().enumerate() {
            let mut f = frame.clone();
            if f.get("id").is_none() {
                f.set("id", format!("p{i}"));
            }
            ids.push(f.get("id").expect("id just set").compact());
            batch.push_str(&f.compact());
            batch.push('\n');
        }
        self.writer.write_all(batch.as_bytes())?;
        self.writer.flush()?;
        let mut out: Vec<Option<Json>> = (0..frames.len()).map(|_| None).collect();
        for _ in 0..frames.len() {
            let response = self.read_response()?;
            let id = response.get("id").map(Json::compact).unwrap_or_default();
            match ids.iter().position(|want| *want == id) {
                Some(slot) if out[slot].is_none() => out[slot] = Some(response),
                _ => {
                    return Err(ClientError::Protocol(format!(
                        "pipelined response carries unexpected id {id}"
                    )))
                }
            }
        }
        Ok(out.into_iter().map(|r| r.expect("every slot filled")).collect())
    }

    fn read_response(&mut self) -> Result<Json, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol("connection closed by server".into()));
        }
        Json::parse(line.trim())
            .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))
    }

    /// `ping` roundtrip; returns the response frame.
    pub fn ping(&mut self) -> Result<Json, ClientError> {
        self.roundtrip(&proto::frame("ping"))
    }

    /// `stats` roundtrip (registry, admission, oracle, server counters).
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.roundtrip(&proto::frame("stats"))
    }

    /// `metrics` roundtrip: the server's metrics document, rendered into
    /// the response's `body` string field. `format` is `None` /
    /// `Some("prometheus")` for text exposition or `Some("json")` for
    /// the JSON mirror.
    pub fn metrics(&mut self, format: Option<&str>) -> Result<Json, ClientError> {
        let mut f = proto::frame("metrics");
        if let Some(fmt) = format {
            f.set("format", fmt);
        }
        self.roundtrip(&f)
    }

    /// `load_schema` roundtrip: registers/warms the pool entry for the
    /// (optionally named) schema of `gts` and returns its fingerprint.
    pub fn load_schema(&mut self, gts: &str, schema: Option<&str>) -> Result<Json, ClientError> {
        let mut f = proto::frame("load_schema");
        f.set("gts", gts);
        if let Some(name) = schema {
            f.set("schema", name);
        }
        self.roundtrip(&f)
    }

    /// `analyze` roundtrip over `gts` text.
    pub fn analyze(
        &mut self,
        gts: &str,
        source: Option<&str>,
        requests: Vec<Json>,
    ) -> Result<Json, ClientError> {
        self.roundtrip(&proto::analyze_frame(gts, source, requests))
    }

    /// `delta` roundtrip: execute `transform` over `instance`, then
    /// patch the output incrementally with `delta` text.
    pub fn delta(
        &mut self,
        gts: &str,
        transform: &str,
        instance: &str,
        delta: &str,
        check_target: Option<&str>,
    ) -> Result<Json, ClientError> {
        self.roundtrip(&proto::delta_frame(gts, transform, instance, delta, check_target))
    }

    /// `evict` roundtrip (`None` evicts every resident session).
    pub fn evict(&mut self, fingerprint: Option<&str>) -> Result<Json, ClientError> {
        let mut f = proto::frame("evict");
        if let Some(fp) = fingerprint {
            f.set("fingerprint", fp);
        }
        self.roundtrip(&f)
    }

    /// `cache_export` roundtrip: fetches the named session's cached
    /// state as a base64 store snapshot (the `store` response field).
    pub fn cache_export(&mut self, fingerprint: &str) -> Result<Json, ClientError> {
        let mut f = proto::frame("cache_export");
        f.set("fingerprint", fingerprint);
        self.roundtrip(&f)
    }

    /// `cache_import` roundtrip: ships a base64 store snapshot for the
    /// server to install into its disk cache and/or hydrate a resident
    /// session with.
    pub fn cache_import(&mut self, store_b64: &str) -> Result<Json, ClientError> {
        let mut f = proto::frame("cache_import");
        f.set("store", store_b64);
        self.roundtrip(&f)
    }

    /// `shutdown` roundtrip: asks the server to drain.
    pub fn shutdown(&mut self) -> Result<Json, ClientError> {
        self.roundtrip(&proto::frame("shutdown"))
    }
}
