//! Semaphore-style admission control for the analysis server.
//!
//! Analyses are CPU-bound and can take arbitrarily long (the decision
//! procedure is EXPTIME-bounded by explicit budgets), so a resident
//! server must not let every connection run one concurrently: an
//! [`Admission`] bounds the number of in-flight analyses and the number
//! of frames allowed to *wait* for a slot. Anything beyond that is
//! rejected immediately with a backpressure error — bounded latency for
//! admitted work beats unbounded buffering for everyone. Waiters with a
//! deadline give up (and free their queue slot) when it passes.
//!
//! ## Tenants
//!
//! Work is attributed to a *tenant* (the protocol's `auth` token;
//! absent means the shared `"default"` tenant). Tenants share the same
//! global bounds, but each is additionally held to a fair share of the
//! in-flight slots: `max(1, max_inflight / active_tenants)` (rounded
//! up), recomputed as tenants come and go. With one tenant the quota
//! equals `max_inflight`, so single-tenant behavior is exactly the
//! pre-tenant semantics. A tenant over its share waits in the same
//! bounded queue; when the queue is full, the rejection says *why* —
//! [`AdmissionError::Overloaded`] when the server is globally full,
//! [`AdmissionError::QuotaExceeded`] when slots are free but the tenant
//! has consumed its share.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// The tenant used when a frame carries no `auth` token.
pub const DEFAULT_TENANT: &str = "default";

/// Idle tenant entries beyond this count are dropped (their cumulative
/// counters with them) to bound memory against churning auth tokens.
const TENANT_TABLE_CAP: usize = 256;

/// Admission bounds.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Maximum analyses running concurrently (≥ 1).
    pub max_inflight: usize,
    /// Maximum frames waiting for a slot; `0` rejects as soon as all
    /// slots are busy.
    pub max_queue: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        AdmissionConfig { max_inflight: cores.max(1), max_queue: 2 * cores }
    }
}

/// Why admission was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// All slots busy and the wait queue is full — retry later.
    Overloaded,
    /// The request's deadline passed while it was queued.
    DeadlineExceeded,
    /// The server is draining and accepts no new work.
    Draining,
    /// Slots are free, but this tenant is over its fair share and the
    /// wait queue is full.
    QuotaExceeded,
}

impl AdmissionError {
    /// The protocol error code of this rejection.
    pub fn code(self) -> &'static str {
        match self {
            AdmissionError::Overloaded => "overloaded",
            AdmissionError::DeadlineExceeded => "deadline_exceeded",
            AdmissionError::Draining => "shutting_down",
            AdmissionError::QuotaExceeded => "quota_exceeded",
        }
    }
}

/// Cumulative admission counters plus current gauges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Analyses admitted (granted a permit).
    pub admitted: u64,
    /// Frames rejected because the queue was full.
    pub rejected_overloaded: u64,
    /// Frames whose deadline expired while queued.
    pub rejected_deadline: u64,
    /// Frames rejected during drain.
    pub rejected_draining: u64,
    /// Frames rejected because their tenant was over its fair share.
    pub rejected_quota: u64,
    /// Highest concurrent in-flight count observed.
    pub peak_inflight: usize,
    /// Analyses running right now.
    pub inflight: usize,
    /// Frames waiting for a slot right now.
    pub queued: usize,
}

/// One tenant's view of the admission counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant's `auth` token (or [`DEFAULT_TENANT`]).
    pub tenant: String,
    /// This tenant's analyses running right now.
    pub inflight: usize,
    /// This tenant's frames waiting for a slot right now.
    pub queued: usize,
    /// Analyses admitted for this tenant.
    pub admitted: u64,
    /// Frames rejected because this tenant was over its fair share.
    pub rejected_quota: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct TenantEntry {
    inflight: usize,
    queued: usize,
    admitted: u64,
    rejected_quota: u64,
}

impl TenantEntry {
    fn active(&self) -> bool {
        self.inflight + self.queued > 0
    }
}

#[derive(Default)]
struct State {
    inflight: usize,
    queued: usize,
    draining: bool,
    stats: AdmissionStats,
    tenants: HashMap<String, TenantEntry>,
}

impl State {
    /// This tenant's current in-flight quota: its fair share of the
    /// global slots among tenants with work in the system (itself
    /// included), never below one.
    fn quota(&self, cfg: &AdmissionConfig, tenant: &str) -> usize {
        let mut active = self.tenants.values().filter(|t| t.active()).count();
        if !self.tenants.get(tenant).is_some_and(TenantEntry::active) {
            active += 1; // the asker counts even before it enqueues
        }
        (cfg.max_inflight.div_ceil(active)).max(1)
    }

    /// `true` when `tenant` cannot be admitted right now.
    fn blocked(&self, cfg: &AdmissionConfig, tenant: &str) -> bool {
        let mine = self.tenants.get(tenant).map_or(0, |t| t.inflight);
        self.inflight >= cfg.max_inflight || mine >= self.quota(cfg, tenant)
    }

    fn entry(&mut self, tenant: &str) -> &mut TenantEntry {
        if !self.tenants.contains_key(tenant) {
            // Bound the table: recycle an idle entry's slot rather than
            // growing without limit under churning auth tokens.
            if self.tenants.len() >= TENANT_TABLE_CAP {
                if let Some(idle) =
                    self.tenants.iter().find(|(_, t)| !t.active()).map(|(k, _)| k.clone())
                {
                    self.tenants.remove(&idle);
                }
            }
            self.tenants.insert(tenant.to_owned(), TenantEntry::default());
        }
        self.tenants.get_mut(tenant).unwrap()
    }
}

/// The admission controller: a counting semaphore with a bounded wait
/// queue, per-tenant fair-share quotas, deadlines, and drain support,
/// built on `Mutex` + `Condvar` (std-only, like the rest of the server).
pub struct Admission {
    cfg: AdmissionConfig,
    state: Mutex<State>,
    cv: Condvar,
}

/// An admitted analysis slot; releasing is dropping.
pub struct Permit<'a> {
    adm: &'a Admission,
    tenant: String,
}

impl std::fmt::Debug for Permit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Permit({})", self.tenant)
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut s = self.adm.state.lock().unwrap();
        s.inflight -= 1;
        if let Some(t) = s.tenants.get_mut(&self.tenant) {
            t.inflight -= 1;
        }
        drop(s);
        // notify_all, not notify_one: the condvar is shared by queued
        // `admit` waiters AND `await_idle` blockers — a single wakeup
        // could land on an idle-waiter and leave a queued request
        // sleeping next to a free slot.
        self.adm.cv.notify_all();
    }
}

impl Admission {
    /// A controller with the given bounds (`max_inflight` is clamped to
    /// ≥ 1).
    pub fn new(mut cfg: AdmissionConfig) -> Self {
        cfg.max_inflight = cfg.max_inflight.max(1);
        Admission { cfg, state: Mutex::new(State::default()), cv: Condvar::new() }
    }

    /// The configured bounds.
    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    /// Requests a slot for the [`DEFAULT_TENANT`], waiting (up to
    /// `deadline`, if any) in the bounded queue when all slots are busy.
    pub fn admit(&self, deadline: Option<Instant>) -> Result<Permit<'_>, AdmissionError> {
        self.admit_for(DEFAULT_TENANT, deadline)
    }

    /// Requests a slot for `tenant`, waiting (up to `deadline`, if any)
    /// in the bounded queue when the server is full or the tenant has
    /// consumed its fair share.
    pub fn admit_for(
        &self,
        tenant: &str,
        deadline: Option<Instant>,
    ) -> Result<Permit<'_>, AdmissionError> {
        let mut s = self.state.lock().unwrap();
        if s.draining {
            s.stats.rejected_draining += 1;
            return Err(AdmissionError::Draining);
        }
        if s.blocked(&self.cfg, tenant) {
            // Blocked: take a queue slot or bounce, naming the cause —
            // a full server is `overloaded`, free slots behind a tenant
            // quota are `quota_exceeded`.
            if s.queued >= self.cfg.max_queue {
                if s.inflight >= self.cfg.max_inflight {
                    s.stats.rejected_overloaded += 1;
                    return Err(AdmissionError::Overloaded);
                }
                s.stats.rejected_quota += 1;
                s.entry(tenant).rejected_quota += 1;
                return Err(AdmissionError::QuotaExceeded);
            }
            s.queued += 1;
            s.entry(tenant).queued += 1;
            loop {
                if s.draining {
                    s.queued -= 1;
                    s.entry(tenant).queued -= 1;
                    s.stats.rejected_draining += 1;
                    return Err(AdmissionError::Draining);
                }
                if !s.blocked(&self.cfg, tenant) {
                    s.queued -= 1;
                    s.entry(tenant).queued -= 1;
                    break;
                }
                match deadline {
                    None => s = self.cv.wait(s).unwrap(),
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            s.queued -= 1;
                            s.entry(tenant).queued -= 1;
                            s.stats.rejected_deadline += 1;
                            return Err(AdmissionError::DeadlineExceeded);
                        }
                        let (guard, _timeout) = self.cv.wait_timeout(s, d - now).unwrap();
                        s = guard;
                    }
                }
            }
        }
        s.inflight += 1;
        s.stats.admitted += 1;
        s.stats.peak_inflight = s.stats.peak_inflight.max(s.inflight);
        let e = s.entry(tenant);
        e.inflight += 1;
        e.admitted += 1;
        Ok(Permit { adm: self, tenant: tenant.to_owned() })
    }

    /// Starts draining: queued waiters are woken and rejected, later
    /// `admit` calls fail fast. Already-admitted permits run to
    /// completion.
    pub fn begin_drain(&self) {
        self.state.lock().unwrap().draining = true;
        self.cv.notify_all();
    }

    /// `true` once [`Admission::begin_drain`] has run.
    pub fn draining(&self) -> bool {
        self.state.lock().unwrap().draining
    }

    /// Blocks until no analysis is in flight (drain completion).
    pub fn await_idle(&self) {
        let mut s = self.state.lock().unwrap();
        while s.inflight > 0 {
            s = self.cv.wait(s).unwrap();
        }
    }

    /// Counter snapshot. The `queued` gauge reports *current* waiters
    /// (the cumulative peak is folded into `peak_inflight`'s sibling
    /// fields).
    pub fn stats(&self) -> AdmissionStats {
        let s = self.state.lock().unwrap();
        AdmissionStats { inflight: s.inflight, queued: s.queued, ..s.stats }
    }

    /// Per-tenant counters, sorted by tenant name. Tenants that never
    /// submitted work do not appear.
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        let s = self.state.lock().unwrap();
        let mut out: Vec<TenantStats> = s
            .tenants
            .iter()
            .map(|(name, t)| TenantStats {
                tenant: name.clone(),
                inflight: t.inflight,
                queued: t.queued,
                admitted: t.admitted,
                rejected_quota: t.rejected_quota,
            })
            .collect();
        out.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn permits_are_bounded_and_released() {
        let adm = Admission::new(AdmissionConfig { max_inflight: 2, max_queue: 0 });
        let p1 = adm.admit(None).unwrap();
        let p2 = adm.admit(None).unwrap();
        assert_eq!(adm.admit(None).unwrap_err(), AdmissionError::Overloaded);
        drop(p1);
        let p3 = adm.admit(None).unwrap();
        drop(p2);
        drop(p3);
        let stats = adm.stats();
        assert_eq!(stats.admitted, 3);
        assert_eq!(stats.rejected_overloaded, 1);
        assert_eq!(stats.peak_inflight, 2);
        assert_eq!(stats.inflight, 0);
    }

    #[test]
    fn queued_waiters_get_slots_in_turn() {
        let adm = Arc::new(Admission::new(AdmissionConfig { max_inflight: 1, max_queue: 8 }));
        let held = adm.admit(None).unwrap();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let adm = Arc::clone(&adm);
                std::thread::spawn(move || {
                    let p = adm.admit(None).unwrap();
                    std::thread::sleep(Duration::from_millis(2));
                    drop(p);
                })
            })
            .collect();
        // Give the workers time to enqueue, then open the gate.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(adm.stats().queued, 4);
        drop(held);
        for w in workers {
            w.join().unwrap();
        }
        let stats = adm.stats();
        assert_eq!(stats.admitted, 5);
        assert_eq!(stats.inflight, 0);
        assert_eq!(stats.queued, 0);
        assert_eq!(stats.peak_inflight, 1, "never more than one in flight");
    }

    #[test]
    fn deadlines_bound_the_queue_wait() {
        let adm = Admission::new(AdmissionConfig { max_inflight: 1, max_queue: 4 });
        let _held = adm.admit(None).unwrap();
        let deadline = Instant::now() + Duration::from_millis(30);
        let start = Instant::now();
        let err = adm.admit(Some(deadline)).unwrap_err();
        assert_eq!(err, AdmissionError::DeadlineExceeded);
        assert!(start.elapsed() >= Duration::from_millis(25));
        assert_eq!(adm.stats().rejected_deadline, 1);
        assert_eq!(adm.stats().queued, 0, "the queue slot was released");
        // An already-expired deadline still rejects (without waiting).
        let err2 = adm.admit(Some(Instant::now() - Duration::from_millis(1))).unwrap_err();
        assert_eq!(err2, AdmissionError::DeadlineExceeded);
    }

    #[test]
    fn drain_rejects_new_work_and_wakes_waiters() {
        let adm = Arc::new(Admission::new(AdmissionConfig { max_inflight: 1, max_queue: 4 }));
        let held = adm.admit(None).unwrap();
        let waiter = {
            let adm = Arc::clone(&adm);
            std::thread::spawn(move || adm.admit(None).map(|_| ()))
        };
        std::thread::sleep(Duration::from_millis(20));
        adm.begin_drain();
        assert_eq!(waiter.join().unwrap().unwrap_err(), AdmissionError::Draining);
        assert_eq!(adm.admit(None).unwrap_err(), AdmissionError::Draining);
        // The held permit still completes; drain waits for it.
        let adm2 = Arc::clone(&adm);
        let joiner = std::thread::spawn(move || adm2.await_idle());
        drop(held);
        joiner.join().unwrap();
        assert_eq!(adm.stats().inflight, 0);
    }

    #[test]
    fn hammering_admission_from_many_threads_is_consistent() {
        let adm = Arc::new(Admission::new(AdmissionConfig { max_inflight: 3, max_queue: 64 }));
        let threads: Vec<_> = (0..16)
            .map(|_| {
                let adm = Arc::clone(&adm);
                std::thread::spawn(move || {
                    let mut admitted = 0u64;
                    for _ in 0..20 {
                        if let Ok(_p) = adm.admit(None) {
                            admitted += 1;
                            std::hint::spin_loop();
                        }
                    }
                    admitted
                })
            })
            .collect();
        let total: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(total, 16 * 20, "no unbounded queue → but queue of 64 fits 16 waiters");
        let stats = adm.stats();
        assert_eq!(stats.admitted, total);
        assert!(stats.peak_inflight <= 3);
        assert_eq!(stats.inflight, 0);
        assert_eq!(stats.queued, 0);
    }

    #[test]
    fn a_single_tenant_gets_the_whole_server() {
        // The fair-share quota must degenerate to plain admission when
        // only one tenant exists: full capacity, no quota rejections.
        let adm = Admission::new(AdmissionConfig { max_inflight: 3, max_queue: 0 });
        let p1 = adm.admit_for("alice", None).unwrap();
        let p2 = adm.admit_for("alice", None).unwrap();
        let p3 = adm.admit_for("alice", None).unwrap();
        assert_eq!(adm.admit_for("alice", None).unwrap_err(), AdmissionError::Overloaded);
        assert_eq!(adm.stats().rejected_quota, 0);
        drop((p1, p2, p3));
    }

    #[test]
    fn a_greedy_tenant_cannot_starve_a_newcomer() {
        let adm = Arc::new(Admission::new(AdmissionConfig { max_inflight: 2, max_queue: 4 }));
        // Greedy takes both slots while alone (quota = 2/1 = 2).
        let g1 = adm.admit_for("greedy", None).unwrap();
        let g2 = adm.admit_for("greedy", None).unwrap();
        // A newcomer queues (two active tenants → quota 1 each), and a
        // third greedy request queues behind its own exhausted share.
        let newcomer = {
            let adm = Arc::clone(&adm);
            std::thread::spawn(move || adm.admit_for("patient", None).map(drop))
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(adm.stats().queued, 1);
        // One greedy permit releases: the freed slot must go to the
        // newcomer (greedy is over its fair share of 1).
        drop(g1);
        newcomer.join().unwrap().unwrap();
        let tenants = adm.tenant_stats();
        let patient = tenants.iter().find(|t| t.tenant == "patient").unwrap();
        assert_eq!(patient.admitted, 1);
        // With the other slot still held by greedy, a queue-full quota
        // overflow for greedy names the quota, not overload.
        let adm_small = Admission::new(AdmissionConfig { max_inflight: 4, max_queue: 0 });
        let _a = adm_small.admit_for("a", None).unwrap();
        let _b = adm_small.admit_for("b", None).unwrap();
        // Two active tenants → quota 2 each; `a` may take one more…
        let _a2 = adm_small.admit_for("a", None).unwrap();
        // …but not a third, and the error says quota (slots remain free).
        assert_eq!(
            adm_small.admit_for("a", None).unwrap_err(),
            AdmissionError::QuotaExceeded,
            "free global slot + exhausted share must name the quota"
        );
        assert_eq!(adm_small.stats().rejected_quota, 1);
        drop(g2);
    }
}
