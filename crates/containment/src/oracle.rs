//! Brute-force finite oracles for differential testing of the containment
//! pipeline.
//!
//! The decision procedure answers `P ⊆_S Q` over *all* finite conforming
//! graphs; these oracles search small finite graphs for counterexamples —
//! exhaustively over tiny domains, and by random sampling of conforming
//! graphs otherwise. A certified `holds` from the pipeline must never
//! coexist with an oracle counterexample.

use gts_graph::{Graph, Vocab};
use gts_query::Uc2rpq;
use gts_schema::{random_conforming_graph, Schema};
use rand::Rng;

/// Checks whether `g` (assumed conforming) witnesses `P ⊄ Q`: some answer
/// tuple of `P` is missing from `Q`.
pub fn is_counterexample(p: &Uc2rpq, q: &Uc2rpq, g: &Graph) -> bool {
    let qa = q.eval(g);
    p.eval(g).iter().any(|t| !qa.contains(t))
}

/// Random search: samples conforming graphs and looks for a
/// counterexample.
pub fn counterexample_by_sampling<R: Rng>(
    p: &Uc2rpq,
    q: &Uc2rpq,
    s: &Schema,
    size_per_label: usize,
    samples: usize,
    rng: &mut R,
) -> Option<Graph> {
    for _ in 0..samples {
        if let Some(g) = random_conforming_graph(s, size_per_label, 3, rng) {
            if is_counterexample(p, q, &g) {
                return Some(g);
            }
        }
    }
    None
}

/// Exhaustive search over all conforming graphs with at most `max_nodes`
/// nodes (every node gets one label from `Γ_S`; every `(src, edge, tgt)`
/// triple is present or absent). Returns the first counterexample and a
/// flag telling whether the search space was fully covered within
/// `budget` enumerated graphs.
pub fn counterexample_exhaustive(
    p: &Uc2rpq,
    q: &Uc2rpq,
    s: &Schema,
    max_nodes: usize,
    budget: usize,
) -> (Option<Graph>, bool) {
    let labels = s.node_labels();
    let edges = s.edge_labels();
    let mut enumerated = 0usize;
    for n in 0..=max_nodes {
        if n > 0 && labels.is_empty() {
            break;
        }
        // All label assignments: base-|labels| counting.
        let assignments = (labels.len().max(1)).pow(n as u32);
        let edge_slots = edges.len() * n * n;
        if edge_slots > 24 {
            return (None, false); // 2^slots would overflow any budget
        }
        let edge_masks: u64 = 1u64 << edge_slots;
        for asg in 0..assignments {
            for mask in 0..edge_masks {
                enumerated += 1;
                if enumerated > budget {
                    return (None, false);
                }
                let g = build_graph(n, labels, edges, asg, mask);
                if s.conforms(&g).is_ok() && is_counterexample(p, q, &g) {
                    return (Some(g), true);
                }
            }
        }
    }
    (None, true)
}

fn build_graph(
    n: usize,
    labels: &[gts_graph::NodeLabel],
    edges: &[gts_graph::EdgeLabel],
    mut asg: usize,
    mask: u64,
) -> Graph {
    let mut g = Graph::new();
    for _ in 0..n {
        let node = g.add_node();
        if !labels.is_empty() {
            g.add_label(node, labels[asg % labels.len()]);
            asg /= labels.len();
        }
    }
    let mut bit = 0;
    for &e in edges {
        for src in 0..n {
            for tgt in 0..n {
                if mask & (1 << bit) != 0 {
                    g.add_edge(gts_graph::NodeId(src as u32), e, gts_graph::NodeId(tgt as u32));
                }
                bit += 1;
            }
        }
    }
    g
}

/// Convenience wrapper for tests: cross-validates a containment decision
/// against the exhaustive oracle (and panics on disagreement). `vocab` is
/// only used for error rendering.
pub fn assert_consistent_with_oracle(
    p: &Uc2rpq,
    q: &Uc2rpq,
    s: &Schema,
    holds: bool,
    certified: bool,
    max_nodes: usize,
    vocab: &Vocab,
) {
    let (cex, _complete) = counterexample_exhaustive(p, q, s, max_nodes, 500_000);
    if let Some(g) = cex {
        assert!(
            !(holds && certified),
            "certified containment contradicted by finite counterexample:\n{}",
            g.to_dot(vocab)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_query::{Atom, C2rpq, Regex, Var};
    use gts_schema::Mult;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Vocab, Schema, Uc2rpq, Uc2rpq) {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let r = v.edge_label("r");
        let sl = v.edge_label("s");
        let mut s = Schema::new();
        s.set_edge(a, r, a, Mult::Star, Mult::Star);
        s.set_edge(a, sl, a, Mult::Star, Mult::Star);
        let qr = Uc2rpq::single(C2rpq::new(
            2,
            vec![Var(0), Var(1)],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) }],
        ));
        let qs = Uc2rpq::single(C2rpq::new(
            2,
            vec![Var(0), Var(1)],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(sl) }],
        ));
        (v, s, qr, qs)
    }

    #[test]
    fn exhaustive_finds_distinguishing_graph() {
        let (_, s, qr, qs) = setup();
        let (cex, complete) = counterexample_exhaustive(&qr, &qs, &s, 2, 500_000);
        assert!(complete);
        let g = cex.expect("an r-edge without an s-edge distinguishes the queries");
        assert!(is_counterexample(&qr, &qs, &g));
        assert_eq!(s.conforms(&g), Ok(()));
    }

    #[test]
    fn exhaustive_confirms_reflexive_containment() {
        let (_, s, qr, _) = setup();
        let (cex, complete) = counterexample_exhaustive(&qr, &qr, &s, 2, 500_000);
        assert!(complete);
        assert!(cex.is_none());
    }

    #[test]
    fn sampling_finds_counterexamples_eventually() {
        let (_, s, qr, qs) = setup();
        let mut rng = StdRng::seed_from_u64(11);
        let cex = counterexample_by_sampling(&qr, &qs, &s, 3, 100, &mut rng);
        assert!(cex.is_some());
    }

    #[test]
    fn empty_graph_is_enumerated_first() {
        // P = ∃x.⊤ distinguishes against nothing on the empty graph, so the
        // only counterexample-free case is handled without blowup.
        let (_, s, qr, _) = setup();
        let p_top = Uc2rpq::single(C2rpq::new(1, vec![], vec![]));
        // ∃x.⊤ ⊄ r-query? On a single node with no edges, P holds (Boolean
        // vs arity mismatch aside this sanity-checks the enumerator).
        let (cex, complete) = counterexample_exhaustive(&p_top, &qr.clone(), &s, 1, 500_000);
        assert!(complete);
        assert!(cex.is_some());
    }
}
