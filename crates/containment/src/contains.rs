//! The top-level decision procedure: containment of UC2RPQs in acyclic
//! UC2RPQs modulo schema (Theorem 5.1), assembled from the reductions of
//! Section 5:
//!
//! ```text
//! P ⊆_S Q
//!   ⇔ P° ⊆_{S°} Q°                        Booleanization (Lemma D.1)
//!   ⇔ P̂ ⊆_{T̂_S} Q                        relativization (Lemma D.3)
//!   ⇔ P̂ finitely unsat mod T̂_S ∪ T¬Q     rolling-up (Lemma C.2)
//!   ⇔ P̂ unsat mod (T̂_S ∪ T¬Q)*           completion (Theorem 5.4, D.4)
//! ```
//!
//! Disconnected components of `Q` distribute the negation into several
//! choices (DESIGN.md §3.4); containment holds iff the final query is
//! unsatisfiable for *every* disjunct of `P̂` and every choice.
//!
//! Every satisfiability question of the pipeline — the per-disjunct
//! decisions above *and* the entailment probes inside the completion —
//! runs against an [`OracleCache`]: the caller's shared one
//! ([`ContainmentOptions::cache`], installed by `gts-engine`'s
//! `AnalysisSession`), or a call-local one otherwise, so even a single
//! cold `contains` shares solver state across its dozens of `decide`
//! calls. With [`ContainmentOptions::threads`] > 1 the independent
//! `(choice, disjunct)` decisions and the completion's entailment sweep
//! fan out over worker threads; results are merged in submission order,
//! so verdicts and witnesses do not depend on the thread count as long
//! as the engine budgets don't bind (warm solver contexts can resolve
//! budget-bound verdicts a cold context would report `Unknown`).

use crate::booleanize::booleanize;
use crate::cache::{OracleCache, OracleCacheStats};
use crate::completion::{complete_with, Completion, CompletionConfig};
use crate::hatp::hat_union;
use crate::rollup::{rollup_negation, RollupError};
use gts_dl::HornTbox;
use gts_graph::{Graph, Vocab};
use gts_query::{C2rpq, Uc2rpq};
use gts_sat::{Budget, Verdict};
use gts_schema::Schema;
use std::sync::Arc;

/// Options for [`contains`].
#[derive(Clone, Debug, Default)]
pub struct ContainmentOptions {
    /// Engine budgets.
    pub budget: Budget,
    /// Completion caps.
    pub completion: CompletionConfig,
    /// Worker threads for the parallel sections (per-choice satisfiability
    /// fan-out and the completion's entailment sweep): `1` — and the
    /// default `0`, which defers to the work-size heuristics — run
    /// sequentially unless the instance is large enough to shard.
    pub threads: usize,
    /// Shared oracle cache (solver contexts per TBox + completion memo).
    /// `None` (the default) uses a fresh cache per `contains` call;
    /// sessions install one cache for all their questions.
    pub cache: Option<Arc<OracleCache>>,
}

impl ContainmentOptions {
    /// These options with a shared oracle cache installed.
    pub fn with_cache(mut self, cache: Arc<OracleCache>) -> Self {
        self.cache = Some(cache);
        self
    }
}

/// The answer to a containment question.
#[derive(Clone, Debug)]
pub struct ContainmentAnswer {
    /// Does `P ⊆_S Q` hold (to the best of the search)?
    pub holds: bool,
    /// `true` iff the answer is a certificate: either an exhaustive
    /// unsatisfiability proof (`holds`), or a satisfiability witness modulo
    /// a fully computed completion (`!holds`).
    pub certified: bool,
    /// For `!holds`: the core of a model of `(T̂_S ∪ T¬Q)*` satisfying `P̂`
    /// (evidence of a finite counterexample's existence via Theorem 5.4).
    pub witness: Option<Graph>,
    /// Oracle work attributed to this call (decides, cores, cache reuse;
    /// see [`OracleCacheStats`]). Gauges (`entries`, `types_interned`)
    /// report the cache state after the call.
    pub stats: OracleCacheStats,
}

/// Why containment could not be decided at all.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ContainmentError {
    /// The right-hand query is not an acyclic UC2RPQ (or exceeded rollup
    /// caps).
    Rollup(RollupError),
    /// The queries have different arities.
    ArityMismatch,
    /// The left-hand NRE query could not be flattened into plain C2RPQs
    /// (nests under `*` are only supported on the right-hand side).
    Flatten(gts_query::FlattenError),
    /// The general-TBox entry points require Boolean queries (Booleanize
    /// against a schema first, Lemma D.1).
    NotBoolean,
}

/// Decides `P(x̄) ⊆_S Q(x̄)` for a UC2RPQ `P` and an *acyclic* UC2RPQ `Q`.
pub fn contains(
    p: &Uc2rpq,
    q: &Uc2rpq,
    s: &Schema,
    vocab: &mut Vocab,
    opts: &ContainmentOptions,
) -> Result<ContainmentAnswer, ContainmentError> {
    contains_lowered(p, q, &HornTbox::new(), s, vocab, opts)
}

/// Resolves the oracle cache for one call: the shared session cache, or a
/// call-local one.
pub(crate) fn call_cache(opts: &ContainmentOptions) -> Arc<OracleCache> {
    match &opts.cache {
        Some(c) => Arc::clone(c),
        None => Arc::new(OracleCache::new()),
    }
}

/// The per-(choice, disjunct) satisfiability outcomes of one choice.
struct ChoiceResult {
    completion_ok: bool,
    /// One verdict per disjunct, in order; the vector stops after the
    /// first `Sat` (later disjuncts need no evaluation for the overall
    /// answer — identical to the sequential short-circuit).
    verdicts: Vec<Verdict>,
}

fn solve_choice(
    choice: &HornTbox,
    shared: &SharedInputs<'_>,
    cache: &OracleCache,
    opts: &ContainmentOptions,
) -> ChoiceResult {
    let t = HornTbox::merged([shared.hat_ts, choice, shared.extra]);
    // Theorem 5.4 / Lemma D.7: complete.
    let Completion { tbox: t_star, complete: completion_ok, .. } = complete_with(
        &t,
        shared.schema_label_set,
        shared.fresh,
        &opts.budget,
        &opts.completion,
        Some(cache),
        opts.threads,
    );
    let mut verdicts = Vec::new();
    let handle = cache.solver().handle(&t_star, &opts.budget);
    for pd in shared.p_hat_disjuncts {
        let (v, _) = gts_sat::decide_on(&handle, &t_star, pd, &opts.budget, cache.solver());
        let is_sat = v.is_sat();
        verdicts.push(v);
        if is_sat {
            break;
        }
    }
    ChoiceResult { completion_ok, verdicts }
}

struct SharedInputs<'a> {
    hat_ts: &'a HornTbox,
    extra: &'a HornTbox,
    schema_label_set: &'a gts_graph::LabelSet,
    fresh: (gts_graph::NodeLabel, gts_graph::NodeLabel),
    p_hat_disjuncts: &'a [C2rpq],
}

/// The shared pipeline behind [`contains`] and
/// [`crate::contains_nre`]: `extra` holds auxiliary Horn rules (e.g. nest
/// label definitions) merged into every negation choice. `Q` may mention
/// synthetic labels defined by `extra`; `P` and the schema may not.
pub(crate) fn contains_lowered(
    p: &Uc2rpq,
    q: &Uc2rpq,
    extra: &HornTbox,
    s: &Schema,
    vocab: &mut Vocab,
    opts: &ContainmentOptions,
) -> Result<ContainmentAnswer, ContainmentError> {
    let _span = gts_obs::span("containment");
    if !gts_obs::enabled() {
        return contains_lowered_inner(p, q, extra, s, vocab, opts);
    }
    let start = std::time::Instant::now();
    let out = contains_lowered_inner(p, q, extra, s, vocab, opts);
    static HIST: std::sync::OnceLock<gts_obs::Histogram> = std::sync::OnceLock::new();
    HIST.get_or_init(|| {
        gts_obs::global().histogram(
            "gts_containment_contains_micros",
            "Latency of full containment decisions",
            &[],
        )
    })
    .record(start.elapsed().as_micros() as u64);
    out
}

fn contains_lowered_inner(
    p: &Uc2rpq,
    q: &Uc2rpq,
    extra: &HornTbox,
    s: &Schema,
    vocab: &mut Vocab,
    opts: &ContainmentOptions,
) -> Result<ContainmentAnswer, ContainmentError> {
    if let (Some(ap), Some(aq)) = (p.arity(), q.arity()) {
        if ap != aq {
            return Err(ContainmentError::ArityMismatch);
        }
    }
    let cache = call_cache(opts);
    let stats_before = cache.stats();
    let finish = |holds: bool, certified: bool, witness: Option<Graph>| ContainmentAnswer {
        holds,
        certified,
        witness,
        stats: cache.stats().delta_since(&stats_before),
    };
    // Syntactic shortcut: disjuncts of P that literally appear in Q are
    // contained; only the rest needs the semantic pipeline. (This also
    // settles reflexive containments of queries with infinite languages
    // without touching the engine.)
    let p = Uc2rpq {
        disjuncts: p.disjuncts.iter().filter(|d| !q.disjuncts.contains(d)).cloned().collect(),
    };
    // The empty union is contained in everything.
    if p.disjuncts.is_empty() {
        return Ok(finish(true, true, None));
    }

    // Lemma D.1: Booleanize.
    let b = booleanize(&p, q, s, vocab);

    // Lemma C.2 (+ the disconnected-negation distribution).
    let (choices, _state_labels) =
        rollup_negation(&b.q, vocab).map_err(ContainmentError::Rollup)?;
    // Duplicate choices (symmetric Q-components) decide identically; keep
    // the first occurrence only.
    let mut unique_choices: Vec<&HornTbox> = Vec::new();
    for choice in &choices {
        if !unique_choices.contains(&choice) {
            unique_choices.push(choice);
        }
    }

    // Theorem 5.6: relativize P and build T̂_S.
    let p_hat = hat_union(&b.p, &b.schema);
    let hat_ts = b.schema.hat_tbox();
    let schema_label_set = b.schema.node_label_set();
    let fresh = (vocab.fresh_node_label("B"), vocab.fresh_node_label("B"));
    let shared = SharedInputs {
        hat_ts: &hat_ts,
        extra,
        schema_label_set: &schema_label_set,
        fresh,
        p_hat_disjuncts: &p_hat.disjuncts,
    };

    // Certification is one-sided in the completion: a *partial* completion
    // T*' ⊆ T* only removes CIs, so UNSAT modulo T*' implies UNSAT modulo
    // T* — "containment holds" verdicts remain certificates even when the
    // completion hit a cap. Only SAT witnesses (non-containment) need the
    // full completion to correspond to finite counterexamples (Thm 5.4).
    let workers = choice_workers(opts.threads, unique_choices.len());
    let results: Vec<ChoiceResult> = if workers > 1 {
        // Independent per-choice pipelines fan out over exactly `workers`
        // threads (contiguous chunks); the merge below scans results in
        // submission order, reproducing the sequential verdict (and
        // witness) exactly. The thread budget is spent here, so each
        // choice's completion sweep runs sequentially (no multiplicative
        // oversubscription).
        let choice_opts = ContainmentOptions { threads: 1, ..opts.clone() };
        let chunk = unique_choices.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = unique_choices
                .chunks(chunk)
                .map(|choices| {
                    let cache = &cache;
                    let shared = &shared;
                    let choice_opts = &choice_opts;
                    scope.spawn(move || {
                        choices
                            .iter()
                            .map(|choice| solve_choice(choice, shared, cache, choice_opts))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("choice worker panicked")).collect()
        })
    } else {
        // Sequential: stop at the first choice producing a Sat — later
        // choices' completions cannot change a non-containment verdict.
        let mut out = Vec::new();
        for choice in &unique_choices {
            let result = solve_choice(choice, &shared, &cache, opts);
            let sat = result.verdicts.iter().any(Verdict::is_sat);
            out.push(result);
            if sat {
                break;
            }
        }
        out
    };

    let mut all_certified = true;
    for result in results {
        for v in result.verdicts {
            match v {
                Verdict::Sat(w) => {
                    return Ok(finish(false, result.completion_ok, Some(w.core)));
                }
                Verdict::Unsat => {}
                Verdict::Unknown(_) => {
                    all_certified = false;
                }
            }
        }
    }
    Ok(finish(true, all_certified, None))
}

/// Worker count for the per-choice fan-out: parallelism only pays when
/// there are several independent choices to pipeline.
fn choice_workers(threads: usize, choices: usize) -> usize {
    let t = match threads {
        0 => 1, // auto currently defers to the completion-sweep parallelism
        t => t,
    };
    t.clamp(1, choices)
}

/// Satisfiability of a query modulo a schema: `q ⊄_S ∅` (used for trimming
/// transformations, Appendix B). Returns `(satisfiable, certified)`.
pub fn satisfiable_modulo_schema(
    q: &C2rpq,
    s: &Schema,
    vocab: &mut Vocab,
    opts: &ContainmentOptions,
) -> Result<(bool, bool), ContainmentError> {
    let ans = contains(&Uc2rpq::single(q.clone()), &Uc2rpq::empty(), s, vocab, opts)?;
    Ok((!ans.holds, ans.certified))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_graph::EdgeSym;
    use gts_query::{Atom, Regex, Var};
    use gts_schema::Mult;

    fn opts() -> ContainmentOptions {
        ContainmentOptions::default()
    }

    /// r(x,y) ⊆_S r(x,y): reflexivity.
    #[test]
    fn containment_is_reflexive() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let r = v.edge_label("r");
        let mut s = Schema::new();
        s.set_edge(a, r, a, Mult::Star, Mult::Star);
        let q = Uc2rpq::single(C2rpq::new(
            2,
            vec![Var(0), Var(1)],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) }],
        ));
        let ans = contains(&q, &q, &s.clone(), &mut v, &opts()).unwrap();
        assert!(ans.holds, "reflexive containment must hold");
        assert!(ans.certified);
    }

    /// r(x,y) ⊆ (r+s)(x,y) but not conversely.
    #[test]
    fn union_widening() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let r = v.edge_label("r");
        let sl = v.edge_label("s");
        let mut s = Schema::new();
        s.set_edge(a, r, a, Mult::Star, Mult::Star);
        s.set_edge(a, sl, a, Mult::Star, Mult::Star);
        let qr = Uc2rpq::single(C2rpq::new(
            2,
            vec![Var(0), Var(1)],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) }],
        ));
        let qrs = Uc2rpq::single(C2rpq::new(
            2,
            vec![Var(0), Var(1)],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r).or(Regex::edge(sl)) }],
        ));
        let fwd = contains(&qr, &qrs, &s, &mut v, &opts()).unwrap();
        assert!(fwd.holds && fwd.certified);
        let bwd = contains(&qrs, &qr, &s, &mut v, &opts()).unwrap();
        assert!(!bwd.holds, "s-edge witnesses non-containment");
        assert!(bwd.certified);
        assert!(bwd.witness.is_some());
        // The call did real oracle work and attributed it.
        assert!(bwd.stats.solver.decides > 0);
    }

    /// Schema-enabled containment: if the schema forbids s-edges, then
    /// (r+s)(x,y) ⊆_S r(x,y) *does* hold.
    #[test]
    fn schema_prunes_unrealizable_branches() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let r = v.edge_label("r");
        let sl = v.edge_label("s");
        let mut s = Schema::new();
        s.set_edge(a, r, a, Mult::Star, Mult::Star);
        // `s` is declared but forbidden everywhere (all-zero δ).
        s.add_edge_label(sl);
        let qr = Uc2rpq::single(C2rpq::new(
            2,
            vec![Var(0), Var(1)],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) }],
        ));
        let qrs = Uc2rpq::single(C2rpq::new(
            2,
            vec![Var(0), Var(1)],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r).or(Regex::edge(sl)) }],
        ));
        let ans = contains(&qrs, &qr, &s, &mut v, &opts()).unwrap();
        assert!(ans.holds, "forbidden s-edges cannot witness non-containment");
        assert!(ans.certified);
    }

    /// Example 5.2 / Figure 2: P = ∃x.r(x,x), Q = ∃x,y.(r·s⁺·r)(x,y);
    /// P ⊆_S Q holds over finite graphs — only because of cycle reversal.
    #[test]
    fn example_5_2_finite_containment_holds() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let sl = v.edge_label("s");
        let r = v.edge_label("r");
        let mut s = Schema::new();
        // A --s--> A with + outgoing and ? incoming; r unrestricted.
        s.set_edge(a, sl, a, Mult::Plus, Mult::Opt);
        s.set_edge(a, r, a, Mult::Star, Mult::Star);
        let p = Uc2rpq::single(C2rpq::new(
            1,
            vec![],
            vec![Atom { x: Var(0), y: Var(0), regex: Regex::edge(r) }],
        ));
        let splus = Regex::edge(sl).then(Regex::edge(sl).star());
        let q = Uc2rpq::single(C2rpq::new(
            2,
            vec![],
            vec![Atom {
                x: Var(0),
                y: Var(1),
                regex: Regex::edge(r).then(splus).then(Regex::edge(r)),
            }],
        ));
        let ans = contains(&p, &q, &s, &mut v, &opts()).unwrap();
        assert!(ans.holds, "Example 5.2: finite containment holds via cycle reversal");
        assert!(ans.certified);
    }

    /// The same instance WITHOUT the at-most constraint on s⁻: infinite
    /// s-trees exist even finitely…ish — containment now fails (the
    /// reversal is no longer sound, and a finite counterexample exists:
    /// e.g. an r-self-loop plus an s-cycle elsewhere feeding the node).
    #[test]
    fn example_5_2_variant_without_functionality_fails() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let sl = v.edge_label("s");
        let r = v.edge_label("r");
        let mut s = Schema::new();
        s.set_edge(a, sl, a, Mult::Plus, Mult::Star); // ← no ? on s⁻
        s.set_edge(a, r, a, Mult::Star, Mult::Star);
        let p = Uc2rpq::single(C2rpq::new(
            1,
            vec![],
            vec![Atom { x: Var(0), y: Var(0), regex: Regex::edge(r) }],
        ));
        let splus = Regex::edge(sl).then(Regex::edge(sl).star());
        let q = Uc2rpq::single(C2rpq::new(
            2,
            vec![],
            vec![Atom {
                x: Var(0),
                y: Var(1),
                regex: Regex::edge(r).then(splus).then(Regex::edge(r)),
            }],
        ));
        let ans = contains(&p, &q, &s, &mut v, &opts()).unwrap();
        assert!(!ans.holds);
        assert!(ans.certified);
    }

    /// Cyclic P is allowed (only Q must be acyclic): r(x,x) ⊆ r(x,y).
    #[test]
    fn cyclic_lhs_is_supported() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let r = v.edge_label("r");
        let mut s = Schema::new();
        s.set_edge(a, r, a, Mult::Star, Mult::Star);
        let p = Uc2rpq::single(C2rpq::new(
            1,
            vec![],
            vec![Atom { x: Var(0), y: Var(0), regex: Regex::edge(r) }],
        ));
        let q = Uc2rpq::single(C2rpq::new(
            2,
            vec![],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) }],
        ));
        let ans = contains(&p, &q, &s, &mut v, &opts()).unwrap();
        assert!(ans.holds && ans.certified);
        // But a self-loop is not an r·r·r path ending elsewhere... it is!
        // (go around the loop). A discriminating acyclic RHS: r(x,y)∧s(y,z)
        // fails since no s-edge exists.
        let sl = v.edge_label("s");
        let q2 = Uc2rpq::single(C2rpq::new(
            3,
            vec![],
            vec![
                Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) },
                Atom { x: Var(1), y: Var(2), regex: Regex::edge(sl) },
            ],
        ));
        let mut s2 = s.clone();
        s2.set_edge(a, sl, a, Mult::Star, Mult::Star);
        let ans2 = contains(&p, &q2, &s2, &mut v, &opts()).unwrap();
        assert!(!ans2.holds && ans2.certified);
    }

    /// Cyclic Q is rejected with a clear error.
    #[test]
    fn cyclic_rhs_is_rejected() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let r = v.edge_label("r");
        let mut s = Schema::new();
        s.set_edge(a, r, a, Mult::Star, Mult::Star);
        let cyc = Uc2rpq::single(C2rpq::new(
            1,
            vec![],
            vec![Atom { x: Var(0), y: Var(0), regex: Regex::edge(r) }],
        ));
        // Reflexive instances are settled syntactically even for cyclic Q…
        assert!(contains(&cyc, &cyc, &s, &mut v, &opts()).unwrap().holds);
        // …but a genuine test against a cyclic RHS is rejected.
        let p = Uc2rpq::single(C2rpq::new(
            2,
            vec![],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) }],
        ));
        let err = contains(&p, &cyc, &s, &mut v, &opts()).unwrap_err();
        assert_eq!(err, ContainmentError::Rollup(RollupError::NotAcyclic));
    }

    /// Participation constraints make shorter paths entail longer queries:
    /// with δ(A, r, A) = 1 (every node has an outgoing r), A(x) ⊆ ∃y.r(x,y).
    #[test]
    fn schema_existentials_imply_query() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let r = v.edge_label("r");
        let mut s = Schema::new();
        s.set_edge(a, r, a, Mult::One, Mult::Star);
        let p = Uc2rpq::single(C2rpq::new(
            1,
            vec![Var(0)],
            vec![Atom { x: Var(0), y: Var(0), regex: Regex::node(a) }],
        ));
        let q = Uc2rpq::single(C2rpq::new(
            2,
            vec![Var(0)],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) }],
        ));
        let ans = contains(&p, &q, &s, &mut v, &opts()).unwrap();
        assert!(ans.holds && ans.certified);
        // Without the constraint, it fails.
        let mut s2 = Schema::new();
        s2.set_edge(a, r, a, Mult::Star, Mult::Star);
        let ans2 = contains(&p, &q, &s2, &mut v, &opts()).unwrap();
        assert!(!ans2.holds && ans2.certified);
    }

    #[test]
    fn satisfiability_modulo_schema_wrapper() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let b = v.node_label("B");
        let r = v.edge_label("r");
        let mut s = Schema::new();
        s.set_edge(a, r, a, Mult::Star, Mult::Star);
        s.add_node_label(b);
        // A-to-A r-path: satisfiable.
        let q1 = C2rpq::new(
            2,
            vec![Var(0), Var(1)],
            vec![Atom {
                x: Var(0),
                y: Var(1),
                regex: Regex::node(a).then(Regex::edge(r)).then(Regex::node(a)),
            }],
        );
        let (sat, cert) = satisfiable_modulo_schema(&q1, &s, &mut v, &opts()).unwrap();
        assert!(sat && cert);
        // B-to-B r-path: the schema forbids r-edges at B — unsatisfiable.
        let q2 = C2rpq::new(
            2,
            vec![Var(0), Var(1)],
            vec![Atom {
                x: Var(0),
                y: Var(1),
                regex: Regex::node(b).then(Regex::edge(r)).then(Regex::node(b)),
            }],
        );
        let (sat2, cert2) = satisfiable_modulo_schema(&q2, &s, &mut v, &opts()).unwrap();
        assert!(!sat2 && cert2);
    }

    /// The empty union is contained in everything; nothing (nonempty,
    /// satisfiable) is contained in the empty union.
    #[test]
    fn empty_union_edge_cases() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let r = v.edge_label("r");
        let mut s = Schema::new();
        s.set_edge(a, r, a, Mult::Star, Mult::Star);
        let q = Uc2rpq::single(C2rpq::new(
            2,
            vec![],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) }],
        ));
        let e = Uc2rpq::empty();
        assert!(contains(&e, &q, &s, &mut v, &opts()).unwrap().holds);
        assert!(!contains(&q, &e, &s, &mut v, &opts()).unwrap().holds);
    }

    /// Inverse-direction atoms work through the whole pipeline:
    /// r(x,y) ≡_S r⁻(y,x).
    #[test]
    fn inverse_equivalence() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let r = v.edge_label("r");
        let mut s = Schema::new();
        s.set_edge(a, r, a, Mult::Star, Mult::Star);
        let fwd = Uc2rpq::single(C2rpq::new(
            2,
            vec![Var(0), Var(1)],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) }],
        ));
        let bwd = Uc2rpq::single(C2rpq::new(
            2,
            vec![Var(0), Var(1)],
            vec![Atom { x: Var(1), y: Var(0), regex: Regex::sym(EdgeSym::bwd(r)) }],
        ));
        assert!(contains(&fwd, &bwd, &s, &mut v, &opts()).unwrap().holds);
        assert!(contains(&bwd, &fwd, &s, &mut v, &opts()).unwrap().holds);
    }

    /// A shared cache across repeated questions replays solver state; the
    /// verdicts match the cold path.
    #[test]
    fn shared_cache_agrees_with_cold_path() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let r = v.edge_label("r");
        let sl = v.edge_label("s");
        let mut s = Schema::new();
        s.set_edge(a, r, a, Mult::Star, Mult::Star);
        s.set_edge(a, sl, a, Mult::Plus, Mult::Opt);
        let mk = |re: Regex| {
            Uc2rpq::single(C2rpq::new(2, vec![], vec![Atom { x: Var(0), y: Var(1), regex: re }]))
        };
        let queries = [
            mk(Regex::edge(r)),
            mk(Regex::edge(sl)),
            mk(Regex::edge(r).then(Regex::edge(sl))),
            mk(Regex::edge(sl).then(Regex::edge(sl).star())),
        ];
        let shared = opts().with_cache(Arc::new(OracleCache::new()));
        for p in &queries {
            for q in &queries {
                let cold = contains(p, q, &s, &mut v.clone(), &opts()).unwrap();
                let warm = contains(p, q, &s, &mut v.clone(), &shared).unwrap();
                assert_eq!(cold.holds, warm.holds, "p={p:?} q={q:?}");
                assert_eq!(cold.certified, warm.certified, "p={p:?} q={q:?}");
            }
        }
        let stats = shared.cache.as_ref().unwrap().stats();
        assert!(stats.solver.cache_hits > 0, "shared cache must be reused: {stats:?}");
    }

    /// Thread-count must not change verdicts (parallel fan-out merge).
    #[test]
    fn threaded_contains_matches_sequential() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let r = v.edge_label("r");
        let sl = v.edge_label("s");
        let mut s = Schema::new();
        s.set_edge(a, r, a, Mult::Star, Mult::Star);
        s.set_edge(a, sl, a, Mult::Star, Mult::Star);
        // A two-component RHS yields several negation choices → several
        // independent per-choice pipelines.
        let p = Uc2rpq::single(C2rpq::new(
            2,
            vec![],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) }],
        ));
        let q = Uc2rpq::single(C2rpq::new(
            4,
            vec![],
            vec![
                Atom { x: Var(0), y: Var(1), regex: Regex::edge(sl) },
                Atom { x: Var(2), y: Var(3), regex: Regex::edge(r) },
            ],
        ));
        let sequential = contains(&p, &q, &s, &mut v.clone(), &opts()).unwrap();
        let threaded_opts = ContainmentOptions { threads: 4, ..opts() };
        let threaded = contains(&p, &q, &s, &mut v.clone(), &threaded_opts).unwrap();
        assert_eq!(sequential.holds, threaded.holds);
        assert_eq!(sequential.certified, threaded.certified);
        assert_eq!(sequential.witness.is_some(), threaded.witness.is_some());
    }
}
