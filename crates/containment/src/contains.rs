//! The top-level decision procedure: containment of UC2RPQs in acyclic
//! UC2RPQs modulo schema (Theorem 5.1), assembled from the reductions of
//! Section 5:
//!
//! ```text
//! P ⊆_S Q
//!   ⇔ P° ⊆_{S°} Q°                        Booleanization (Lemma D.1)
//!   ⇔ P̂ ⊆_{T̂_S} Q                        relativization (Lemma D.3)
//!   ⇔ P̂ finitely unsat mod T̂_S ∪ T¬Q     rolling-up (Lemma C.2)
//!   ⇔ P̂ unsat mod (T̂_S ∪ T¬Q)*           completion (Theorem 5.4, D.4)
//! ```
//!
//! Disconnected components of `Q` distribute the negation into several
//! choices (DESIGN.md §3.4); containment holds iff the final query is
//! unsatisfiable for *every* disjunct of `P̂` and every choice.

use crate::booleanize::booleanize;
use crate::completion::{complete, Completion, CompletionConfig};
use crate::hatp::hat_union;
use crate::rollup::{rollup_negation, RollupError};
use gts_dl::HornTbox;
use gts_graph::{Graph, Vocab};
use gts_query::{C2rpq, Uc2rpq};
use gts_sat::{decide, Budget, Verdict};
use gts_schema::Schema;

/// Options for [`contains`].
#[derive(Clone, Debug, Default)]
pub struct ContainmentOptions {
    /// Engine budgets.
    pub budget: Budget,
    /// Completion caps.
    pub completion: CompletionConfig,
}

/// The answer to a containment question.
#[derive(Clone, Debug)]
pub struct ContainmentAnswer {
    /// Does `P ⊆_S Q` hold (to the best of the search)?
    pub holds: bool,
    /// `true` iff the answer is a certificate: either an exhaustive
    /// unsatisfiability proof (`holds`), or a satisfiability witness modulo
    /// a fully computed completion (`!holds`).
    pub certified: bool,
    /// For `!holds`: the core of a model of `(T̂_S ∪ T¬Q)*` satisfying `P̂`
    /// (evidence of a finite counterexample's existence via Theorem 5.4).
    pub witness: Option<Graph>,
}

/// Why containment could not be decided at all.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ContainmentError {
    /// The right-hand query is not an acyclic UC2RPQ (or exceeded rollup
    /// caps).
    Rollup(RollupError),
    /// The queries have different arities.
    ArityMismatch,
    /// The left-hand NRE query could not be flattened into plain C2RPQs
    /// (nests under `*` are only supported on the right-hand side).
    Flatten(gts_query::FlattenError),
    /// The general-TBox entry points require Boolean queries (Booleanize
    /// against a schema first, Lemma D.1).
    NotBoolean,
}

/// Decides `P(x̄) ⊆_S Q(x̄)` for a UC2RPQ `P` and an *acyclic* UC2RPQ `Q`.
pub fn contains(
    p: &Uc2rpq,
    q: &Uc2rpq,
    s: &Schema,
    vocab: &mut Vocab,
    opts: &ContainmentOptions,
) -> Result<ContainmentAnswer, ContainmentError> {
    contains_lowered(p, q, &HornTbox::new(), s, vocab, opts)
}

/// The shared pipeline behind [`contains`] and
/// [`crate::contains_nre`]: `extra` holds auxiliary Horn rules (e.g. nest
/// label definitions) merged into every negation choice. `Q` may mention
/// synthetic labels defined by `extra`; `P` and the schema may not.
pub(crate) fn contains_lowered(
    p: &Uc2rpq,
    q: &Uc2rpq,
    extra: &HornTbox,
    s: &Schema,
    vocab: &mut Vocab,
    opts: &ContainmentOptions,
) -> Result<ContainmentAnswer, ContainmentError> {
    if let (Some(ap), Some(aq)) = (p.arity(), q.arity()) {
        if ap != aq {
            return Err(ContainmentError::ArityMismatch);
        }
    }
    // Syntactic shortcut: disjuncts of P that literally appear in Q are
    // contained; only the rest needs the semantic pipeline. (This also
    // settles reflexive containments of queries with infinite languages
    // without touching the engine.)
    let p = Uc2rpq {
        disjuncts: p.disjuncts.iter().filter(|d| !q.disjuncts.contains(d)).cloned().collect(),
    };
    // The empty union is contained in everything.
    if p.disjuncts.is_empty() {
        return Ok(ContainmentAnswer { holds: true, certified: true, witness: None });
    }

    // Lemma D.1: Booleanize.
    let b = booleanize(&p, q, s, vocab);

    // Lemma C.2 (+ the disconnected-negation distribution).
    let (choices, _state_labels) =
        rollup_negation(&b.q, vocab).map_err(ContainmentError::Rollup)?;

    // Theorem 5.6: relativize P and build T̂_S.
    let p_hat = hat_union(&b.p, &b.schema);
    let hat_ts = b.schema.hat_tbox();
    let schema_label_set = b.schema.node_label_set();
    let fresh = (vocab.fresh_node_label("B"), vocab.fresh_node_label("B"));

    // Certification is one-sided in the completion: a *partial* completion
    // T*' ⊆ T* only removes CIs, so UNSAT modulo T*' implies UNSAT modulo
    // T* — "containment holds" verdicts remain certificates even when the
    // completion hit a cap. Only SAT witnesses (non-containment) need the
    // full completion to correspond to finite counterexamples (Thm 5.4).
    let mut all_certified = true;
    for choice in &choices {
        let t = HornTbox::merged([&hat_ts, choice, extra]);
        // Theorem 5.4 / Lemma D.7: complete.
        let Completion { tbox: t_star, complete: completion_ok, .. } =
            complete(&t, &schema_label_set, fresh, &opts.budget, &opts.completion);
        for pd in &p_hat.disjuncts {
            match decide(&t_star, pd, &opts.budget) {
                Verdict::Sat(w) => {
                    return Ok(ContainmentAnswer {
                        holds: false,
                        certified: completion_ok,
                        witness: Some(w.core),
                    });
                }
                Verdict::Unsat => {}
                Verdict::Unknown(_) => {
                    all_certified = false;
                }
            }
        }
    }
    Ok(ContainmentAnswer { holds: true, certified: all_certified, witness: None })
}

/// Satisfiability of a query modulo a schema: `q ⊄_S ∅` (used for trimming
/// transformations, Appendix B). Returns `(satisfiable, certified)`.
pub fn satisfiable_modulo_schema(
    q: &C2rpq,
    s: &Schema,
    vocab: &mut Vocab,
    opts: &ContainmentOptions,
) -> Result<(bool, bool), ContainmentError> {
    let ans = contains(&Uc2rpq::single(q.clone()), &Uc2rpq::empty(), s, vocab, opts)?;
    Ok((!ans.holds, ans.certified))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_graph::EdgeSym;
    use gts_query::{Atom, Regex, Var};
    use gts_schema::Mult;

    fn opts() -> ContainmentOptions {
        ContainmentOptions::default()
    }

    /// r(x,y) ⊆_S r(x,y): reflexivity.
    #[test]
    fn containment_is_reflexive() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let r = v.edge_label("r");
        let mut s = Schema::new();
        s.set_edge(a, r, a, Mult::Star, Mult::Star);
        let q = Uc2rpq::single(C2rpq::new(
            2,
            vec![Var(0), Var(1)],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) }],
        ));
        let ans = contains(&q, &q, &s.clone(), &mut v, &opts()).unwrap();
        assert!(ans.holds, "reflexive containment must hold");
        assert!(ans.certified);
    }

    /// r(x,y) ⊆ (r+s)(x,y) but not conversely.
    #[test]
    fn union_widening() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let r = v.edge_label("r");
        let sl = v.edge_label("s");
        let mut s = Schema::new();
        s.set_edge(a, r, a, Mult::Star, Mult::Star);
        s.set_edge(a, sl, a, Mult::Star, Mult::Star);
        let qr = Uc2rpq::single(C2rpq::new(
            2,
            vec![Var(0), Var(1)],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) }],
        ));
        let qrs = Uc2rpq::single(C2rpq::new(
            2,
            vec![Var(0), Var(1)],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r).or(Regex::edge(sl)) }],
        ));
        let fwd = contains(&qr, &qrs, &s, &mut v, &opts()).unwrap();
        assert!(fwd.holds && fwd.certified);
        let bwd = contains(&qrs, &qr, &s, &mut v, &opts()).unwrap();
        assert!(!bwd.holds, "s-edge witnesses non-containment");
        assert!(bwd.certified);
        assert!(bwd.witness.is_some());
    }

    /// Schema-enabled containment: if the schema forbids s-edges, then
    /// (r+s)(x,y) ⊆_S r(x,y) *does* hold.
    #[test]
    fn schema_prunes_unrealizable_branches() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let r = v.edge_label("r");
        let sl = v.edge_label("s");
        let mut s = Schema::new();
        s.set_edge(a, r, a, Mult::Star, Mult::Star);
        // `s` is declared but forbidden everywhere (all-zero δ).
        s.add_edge_label(sl);
        let qr = Uc2rpq::single(C2rpq::new(
            2,
            vec![Var(0), Var(1)],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) }],
        ));
        let qrs = Uc2rpq::single(C2rpq::new(
            2,
            vec![Var(0), Var(1)],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r).or(Regex::edge(sl)) }],
        ));
        let ans = contains(&qrs, &qr, &s, &mut v, &opts()).unwrap();
        assert!(ans.holds, "forbidden s-edges cannot witness non-containment");
        assert!(ans.certified);
    }

    /// Example 5.2 / Figure 2: P = ∃x.r(x,x), Q = ∃x,y.(r·s⁺·r)(x,y);
    /// P ⊆_S Q holds over finite graphs — only because of cycle reversal.
    #[test]
    fn example_5_2_finite_containment_holds() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let sl = v.edge_label("s");
        let r = v.edge_label("r");
        let mut s = Schema::new();
        // A --s--> A with + outgoing and ? incoming; r unrestricted.
        s.set_edge(a, sl, a, Mult::Plus, Mult::Opt);
        s.set_edge(a, r, a, Mult::Star, Mult::Star);
        let p = Uc2rpq::single(C2rpq::new(
            1,
            vec![],
            vec![Atom { x: Var(0), y: Var(0), regex: Regex::edge(r) }],
        ));
        let splus = Regex::edge(sl).then(Regex::edge(sl).star());
        let q = Uc2rpq::single(C2rpq::new(
            2,
            vec![],
            vec![Atom {
                x: Var(0),
                y: Var(1),
                regex: Regex::edge(r).then(splus).then(Regex::edge(r)),
            }],
        ));
        let ans = contains(&p, &q, &s, &mut v, &opts()).unwrap();
        assert!(ans.holds, "Example 5.2: finite containment holds via cycle reversal");
        assert!(ans.certified);
    }

    /// The same instance WITHOUT the at-most constraint on s⁻: infinite
    /// s-trees exist even finitely…ish — containment now fails (the
    /// reversal is no longer sound, and a finite counterexample exists:
    /// e.g. an r-self-loop plus an s-cycle elsewhere feeding the node).
    #[test]
    fn example_5_2_variant_without_functionality_fails() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let sl = v.edge_label("s");
        let r = v.edge_label("r");
        let mut s = Schema::new();
        s.set_edge(a, sl, a, Mult::Plus, Mult::Star); // ← no ? on s⁻
        s.set_edge(a, r, a, Mult::Star, Mult::Star);
        let p = Uc2rpq::single(C2rpq::new(
            1,
            vec![],
            vec![Atom { x: Var(0), y: Var(0), regex: Regex::edge(r) }],
        ));
        let splus = Regex::edge(sl).then(Regex::edge(sl).star());
        let q = Uc2rpq::single(C2rpq::new(
            2,
            vec![],
            vec![Atom {
                x: Var(0),
                y: Var(1),
                regex: Regex::edge(r).then(splus).then(Regex::edge(r)),
            }],
        ));
        let ans = contains(&p, &q, &s, &mut v, &opts()).unwrap();
        assert!(!ans.holds);
        assert!(ans.certified);
    }

    /// Cyclic P is allowed (only Q must be acyclic): r(x,x) ⊆ r(x,y).
    #[test]
    fn cyclic_lhs_is_supported() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let r = v.edge_label("r");
        let mut s = Schema::new();
        s.set_edge(a, r, a, Mult::Star, Mult::Star);
        let p = Uc2rpq::single(C2rpq::new(
            1,
            vec![],
            vec![Atom { x: Var(0), y: Var(0), regex: Regex::edge(r) }],
        ));
        let q = Uc2rpq::single(C2rpq::new(
            2,
            vec![],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) }],
        ));
        let ans = contains(&p, &q, &s, &mut v, &opts()).unwrap();
        assert!(ans.holds && ans.certified);
        // But a self-loop is not an r·r·r path ending elsewhere... it is!
        // (go around the loop). A discriminating acyclic RHS: r(x,y)∧s(y,z)
        // fails since no s-edge exists.
        let sl = v.edge_label("s");
        let q2 = Uc2rpq::single(C2rpq::new(
            3,
            vec![],
            vec![
                Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) },
                Atom { x: Var(1), y: Var(2), regex: Regex::edge(sl) },
            ],
        ));
        let mut s2 = s.clone();
        s2.set_edge(a, sl, a, Mult::Star, Mult::Star);
        let ans2 = contains(&p, &q2, &s2, &mut v, &opts()).unwrap();
        assert!(!ans2.holds && ans2.certified);
    }

    /// Cyclic Q is rejected with a clear error.
    #[test]
    fn cyclic_rhs_is_rejected() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let r = v.edge_label("r");
        let mut s = Schema::new();
        s.set_edge(a, r, a, Mult::Star, Mult::Star);
        let cyc = Uc2rpq::single(C2rpq::new(
            1,
            vec![],
            vec![Atom { x: Var(0), y: Var(0), regex: Regex::edge(r) }],
        ));
        // Reflexive instances are settled syntactically even for cyclic Q…
        assert!(contains(&cyc, &cyc, &s, &mut v, &opts()).unwrap().holds);
        // …but a genuine test against a cyclic RHS is rejected.
        let p = Uc2rpq::single(C2rpq::new(
            2,
            vec![],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) }],
        ));
        let err = contains(&p, &cyc, &s, &mut v, &opts()).unwrap_err();
        assert_eq!(err, ContainmentError::Rollup(RollupError::NotAcyclic));
    }

    /// Participation constraints make shorter paths entail longer queries:
    /// with δ(A, r, A) = 1 (every node has an outgoing r), A(x) ⊆ ∃y.r(x,y).
    #[test]
    fn schema_existentials_imply_query() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let r = v.edge_label("r");
        let mut s = Schema::new();
        s.set_edge(a, r, a, Mult::One, Mult::Star);
        let p = Uc2rpq::single(C2rpq::new(
            1,
            vec![Var(0)],
            vec![Atom { x: Var(0), y: Var(0), regex: Regex::node(a) }],
        ));
        let q = Uc2rpq::single(C2rpq::new(
            2,
            vec![Var(0)],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) }],
        ));
        let ans = contains(&p, &q, &s, &mut v, &opts()).unwrap();
        assert!(ans.holds && ans.certified);
        // Without the constraint, it fails.
        let mut s2 = Schema::new();
        s2.set_edge(a, r, a, Mult::Star, Mult::Star);
        let ans2 = contains(&p, &q, &s2, &mut v, &opts()).unwrap();
        assert!(!ans2.holds && ans2.certified);
    }

    #[test]
    fn satisfiability_modulo_schema_wrapper() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let b = v.node_label("B");
        let r = v.edge_label("r");
        let mut s = Schema::new();
        s.set_edge(a, r, a, Mult::Star, Mult::Star);
        s.add_node_label(b);
        // A-to-A r-path: satisfiable.
        let q1 = C2rpq::new(
            2,
            vec![Var(0), Var(1)],
            vec![Atom {
                x: Var(0),
                y: Var(1),
                regex: Regex::node(a).then(Regex::edge(r)).then(Regex::node(a)),
            }],
        );
        let (sat, cert) = satisfiable_modulo_schema(&q1, &s, &mut v, &opts()).unwrap();
        assert!(sat && cert);
        // B-to-B r-path: the schema forbids r-edges at B — unsatisfiable.
        let q2 = C2rpq::new(
            2,
            vec![Var(0), Var(1)],
            vec![Atom {
                x: Var(0),
                y: Var(1),
                regex: Regex::node(b).then(Regex::edge(r)).then(Regex::node(b)),
            }],
        );
        let (sat2, cert2) = satisfiable_modulo_schema(&q2, &s, &mut v, &opts()).unwrap();
        assert!(!sat2 && cert2);
    }

    /// The empty union is contained in everything; nothing (nonempty,
    /// satisfiable) is contained in the empty union.
    #[test]
    fn empty_union_edge_cases() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let r = v.edge_label("r");
        let mut s = Schema::new();
        s.set_edge(a, r, a, Mult::Star, Mult::Star);
        let q = Uc2rpq::single(C2rpq::new(
            2,
            vec![],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) }],
        ));
        let e = Uc2rpq::empty();
        assert!(contains(&e, &q, &s, &mut v, &opts()).unwrap().holds);
        assert!(!contains(&q, &e, &s, &mut v, &opts()).unwrap().holds);
    }

    /// Inverse-direction atoms work through the whole pipeline:
    /// r(x,y) ≡_S r⁻(y,x).
    #[test]
    fn inverse_equivalence() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let r = v.edge_label("r");
        let mut s = Schema::new();
        s.set_edge(a, r, a, Mult::Star, Mult::Star);
        let fwd = Uc2rpq::single(C2rpq::new(
            2,
            vec![Var(0), Var(1)],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) }],
        ));
        let bwd = Uc2rpq::single(C2rpq::new(
            2,
            vec![Var(0), Var(1)],
            vec![Atom { x: Var(1), y: Var(0), regex: Regex::sym(EdgeSym::bwd(r)) }],
        ));
        assert!(contains(&fwd, &bwd, &s, &mut v, &opts()).unwrap().holds);
        assert!(contains(&bwd, &fwd, &s, &mut v, &opts()).unwrap().holds);
    }
}
