//! Containment for *nested* regular expressions — the query extension of
//! Section 7 ("Extending queries": two-way NREs [52]).
//!
//! The right-hand side is handled natively: lowering
//! ([`gts_query::NreUc2rpq::lower`]) replaces every nest `⟨φ⟩` with a fresh
//! synthetic node label `ℓ`, and [`nest_tbox`] defines `ℓ` by a *backward*
//! Horn derivation over `φ`'s automaton: concepts `f_s` ("some path from
//! here reads a word of `L(s → F)`") with
//!
//! ```text
//! ⊤ ⊑ f_s                 for final s
//! f_s' ⊑ ∀R⁻. f_s         for transitions (s, R, s')
//! f_s' ⊓ A ⊑ f_s          for transitions (s, A, s')   (A may be a nest label)
//! f_init ⊑ ℓ
//! ```
//!
//! In the least valuation `ℓ` is *exactly* the set of nodes where `⟨φ⟩`
//! holds, and every valuation assigns a superset — which is the sound
//! direction for the negation TBox `T¬Q` (over-approximating `ℓ` only makes
//! the denial fire more often; see the module tests for the differential
//! check). In particular nests under `*` work on the right-hand side, where
//! flattening is impossible.
//!
//! The left-hand side `P` is used *positively*, so the interning trick is
//! unsound there; `P` is instead flattened exactly
//! ([`gts_query::NreUc2rpq::flatten`]), which fails — with a clear error —
//! only for nests under `*`/`+` on the left.

use crate::contains::{contains_lowered, ContainmentAnswer, ContainmentError, ContainmentOptions};
use gts_dl::{HornCi, HornTbox};
use gts_graph::{LabelSet, Vocab};
use gts_query::{AtomSym, NestTable, Nfa, NreUc2rpq};
use gts_schema::Schema;

/// Builds the Horn TBox defining the synthetic nest labels of `table`
/// (backward derivation, see the module docs), together with the set of
/// all fresh concept names it introduces (automaton states plus the nest
/// labels themselves).
pub fn nest_tbox(table: &NestTable, vocab: &mut Vocab) -> (HornTbox, LabelSet) {
    let mut tbox = HornTbox::new();
    let mut fresh = LabelSet::new();
    for (label, inner) in &table.entries {
        fresh.insert(label.0);
        let nfa = Nfa::from_regex(inner);
        let states: Vec<_> = (0..nfa.num_states()).map(|_| vocab.fresh_node_label("f")).collect();
        for &s in &states {
            fresh.insert(s.0);
        }
        for s in 0..nfa.num_states() {
            if nfa.is_final(s) {
                tbox.push(HornCi::SubAtom { lhs: LabelSet::new(), rhs: states[s] });
            }
            for &(sym, s2) in nfa.transitions(s) {
                match sym {
                    AtomSym::Edge(r) => {
                        // f_{s2} ⊑ ∀R⁻.f_s: an R-predecessor of a node with
                        // f_{s2} can take the edge and continue from s2.
                        tbox.push(HornCi::AllValues {
                            lhs: LabelSet::singleton(states[s2].0),
                            role: r.inv(),
                            rhs: LabelSet::singleton(states[s].0),
                        });
                    }
                    AtomSym::Node(a) => {
                        tbox.push(HornCi::SubAtom {
                            lhs: LabelSet::from_iter([states[s2].0, a.0]),
                            rhs: states[s],
                        });
                    }
                }
            }
        }
        tbox.push(HornCi::SubAtom {
            lhs: LabelSet::singleton(states[nfa.initial()].0),
            rhs: *label,
        });
    }
    (tbox, fresh)
}

/// Decides `P(x̄) ⊆_S Q(x̄)` for NRE queries: `P` is flattened (exact;
/// rejects nests under `*` on the left), `Q` is lowered with nest labels
/// defined by [`nest_tbox`] (exact for arbitrary nests, including under
/// `*`). The multigraph of every disjunct of `Q` must be acyclic, as in
/// the plain pipeline.
///
/// ```
/// use gts_graph::Vocab;
/// use gts_query::{Nre, NreAtom, NreC2rpq, NreUc2rpq, Var};
/// use gts_schema::{Mult, Schema};
/// use gts_containment::contains_nre;
///
/// let mut v = Vocab::new();
/// let person = v.node_label("Person");
/// let post = v.node_label("Post");
/// let follows = v.edge_label("follows");
/// let likes = v.edge_label("likes");
/// let mut s = Schema::new();
/// s.set_edge(person, follows, person, Mult::Star, Mult::Star);
/// s.set_edge(person, likes, post, Mult::One, Mult::Star); // likes forced
///
/// // P: some follows-edge. Q: a follow-step into a liker, ⟨likes⟩ nested.
/// let p = NreUc2rpq::single(NreC2rpq::new(2, vec![], vec![NreAtom {
///     x: Var(0), y: Var(1), nre: Nre::edge(follows),
/// }]));
/// let q = NreUc2rpq::single(NreC2rpq::new(2, vec![], vec![NreAtom {
///     x: Var(0), y: Var(1),
///     nre: Nre::edge(follows).then(Nre::nest(Nre::edge(likes))),
/// }]));
/// let ans = contains_nre(&p, &q, &s, &mut v, &Default::default()).unwrap();
/// assert!(ans.holds && ans.certified);
/// ```
pub fn contains_nre(
    p: &NreUc2rpq,
    q: &NreUc2rpq,
    s: &Schema,
    vocab: &mut Vocab,
    opts: &ContainmentOptions,
) -> Result<ContainmentAnswer, ContainmentError> {
    let p_flat = p.flatten().map_err(ContainmentError::Flatten)?;
    let lowered = q.lower(vocab);
    let (extra, _fresh) = nest_tbox(&lowered.table, vocab);
    contains_lowered(&p_flat, &lowered.query, &extra, s, vocab, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contains::contains;
    use gts_dl::datalog_satisfies;
    use gts_graph::Graph;
    use gts_query::{Atom, C2rpq, Nre, NreAtom, NreC2rpq, Regex, Uc2rpq, Var};
    use gts_schema::Mult;

    /// Vocabulary + schema: Person −follows→ Person, Person −likes→ Post.
    fn social_schema(likes_mult: Mult) -> (Vocab, Schema) {
        let mut v = Vocab::new();
        let person = v.node_label("Person");
        let post = v.node_label("Post");
        let follows = v.edge_label("follows");
        let likes = v.edge_label("likes");
        let mut s = Schema::new();
        s.set_edge(person, follows, person, Mult::Star, Mult::Star);
        s.set_edge(person, likes, post, likes_mult, Mult::Star);
        (v, s)
    }

    /// Q = ∃x,y. (follows·⟨likes⟩)(x, y): someone follows a liker.
    fn q_follows_liker(v: &mut Vocab) -> NreUc2rpq {
        let likes = v.edge_label("likes");
        let follows = v.edge_label("follows");
        let nre = Nre::edge(follows).then(Nre::nest(Nre::edge(likes)));
        NreUc2rpq::single(NreC2rpq::new(2, vec![], vec![NreAtom { x: Var(0), y: Var(1), nre }]))
    }

    /// P1 = ∃x,y,z. follows(x,y) ∧ likes(y,z) — flat witness of Q.
    fn p_follows_then_likes(v: &mut Vocab) -> NreUc2rpq {
        let likes = v.edge_label("likes");
        let follows = v.edge_label("follows");
        NreUc2rpq::single(NreC2rpq::new(
            3,
            vec![],
            vec![
                NreAtom { x: Var(0), y: Var(1), nre: Nre::edge(follows) },
                NreAtom { x: Var(1), y: Var(2), nre: Nre::edge(likes) },
            ],
        ))
    }

    /// P2 = ∃x,y. follows(x,y) — no likes required.
    fn p_follows(v: &mut Vocab) -> NreUc2rpq {
        let follows = v.edge_label("follows");
        NreUc2rpq::single(NreC2rpq::new(
            2,
            vec![],
            vec![NreAtom { x: Var(0), y: Var(1), nre: Nre::edge(follows) }],
        ))
    }

    #[test]
    fn flat_witness_is_contained_in_nested_query() {
        let (mut v, s) = social_schema(Mult::Star);
        let p = p_follows_then_likes(&mut v);
        let q = q_follows_liker(&mut v);
        let ans = contains_nre(&p, &q, &s, &mut v, &Default::default()).unwrap();
        assert!(ans.holds, "follows∧likes entails follows·⟨likes⟩");
        assert!(ans.certified);
    }

    #[test]
    fn bare_follows_is_not_contained_without_schema_help() {
        let (mut v, s) = social_schema(Mult::Star);
        let p = p_follows(&mut v);
        let q = q_follows_liker(&mut v);
        let ans = contains_nre(&p, &q, &s, &mut v, &Default::default()).unwrap();
        assert!(!ans.holds, "a follows-edge alone does not witness the nest");
        assert!(ans.certified);
    }

    #[test]
    fn schema_forced_likes_entails_the_nest() {
        // With δ(Person, likes, Post) = 1 every person likes something, so
        // the nest is always witnessed.
        let (mut v, s) = social_schema(Mult::One);
        let p = p_follows(&mut v);
        let q = q_follows_liker(&mut v);
        let ans = contains_nre(&p, &q, &s, &mut v, &Default::default()).unwrap();
        assert!(ans.holds, "the schema forces a likes-witness at every person");
        assert!(ans.certified);
    }

    #[test]
    fn nest_under_star_on_the_right() {
        // Q = (follows·⟨likes⟩)⁺ (x,y): a follow-chain through likers.
        // P = follows(x,y) ∧ likes(y,z) is a length-1 instance.
        let (mut v, s) = social_schema(Mult::Star);
        let likes = v.find_edge_label("likes").unwrap();
        let follows = v.find_edge_label("follows").unwrap();
        let step = Nre::edge(follows).then(Nre::nest(Nre::edge(likes)));
        let q = NreUc2rpq::single(NreC2rpq::new(
            2,
            vec![],
            vec![NreAtom { x: Var(0), y: Var(1), nre: step.clone().then(step.star()) }],
        ));
        let p = p_follows_then_likes(&mut v);
        let ans = contains_nre(&p, &q, &s, &mut v, &Default::default()).unwrap();
        assert!(ans.holds);
        assert!(ans.certified);
        // And bare follows is not contained.
        let p2 = p_follows(&mut v);
        let ans2 = contains_nre(&p2, &q, &s, &mut v, &Default::default()).unwrap();
        assert!(!ans2.holds && ans2.certified);
    }

    #[test]
    fn nest_under_star_on_the_left_is_rejected() {
        let (mut v, s) = social_schema(Mult::Star);
        let likes = v.find_edge_label("likes").unwrap();
        let follows = v.find_edge_label("follows").unwrap();
        let step = Nre::edge(follows).then(Nre::nest(Nre::edge(likes)));
        let p = NreUc2rpq::single(NreC2rpq::new(
            2,
            vec![],
            vec![NreAtom { x: Var(0), y: Var(1), nre: step.star() }],
        ));
        let q = q_follows_liker(&mut v);
        let err = contains_nre(&p, &q, &s, &mut v, &Default::default()).unwrap_err();
        assert_eq!(err, ContainmentError::Flatten(gts_query::FlattenError::NestUnderStar));
    }

    #[test]
    fn plain_queries_agree_with_plain_pipeline() {
        // Embedding plain queries into NREs must not change answers.
        let (mut v, s) = social_schema(Mult::Star);
        let follows = v.find_edge_label("follows").unwrap();
        let plain_p = Uc2rpq::single(C2rpq::new(
            2,
            vec![],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(follows) }],
        ));
        let plain_q = Uc2rpq::single(C2rpq::new(
            3,
            vec![],
            vec![Atom {
                x: Var(0),
                y: Var(2),
                regex: Regex::edge(follows).then(Regex::edge(follows).star()),
            }],
        ));
        let plain = contains(&plain_p, &plain_q, &s, &mut v, &Default::default()).unwrap();
        let nre = contains_nre(
            &NreUc2rpq::from_plain(&plain_p),
            &NreUc2rpq::from_plain(&plain_q),
            &s,
            &mut v,
            &Default::default(),
        )
        .unwrap();
        assert_eq!(plain.holds, nre.holds);
        assert!(plain.holds);
    }

    /// Differential check of [`nest_tbox`]: on finite graphs, the least
    /// valuation assigns a nest label exactly to the nodes where the nest
    /// holds (computed independently by materialization).
    #[test]
    fn nest_tbox_least_valuation_matches_materialization() {
        let (mut v, _) = social_schema(Mult::Star);
        let person = v.find_node_label("Person").unwrap();
        let follows = v.find_edge_label("follows").unwrap();
        let likes = v.find_edge_label("likes").unwrap();

        // ⟨follows*·likes⟩ — can reach a liker through follows-hops.
        let nre = Nre::nest(Nre::edge(follows).star().then(Nre::edge(likes)));
        let q = NreC2rpq::new(1, vec![], vec![NreAtom { x: Var(0), y: Var(0), nre }]);
        let lowered = q.lower(&mut v);
        let (tbox, fresh) = nest_tbox(&lowered.table, &mut v);
        let nest_label = lowered.table.entries.last().unwrap().0;

        // Three graphs: a chain with a liker at the end, one without, and
        // a cycle.
        let mut graphs = Vec::new();
        for with_likes in [true, false] {
            let mut g = Graph::new();
            let a = g.add_labeled_node([person]);
            let b = g.add_labeled_node([person]);
            let c = g.add_labeled_node([person]);
            g.add_edge(a, follows, b);
            g.add_edge(b, follows, c);
            if with_likes {
                let post = g.add_node();
                g.add_edge(c, likes, post);
            }
            graphs.push(g);
        }
        let mut cyc = Graph::new();
        let a = cyc.add_labeled_node([person]);
        let b = cyc.add_labeled_node([person]);
        cyc.add_edge(a, follows, b);
        cyc.add_edge(b, follows, a);
        graphs.push(cyc);

        for g in &graphs {
            // Least valuation of the nest TBox on g.
            assert_eq!(datalog_satisfies(&tbox, g, &fresh), Some(true));
            let gm = lowered.table.materialize(g);
            // Materialized label extension == nodes satisfying the nest.
            // datalog_satisfies only reports satisfiability; recompute the
            // least valuation by hand via closure-style iteration.
            let mut labels: Vec<LabelSet> = g.nodes().map(|u| g.labels(u).clone()).collect();
            loop {
                let mut changed = false;
                for ci in &tbox.cis {
                    match ci {
                        HornCi::SubAtom { lhs, rhs } => {
                            for u in g.nodes() {
                                if lhs.is_subset(&labels[u.0 as usize])
                                    && labels[u.0 as usize].insert(rhs.0)
                                {
                                    changed = true;
                                }
                            }
                        }
                        HornCi::AllValues { lhs, role, rhs } => {
                            for u in g.nodes() {
                                if !lhs.is_subset(&labels[u.0 as usize]) {
                                    continue;
                                }
                                for w in g.successors(u, *role) {
                                    for l in rhs.iter() {
                                        if labels[w.0 as usize].insert(l) {
                                            changed = true;
                                        }
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                }
                if !changed {
                    break;
                }
            }
            for u in g.nodes() {
                assert_eq!(
                    labels[u.0 as usize].contains(nest_label.0),
                    gm.has_label(u, nest_label),
                    "nest label mismatch at node {u:?}"
                );
            }
        }
    }
}
