//! Rolling-up acyclic queries into Horn TBoxes (Lemma C.2, Appendix C).
//!
//! For a Boolean acyclic *connected* C2RPQ `C`, we build a Horn-ALCIF TBox
//! `T¬C` over fresh concept names (one per Glushkov automaton state) such
//! that a graph admits a valuation of the fresh names satisfying `T¬C` iff
//! it does **not** satisfy `C`. The construction orients the query tree
//! toward a leaf variable and simulates each atom's automaton along the
//! tree, exactly as in Example C.1.
//!
//! Implementation notes beyond the paper (DESIGN.md §3.4):
//! * rule (3) needs one Horn CI per element of the product of the
//!   children's final-state sets (capped, with a clear error);
//! * `¬(C1 ∧ C2)` for a *disconnected* query is not Horn — the negation is
//!   distributed into one TBox per choice of refuted component per
//!   disjunct ([`rollup_negation`]);
//! * trivial self-atoms (`A(x,x)`, `ε(x,x)`, `∅(x,x)`) at one variable are
//!   merged into a single node-test expression and attached as a leaf
//!   child, which avoids circular seeding dependencies between siblings.

use gts_dl::{HornCi, HornTbox};
use gts_graph::{FxHashMap, LabelSet, NodeLabel, Vocab};
use gts_query::{AtomSym, C2rpq, Nfa, Regex, Uc2rpq, Var};

/// Cap on the product of children's final-state sets in rule (3).
const MAX_FINAL_COMBOS: usize = 4096;
/// Cap on the number of negation choices for a disconnected union.
const MAX_CHOICES: usize = 64;

/// Why rolling-up failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RollupError {
    /// The query is not acyclic (rolling-up requires a tree shape).
    NotAcyclic,
    /// Rule (3)'s final-state product exceeded the cap (4096).
    TooManyFinalCombos,
    /// The disconnected-negation choice product exceeded the cap (64).
    TooManyChoices,
}

/// The rolled-up TBox of one connected component, with its fresh concept
/// names.
#[derive(Clone, Debug)]
pub struct Rollup {
    /// The Horn TBox `T¬C`.
    pub tbox: HornTbox,
    /// The fresh automaton-state concept names.
    pub state_labels: LabelSet,
}

/// An expression node of the rolled-up tree: either an oriented query atom
/// or the merged self-loop decorations of one variable.
struct Expr {
    /// Variable where the run starts (children attach here).
    source: Var,
    /// Variable where the run ends (toward the root); equals `source` for
    /// decorations.
    target: Var,
    /// Regex read from source to target.
    regex: Regex,
    /// `true` for merged self-loop decorations (they never have children).
    decoration: bool,
}

/// Rolls up the negation of one connected component of a Boolean acyclic
/// C2RPQ, given the component's variables and atom indices.
pub fn rollup_component(
    q: &C2rpq,
    vars: &[Var],
    atom_idxs: &[usize],
    vocab: &mut Vocab,
) -> Result<Rollup, RollupError> {
    let mut tbox = HornTbox::new();
    let mut state_labels = LabelSet::new();

    if atom_idxs.is_empty() {
        // A lone variable asserts ∃x.⊤; its negation requires emptiness.
        tbox.push(HornCi::Bottom { lhs: LabelSet::new() });
        return Ok(Rollup { tbox, state_labels });
    }

    // Split into tree atoms (x ≠ y) and per-variable self decorations.
    let mut tree_atoms: Vec<usize> = Vec::new();
    let mut self_regex: FxHashMap<Var, Regex> = FxHashMap::default();
    for &i in atom_idxs {
        let a = &q.atoms[i];
        if a.x == a.y {
            // Acyclicity guarantees self-atoms are trivial (node tests /
            // ε / ∅); their concatenation at one node is their conjunction.
            let entry = self_regex.entry(a.x).or_insert(Regex::Epsilon);
            *entry = std::mem::replace(entry, Regex::Epsilon).then(a.regex.clone());
        } else {
            tree_atoms.push(i);
        }
    }

    // Exprs: oriented tree atoms + decorations.
    let mut exprs: Vec<Expr> = Vec::new();

    let root: Var;
    if tree_atoms.is_empty() {
        // Single variable with only decorations.
        root = vars[0];
    } else {
        // Variable adjacency over tree atoms.
        let mut degree: FxHashMap<Var, usize> = FxHashMap::default();
        for &i in &tree_atoms {
            *degree.entry(q.atoms[i].x).or_default() += 1;
            *degree.entry(q.atoms[i].y).or_default() += 1;
        }
        root = *vars
            .iter()
            .find(|v| degree.get(v).copied().unwrap_or(0) == 1)
            .ok_or(RollupError::NotAcyclic)?;
        // BFS depths from the root through tree atoms.
        let mut depth: FxHashMap<Var, usize> = FxHashMap::default();
        depth.insert(root, 0);
        let mut queue = vec![root];
        while let Some(v) = queue.pop() {
            let d = depth[&v];
            for &i in &tree_atoms {
                let a = &q.atoms[i];
                for (from, to) in [(a.x, a.y), (a.y, a.x)] {
                    if from == v && !depth.contains_key(&to) {
                        depth.insert(to, d + 1);
                        queue.push(to);
                    }
                }
            }
        }
        if depth.len() != vars.len() {
            return Err(RollupError::NotAcyclic); // disconnected input
        }
        for &i in &tree_atoms {
            let a = &q.atoms[i];
            if depth[&a.y] < depth[&a.x] {
                exprs.push(Expr {
                    source: a.x,
                    target: a.y,
                    regex: a.regex.clone(),
                    decoration: false,
                });
            } else {
                exprs.push(Expr {
                    source: a.y,
                    target: a.x,
                    regex: a.regex.reverse(),
                    decoration: false,
                });
            }
        }
    }
    for (&v, re) in &self_regex {
        exprs.push(Expr { source: v, target: v, regex: re.clone(), decoration: true });
    }

    // Automata and fresh state concepts per expression.
    let nfas: Vec<std::sync::Arc<Nfa>> = exprs.iter().map(|e| Nfa::compiled(&e.regex)).collect();
    let mut states: FxHashMap<(usize, usize), NodeLabel> = FxHashMap::default();
    for (ei, nfa) in nfas.iter().enumerate() {
        for s in 0..nfa.num_states() {
            let l = vocab.fresh_node_label("q");
            state_labels.insert(l.0);
            states.insert((ei, s), l);
        }
    }

    // (1)/(2): automaton transitions.
    for (ei, nfa) in nfas.iter().enumerate() {
        for s in 0..nfa.num_states() {
            let qs = states[&(ei, s)];
            for &(sym, s2) in nfa.transitions(s) {
                let qs2 = states[&(ei, s2)];
                match sym {
                    AtomSym::Edge(r) => {
                        tbox.push(HornCi::AllValues {
                            lhs: LabelSet::singleton(qs.0),
                            role: r,
                            rhs: LabelSet::singleton(qs2.0),
                        });
                    }
                    AtomSym::Node(a) => {
                        tbox.push(HornCi::SubAtom {
                            lhs: LabelSet::from_iter([qs.0, a.0]),
                            rhs: qs2,
                        });
                    }
                }
            }
        }
    }

    // Children of a tree expression e: the expressions anchored (target) at
    // e's source. Decorations never have children.
    let children_of = |ei: usize| -> Vec<usize> {
        if exprs[ei].decoration {
            return Vec::new();
        }
        (0..exprs.len()).filter(|&fi| fi != ei && exprs[fi].target == exprs[ei].source).collect()
    };

    // (3): initial-state seeding per expression.
    for ei in 0..exprs.len() {
        let children = children_of(ei);
        let finals_per_child: Vec<Vec<usize>> = children
            .iter()
            .map(|&c| (0..nfas[c].num_states()).filter(|&s| nfas[c].is_final(s)).collect())
            .collect();
        let combos: usize = finals_per_child.iter().map(|f| f.len().max(1)).product();
        if combos > MAX_FINAL_COMBOS {
            return Err(RollupError::TooManyFinalCombos);
        }
        let init = states[&(ei, nfas[ei].initial())];
        let mut combo: Vec<usize> = Vec::new();
        seed_combos(&children, &finals_per_child, &states, init, &mut combo, &mut tbox);
    }

    // (4): denial at the root. The root's incoming expressions are those
    // anchored at the root: the unique up tree-atom (the root has tree
    // degree ≤ 1) plus possibly the root's decoration. Forbid every
    // combination of their final states.
    let root_exprs: Vec<usize> = (0..exprs.len()).filter(|&ei| exprs[ei].target == root).collect();
    let finals_per_root: Vec<Vec<usize>> = root_exprs
        .iter()
        .map(|&c| (0..nfas[c].num_states()).filter(|&s| nfas[c].is_final(s)).collect())
        .collect();
    let combos: usize = finals_per_root.iter().map(|f| f.len().max(1)).product();
    if combos > MAX_FINAL_COMBOS {
        return Err(RollupError::TooManyFinalCombos);
    }
    let mut combo: Vec<usize> = Vec::new();
    deny_combos(&root_exprs, &finals_per_root, &states, &mut combo, &mut tbox);

    Ok(Rollup { tbox, state_labels })
}

fn seed_combos(
    children: &[usize],
    finals_per_child: &[Vec<usize>],
    states: &FxHashMap<(usize, usize), NodeLabel>,
    init: NodeLabel,
    combo: &mut Vec<usize>,
    tbox: &mut HornTbox,
) {
    if combo.len() == children.len() {
        let lhs = LabelSet::from_iter(combo.iter().zip(children).map(|(&f, &c)| states[&(c, f)].0));
        tbox.push(HornCi::SubAtom { lhs, rhs: init });
        return;
    }
    let idx = combo.len();
    for &f in &finals_per_child[idx] {
        combo.push(f);
        seed_combos(children, finals_per_child, states, init, combo, tbox);
        combo.pop();
    }
    // A child whose automaton has no final state can never be satisfied;
    // the seed never fires, so nothing is emitted for this branch.
}

fn deny_combos(
    root_exprs: &[usize],
    finals_per_root: &[Vec<usize>],
    states: &FxHashMap<(usize, usize), NodeLabel>,
    combo: &mut Vec<usize>,
    tbox: &mut HornTbox,
) {
    if combo.len() == root_exprs.len() {
        let lhs =
            LabelSet::from_iter(combo.iter().zip(root_exprs).map(|(&f, &c)| states[&(c, f)].0));
        tbox.push(HornCi::Bottom { lhs });
        return;
    }
    let idx = combo.len();
    for &f in &finals_per_root[idx] {
        combo.push(f);
        deny_combos(root_exprs, finals_per_root, states, combo, tbox);
        combo.pop();
    }
}

/// Rolls up the negation `¬Q` of a Boolean acyclic UC2RPQ as a *set of
/// Horn TBoxes*: `¬Q` holds (together with other constraints) iff some
/// returned TBox is satisfied. Each TBox refutes one choice of component
/// per disjunct; the fresh state labels of all components are pooled in
/// the second result.
pub fn rollup_negation(
    q: &Uc2rpq,
    vocab: &mut Vocab,
) -> Result<(Vec<HornTbox>, LabelSet), RollupError> {
    if !q.is_acyclic() {
        return Err(RollupError::NotAcyclic);
    }
    let mut all_states = LabelSet::new();
    // Per disjunct, the rolled-up TBox of each of its components.
    let mut per_disjunct: Vec<Vec<HornTbox>> = Vec::new();
    for d in &q.disjuncts {
        let mut comp_tboxes = Vec::new();
        for (vars, atom_idxs) in d.connected_components() {
            let rolled = rollup_component(d, &vars, &atom_idxs, vocab)?;
            all_states.union_with(&rolled.state_labels);
            comp_tboxes.push(rolled.tbox);
        }
        if comp_tboxes.is_empty() {
            // A disjunct with no variables is the always-true query ⊤, so
            // ¬Q is unsatisfiable: the impossible TBox ⊤ ⊑ ⊥ (only the
            // empty graph satisfies it, and even there the disjunct holds;
            // P̂ ∧ ⊤⊑⊥ is then correctly unsatisfiable whenever P̂ needs a
            // node, and a node-free P̂ is contained in ⊤ anyway).
            let mut t = HornTbox::new();
            t.push(HornCi::Bottom { lhs: LabelSet::new() });
            comp_tboxes.push(t);
        }
        per_disjunct.push(comp_tboxes);
    }
    let num_choices: usize = per_disjunct.iter().map(|c| c.len()).product();
    if num_choices > MAX_CHOICES {
        return Err(RollupError::TooManyChoices);
    }
    // Cartesian product of component choices across disjuncts.
    let mut choices: Vec<HornTbox> = vec![HornTbox::new()];
    for comp_tboxes in &per_disjunct {
        let mut next = Vec::with_capacity(choices.len() * comp_tboxes.len());
        for base in &choices {
            for t in comp_tboxes {
                next.push(HornTbox::merged([base, t]));
            }
        }
        choices = next;
    }
    Ok((choices, all_states))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_dl::datalog_satisfies;
    use gts_graph::Graph;
    use gts_query::Atom;

    /// Differential oracle: for every sampled graph G,
    /// `G ⊭ Q  iff  some choice-TBox is satisfied under its least
    /// valuation` (Lemma C.2).
    fn check_rollup_against_eval(q: &Uc2rpq, graphs: &[Graph], vocab: &mut Vocab) {
        let (choices, states) = rollup_negation(q, vocab).unwrap();
        for (gi, g) in graphs.iter().enumerate() {
            let not_q = !q.holds(g);
            let refuted = choices.iter().any(|t| datalog_satisfies(t, g, &states) == Some(true));
            assert_eq!(not_q, refuted, "rollup disagrees with evaluation on graph {gi}");
        }
    }

    fn example_c1(vocab: &mut Vocab) -> C2rpq {
        // Q0 = ∃x0..x3. (a·b*·c)(x2,x1) ∧ A(x1,x1) ∧ ε(x3,x1) ∧ a⁻(x1,x0)
        let a = vocab.edge_label("a");
        let b = vocab.edge_label("b");
        let c = vocab.edge_label("c");
        let la = vocab.node_label("A");
        C2rpq::new(
            4,
            vec![],
            vec![
                Atom {
                    x: Var(2),
                    y: Var(1),
                    regex: Regex::edge(a).then(Regex::edge(b).star()).then(Regex::edge(c)),
                },
                Atom { x: Var(1), y: Var(1), regex: Regex::node(la) },
                Atom { x: Var(3), y: Var(1), regex: Regex::Epsilon },
                Atom { x: Var(1), y: Var(0), regex: Regex::sym(gts_graph::EdgeSym::bwd(a)) },
            ],
        )
    }

    #[test]
    fn example_c1_rollup_matches_evaluation() {
        let mut vocab = Vocab::new();
        let q = example_c1(&mut vocab);
        assert!(q.is_acyclic());
        let a = vocab.find_edge_label("a").unwrap();
        let b = vocab.find_edge_label("b").unwrap();
        let c = vocab.find_edge_label("c").unwrap();
        let la = vocab.find_node_label("A").unwrap();

        // Graph 1: a path matching the query: x2 -a→ m -b→ m2 -c→ x1(A),
        // plus x0 with an a-edge x0 -a→ x1.
        let mut g1 = Graph::new();
        let x2 = g1.add_node();
        let m = g1.add_node();
        let m2 = g1.add_node();
        let x1 = g1.add_labeled_node([la]);
        let x0 = g1.add_node();
        g1.add_edge(x2, a, m);
        g1.add_edge(m, b, m2);
        g1.add_edge(m2, c, x1);
        g1.add_edge(x0, a, x1);

        // Graph 2: same but x1 lacks the A label.
        let mut g2 = Graph::new();
        let y2 = g2.add_node();
        let n = g2.add_node();
        let n2 = g2.add_node();
        let y1 = g2.add_node();
        let y0 = g2.add_node();
        g2.add_edge(y2, a, n);
        g2.add_edge(n, b, n2);
        g2.add_edge(n2, c, y1);
        g2.add_edge(y0, a, y1);

        // Graph 3: b-loop variant (b* with two steps).
        let mut g3 = g1.clone();
        let extra = g3.add_node();
        g3.add_edge(m2, b, extra);

        let u = Uc2rpq::single(example_c1(&mut vocab));
        assert!(u.holds(&g1));
        assert!(!u.holds(&g2));
        check_rollup_against_eval(&u, &[g1, g2, g3, Graph::new()], &mut vocab);
    }

    #[test]
    fn single_edge_query_rollup() {
        let mut vocab = Vocab::new();
        let r = vocab.edge_label("r");
        let q = Uc2rpq::single(C2rpq::new(
            2,
            vec![],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) }],
        ));
        let mut g_yes = Graph::new();
        let n0 = g_yes.add_node();
        let n1 = g_yes.add_node();
        g_yes.add_edge(n0, r, n1);
        let mut g_no = Graph::new();
        g_no.add_node();
        check_rollup_against_eval(&q, &[g_yes, g_no, Graph::new()], &mut vocab);
    }

    #[test]
    fn pure_node_test_query_rollup() {
        // ∃x. A(x) ∧ B(x): two decorations at a single variable.
        let mut vocab = Vocab::new();
        let a = vocab.node_label("A");
        let b = vocab.node_label("B");
        let q = Uc2rpq::single(C2rpq::new(
            1,
            vec![],
            vec![
                Atom { x: Var(0), y: Var(0), regex: Regex::node(a) },
                Atom { x: Var(0), y: Var(0), regex: Regex::node(b) },
            ],
        ));
        let mut g_ab = Graph::new();
        g_ab.add_labeled_node([a, b]);
        let mut g_a = Graph::new();
        g_a.add_labeled_node([a]);
        let mut g_split = Graph::new();
        g_split.add_labeled_node([a]);
        g_split.add_labeled_node([b]);
        check_rollup_against_eval(&q, &[g_ab, g_a, g_split, Graph::new()], &mut vocab);
    }

    #[test]
    fn decorated_internal_variable() {
        // ∃x,y,z. r(x,y) ∧ A(y) ∧ s(y,z): decoration on an inner node.
        let mut vocab = Vocab::new();
        let r = vocab.edge_label("r");
        let s = vocab.edge_label("s");
        let a = vocab.node_label("A");
        let q = Uc2rpq::single(C2rpq::new(
            3,
            vec![],
            vec![
                Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) },
                Atom { x: Var(1), y: Var(1), regex: Regex::node(a) },
                Atom { x: Var(1), y: Var(2), regex: Regex::edge(s) },
            ],
        ));
        let build = |with_label: bool| {
            let mut g = Graph::new();
            let x = g.add_node();
            let y = if with_label { g.add_labeled_node([a]) } else { g.add_node() };
            let z = g.add_node();
            g.add_edge(x, r, y);
            g.add_edge(y, s, z);
            g
        };
        check_rollup_against_eval(&q, &[build(true), build(false)], &mut vocab);
    }

    #[test]
    fn union_rollup_conjoins_negations() {
        let mut vocab = Vocab::new();
        let r = vocab.edge_label("r");
        let s = vocab.edge_label("s");
        let q = Uc2rpq {
            disjuncts: vec![
                C2rpq::new(2, vec![], vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) }]),
                C2rpq::new(2, vec![], vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(s) }]),
            ],
        };
        let mut g_r = Graph::new();
        let a = g_r.add_node();
        let b = g_r.add_node();
        g_r.add_edge(a, r, b);
        let mut g_s = Graph::new();
        let c = g_s.add_node();
        let d = g_s.add_node();
        g_s.add_edge(c, s, d);
        let mut g_none = Graph::new();
        g_none.add_node();
        check_rollup_against_eval(&q, &[g_r, g_s, g_none, Graph::new()], &mut vocab);
    }

    #[test]
    fn disconnected_query_produces_choices() {
        let mut vocab = Vocab::new();
        let r = vocab.edge_label("r");
        let s = vocab.edge_label("s");
        // Q = r(x0,x1) ∧ s(x2,x3): two components → two choices.
        let q = Uc2rpq::single(C2rpq::new(
            4,
            vec![],
            vec![
                Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) },
                Atom { x: Var(2), y: Var(3), regex: Regex::edge(s) },
            ],
        ));
        let (choices, states) = rollup_negation(&q, &mut vocab).unwrap();
        assert_eq!(choices.len(), 2);
        // Graph with only an r-edge: Q fails (no s-edge) → some choice
        // satisfied.
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, r, b);
        assert!(!q.holds(&g));
        assert!(choices.iter().any(|t| datalog_satisfies(t, &g, &states) == Some(true)));
        // Graph with both edges: Q holds → no choice satisfied.
        let mut g2 = Graph::new();
        let a2 = g2.add_node();
        let b2 = g2.add_node();
        let c2 = g2.add_node();
        let d2 = g2.add_node();
        g2.add_edge(a2, r, b2);
        g2.add_edge(c2, s, d2);
        assert!(q.holds(&g2));
        assert!(!choices.iter().any(|t| datalog_satisfies(t, &g2, &states) == Some(true)));
    }

    #[test]
    fn cyclic_query_is_rejected() {
        let mut vocab = Vocab::new();
        let r = vocab.edge_label("r");
        let q = Uc2rpq::single(C2rpq::new(
            1,
            vec![],
            vec![Atom { x: Var(0), y: Var(0), regex: Regex::edge(r) }],
        ));
        assert_eq!(rollup_negation(&q, &mut vocab).unwrap_err(), RollupError::NotAcyclic);
    }

    #[test]
    fn two_way_atoms_roll_up_via_reversal() {
        let mut vocab = Vocab::new();
        let r = vocab.edge_label("r");
        // Q = r⁻(x0, x1): an inverse edge from x0's perspective.
        let q = Uc2rpq::single(C2rpq::new(
            2,
            vec![],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::sym(gts_graph::EdgeSym::bwd(r)) }],
        ));
        let mut g = Graph::new();
        let n0 = g.add_node();
        let n1 = g.add_node();
        g.add_edge(n1, r, n0); // r⁻(n0, n1) holds
        check_rollup_against_eval(&q, &[g, Graph::new()], &mut vocab);
    }

    #[test]
    fn star_query_rollup_matches_evaluation_on_chains() {
        // Q = (r·s*)(x, y): unbounded witnessing paths.
        let mut vocab = Vocab::new();
        let r = vocab.edge_label("r");
        let s = vocab.edge_label("s");
        let q = Uc2rpq::single(C2rpq::new(
            2,
            vec![],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r).then(Regex::edge(s).star()) }],
        ));
        let mut graphs = Vec::new();
        for chain in 0..3 {
            let mut g = Graph::new();
            let mut cur = g.add_node();
            let nxt = g.add_node();
            g.add_edge(cur, r, nxt);
            cur = nxt;
            for _ in 0..chain {
                let nxt = g.add_node();
                g.add_edge(cur, s, nxt);
                cur = nxt;
            }
            graphs.push(g);
        }
        // An s-only chain does not match.
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, s, b);
        graphs.push(g);
        check_rollup_against_eval(&q, &graphs, &mut vocab);
    }
}
