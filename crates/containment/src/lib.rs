//! # gts-containment
//!
//! Containment of UC2RPQs in acyclic UC2RPQs modulo schema — the
//! EXPTIME-complete problem at the heart of *Static Analysis of Graph
//! Database Transformations* (PODS 2023, Theorem 5.1), assembled from the
//! paper's reductions:
//!
//! * [`booleanize`] — Lemma D.1 (marker labels pin answer tuples);
//! * [`hat_union`] — the relativization `P → P̂` of Theorem 5.6;
//! * [`rollup_negation`] — Lemma C.2 (acyclic queries to Horn TBoxes);
//! * [`complete`] — finmod-cycle reversal / Theorem 5.4 (finite ↔
//!   unrestricted satisfiability);
//! * [`EntailCtx`] — CI entailment via Corollary E.7;
//! * [`contains`] — the top-level decision procedure;
//! * `oracle` helpers — brute-force finite differential oracles.
//!
//! ```
//! use gts_graph::Vocab;
//! use gts_query::{Atom, C2rpq, Regex, Uc2rpq, Var};
//! use gts_schema::{Mult, Schema};
//! use gts_containment::{contains, ContainmentOptions};
//!
//! let mut v = Vocab::new();
//! let a = v.node_label("A");
//! let r = v.edge_label("r");
//! let mut s = Schema::new();
//! s.set_edge(a, r, a, Mult::Star, Mult::Star);
//! let q = Uc2rpq::single(C2rpq::new(2, vec![Var(0), Var(1)], vec![Atom {
//!     x: Var(0), y: Var(1), regex: Regex::edge(r),
//! }]));
//! let ans = contains(&q, &q, &s, &mut v, &ContainmentOptions::default()).unwrap();
//! assert!(ans.holds && ans.certified);
//! ```

#![warn(missing_docs)]

mod booleanize;
mod cache;
mod completion;
mod contains;
mod entail;
mod hatp;
mod nre;
mod oracle;
mod rollup;
mod tbox_containment;
mod witness;

pub use booleanize::{booleanize, Booleanized};
pub use cache::{OracleCache, OracleCacheStats};
pub use completion::{complete, complete_with, Completion, CompletionConfig};
pub use contains::{
    contains, satisfiable_modulo_schema, ContainmentAnswer, ContainmentError, ContainmentOptions,
};
pub use entail::EntailCtx;
pub use hatp::{hat_query, hat_regex, hat_union};
pub use nre::{contains_nre, nest_tbox};
pub use oracle::{
    assert_consistent_with_oracle, counterexample_by_sampling, counterexample_exhaustive,
    is_counterexample,
};
pub use rollup::{rollup_component, rollup_negation, Rollup, RollupError};
pub use tbox_containment::{contains_finite_modulo_tbox, finitely_satisfiable_modulo_tbox};
pub use witness::{
    finite_counterexample, finite_counterexample_nre, sample_counterexample, FiniteCounterexample,
    WitnessConfig,
};
