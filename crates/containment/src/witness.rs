//! Extraction of *verified finite counterexamples* for failed
//! containments.
//!
//! The decision procedure refutes `P ⊆_S Q` with a core of a (possibly
//! infinite) model of the completed TBox — evidence that a finite
//! counterexample exists (Theorem 5.4), but not the counterexample
//! itself. This module turns that evidence into an actual finite graph a
//! user can look at:
//!
//! 1. strip the engine core back to schema vocabulary (dropping marker
//!    nodes of the Booleanization, remembering the answer tuple they pin);
//! 2. *repair* the remaining participation debt — greedily satisfy every
//!    unmet `1`/`+` constraint by reusing an existing target when the
//!    inverse multiplicity allows it, creating fresh nodes otherwise;
//! 3. verify the result end to end (`G ⊨ S`, `t ∈ P(G)`, `t ∉ Q(G)`) by
//!    direct evaluation — an unverified repair is discarded;
//! 4. fall back to random sampling of conforming graphs.
//!
//! Everything returned is verified; `None` means "not found within the
//! configured effort", never "no counterexample exists".

use crate::booleanize::booleanize;
use crate::completion::Completion;
use crate::contains::{ContainmentError, ContainmentOptions};
use crate::hatp::hat_union;
use crate::oracle::is_counterexample;
use crate::rollup::rollup_negation;
use gts_dl::HornTbox;
use gts_graph::{EdgeSym, FxHashMap, Graph, NodeId, NodeLabel, Vocab};
use gts_query::Uc2rpq;
use gts_sat::{decide_cached, Verdict};
use gts_schema::{Mult, Schema};
use rand::seq::SliceRandom;
use rand::Rng;

/// A verified finite counterexample to `P ⊆_S Q`.
#[derive(Clone, Debug)]
pub struct FiniteCounterexample {
    /// A finite graph conforming to `S`.
    pub graph: Graph,
    /// An answer tuple in `P(G) \ Q(G)` (empty for Boolean queries).
    pub tuple: Vec<NodeId>,
}

/// Effort knobs for [`finite_counterexample`].
#[derive(Clone, Debug)]
pub struct WitnessConfig {
    /// Maximum fresh nodes the repair loop may create.
    pub max_extra_nodes: usize,
    /// Maximum repair iterations.
    pub max_repair_iters: usize,
    /// Random conforming graphs to sample in the fallback.
    pub samples: usize,
    /// Size parameter for the sampled graphs.
    pub sample_size_per_label: usize,
}

impl Default for WitnessConfig {
    fn default() -> Self {
        WitnessConfig {
            max_extra_nodes: 64,
            max_repair_iters: 512,
            samples: 200,
            sample_size_per_label: 3,
        }
    }
}

/// Searches for a verified finite counterexample to `P(x̄) ⊆_S Q(x̄)`.
/// Returns `Ok(None)` when containment holds (or no counterexample was
/// found within the configured effort).
pub fn finite_counterexample<R: Rng>(
    p: &Uc2rpq,
    q: &Uc2rpq,
    s: &Schema,
    vocab: &mut Vocab,
    opts: &ContainmentOptions,
    cfg: &WitnessConfig,
    rng: &mut R,
) -> Result<Option<FiniteCounterexample>, ContainmentError> {
    let p_pruned = Uc2rpq {
        disjuncts: p.disjuncts.iter().filter(|d| !q.disjuncts.contains(d)).cloned().collect(),
    };
    if p_pruned.disjuncts.is_empty() {
        return Ok(None);
    }

    // Replicate the containment pipeline, keeping the Booleanization's
    // marker labels in scope so the engine core can be decoded.
    let b = booleanize(&p_pruned, q, s, vocab);
    let (choices, _states) = rollup_negation(&b.q, vocab).map_err(ContainmentError::Rollup)?;
    let p_hat = hat_union(&b.p, &b.schema);
    let hat_ts = b.schema.hat_tbox();
    let schema_label_set = b.schema.node_label_set();
    let fresh = (vocab.fresh_node_label("B"), vocab.fresh_node_label("B"));

    let cache = crate::contains::call_cache(opts);
    let mut saw_sat_or_unknown = false;
    for choice in &choices {
        let t = HornTbox::merged([&hat_ts, choice]);
        let Completion { tbox: t_star, .. } = crate::completion::complete_with(
            &t,
            &schema_label_set,
            fresh,
            &opts.budget,
            &opts.completion,
            Some(&cache),
            opts.threads,
        );
        for pd in &p_hat.disjuncts {
            match decide_cached(&t_star, pd, &opts.budget, cache.solver()).0 {
                Verdict::Sat(w) => {
                    saw_sat_or_unknown = true;
                    if let Some(cex) =
                        repair_core(&w.core, s, &b.markers, &b.marker_edges, p, q, cfg, rng)
                    {
                        return Ok(Some(cex));
                    }
                }
                Verdict::Unknown(_) => saw_sat_or_unknown = true,
                Verdict::Unsat => {}
            }
        }
    }
    if !saw_sat_or_unknown {
        return Ok(None); // containment certified: no counterexample exists
    }
    // Fallback: random sampling.
    Ok(sample_counterexample(p, q, s, cfg, rng))
}

/// NRE variant of [`finite_counterexample`]. When `q` is flattenable the
/// exact repair-guided pipeline applies; a star-nested `q` falls back to
/// verified random sampling (evaluating the nested query by
/// materialization), since the repair decoder works on the plain
/// vocabulary only. Returned counterexamples are always verified.
pub fn finite_counterexample_nre<R: Rng>(
    p: &gts_query::NreUc2rpq,
    q: &gts_query::NreUc2rpq,
    s: &Schema,
    vocab: &mut Vocab,
    opts: &ContainmentOptions,
    cfg: &WitnessConfig,
    rng: &mut R,
) -> Result<Option<FiniteCounterexample>, ContainmentError> {
    let p_flat = p.flatten().map_err(ContainmentError::Flatten)?;
    if let Ok(q_flat) = q.flatten() {
        return finite_counterexample(&p_flat, &q_flat, s, vocab, opts, cfg, rng);
    }
    // Star-nested right-hand side: verified sampling with NRE evaluation.
    for _ in 0..cfg.samples {
        let Some(g) = gts_schema::random_conforming_graph(s, cfg.sample_size_per_label, 3, rng)
        else {
            continue;
        };
        let qa = q.eval(&g, vocab);
        if let Some(tuple) = p_flat.eval(&g).into_iter().find(|t| !qa.contains(t)) {
            return Ok(Some(FiniteCounterexample { graph: g, tuple }));
        }
    }
    Ok(None)
}

/// Random-sampling search (also used as the fallback above).
pub fn sample_counterexample<R: Rng>(
    p: &Uc2rpq,
    q: &Uc2rpq,
    s: &Schema,
    cfg: &WitnessConfig,
    rng: &mut R,
) -> Option<FiniteCounterexample> {
    for _ in 0..cfg.samples {
        if let Some(g) = gts_schema::random_conforming_graph(s, cfg.sample_size_per_label, 3, rng) {
            if is_counterexample(p, q, &g) {
                let qa = q.eval(&g);
                let tuple = p.eval(&g).into_iter().find(|t| !qa.contains(t))?;
                return Some(FiniteCounterexample { graph: g, tuple });
            }
        }
    }
    None
}

/// Decodes an engine core (over the Booleanized vocabulary) and repairs it
/// into a conforming finite graph; returns only verified counterexamples.
#[allow(clippy::too_many_arguments)]
fn repair_core<R: Rng>(
    core: &Graph,
    s: &Schema,
    markers: &[NodeLabel],
    marker_edges: &[gts_graph::EdgeLabel],
    p: &Uc2rpq,
    q: &Uc2rpq,
    cfg: &WitnessConfig,
    rng: &mut R,
) -> Option<FiniteCounterexample> {
    let gamma = s.node_label_set();

    // 1) map core nodes: schema-labeled nodes are kept; marker nodes pin
    //    the answer tuple; everything else is dropped.
    let mut map: FxHashMap<NodeId, NodeId> = FxHashMap::default();
    let mut g = Graph::new();
    for u in core.nodes() {
        let schema_labels: Vec<u32> =
            core.labels(u).iter().filter(|l| gamma.contains(*l)).collect();
        if let [one] = schema_labels.as_slice() {
            let id = g.add_labeled_node([NodeLabel(*one)]);
            map.insert(u, id);
        }
    }
    let mut tuple = Vec::with_capacity(markers.len());
    for (i, &x) in markers.iter().enumerate() {
        let marker_node = core.nodes().find(|&u| core.has_label(u, x))?;
        let pinned = core.successors(marker_node, EdgeSym::fwd(marker_edges[i])).next()?;
        tuple.push(*map.get(&pinned)?);
    }
    for (src, label, tgt) in core.edges() {
        if !s.has_edge_label(label) {
            continue;
        }
        if let (Some(&ms), Some(&mt)) = (map.get(&src), map.get(&tgt)) {
            g.add_edge(ms, label, mt);
        }
    }

    // 2) repair participation debt.
    let mut extra = 0usize;
    for _ in 0..cfg.max_repair_iters {
        let Some((u, a, sym, b_label)) = first_unmet(&g, s) else { break };
        // Existing targets that can absorb one more incoming edge.
        let allowed_in = s.mult(b_label, sym.inv(), a);
        let mut candidates: Vec<NodeId> = g
            .nodes()
            .filter(|&w| g.has_label(w, b_label))
            .filter(|&w| !has_sym_edge(&g, u, sym, w))
            .filter(|&w| match allowed_in {
                Mult::Star | Mult::Plus => true,
                Mult::One | Mult::Opt => g.count_labeled_successors(w, sym.inv(), a) == 0,
                Mult::Zero => false,
            })
            .collect();
        candidates.shuffle(rng);
        if let Some(&w) = candidates.first() {
            add_sym_edge(&mut g, u, sym, w);
        } else if extra < cfg.max_extra_nodes && allowed_in != Mult::Zero {
            let w = g.add_labeled_node([b_label]);
            extra += 1;
            add_sym_edge(&mut g, u, sym, w);
        } else {
            return None;
        }
    }

    // 3) verify end to end.
    if s.conforms(&g).is_err() {
        return None;
    }
    let pa = p.eval(&g);
    let qa = q.eval(&g);
    if pa.contains(&tuple) && !qa.contains(&tuple) {
        Some(FiniteCounterexample { graph: g, tuple })
    } else {
        None
    }
}

/// First unmet `1`/`+` participation requirement, if any.
fn first_unmet(g: &Graph, s: &Schema) -> Option<(NodeId, NodeLabel, EdgeSym, NodeLabel)> {
    for u in g.nodes() {
        let a = NodeLabel(g.labels(u).first()?);
        for sym in s.syms() {
            for &b in s.node_labels() {
                if matches!(s.mult(a, sym, b), Mult::One | Mult::Plus)
                    && g.count_labeled_successors(u, sym, b) == 0
                {
                    return Some((u, a, sym, b));
                }
            }
        }
    }
    None
}

fn has_sym_edge(g: &Graph, u: NodeId, sym: EdgeSym, w: NodeId) -> bool {
    if sym.inverse {
        g.has_edge(w, sym.label, u)
    } else {
        g.has_edge(u, sym.label, w)
    }
}

fn add_sym_edge(g: &mut Graph, u: NodeId, sym: EdgeSym, w: NodeId) {
    if sym.inverse {
        g.add_edge(w, sym.label, u);
    } else {
        g.add_edge(u, sym.label, w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_query::{Atom, C2rpq, Regex, Var};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    /// Figure 1 vocabulary: Targets ⊄ Direct must yield a verified
    /// counterexample that conforms to S0 (in particular every Vaccine has
    /// its designTarget and every Pathogen exhibits something).
    #[test]
    fn medical_counterexample_is_verified() {
        let mut v = Vocab::new();
        let vaccine = v.node_label("Vaccine");
        let antigen = v.node_label("Antigen");
        let pathogen = v.node_label("Pathogen");
        let dt = v.edge_label("designTarget");
        let cr = v.edge_label("crossReacting");
        let ex = v.edge_label("exhibits");
        let mut s = Schema::new();
        s.set_edge(vaccine, dt, antigen, Mult::One, Mult::Star);
        s.set_edge(antigen, cr, antigen, Mult::Star, Mult::Star);
        s.set_edge(pathogen, ex, antigen, Mult::Plus, Mult::Star);

        let targets = Uc2rpq::single(C2rpq::new(
            2,
            vec![Var(0), Var(1)],
            vec![Atom {
                x: Var(0),
                y: Var(1),
                regex: Regex::edge(dt).then(Regex::edge(cr).star()),
            }],
        ));
        let direct = Uc2rpq::single(C2rpq::new(
            2,
            vec![Var(0), Var(1)],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(dt) }],
        ));
        let cex = finite_counterexample(
            &targets,
            &direct,
            &s,
            &mut v,
            &Default::default(),
            &WitnessConfig::default(),
            &mut rng(),
        )
        .unwrap()
        .expect("Targets ⊄ Direct: a counterexample must be found");
        // Re-verify independently.
        assert!(s.conforms(&cex.graph).is_ok());
        assert!(targets.eval(&cex.graph).contains(&cex.tuple));
        assert!(!direct.eval(&cex.graph).contains(&cex.tuple));
        // The tuple's witness must use at least one crossReacting hop.
        assert!(cex.graph.edges().any(|(_, l, _)| l == cr));
    }

    /// A containment that holds yields no counterexample.
    #[test]
    fn contained_queries_have_no_counterexample() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let r = v.edge_label("r");
        let mut s = Schema::new();
        s.set_edge(a, r, a, Mult::Star, Mult::Star);
        let q = Uc2rpq::single(C2rpq::new(
            2,
            vec![Var(0), Var(1)],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) }],
        ));
        let wide = Uc2rpq::single(C2rpq::new(
            2,
            vec![Var(0), Var(1)],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r).then(Regex::edge(r).star()) }],
        ));
        let none = finite_counterexample(
            &q,
            &wide,
            &s,
            &mut v,
            &Default::default(),
            &WitnessConfig::default(),
            &mut rng(),
        )
        .unwrap();
        assert!(none.is_none());
    }

    /// NRE counterexamples: a star-nested right-hand side refuted by a
    /// sampled conforming graph, verified by nested evaluation.
    #[test]
    fn nre_counterexample_with_star_nest() {
        use gts_query::{Nre, NreAtom, NreC2rpq, NreUc2rpq};
        let mut v = Vocab::new();
        let person = v.node_label("Person");
        let post = v.node_label("Post");
        let follows = v.edge_label("follows");
        let likes = v.edge_label("likes");
        let mut s = Schema::new();
        s.set_edge(person, follows, person, Mult::Star, Mult::Star);
        s.set_edge(person, likes, post, Mult::Star, Mult::Star);
        // P: a follows-edge exists. Q: a follow-chain through likers —
        // not entailed when likes is optional.
        let p = NreUc2rpq::single(NreC2rpq::new(
            2,
            vec![],
            vec![NreAtom { x: Var(0), y: Var(1), nre: Nre::edge(follows) }],
        ));
        let step = Nre::edge(follows).then(Nre::nest(Nre::edge(likes)));
        let q = NreUc2rpq::single(NreC2rpq::new(
            2,
            vec![],
            vec![NreAtom { x: Var(0), y: Var(1), nre: step.clone().then(step.star()) }],
        ));
        let cex = finite_counterexample_nre(
            &p,
            &q,
            &s,
            &mut v,
            &Default::default(),
            &WitnessConfig::default(),
            &mut rng(),
        )
        .unwrap()
        .expect("counterexample exists (a follows-edge to a non-liker)");
        assert!(s.conforms(&cex.graph).is_ok());
        assert!(p.flatten().unwrap().eval(&cex.graph).contains(&cex.tuple));
        assert!(!q.eval(&cex.graph, &mut v).contains(&cex.tuple));
    }

    /// Boolean queries: Example 5.2's variant *without* the inverse
    /// functionality is refutable by a finite graph (an r-loop plus an
    /// s-cycle): the extractor must produce one.
    #[test]
    fn boolean_counterexample_with_cycles() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let sl = v.edge_label("s");
        let r = v.edge_label("r");
        let mut s = Schema::new();
        s.set_edge(a, sl, a, Mult::Plus, Mult::Star);
        s.set_edge(a, r, a, Mult::Star, Mult::Star);
        let p = Uc2rpq::single(C2rpq::new(
            1,
            vec![],
            vec![Atom { x: Var(0), y: Var(0), regex: Regex::edge(r) }],
        ));
        let splus = Regex::edge(sl).then(Regex::edge(sl).star());
        let q = Uc2rpq::single(C2rpq::new(
            2,
            vec![],
            vec![Atom {
                x: Var(0),
                y: Var(1),
                regex: Regex::edge(r).then(splus).then(Regex::edge(r)),
            }],
        ));
        let cex = finite_counterexample(
            &p,
            &q,
            &s,
            &mut v,
            &Default::default(),
            &WitnessConfig::default(),
            &mut rng(),
        )
        .unwrap()
        .expect("finite counterexample exists");
        assert!(cex.tuple.is_empty());
        assert!(s.conforms(&cex.graph).is_ok());
        assert!(p.holds(&cex.graph));
        assert!(!q.holds(&cex.graph));
    }
}
