//! Booleanization of containment instances (Lemma D.1).
//!
//! Containment of `n`-ary queries reduces to Boolean containment by
//! extending the schema with fresh *marker* labels `X_1 … X_n` and fresh
//! edge labels `r_1 … r_n`, and adding to both queries an atom
//! `∃y_i. (X_i · r_i)(y_i, x_i)` per free variable: a counterexample tuple
//! is "pinned" by marker nodes that the original regular expressions cannot
//! traverse.

use gts_graph::{EdgeLabel, EdgeSym, NodeLabel, Vocab};
use gts_query::{Atom, C2rpq, Regex, Uc2rpq, Var};
use gts_schema::{Mult, Schema};

/// Result of Booleanization: the extended schema and the two Boolean
/// queries, plus the fresh markers (useful for diagnostics).
pub struct Booleanized {
    /// The schema `S°` over `Γ_S ∪ {X_i}` and `Σ_S ∪ {r_i}`.
    pub schema: Schema,
    /// `P°` (Boolean).
    pub p: Uc2rpq,
    /// `Q°` (Boolean).
    pub q: Uc2rpq,
    /// The marker node labels `X_i`.
    pub markers: Vec<NodeLabel>,
    /// The marker edge labels `r_i`.
    pub marker_edges: Vec<EdgeLabel>,
}

/// Booleanizes a containment instance `P(x̄) ⊆_S Q(x̄)` (Lemma D.1).
///
/// Panics if the two queries disagree on arity (an empty union adopts the
/// other side's arity).
pub fn booleanize(p: &Uc2rpq, q: &Uc2rpq, s: &Schema, vocab: &mut Vocab) -> Booleanized {
    let arity = p.arity().or(q.arity()).unwrap_or(0);
    if let (Some(ap), Some(aq)) = (p.arity(), q.arity()) {
        assert_eq!(ap, aq, "containment requires queries of equal arity");
    }

    let mut schema = s.clone();
    let mut markers = Vec::with_capacity(arity);
    let mut marker_edges = Vec::with_capacity(arity);
    for i in 0..arity {
        let x = vocab.fresh_node_label(&format!("X{i}"));
        let r = vocab.fresh_edge_label(&format!("rX{i}"));
        markers.push(x);
        marker_edges.push(r);
        schema.add_node_label(x);
        schema.add_edge_label(r);
        // A marker node has at most one outgoing r_i edge, to any original
        // label; original nodes may be pointed at by arbitrarily many
        // markers. All other marker edges stay implicitly 0.
        for &b in s.node_labels() {
            schema.set(x, EdgeSym::fwd(r), b, Mult::Opt);
            schema.set(b, EdgeSym::bwd(r), x, Mult::Star);
        }
    }

    let pin = |q: &Uc2rpq| Uc2rpq {
        disjuncts: q.disjuncts.iter().map(|d| pin_disjunct(d, &markers, &marker_edges)).collect(),
    };
    Booleanized { p: pin(p), q: pin(q), schema, markers, marker_edges }
}

fn pin_disjunct(d: &C2rpq, markers: &[NodeLabel], marker_edges: &[EdgeLabel]) -> C2rpq {
    let mut atoms = d.atoms.clone();
    let mut num_vars = d.num_vars;
    for (i, &fv) in d.free.iter().enumerate() {
        let y = Var(num_vars);
        num_vars += 1;
        atoms.push(Atom {
            x: y,
            y: fv,
            regex: Regex::node(markers[i]).then(Regex::edge(marker_edges[i])),
        });
    }
    C2rpq::new(num_vars, Vec::new(), atoms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_graph::Graph;

    fn setup() -> (Vocab, Schema, Uc2rpq) {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let b = v.node_label("B");
        let r = v.edge_label("r");
        let mut s = Schema::new();
        s.set_edge(a, r, b, Mult::Star, Mult::Star);
        let q = Uc2rpq::single(C2rpq::new(
            2,
            vec![Var(0), Var(1)],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) }],
        ));
        (v, s, q)
    }

    #[test]
    fn booleanization_produces_boolean_queries() {
        let (mut v, s, q) = setup();
        let b = booleanize(&q, &q, &s, &mut v);
        assert!(b.p.is_boolean());
        assert!(b.q.is_boolean());
        assert_eq!(b.markers.len(), 2);
        // One pin atom per free variable was added.
        assert_eq!(b.p.disjuncts[0].atoms.len(), 3);
    }

    #[test]
    fn booleanization_preserves_acyclicity() {
        let (mut v, s, q) = setup();
        let b = booleanize(&q, &q, &s, &mut v);
        assert!(b.q.is_acyclic());
    }

    #[test]
    fn pinned_query_matches_on_marked_graphs_only() {
        let (mut v, s, q) = setup();
        let a = v.find_node_label("A").unwrap();
        let bb = v.find_node_label("B").unwrap();
        let r = v.find_edge_label("r").unwrap();
        let boolz = booleanize(&q, &q, &s, &mut v);

        // Unmarked graph: the pinned query does not hold.
        let mut g = Graph::new();
        let n0 = g.add_labeled_node([a]);
        let n1 = g.add_labeled_node([bb]);
        g.add_edge(n0, r, n1);
        assert!(!boolz.p.holds(&g));

        // Mark (n0, n1): now it holds, and the graph conforms to S°.
        let m0 = g.add_labeled_node([boolz.markers[0]]);
        let m1 = g.add_labeled_node([boolz.markers[1]]);
        g.add_edge(m0, boolz.marker_edges[0], n0);
        g.add_edge(m1, boolz.marker_edges[1], n1);
        assert!(boolz.p.holds(&g));
        assert_eq!(boolz.schema.conforms(&g), Ok(()));
    }

    #[test]
    fn extended_schema_contains_base_conforming_graphs() {
        let (mut v, s, q) = setup();
        let boolz = booleanize(&q, &q, &s, &mut v);
        // Every graph conforming to S conforms to S° (markers optional).
        assert!(s.contains_in(&boolz.schema));
    }

    #[test]
    fn zero_arity_is_identity_on_queries() {
        let mut v = Vocab::new();
        let r = v.edge_label("r");
        let s = Schema::new();
        let q = Uc2rpq::single(C2rpq::new(
            2,
            vec![],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) }],
        ));
        let b = booleanize(&q, &q, &s, &mut v);
        assert_eq!(b.p, q);
        assert!(b.markers.is_empty());
    }
}
