//! Finite containment and finite satisfiability modulo an *arbitrary*
//! Horn-ALCIF TBox — the Section 7 corollary of the paper's pipeline
//! ("Finite containment modulo Horn-ALCIF TBox"): the schema-driven
//! EXPTIME procedure applies verbatim to any Horn-ALCIF TBox at the cost
//! of one exponential (the completion's type universe ranges over label
//! *sets* instead of single schema labels), giving the first 2EXPTIME
//! decision procedure for finite containment of UC2RPQs in acyclic
//! UC2RPQs under description-logic constraints.
//!
//! Differences from the schema-driven entry point [`crate::contains`]:
//!
//! * no relativization `P̂` and no "exactly one label per node" regime —
//!   models are arbitrary labeled graphs satisfying the TBox;
//! * the completion's type universe is seeded with every concept name of
//!   the TBox (instead of `Γ_S`), and the S-driven simplification of
//!   Lemma 5.7 does not apply — the `certified` flag reports honestly
//!   whether the caps sufficed;
//! * queries must be Boolean (the marker construction of Lemma D.1 is
//!   schema-specific; Booleanize against a schema first if needed).

use crate::completion::{complete_with, Completion};
use crate::contains::{call_cache, ContainmentAnswer, ContainmentError, ContainmentOptions};
use crate::rollup::rollup_negation;
use gts_dl::HornTbox;
use gts_graph::Vocab;
use gts_query::{C2rpq, Uc2rpq};
use gts_sat::{decide_cached, Verdict};

/// Decides *finite* containment `P ⊆_T Q` over all finite graphs
/// satisfying the Horn-ALCIF TBox `T`, for Boolean `P` and Boolean acyclic
/// `Q`. See the module docs for the contract.
pub fn contains_finite_modulo_tbox(
    p: &Uc2rpq,
    q: &Uc2rpq,
    tbox: &HornTbox,
    vocab: &mut Vocab,
    opts: &ContainmentOptions,
) -> Result<ContainmentAnswer, ContainmentError> {
    if !p.is_boolean() || !q.is_boolean() {
        return Err(ContainmentError::NotBoolean);
    }
    let cache = call_cache(opts);
    let stats_before = cache.stats();
    let finish = |holds, certified, witness| ContainmentAnswer {
        holds,
        certified,
        witness,
        stats: cache.stats().delta_since(&stats_before),
    };
    let p = Uc2rpq {
        disjuncts: p.disjuncts.iter().filter(|d| !q.disjuncts.contains(d)).cloned().collect(),
    };
    if p.disjuncts.is_empty() {
        return Ok(finish(true, true, None));
    }
    let (choices, _states) = rollup_negation(q, vocab).map_err(ContainmentError::Rollup)?;
    let fresh = (vocab.fresh_node_label("B"), vocab.fresh_node_label("B"));

    // As in the schema pipeline, UNSAT modulo a *partial* completion
    // already implies UNSAT modulo the full one, so "holds" verdicts stay
    // certified when completion caps were hit; only witnesses need the
    // full completion.
    let mut all_certified = true;
    for choice in &choices {
        let t = HornTbox::merged([tbox, choice]);
        let seeds = t.used_labels();
        let Completion { tbox: t_star, complete: completion_ok, .. } = complete_with(
            &t,
            &seeds,
            fresh,
            &opts.budget,
            &opts.completion,
            Some(&cache),
            opts.threads,
        );
        for pd in &p.disjuncts {
            match decide_cached(&t_star, pd, &opts.budget, cache.solver()).0 {
                Verdict::Sat(w) => {
                    return Ok(finish(false, completion_ok, Some(w.core)));
                }
                Verdict::Unsat => {}
                Verdict::Unknown(_) => {
                    all_certified = false;
                }
            }
        }
    }
    Ok(finish(true, all_certified, None))
}

/// Decides *finite* satisfiability of a Boolean C2RPQ modulo a Horn-ALCIF
/// TBox (the query side of Ibáñez-García et al.'s finite-model reasoning):
/// `p` holds in some finite model of `tbox` iff `p` is unrestrictedly
/// satisfiable modulo the completion `tbox*` (Theorem 5.4 + Lemma D.4).
/// Returns `(satisfiable, certified)`.
pub fn finitely_satisfiable_modulo_tbox(
    p: &C2rpq,
    tbox: &HornTbox,
    vocab: &mut Vocab,
    opts: &ContainmentOptions,
) -> Result<(bool, bool), ContainmentError> {
    if !p.is_boolean() {
        return Err(ContainmentError::NotBoolean);
    }
    let cache = call_cache(opts);
    let fresh = (vocab.fresh_node_label("B"), vocab.fresh_node_label("B"));
    let seeds = tbox.used_labels();
    let Completion { tbox: t_star, complete: completion_ok, .. } = complete_with(
        tbox,
        &seeds,
        fresh,
        &opts.budget,
        &opts.completion,
        Some(&cache),
        opts.threads,
    );
    match decide_cached(&t_star, p, &opts.budget, cache.solver()).0 {
        // SAT modulo a partial completion does not yet witness a finite
        // model; UNSAT modulo a partial completion *does* refute one.
        Verdict::Sat(_) => Ok((true, completion_ok)),
        Verdict::Unsat => Ok((false, true)),
        Verdict::Unknown(_) => Ok((false, false)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_dl::HornCi;
    use gts_graph::{EdgeSym, LabelSet, NodeLabel};
    use gts_query::{Atom, Regex, Var};
    use gts_sat::{decide, Budget};

    fn set(labels: &[NodeLabel]) -> LabelSet {
        LabelSet::from_iter(labels.iter().map(|l| l.0))
    }

    /// Example 5.2 phrased directly as a TBox (Example 5.5):
    /// T = {⊤⊑A, A⊑∃s.A, A⊑∃≤1 s⁻.A}. P = ∃x.r(x,x) is finitely
    /// contained in Q = ∃x,y.(r·s⁺·r)(x,y) — only thanks to completion.
    #[test]
    fn example_5_5_direct_tbox_containment() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let s = v.edge_label("s");
        let r = v.edge_label("r");
        let mut t = HornTbox::new();
        t.push(HornCi::SubAtom { lhs: LabelSet::new(), rhs: a });
        t.push(HornCi::Exists { lhs: set(&[a]), role: EdgeSym::fwd(s), rhs: set(&[a]) });
        t.push(HornCi::AtMostOne { lhs: set(&[a]), role: EdgeSym::bwd(s), rhs: set(&[a]) });
        let p = Uc2rpq::single(C2rpq::new(
            1,
            vec![],
            vec![Atom { x: Var(0), y: Var(0), regex: Regex::edge(r) }],
        ));
        let splus = Regex::edge(s).then(Regex::edge(s).star());
        let q = Uc2rpq::single(C2rpq::new(
            2,
            vec![],
            vec![Atom {
                x: Var(0),
                y: Var(1),
                regex: Regex::edge(r).then(splus).then(Regex::edge(r)),
            }],
        ));
        let ans = contains_finite_modulo_tbox(&p, &q, &t, &mut v, &Default::default()).unwrap();
        assert!(ans.holds, "finite containment holds via cycle reversal");
        assert!(ans.certified);

        // Dropping the at-most constraint breaks the finmod cycle: an
        // infinite-tree-free counterexample exists (finite s-cycles feeding
        // extra nodes are allowed), so containment fails.
        let mut t2 = HornTbox::new();
        t2.push(HornCi::SubAtom { lhs: LabelSet::new(), rhs: a });
        t2.push(HornCi::Exists { lhs: set(&[a]), role: EdgeSym::fwd(s), rhs: set(&[a]) });
        let ans2 = contains_finite_modulo_tbox(&p, &q, &t2, &mut v, &Default::default()).unwrap();
        assert!(!ans2.holds);
        assert!(ans2.certified);
    }

    /// A finitely-unsatisfiable but unrestrictedly-satisfiable instance:
    /// A ⊑ ∃s.B, B ⊑ ∃s.B, B ⊑ ∃≤1 s⁻.⊤, A⊓B ⊑ ⊥, query ∃x.A(x).
    /// Every finite candidate must close the B-chain into a cycle, giving
    /// some B-node two s-predecessors.
    #[test]
    fn finite_satisfiability_differs_from_unrestricted() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let b = v.node_label("B");
        let s = v.edge_label("s");
        let mut t = HornTbox::new();
        t.push(HornCi::Exists { lhs: set(&[a]), role: EdgeSym::fwd(s), rhs: set(&[b]) });
        t.push(HornCi::Exists { lhs: set(&[b]), role: EdgeSym::fwd(s), rhs: set(&[b]) });
        t.push(HornCi::AtMostOne { lhs: set(&[b]), role: EdgeSym::bwd(s), rhs: LabelSet::new() });
        t.push(HornCi::Bottom { lhs: set(&[a, b]) });

        let p = C2rpq::new(1, vec![], vec![Atom { x: Var(0), y: Var(0), regex: Regex::node(a) }]);
        // Unrestricted: an infinite s-chain works.
        let verdict = decide(&t, &p, &Budget::default());
        assert!(verdict.is_sat(), "unrestrictedly satisfiable via infinite chain");
        // Finite: unsatisfiable.
        let (sat, cert) =
            finitely_satisfiable_modulo_tbox(&p, &t, &mut v, &Default::default()).unwrap();
        assert!(!sat, "no finite model exists");
        assert!(cert);
        // Sanity: ∃x.B(x) alone (without the A-seed) IS finitely
        // satisfiable — a pure B-cycle.
        let pb = C2rpq::new(1, vec![], vec![Atom { x: Var(0), y: Var(0), regex: Regex::node(b) }]);
        let (sat_b, cert_b) =
            finitely_satisfiable_modulo_tbox(&pb, &t, &mut v, &Default::default()).unwrap();
        assert!(sat_b && cert_b);
    }

    /// Containment with an empty TBox degenerates to plain (finite) query
    /// containment.
    #[test]
    fn empty_tbox_plain_containment() {
        let mut v = Vocab::new();
        let r = v.edge_label("r");
        let s = v.edge_label("s");
        let t = HornTbox::new();
        let p = Uc2rpq::single(C2rpq::new(
            2,
            vec![],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) }],
        ));
        let q_wide = Uc2rpq::single(C2rpq::new(
            2,
            vec![],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r).or(Regex::edge(s)) }],
        ));
        let ans =
            contains_finite_modulo_tbox(&p, &q_wide, &t, &mut v, &Default::default()).unwrap();
        assert!(ans.holds && ans.certified);
        let ans2 =
            contains_finite_modulo_tbox(&q_wide, &p, &t, &mut v, &Default::default()).unwrap();
        assert!(!ans2.holds && ans2.certified);
        assert!(ans2.witness.is_some());
    }

    /// Non-Boolean inputs are rejected with a clear error.
    #[test]
    fn non_boolean_inputs_are_rejected() {
        let mut v = Vocab::new();
        let r = v.edge_label("r");
        let t = HornTbox::new();
        let free = Uc2rpq::single(C2rpq::new(
            2,
            vec![Var(0)],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) }],
        ));
        let err =
            contains_finite_modulo_tbox(&free, &free, &t, &mut v, &Default::default()).unwrap_err();
        assert_eq!(err, ContainmentError::NotBoolean);
    }

    /// TBox constraints can *create* containments: with A ⊑ ∃r.A, the
    /// query ∃x.A(x) is finitely contained in ∃x,y.(r·r)(x,y).
    #[test]
    fn tbox_existentials_entail_longer_paths() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let r = v.edge_label("r");
        let mut t = HornTbox::new();
        t.push(HornCi::Exists { lhs: set(&[a]), role: EdgeSym::fwd(r), rhs: set(&[a]) });
        let p = Uc2rpq::single(C2rpq::new(
            1,
            vec![],
            vec![Atom { x: Var(0), y: Var(0), regex: Regex::node(a) }],
        ));
        let q = Uc2rpq::single(C2rpq::new(
            2,
            vec![],
            vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r).then(Regex::edge(r)) }],
        ));
        let ans = contains_finite_modulo_tbox(&p, &q, &t, &mut v, &Default::default()).unwrap();
        assert!(ans.holds && ans.certified);
        // Without the TBox it fails.
        let ans2 =
            contains_finite_modulo_tbox(&p, &q, &HornTbox::new(), &mut v, &Default::default())
                .unwrap();
        assert!(!ans2.holds && ans2.certified);
    }
}
