//! The per-session oracle cache: persistent solver state plus memoized
//! TBox completions.
//!
//! One [`OracleCache`] accompanies a source schema for the lifetime of an
//! analysis session (or, when the caller passes none, the duration of a
//! single `contains` call — even one call asks many satisfiability
//! questions over few TBoxes). It bundles:
//!
//! * a [`SolverCache`] — per-TBox type universes, saturation fixpoints,
//!   and realizability memos shared by every `decide` of the pipeline
//!   (top-level satisfiability *and* the completion's entailment sweep);
//! * a completion memo — `complete` is a deterministic function of its
//!   inputs, and the negation choices of one containment question (and
//!   repeated questions in a session) regularly complete identical
//!   TBoxes.

use crate::completion::{Completion, CompletionConfig};
use gts_dl::{HornCi, HornTbox};
use gts_graph::{FxHashMap, LabelSet, NodeLabel};
use gts_sat::{Budget, OracleStats, SolverCache};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cumulative statistics of an [`OracleCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleCacheStats {
    /// Solver-level counters (decides, per-TBox context reuse, core
    /// search, realizability memos).
    pub solver: OracleStats,
    /// Completions answered from the memo.
    pub completion_hits: u64,
    /// Completions computed.
    pub completion_misses: u64,
}

impl OracleCacheStats {
    /// The work recorded between `earlier` and `self`.
    pub fn delta_since(&self, earlier: &OracleCacheStats) -> OracleCacheStats {
        OracleCacheStats {
            solver: self.solver.delta_since(&earlier.solver),
            completion_hits: self.completion_hits - earlier.completion_hits,
            completion_misses: self.completion_misses - earlier.completion_misses,
        }
    }

    /// Folds another snapshot's counters into this one.
    pub fn absorb(&mut self, other: &OracleCacheStats) {
        self.solver.absorb(&other.solver);
        self.completion_hits += other.completion_hits;
        self.completion_misses += other.completion_misses;
    }
}

#[derive(PartialEq, Eq)]
struct CompletionKey {
    cis: Vec<HornCi>,
    schema_labels: LabelSet,
    fresh: (NodeLabel, NodeLabel),
    budget: [usize; 6],
    caps: [usize; 2],
}

impl CompletionKey {
    fn new(
        tbox: &HornTbox,
        schema_labels: &LabelSet,
        fresh: (NodeLabel, NodeLabel),
        budget: &Budget,
        cfg: &CompletionConfig,
    ) -> (u64, CompletionKey) {
        let mut cis = tbox.cis.clone();
        cis.sort_unstable();
        cis.dedup();
        let key = CompletionKey {
            cis,
            schema_labels: schema_labels.clone(),
            fresh,
            budget: budget.cache_key(),
            caps: [cfg.max_nodes, cfg.max_rounds],
        };
        (key.fingerprint(), key)
    }

    /// In-process bucket fingerprint (recomputed on import — never
    /// persisted, so the hasher needs no cross-process stability).
    fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.cis.hash(&mut h);
        self.schema_labels.hash(&mut h);
        (self.fresh.0 .0, self.fresh.1 .0).hash(&mut h);
        self.budget.hash(&mut h);
        self.caps.hash(&mut h);
        h.finish()
    }
}

/// The global-registry `(hit, miss)` counters for the completion memo.
fn completion_cache_obs() -> &'static (gts_obs::Counter, gts_obs::Counter) {
    static CELLS: std::sync::OnceLock<(gts_obs::Counter, gts_obs::Counter)> =
        std::sync::OnceLock::new();
    CELLS.get_or_init(|| {
        let reg = gts_obs::global();
        let name = "gts_containment_completion_cache_total";
        let help = "Completion-memo lookups by outcome";
        (
            reg.counter(name, help, &[("outcome", "hit")]),
            reg.counter(name, help, &[("outcome", "miss")]),
        )
    })
}

/// The latency histogram for freshly computed completions (memo misses).
fn completion_obs_hist() -> &'static gts_obs::Histogram {
    static CELL: std::sync::OnceLock<gts_obs::Histogram> = std::sync::OnceLock::new();
    CELL.get_or_init(|| {
        gts_obs::global().histogram(
            "gts_containment_completion_micros",
            "Latency of TBox completion computations (memo misses)",
            &[],
        )
    })
}

/// Shared, thread-safe cache for the containment pipeline. See the module
/// docs for what it holds.
#[derive(Default)]
pub struct OracleCache {
    solver: SolverCache,
    completions: Mutex<FxHashMap<u64, Vec<(CompletionKey, Completion)>>>,
    completion_hits: AtomicU64,
    completion_misses: AtomicU64,
}

impl std::fmt::Debug for OracleCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("OracleCache")
            .field("solver_entries", &stats.solver.entries)
            .field("completion_hits", &stats.completion_hits)
            .field("completion_misses", &stats.completion_misses)
            .finish()
    }
}

impl OracleCache {
    /// An empty cache.
    pub fn new() -> Self {
        OracleCache::default()
    }

    /// The solver-state cache shared by every engine call of the pipeline.
    pub fn solver(&self) -> &SolverCache {
        &self.solver
    }

    /// Cumulative counters.
    pub fn stats(&self) -> OracleCacheStats {
        OracleCacheStats {
            solver: self.solver.oracle_stats(),
            completion_hits: self.completion_hits.load(Ordering::Relaxed),
            completion_misses: self.completion_misses.load(Ordering::Relaxed),
        }
    }

    /// Returns the memoized completion for these exact inputs, or computes
    /// it with `f` and stores it.
    pub(crate) fn completion_or_insert(
        &self,
        tbox: &HornTbox,
        schema_labels: &LabelSet,
        fresh: (NodeLabel, NodeLabel),
        budget: &Budget,
        cfg: &CompletionConfig,
        f: impl FnOnce() -> Completion,
    ) -> Completion {
        let (fp, key) = CompletionKey::new(tbox, schema_labels, fresh, budget, cfg);
        {
            let memo = self.completions.lock().unwrap();
            if let Some(bucket) = memo.get(&fp) {
                if let Some((_, c)) = bucket.iter().find(|(k, _)| *k == key) {
                    self.completion_hits.fetch_add(1, Ordering::Relaxed);
                    completion_cache_obs().0.inc();
                    return c.clone();
                }
            }
        }
        self.completion_misses.fetch_add(1, Ordering::Relaxed);
        completion_cache_obs().1.inc();
        // Not held across `f`: concurrent workers may race on the same
        // key, but `complete` is deterministic, so the duplicate insert is
        // idempotent.
        let c = {
            let _span = gts_obs::span("completion");
            let start = gts_obs::enabled().then(std::time::Instant::now);
            let c = f();
            if let Some(t0) = start {
                completion_obs_hist().record(t0.elapsed().as_micros() as u64);
            }
            c
        };
        let mut memo = self.completions.lock().unwrap();
        let bucket = memo.entry(fp).or_default();
        if !bucket.iter().any(|(k, _)| *k == key) {
            bucket.push((key, c.clone()));
        }
        c
    }

    /// Serializes every memoized completion as a self-contained payload
    /// (full key material + result), importable on any process via
    /// [`OracleCache::import_completions`].
    pub fn export_completions(&self) -> Vec<Vec<u8>> {
        use gts_sat::portable::{enc_horn_ci, enc_label_set};
        let memo = self.completions.lock().unwrap();
        let mut out = Vec::new();
        for (key, c) in memo.values().flatten() {
            let mut e = gts_store::Enc::new();
            e.usize(key.cis.len());
            for ci in &key.cis {
                enc_horn_ci(&mut e, ci);
            }
            enc_label_set(&mut e, &key.schema_labels);
            e.u32(key.fresh.0 .0);
            e.u32(key.fresh.1 .0);
            for v in key.budget {
                e.usize(v);
            }
            for v in key.caps {
                e.usize(v);
            }
            // The completed TBox keeps its CI *order* — downstream decide
            // calls enumerate it, so replay must be bit-identical.
            e.usize(c.tbox.cis.len());
            for ci in &c.tbox.cis {
                enc_horn_ci(&mut e, ci);
            }
            e.usize(c.added);
            e.u8(c.complete as u8);
            out.push(e.finish());
        }
        out
    }

    /// Replays payloads from [`OracleCache::export_completions`]. Each
    /// payload carries its full key, so no external identity check is
    /// needed; malformed payloads are skipped (cold path), and locally
    /// computed completions are never overridden. Returns the number of
    /// entries installed.
    pub fn import_completions<'a>(&self, payloads: impl IntoIterator<Item = &'a [u8]>) -> usize {
        use gts_sat::portable::{dec_horn_ci, dec_label_set};
        let mut installed = 0;
        for payload in payloads {
            let decoded = (|| {
                let mut d = gts_store::Dec::new(payload);
                let n = d.usize()?;
                let mut cis = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    cis.push(dec_horn_ci(&mut d)?);
                }
                let schema_labels = dec_label_set(&mut d)?;
                let fresh = (NodeLabel(d.u32()?), NodeLabel(d.u32()?));
                let mut budget = [0usize; 6];
                for v in &mut budget {
                    *v = d.usize()?;
                }
                let mut caps = [0usize; 2];
                for v in &mut caps {
                    *v = d.usize()?;
                }
                let n = d.usize()?;
                let mut tbox = HornTbox::new();
                tbox.cis.reserve(n.min(1 << 16));
                for _ in 0..n {
                    // Straight into the CI list: the payload was encoded
                    // from a (set-like) `HornTbox` in enumeration order,
                    // so it carries no duplicates, and `push`'s O(n)
                    // dedup scan would make replay quadratic per tbox.
                    tbox.cis.push(dec_horn_ci(&mut d)?);
                }
                let added = d.usize()?;
                let complete = match d.u8()? {
                    0 => false,
                    1 => true,
                    _ => return None,
                };
                if !d.done() {
                    return None;
                }
                let key = CompletionKey { cis, schema_labels, fresh, budget, caps };
                Some((key, Completion { tbox, added, complete }))
            })();
            let Some((key, completion)) = decoded else { continue };
            let fp = key.fingerprint();
            let mut memo = self.completions.lock().unwrap();
            let bucket = memo.entry(fp).or_default();
            if !bucket.iter().any(|(k, _)| *k == key) {
                bucket.push((key, completion));
                installed += 1;
            }
        }
        installed
    }

    /// Number of memoized completions currently held.
    pub fn completions_len(&self) -> usize {
        self.completions.lock().unwrap().values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_memo_hits_on_exact_repeats() {
        let cache = OracleCache::new();
        let t = HornTbox::new();
        let labels = LabelSet::singleton(0);
        let fresh = (NodeLabel(7), NodeLabel(8));
        let budget = Budget::default();
        let cfg = CompletionConfig::default();
        let mut computed = 0;
        for _ in 0..3 {
            cache.completion_or_insert(&t, &labels, fresh, &budget, &cfg, || {
                computed += 1;
                Completion { tbox: t.clone(), added: 0, complete: true }
            });
        }
        assert_eq!(computed, 1);
        let stats = cache.stats();
        assert_eq!((stats.completion_hits, stats.completion_misses), (2, 1));
        // A different fresh pair is a different key.
        cache.completion_or_insert(
            &t,
            &labels,
            (NodeLabel(9), NodeLabel(10)),
            &budget,
            &cfg,
            || Completion { tbox: t.clone(), added: 0, complete: true },
        );
        assert_eq!(cache.stats().completion_misses, 2);
    }

    #[test]
    fn completions_roundtrip_through_portable_payloads() {
        let cache = OracleCache::new();
        let mut t = HornTbox::new();
        t.push(HornCi::Bottom { lhs: LabelSet::from_iter([0, 1]) });
        let labels = LabelSet::from_iter([0, 1, 2]);
        let budget = Budget::default();
        let cfg = CompletionConfig::default();
        let mut completed = t.clone();
        completed.push(HornCi::SubAtom { lhs: LabelSet::singleton(2), rhs: NodeLabel(0) });
        cache.completion_or_insert(
            &t,
            &labels,
            (NodeLabel(7), NodeLabel(8)),
            &budget,
            &cfg,
            || Completion { tbox: completed.clone(), added: 1, complete: true },
        );

        let payloads = cache.export_completions();
        assert_eq!(payloads.len(), 1);
        let fresh_cache = OracleCache::new();
        assert_eq!(fresh_cache.import_completions(payloads.iter().map(Vec::as_slice)), 1);
        // The imported entry is a hit: the closure must never run.
        let c = fresh_cache.completion_or_insert(
            &t,
            &labels,
            (NodeLabel(7), NodeLabel(8)),
            &budget,
            &cfg,
            || panic!("imported completion must be a memo hit"),
        );
        assert_eq!(c.tbox.cis, completed.cis);
        assert_eq!((c.added, c.complete), (1, true));
        assert_eq!(fresh_cache.stats().completion_hits, 1);
        // A truncated payload is skipped, never half-imported.
        let empty = OracleCache::new();
        let cut = &payloads[0][..payloads[0].len() - 2];
        assert_eq!(empty.import_completions([cut]), 0);
        assert_eq!(empty.completions_len(), 0);
    }
}
