//! The per-session oracle cache: persistent solver state plus memoized
//! TBox completions.
//!
//! One [`OracleCache`] accompanies a source schema for the lifetime of an
//! analysis session (or, when the caller passes none, the duration of a
//! single `contains` call — even one call asks many satisfiability
//! questions over few TBoxes). It bundles:
//!
//! * a [`SolverCache`] — per-TBox type universes, saturation fixpoints,
//!   and realizability memos shared by every `decide` of the pipeline
//!   (top-level satisfiability *and* the completion's entailment sweep);
//! * a completion memo — `complete` is a deterministic function of its
//!   inputs, and the negation choices of one containment question (and
//!   repeated questions in a session) regularly complete identical
//!   TBoxes.

use crate::completion::{Completion, CompletionConfig};
use gts_dl::{HornCi, HornTbox};
use gts_graph::{FxHashMap, LabelSet, NodeLabel};
use gts_sat::{Budget, OracleStats, SolverCache};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cumulative statistics of an [`OracleCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleCacheStats {
    /// Solver-level counters (decides, per-TBox context reuse, core
    /// search, realizability memos).
    pub solver: OracleStats,
    /// Completions answered from the memo.
    pub completion_hits: u64,
    /// Completions computed.
    pub completion_misses: u64,
}

impl OracleCacheStats {
    /// The work recorded between `earlier` and `self`.
    pub fn delta_since(&self, earlier: &OracleCacheStats) -> OracleCacheStats {
        OracleCacheStats {
            solver: self.solver.delta_since(&earlier.solver),
            completion_hits: self.completion_hits - earlier.completion_hits,
            completion_misses: self.completion_misses - earlier.completion_misses,
        }
    }

    /// Folds another snapshot's counters into this one.
    pub fn absorb(&mut self, other: &OracleCacheStats) {
        self.solver.absorb(&other.solver);
        self.completion_hits += other.completion_hits;
        self.completion_misses += other.completion_misses;
    }
}

#[derive(PartialEq, Eq)]
struct CompletionKey {
    cis: Vec<HornCi>,
    schema_labels: LabelSet,
    fresh: (NodeLabel, NodeLabel),
    budget: [usize; 6],
    caps: [usize; 2],
}

impl CompletionKey {
    fn new(
        tbox: &HornTbox,
        schema_labels: &LabelSet,
        fresh: (NodeLabel, NodeLabel),
        budget: &Budget,
        cfg: &CompletionConfig,
    ) -> (u64, CompletionKey) {
        let mut cis = tbox.cis.clone();
        cis.sort_unstable();
        cis.dedup();
        let key = CompletionKey {
            cis,
            schema_labels: schema_labels.clone(),
            fresh,
            budget: budget.cache_key(),
            caps: [cfg.max_nodes, cfg.max_rounds],
        };
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.cis.hash(&mut h);
        key.schema_labels.hash(&mut h);
        (key.fresh.0 .0, key.fresh.1 .0).hash(&mut h);
        key.budget.hash(&mut h);
        key.caps.hash(&mut h);
        (h.finish(), key)
    }
}

/// Shared, thread-safe cache for the containment pipeline. See the module
/// docs for what it holds.
#[derive(Default)]
pub struct OracleCache {
    solver: SolverCache,
    completions: Mutex<FxHashMap<u64, Vec<(CompletionKey, Completion)>>>,
    completion_hits: AtomicU64,
    completion_misses: AtomicU64,
}

impl std::fmt::Debug for OracleCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("OracleCache")
            .field("solver_entries", &stats.solver.entries)
            .field("completion_hits", &stats.completion_hits)
            .field("completion_misses", &stats.completion_misses)
            .finish()
    }
}

impl OracleCache {
    /// An empty cache.
    pub fn new() -> Self {
        OracleCache::default()
    }

    /// The solver-state cache shared by every engine call of the pipeline.
    pub fn solver(&self) -> &SolverCache {
        &self.solver
    }

    /// Cumulative counters.
    pub fn stats(&self) -> OracleCacheStats {
        OracleCacheStats {
            solver: self.solver.oracle_stats(),
            completion_hits: self.completion_hits.load(Ordering::Relaxed),
            completion_misses: self.completion_misses.load(Ordering::Relaxed),
        }
    }

    /// Returns the memoized completion for these exact inputs, or computes
    /// it with `f` and stores it.
    pub(crate) fn completion_or_insert(
        &self,
        tbox: &HornTbox,
        schema_labels: &LabelSet,
        fresh: (NodeLabel, NodeLabel),
        budget: &Budget,
        cfg: &CompletionConfig,
        f: impl FnOnce() -> Completion,
    ) -> Completion {
        let (fp, key) = CompletionKey::new(tbox, schema_labels, fresh, budget, cfg);
        {
            let memo = self.completions.lock().unwrap();
            if let Some(bucket) = memo.get(&fp) {
                if let Some((_, c)) = bucket.iter().find(|(k, _)| *k == key) {
                    self.completion_hits.fetch_add(1, Ordering::Relaxed);
                    return c.clone();
                }
            }
        }
        self.completion_misses.fetch_add(1, Ordering::Relaxed);
        // Not held across `f`: concurrent workers may race on the same
        // key, but `complete` is deterministic, so the duplicate insert is
        // idempotent.
        let c = f();
        let mut memo = self.completions.lock().unwrap();
        let bucket = memo.entry(fp).or_default();
        if !bucket.iter().any(|(k, _)| *k == key) {
            bucket.push((key, c.clone()));
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_memo_hits_on_exact_repeats() {
        let cache = OracleCache::new();
        let t = HornTbox::new();
        let labels = LabelSet::singleton(0);
        let fresh = (NodeLabel(7), NodeLabel(8));
        let budget = Budget::default();
        let cfg = CompletionConfig::default();
        let mut computed = 0;
        for _ in 0..3 {
            cache.completion_or_insert(&t, &labels, fresh, &budget, &cfg, || {
                computed += 1;
                Completion { tbox: t.clone(), added: 0, complete: true }
            });
        }
        assert_eq!(computed, 1);
        let stats = cache.stats();
        assert_eq!((stats.completion_hits, stats.completion_misses), (2, 1));
        // A different fresh pair is a different key.
        cache.completion_or_insert(
            &t,
            &labels,
            (NodeLabel(9), NodeLabel(10)),
            &budget,
            &cfg,
            || Completion { tbox: t.clone(), added: 0, complete: true },
        );
        assert_eq!(cache.stats().completion_misses, 2);
    }
}
