//! The relativization `P → P̂` of Theorem 5.6.
//!
//! The Horn TBox `T̂_S` can force *at most* one schema label per node but
//! not *at least* one (that inclusion `⊤ ⊑ ⊔Γ_S` is not Horn). The paper
//! compensates on the query side: every edge symbol of `P` is wrapped as
//! `(A1+…+An) · R · (A1+…+An)`, so that witnessing paths only traverse
//! properly labeled nodes, and every label outside `Γ_S ∪ Σ±_S` is replaced
//! by `∅`.

use gts_graph::NodeLabel;
use gts_query::{Atom, AtomSym, C2rpq, Regex, Uc2rpq};
use gts_schema::Schema;

/// Relativizes one regular expression to the schema's labels.
pub fn hat_regex(re: &Regex, schema: &Schema) -> Regex {
    let gamma: Vec<NodeLabel> = schema.node_labels().to_vec();
    re.map_syms(&|sym| match sym {
        AtomSym::Node(a) => {
            if schema.has_node_label(a) {
                Regex::node(a)
            } else {
                Regex::Empty
            }
        }
        AtomSym::Edge(r) => {
            if !schema.has_edge_label(r.label) {
                return Regex::Empty;
            }
            // Only label pairs the schema allows can guard the step: a pair
            // with δ(A,R,B) = 0 is forbidden by T̂_S anyway (∄-CIs), so
            // dropping it is semantics-preserving modulo the schema and
            // frequently collapses starred sub-expressions to finite
            // languages (e.g. crossReacting* under a schema without
            // crossReacting).
            Regex::alt_all(gamma.iter().flat_map(|&a| {
                gamma.iter().filter_map(move |&b| {
                    use gts_schema::Mult;
                    if schema.mult(a, r, b) != Mult::Zero
                        && schema.mult(b, r.inv(), a) != Mult::Zero
                    {
                        Some(Regex::node(a).then(Regex::sym(r)).then(Regex::node(b)))
                    } else {
                        None
                    }
                })
            }))
        }
    })
}

/// Relativizes a Boolean C2RPQ (every atom's regex).
pub fn hat_query(q: &C2rpq, schema: &Schema) -> C2rpq {
    C2rpq::new(
        q.num_vars,
        q.free.clone(),
        q.atoms
            .iter()
            .map(|a| Atom { x: a.x, y: a.y, regex: hat_regex(&a.regex, schema) })
            .collect(),
    )
}

/// Relativizes every disjunct of a Boolean UC2RPQ.
pub fn hat_union(u: &Uc2rpq, schema: &Schema) -> Uc2rpq {
    Uc2rpq { disjuncts: u.disjuncts.iter().map(|d| hat_query(d, schema)).collect() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_graph::{Graph, Vocab};
    use gts_query::Var;
    use gts_schema::Mult;

    #[test]
    fn edges_get_label_guards() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let b = v.node_label("B");
        let r = v.edge_label("r");
        let mut s = Schema::new();
        s.set_edge(a, r, b, Mult::Star, Mult::Star);
        let re = Regex::edge(r);
        let hat = hat_regex(&re, &s);
        // The guarded expression requires labeled endpoints.
        let word_ok =
            vec![AtomSym::Node(a), AtomSym::Edge(gts_graph::EdgeSym::fwd(r)), AtomSym::Node(b)];
        assert!(hat.matches(&word_ok));
        assert!(!hat.matches(&[AtomSym::Edge(gts_graph::EdgeSym::fwd(r))]));
    }

    #[test]
    fn foreign_labels_become_empty() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let r = v.edge_label("r");
        let foreign = v.edge_label("foreign");
        let mut s = Schema::new();
        s.set_edge(a, r, a, Mult::Star, Mult::Star);
        let re = Regex::edge(foreign).or(Regex::edge(r));
        let hat = hat_regex(&re, &s);
        // The `foreign` branch is dead; only the guarded `r` survives.
        let word =
            vec![AtomSym::Node(a), AtomSym::Edge(gts_graph::EdgeSym::fwd(r)), AtomSym::Node(a)];
        assert!(hat.matches(&word));
        assert!(!hat.matches(&[AtomSym::Edge(gts_graph::EdgeSym::fwd(foreign))]));
    }

    #[test]
    fn hat_preserves_semantics_on_conforming_graphs() {
        // On a graph where every node carries exactly one schema label,
        // P and P̂ agree (Lemma D.3's easy direction).
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let b = v.node_label("B");
        let r = v.edge_label("r");
        let mut s = Schema::new();
        s.set_edge(a, r, b, Mult::Star, Mult::Star);
        let q = C2rpq::new(2, vec![], vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) }]);
        let hat = hat_query(&q, &s);
        let mut g = Graph::new();
        let n0 = g.add_labeled_node([a]);
        let n1 = g.add_labeled_node([b]);
        g.add_edge(n0, r, n1);
        assert!(q.holds(&g));
        assert!(hat.holds(&g));
        // On a graph with an unlabeled endpoint, P̂ fails while P holds.
        let mut g2 = Graph::new();
        let m0 = g2.add_labeled_node([a]);
        let m1 = g2.add_node();
        g2.add_edge(m0, r, m1);
        assert!(q.holds(&g2));
        assert!(!hat.holds(&g2));
    }
}
