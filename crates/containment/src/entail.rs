//! Unrestricted entailment of Horn-ALCIF concept inclusions via query
//! unsatisfiability (Corollary E.7).
//!
//! `T ⊨ K ⊑ ∃R.K'` iff `∃x.(K·B)(x,x)` is unsatisfiable modulo
//! `T ∪ {K' ⊑ ∀R⁻.B', B⊓B' ⊑ ⊥}`; similarly for at-most constraints. The
//! encodings only use node tests and single edge steps, so their regular
//! languages are finite and the satisfiability engine's verdicts are
//! certified — which is what makes the completion computation reliable.
//!
//! A sound syntactic fast path answers most positive instances without an
//! engine call.

use gts_dl::{HornCi, HornTbox};
use gts_graph::{EdgeSym, LabelSet, NodeLabel};
use gts_query::{Atom, C2rpq, Regex, Var};
use gts_sat::{decide, Budget, UnknownReason, Verdict};

/// Entailment oracle over a fixed TBox. The two `fresh` labels must not
/// occur in the TBox (mint them from the vocabulary once).
pub struct EntailCtx<'t> {
    tbox: &'t HornTbox,
    fresh_b: NodeLabel,
    fresh_b2: NodeLabel,
    budget: Budget,
}

impl<'t> EntailCtx<'t> {
    /// Creates the oracle; `fresh` are two concept names unused in `tbox`.
    pub fn new(tbox: &'t HornTbox, fresh: (NodeLabel, NodeLabel), budget: Budget) -> Self {
        EntailCtx { tbox, fresh_b: fresh.0, fresh_b2: fresh.1, budget }
    }

    fn node_tests(set: &LabelSet) -> Regex {
        Regex::concat_all(set.iter().map(|l| Regex::node(NodeLabel(l))))
    }

    /// `T ⊨ K ⊑ ∃R.K'` (unrestricted models).
    pub fn entails_exists(
        &self,
        k: &LabelSet,
        role: EdgeSym,
        kp: &LabelSet,
    ) -> Result<bool, UnknownReason> {
        // Syntactic fast path: some ∃-CI fires on clo(K) and its target,
        // enriched by ∀-propagation, covers K'.
        if let Some(clo_k) = self.tbox.closure(k) {
            let push = self.tbox.propagate(&clo_k, role);
            for ci in &self.tbox.cis {
                if let HornCi::Exists { lhs, role: r, rhs } = ci {
                    if *r == role && lhs.is_subset(&clo_k) {
                        if let Some(target) = self.tbox.closure(&rhs.union(&push)) {
                            if kp.is_subset(&target) {
                                return Ok(true);
                            }
                        } else {
                            // The forced successor is inconsistent: K is
                            // unsatisfiable, so the CI holds vacuously.
                            return Ok(true);
                        }
                    }
                }
            }
        } else {
            return Ok(true); // K ⊑ ⊥, entails everything
        }
        // Fast false: without any ∃-CI on this role, a tree model of clo(K)
        // omitting the successor exists; if clo(K) is only *semantically*
        // unsatisfiable the resulting missed H_T edge is harmless (every
        // finmod cycle through an unsatisfiable type reverses vacuously —
        // see the completion module docs).
        if !self
            .tbox
            .cis
            .iter()
            .any(|ci| matches!(ci, HornCi::Exists { role: r, .. } if *r == role))
        {
            return Ok(false);
        }
        // Exact check via Corollary E.7.
        let mut t = self.tbox.clone();
        t.push(HornCi::AllValues {
            lhs: kp.clone(),
            role: role.inv(),
            rhs: LabelSet::singleton(self.fresh_b2.0),
        });
        t.push(HornCi::Bottom { lhs: LabelSet::from_iter([self.fresh_b.0, self.fresh_b2.0]) });
        let mut tests = k.clone();
        tests.insert(self.fresh_b.0);
        let q = C2rpq::new(
            1,
            vec![],
            vec![Atom { x: Var(0), y: Var(0), regex: Self::node_tests(&tests) }],
        );
        match decide(&t, &q, &self.budget) {
            Verdict::Unsat => Ok(true),
            Verdict::Sat(_) => Ok(false),
            Verdict::Unknown(r) => Err(r),
        }
    }

    /// `T ⊨ K ⊑ ∃≤1 R.K'` (unrestricted models).
    pub fn entails_at_most_one(
        &self,
        k: &LabelSet,
        role: EdgeSym,
        kp: &LabelSet,
    ) -> Result<bool, UnknownReason> {
        // Syntactic fast path: an at-most CI firing on clo(K) whose counted
        // set is covered by the (propagation-enriched) successor type.
        if let Some(clo_k) = self.tbox.closure(k) {
            let push = self.tbox.propagate(&clo_k, role);
            let enriched = match self.tbox.closure(&kp.union(&push)) {
                Some(e) => e,
                None => return Ok(true), // no K'-successor can even exist
            };
            for ci in &self.tbox.cis {
                if let HornCi::AtMostOne { lhs, role: r, rhs } = ci {
                    if *r == role && lhs.is_subset(&clo_k) && rhs.is_subset(&enriched) {
                        return Ok(true);
                    }
                }
            }
        } else {
            return Ok(true);
        }
        // Fast false: with no at-most constraint on this role and no
        // ∄-constraint touching it (in either direction), a model with two
        // distinct K'-successors exists whenever one does (duplicate the
        // witness subtree); the semantically-unsatisfiable case is harmless
        // as above.
        let touches = |ci: &HornCi| match ci {
            HornCi::AtMostOne { role: r, .. } => *r == role,
            HornCi::NotExists { role: r, .. } => *r == role || *r == role.inv(),
            _ => false,
        };
        if !self.tbox.cis.iter().any(touches) {
            return Ok(false);
        }
        // Exact check via Corollary E.7: two R-steps into K'-nodes marked
        // B and B' respectively, with B⊓B' ⊑ ⊥.
        let mut t = self.tbox.clone();
        t.push(HornCi::Bottom { lhs: LabelSet::from_iter([self.fresh_b.0, self.fresh_b2.0]) });
        let step = |marker: NodeLabel| {
            let mut tgt = kp.clone();
            tgt.insert(marker.0);
            Regex::sym(role).then(Self::node_tests(&tgt))
        };
        let q = C2rpq::new(
            3,
            vec![],
            vec![
                Atom { x: Var(0), y: Var(0), regex: Self::node_tests(k) },
                Atom { x: Var(0), y: Var(1), regex: step(self.fresh_b) },
                Atom { x: Var(0), y: Var(2), regex: step(self.fresh_b2) },
            ],
        );
        match decide(&t, &q, &self.budget) {
            Verdict::Unsat => Ok(true),
            Verdict::Sat(_) => Ok(false),
            Verdict::Unknown(r) => Err(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_graph::{EdgeLabel, Vocab};

    fn fresh(v: &mut Vocab) -> (NodeLabel, NodeLabel) {
        (v.fresh_node_label("B"), v.fresh_node_label("B"))
    }
    fn set(labels: &[u32]) -> LabelSet {
        LabelSet::from_iter(labels.iter().copied())
    }
    fn sym(i: u32) -> EdgeSym {
        EdgeSym::fwd(EdgeLabel(i))
    }

    #[test]
    fn direct_ci_is_entailed() {
        let mut v = Vocab::new();
        let _ = v.node_label("A");
        let _ = v.node_label("B");
        let mut t = HornTbox::new();
        t.push(HornCi::Exists { lhs: set(&[0]), role: sym(0), rhs: set(&[1]) });
        let ctx = EntailCtx::new(&t, fresh(&mut v), Budget::default());
        assert!(ctx.entails_exists(&set(&[0]), sym(0), &set(&[1])).unwrap());
        // Weakening the target keeps entailment.
        assert!(ctx.entails_exists(&set(&[0]), sym(0), &LabelSet::new()).unwrap());
        // Strengthening the premise keeps entailment.
        assert!(ctx.entails_exists(&set(&[0, 1]), sym(0), &set(&[1])).unwrap());
        // A stronger target is not entailed.
        assert!(!ctx.entails_exists(&set(&[0]), sym(0), &set(&[0, 1])).unwrap());
        // Nothing about other roles.
        assert!(!ctx.entails_exists(&set(&[0]), sym(1), &set(&[1])).unwrap());
    }

    #[test]
    fn entailment_through_propagation() {
        // A ⊑ ∃r.B and A ⊑ ∀r.C entail A ⊑ ∃r.(B⊓C).
        let mut v = Vocab::new();
        for n in ["A", "B", "C"] {
            v.node_label(n);
        }
        let mut t = HornTbox::new();
        t.push(HornCi::Exists { lhs: set(&[0]), role: sym(0), rhs: set(&[1]) });
        t.push(HornCi::AllValues { lhs: set(&[0]), role: sym(0), rhs: set(&[2]) });
        let ctx = EntailCtx::new(&t, fresh(&mut v), Budget::default());
        assert!(ctx.entails_exists(&set(&[0]), sym(0), &set(&[1, 2])).unwrap());
    }

    #[test]
    fn unsatisfiable_premise_entails_vacuously() {
        let mut v = Vocab::new();
        let _ = v.node_label("A");
        let mut t = HornTbox::new();
        t.push(HornCi::Bottom { lhs: set(&[0]) });
        let ctx = EntailCtx::new(&t, fresh(&mut v), Budget::default());
        assert!(ctx.entails_exists(&set(&[0]), sym(0), &set(&[5])).unwrap());
        assert!(ctx.entails_at_most_one(&set(&[0]), sym(0), &set(&[5])).unwrap());
    }

    #[test]
    fn at_most_direct_and_weakened() {
        let mut v = Vocab::new();
        for n in ["A", "B"] {
            v.node_label(n);
        }
        let mut t = HornTbox::new();
        t.push(HornCi::AtMostOne { lhs: set(&[0]), role: sym(0), rhs: set(&[1]) });
        let ctx = EntailCtx::new(&t, fresh(&mut v), Budget::default());
        assert!(ctx.entails_at_most_one(&set(&[0]), sym(0), &set(&[1])).unwrap());
        // Counting a *larger* conjunction (fewer successors) stays ≤ 1.
        assert!(ctx.entails_at_most_one(&set(&[0]), sym(0), &set(&[1, 0])).unwrap());
        // Counting a smaller conjunction (more successors) is not entailed.
        assert!(!ctx.entails_at_most_one(&set(&[0]), sym(0), &LabelSet::new()).unwrap());
        // Unconstrained premise is not entailed.
        assert!(!ctx.entails_at_most_one(&set(&[1]), sym(0), &set(&[1])).unwrap());
    }

    #[test]
    fn semantic_entailment_beyond_fast_path() {
        // ∄r.⊤ entails ∃≤1 r.K' for any K' — only the engine sees this.
        let mut v = Vocab::new();
        let _ = v.node_label("A");
        let mut t = HornTbox::new();
        t.push(HornCi::NotExists { lhs: set(&[0]), role: sym(0), rhs: LabelSet::new() });
        let ctx = EntailCtx::new(&t, fresh(&mut v), Budget::default());
        assert!(ctx.entails_at_most_one(&set(&[0]), sym(0), &LabelSet::new()).unwrap());
    }
}
