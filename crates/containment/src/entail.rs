//! Unrestricted entailment of Horn-ALCIF concept inclusions via query
//! unsatisfiability (Corollary E.7).
//!
//! `T ⊨ K ⊑ ∃R.K'` iff `∃x.(K·B)(x,x)` is unsatisfiable modulo
//! `T ∪ {K' ⊑ ∀R⁻.B', B⊓B' ⊑ ⊥}`; similarly for at-most constraints. The
//! encodings only use node tests and single edge steps, so their regular
//! languages are finite and the satisfiability engine's verdicts are
//! certified — which is what makes the completion computation reliable.
//!
//! A sound syntactic fast path answers most positive instances without an
//! engine call. The completion sweep asks `|types|² × |roles|` questions
//! per round, so the context is aggressively indexed and memoized:
//!
//! * CIs are grouped by kind and role once, so fast paths scan only the
//!   relevant rules instead of the whole TBox;
//! * `closure`/`propagate` results are memoized (the sweep revisits the
//!   same `K` for every `(R, K')` pair);
//! * the extended TBoxes of the engine encodings depend only on `(R, K')`
//!   (existentials) or on nothing (at-most), so they are built once and
//!   shared — which is exactly what lets a [`SolverCache`] reuse one
//!   solver context across the sweep's engine calls.

use gts_dl::{HornCi, HornTbox};
use gts_graph::{EdgeSym, FxHashMap, LabelSet, NodeLabel};
use gts_query::{Atom, C2rpq, Regex, Var};
use gts_sat::{decide, decide_on, Budget, SolverCache, SolverHandle, UnknownReason, Verdict};
use std::cell::RefCell;
use std::collections::HashSet;
use std::sync::Arc;

/// Entailment oracle over a fixed TBox. The two `fresh` labels must not
/// occur in the TBox (mint them from the vocabulary once).
pub struct EntailCtx<'t> {
    tbox: &'t HornTbox,
    fresh_b: NodeLabel,
    fresh_b2: NodeLabel,
    budget: Budget,
    cache: Option<&'t SolverCache>,
    /// `(lhs, rhs)` of `Exists` CIs, grouped by role.
    exists_by_role: FxHashMap<EdgeSym, Vec<(LabelSet, LabelSet)>>,
    /// `(lhs, rhs)` of `AtMostOne` CIs, grouped by role.
    amo_by_role: FxHashMap<EdgeSym, Vec<(LabelSet, LabelSet)>>,
    /// Roles touched by some `∄`-CI (in either orientation).
    notexists_roles: HashSet<EdgeSym>,
    closure_memo: RefCell<FxHashMap<LabelSet, Option<LabelSet>>>,
    propagate_memo: RefCell<FxHashMap<(LabelSet, EdgeSym), LabelSet>>,
    exists_tbox_memo: RefCell<FxHashMap<(EdgeSym, LabelSet), ExtendedTbox>>,
    amo_tbox_memo: RefCell<Option<ExtendedTbox>>,
    /// Engine verdicts per `(role, K')`, split by sign. Entailment is
    /// monotone in `K` (a stronger premise keeps every positive verdict,
    /// a weaker one keeps every negative), so a probe is answered without
    /// the engine when a recorded positive `K₀ ⊆ K` or negative `K₀ ⊇ K`
    /// exists.
    exists_verdicts: RefCell<FxHashMap<LabelSet, Vec<(EdgeSym, VerdictLists)>>>,
    amo_verdicts: RefCell<FxHashMap<LabelSet, Vec<(EdgeSym, VerdictLists)>>>,
    /// Per-`(K, role)` syntactic fast-path state for `entails_exists`: the
    /// closed targets of the applicable `∃`-CIs do not depend on `K'`, so
    /// the sweep's inner loop over `K'` reduces to subset tests. Keyed by
    /// `K` first so probes hash one set and never clone.
    exists_fast_memo: RefCell<FxHashMap<LabelSet, Vec<(EdgeSym, ExistsFast)>>>,
    /// Memoizing type universe over the base TBox: the fast paths reason
    /// over *saturated* types (labels forced in every model), which both
    /// certifies more positives and licenses the per-`(K, role)`
    /// no-successor fast-false.
    universe: RefCell<gts_sat::TypeUniverse>,
}

/// Hoisted fast-path state of `entails_exists` for one `(K, role)`.
#[derive(Clone)]
pub(crate) enum ExistsFast {
    /// `K` is unsatisfiable (inconsistent closure or dead saturation) —
    /// every CI is entailed.
    KInconsistent,
    /// The *saturated* type of `K` triggers no `∃`-CI on this role: its
    /// canonical tree model has no such successor, so the entailment fails
    /// for every consistent `K'` (for an only-semantically-unsatisfiable
    /// `K` the missed H_T edge is harmless — see the completion docs; this
    /// is the same contract as the role-level fast-false below).
    NoSuccessor,
    /// Applicable rules and their saturated, propagation-enriched targets;
    /// `vacuous` when some forced successor is inconsistent (again: every
    /// target is entailed).
    Targets {
        /// Some forced successor is inconsistent.
        vacuous: bool,
        /// Saturated targets of the applicable rules (maximal only).
        targets: Arc<Vec<LabelSet>>,
    },
}

impl ExistsFast {
    /// `Some(v)` when the fast path decides `K ⊑ ∃R.K'` for this `K'`
    /// without the engine; `None` sends the probe to the engine.
    pub(crate) fn decisive(&self, kp: &LabelSet) -> Option<bool> {
        match self {
            ExistsFast::KInconsistent => Some(true),
            ExistsFast::NoSuccessor => Some(false),
            ExistsFast::Targets { vacuous, targets } => {
                if *vacuous || targets.iter().any(|t| kp.is_subset(t)) {
                    Some(true)
                } else {
                    None
                }
            }
        }
    }
}

/// One engine-encoding TBox with its pre-resolved solver handle, built
/// once per `(role, K')` (existentials) or once per sweep (at-most).
#[derive(Clone)]
struct ExtendedTbox {
    tbox: Arc<HornTbox>,
    handle: Option<SolverHandle>,
}

#[derive(Default)]
struct VerdictLists {
    positive: Vec<LabelSet>,
    negative: Vec<LabelSet>,
}

impl VerdictLists {
    fn lookup(&self, k: &LabelSet) -> Option<bool> {
        if self.positive.iter().any(|p| p.is_subset(k)) {
            return Some(true);
        }
        if self.negative.iter().any(|n| k.is_subset(n)) {
            return Some(false);
        }
        None
    }

    fn record(&mut self, k: &LabelSet, verdict: bool) {
        // Keep only the frontier: minimal positives and maximal negatives
        // answer every premise a subsumed entry would.
        if verdict {
            self.positive.retain(|p| !k.is_subset(p));
            self.positive.push(k.clone());
        } else {
            self.negative.retain(|n| !n.is_subset(k));
            self.negative.push(k.clone());
        }
    }
}

impl<'t> EntailCtx<'t> {
    /// Creates the oracle; `fresh` are two concept names unused in `tbox`.
    pub fn new(tbox: &'t HornTbox, fresh: (NodeLabel, NodeLabel), budget: Budget) -> Self {
        let mut exists_by_role: FxHashMap<EdgeSym, Vec<(LabelSet, LabelSet)>> =
            FxHashMap::default();
        let mut amo_by_role: FxHashMap<EdgeSym, Vec<(LabelSet, LabelSet)>> = FxHashMap::default();
        let mut notexists_roles: HashSet<EdgeSym> = HashSet::new();
        for ci in &tbox.cis {
            match ci {
                HornCi::Exists { lhs, role, rhs } => {
                    exists_by_role.entry(*role).or_default().push((lhs.clone(), rhs.clone()));
                }
                HornCi::AtMostOne { lhs, role, rhs } => {
                    amo_by_role.entry(*role).or_default().push((lhs.clone(), rhs.clone()));
                }
                HornCi::NotExists { role, .. } => {
                    notexists_roles.insert(*role);
                    notexists_roles.insert(role.inv());
                }
                _ => {}
            }
        }
        EntailCtx {
            tbox,
            fresh_b: fresh.0,
            fresh_b2: fresh.1,
            budget,
            cache: None,
            exists_by_role,
            amo_by_role,
            notexists_roles,
            closure_memo: RefCell::new(FxHashMap::default()),
            propagate_memo: RefCell::new(FxHashMap::default()),
            exists_tbox_memo: RefCell::new(FxHashMap::default()),
            amo_tbox_memo: RefCell::new(None),
            exists_verdicts: RefCell::new(FxHashMap::default()),
            amo_verdicts: RefCell::new(FxHashMap::default()),
            exists_fast_memo: RefCell::new(FxHashMap::default()),
            universe: RefCell::new(gts_sat::TypeUniverse::new(tbox)),
        }
    }

    /// `true` iff some `∃`-CI uses `role` — without one, `entails_exists`
    /// is false for every consistent premise (the sweep uses this to skip
    /// whole roles).
    pub fn has_exists_on(&self, role: EdgeSym) -> bool {
        self.exists_by_role.contains_key(&role)
    }

    /// Routes the engine calls of this context through a persistent
    /// [`SolverCache`].
    pub fn with_cache(mut self, cache: &'t SolverCache) -> Self {
        self.cache = Some(cache);
        self
    }

    fn node_tests(set: &LabelSet) -> Regex {
        Regex::concat_all(set.iter().map(|l| Regex::node(NodeLabel(l))))
    }

    fn closure(&self, set: &LabelSet) -> Option<LabelSet> {
        if let Some(c) = self.closure_memo.borrow().get(set) {
            return c.clone();
        }
        let c = self.tbox.closure(set);
        self.closure_memo.borrow_mut().insert(set.clone(), c.clone());
        c
    }

    fn propagate(&self, set: &LabelSet, role: EdgeSym) -> LabelSet {
        let key = (set.clone(), role);
        if let Some(p) = self.propagate_memo.borrow().get(&key) {
            return p.clone();
        }
        let p = self.tbox.propagate(set, role);
        self.propagate_memo.borrow_mut().insert(key, p.clone());
        p
    }

    fn extend(&self, build: impl FnOnce() -> HornTbox) -> ExtendedTbox {
        let tbox = Arc::new(build());
        let handle = self.cache.map(|c| c.handle(&tbox, &self.budget));
        ExtendedTbox { tbox, handle }
    }

    fn decide(&self, t: &ExtendedTbox, q: &C2rpq) -> Result<bool, UnknownReason> {
        let _span = gts_obs::span("entailment_probe");
        let start = gts_obs::enabled().then(std::time::Instant::now);
        let verdict = match (&t.handle, self.cache) {
            (Some(handle), Some(cache)) => decide_on(handle, &t.tbox, q, &self.budget, cache).0,
            _ => decide(&t.tbox, q, &self.budget),
        };
        if let Some(t0) = start {
            static HIST: std::sync::OnceLock<gts_obs::Histogram> = std::sync::OnceLock::new();
            HIST.get_or_init(|| {
                gts_obs::global().histogram(
                    "gts_containment_probe_micros",
                    "Latency of completion entailment probes",
                    &[],
                )
            })
            .record(t0.elapsed().as_micros() as u64);
        }
        match verdict {
            Verdict::Unsat => Ok(true),
            Verdict::Sat(_) => Ok(false),
            Verdict::Unknown(r) => Err(r),
        }
    }

    /// The hoisted `(K, role)` fast-path state (memoized).
    pub(crate) fn exists_fast(&self, k: &LabelSet, role: EdgeSym) -> ExistsFast {
        if let Some(rows) = self.exists_fast_memo.borrow().get(k) {
            if let Some((_, f)) = rows.iter().find(|(r, _)| *r == role) {
                return f.clone();
            }
        }
        let mut u = self.universe.borrow_mut();
        let fast = match u.close(k).and_then(|tid| u.saturate(tid)) {
            // Inconsistent closure or dead saturation: K is unsatisfiable
            // in every model, so it entails everything.
            None => ExistsFast::KInconsistent,
            Some(sat) => {
                // Every model's K-node carries at least the saturated
                // labels, so reasoning over them is sound and strictly
                // stronger than over clo(K).
                let sat_labels = u.labels(sat).clone();
                let mut vacuous = false;
                let mut targets = Vec::new();
                if let Some(cis) = self.exists_by_role.get(&role) {
                    let push = (*u.propagate_set(&sat_labels, role)).clone();
                    for (lhs, rhs) in cis {
                        if lhs.is_subset(&sat_labels) {
                            match u.close(&rhs.union(&push)).and_then(|t| u.saturate(t)) {
                                // The forced successor's saturated type:
                                // any actual witness carries at least
                                // these labels.
                                Some(ct) => targets.push(u.labels(ct).clone()),
                                // The forced successor is inconsistent: K
                                // is unsatisfiable, so every CI holds
                                // vacuously.
                                None => vacuous = true,
                            }
                        }
                    }
                }
                if targets.is_empty() && !vacuous {
                    ExistsFast::NoSuccessor
                } else {
                    // Only maximal targets matter for coverage tests.
                    let all = std::mem::take(&mut targets);
                    for t in &all {
                        if !all.iter().any(|o| o != t && t.is_subset(o)) && !targets.contains(t) {
                            targets.push(t.clone());
                        }
                    }
                    ExistsFast::Targets { vacuous, targets: Arc::new(targets) }
                }
            }
        };
        drop(u);
        self.exists_fast_memo.borrow_mut().entry(k.clone()).or_default().push((role, fast.clone()));
        fast
    }

    /// `T ⊨ K ⊑ ∃R.K'` (unrestricted models).
    pub fn entails_exists(
        &self,
        k: &LabelSet,
        role: EdgeSym,
        kp: &LabelSet,
    ) -> Result<bool, UnknownReason> {
        // Syntactic fast path over saturated types: some ∃-CI fires on
        // the saturated K and its saturated target covers K', or no ∃-CI
        // fires at all. The per-(K, role) state is hoisted, so each probe
        // is a handful of subset tests.
        if let Some(v) = self.exists_fast(k, role).decisive(kp) {
            return Ok(v);
        }
        self.entails_exists_after_fast(k, role, kp)
    }

    /// [`EntailCtx::entails_exists`] for callers that already ran the
    /// hoisted fast path (the completion sweep prefetches it per
    /// `(K, role)`).
    pub(crate) fn entails_exists_after_fast(
        &self,
        k: &LabelSet,
        role: EdgeSym,
        kp: &LabelSet,
    ) -> Result<bool, UnknownReason> {
        // Fast false: without any ∃-CI on this role, a tree model of clo(K)
        // omitting the successor exists; if clo(K) is only *semantically*
        // unsatisfiable the resulting missed H_T edge is harmless (every
        // finmod cycle through an unsatisfiable type reverses vacuously —
        // see the completion module docs).
        if !self.has_exists_on(role) {
            return Ok(false);
        }
        // Monotonicity shortcut before the engine: replay a recorded
        // verdict for a weaker/stronger premise over the same (role, K').
        if let Some(rows) = self.exists_verdicts.borrow().get(kp) {
            if let Some(v) = rows.iter().find(|(r, _)| *r == role).and_then(|(_, l)| l.lookup(k)) {
                return Ok(v);
            }
        }
        // Exact check via Corollary E.7. The extended TBox depends only on
        // (role, K'), so it is built (and its solver handle resolved) once
        // per sweep — one solver context serves every K probed here.
        let t = {
            let key = (role, kp.clone());
            let mut memo = self.exists_tbox_memo.borrow_mut();
            memo.entry(key)
                .or_insert_with(|| {
                    self.extend(|| {
                        let mut t = self.tbox.clone();
                        t.push(HornCi::AllValues {
                            lhs: kp.clone(),
                            role: role.inv(),
                            rhs: LabelSet::singleton(self.fresh_b2.0),
                        });
                        t.push(HornCi::Bottom {
                            lhs: LabelSet::from_iter([self.fresh_b.0, self.fresh_b2.0]),
                        });
                        t
                    })
                })
                .clone()
        };
        let mut tests = k.clone();
        tests.insert(self.fresh_b.0);
        let q = C2rpq::new(
            1,
            vec![],
            vec![Atom { x: Var(0), y: Var(0), regex: Self::node_tests(&tests) }],
        );
        let v = self.decide(&t, &q)?;
        let mut memo = self.exists_verdicts.borrow_mut();
        let rows = memo.entry(kp.clone()).or_default();
        match rows.iter_mut().find(|(r, _)| *r == role) {
            Some((_, l)) => l.record(k, v),
            None => {
                let mut l = VerdictLists::default();
                l.record(k, v);
                rows.push((role, l));
            }
        }
        Ok(v)
    }

    /// `T ⊨ K ⊑ ∃≤1 R.K'` (unrestricted models).
    pub fn entails_at_most_one(
        &self,
        k: &LabelSet,
        role: EdgeSym,
        kp: &LabelSet,
    ) -> Result<bool, UnknownReason> {
        // Syntactic fast path: an at-most CI firing on clo(K) whose counted
        // set is covered by the (propagation-enriched) successor type.
        let amo_on_role = self.amo_by_role.get(&role);
        if let Some(clo_k) = self.closure(k) {
            if let Some(cis) = amo_on_role {
                let push = self.propagate(&clo_k, role);
                let enriched = match self.closure(&kp.union(&push)) {
                    Some(e) => e,
                    None => return Ok(true), // no K'-successor can even exist
                };
                for (lhs, rhs) in cis {
                    if lhs.is_subset(&clo_k) && rhs.is_subset(&enriched) {
                        return Ok(true);
                    }
                }
            } else if self.closure(&kp.union(&self.propagate(&clo_k, role))).is_none() {
                return Ok(true); // no K'-successor can even exist
            }
        } else {
            return Ok(true);
        }
        // Fast false: with no at-most constraint on this role and no
        // ∄-constraint touching it (in either direction), a model with two
        // distinct K'-successors exists whenever one does (duplicate the
        // witness subtree); the semantically-unsatisfiable case is harmless
        // as above.
        if amo_on_role.is_none() && !self.notexists_roles.contains(&role) {
            return Ok(false);
        }
        // Monotonicity shortcut before the engine (see `entails_exists`).
        if let Some(rows) = self.amo_verdicts.borrow().get(kp) {
            if let Some(v) = rows.iter().find(|(r, _)| *r == role).and_then(|(_, l)| l.lookup(k)) {
                return Ok(v);
            }
        }
        // Exact check via Corollary E.7: two R-steps into K'-nodes marked
        // B and B' respectively, with B⊓B' ⊑ ⊥. The extended TBox is the
        // same for every (K, R, K') — one solver context serves the sweep.
        let t = {
            let mut memo = self.amo_tbox_memo.borrow_mut();
            memo.get_or_insert_with(|| {
                self.extend(|| {
                    let mut t = self.tbox.clone();
                    t.push(HornCi::Bottom {
                        lhs: LabelSet::from_iter([self.fresh_b.0, self.fresh_b2.0]),
                    });
                    t
                })
            })
            .clone()
        };
        let step = |marker: NodeLabel| {
            let mut tgt = kp.clone();
            tgt.insert(marker.0);
            Regex::sym(role).then(Self::node_tests(&tgt))
        };
        let q = C2rpq::new(
            3,
            vec![],
            vec![
                Atom { x: Var(0), y: Var(0), regex: Self::node_tests(k) },
                Atom { x: Var(0), y: Var(1), regex: step(self.fresh_b) },
                Atom { x: Var(0), y: Var(2), regex: step(self.fresh_b2) },
            ],
        );
        let v = self.decide(&t, &q)?;
        let mut memo = self.amo_verdicts.borrow_mut();
        let rows = memo.entry(kp.clone()).or_default();
        match rows.iter_mut().find(|(r, _)| *r == role) {
            Some((_, l)) => l.record(k, v),
            None => {
                let mut l = VerdictLists::default();
                l.record(k, v);
                rows.push((role, l));
            }
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_graph::{EdgeLabel, Vocab};

    fn fresh(v: &mut Vocab) -> (NodeLabel, NodeLabel) {
        (v.fresh_node_label("B"), v.fresh_node_label("B"))
    }
    fn set(labels: &[u32]) -> LabelSet {
        LabelSet::from_iter(labels.iter().copied())
    }
    fn sym(i: u32) -> EdgeSym {
        EdgeSym::fwd(EdgeLabel(i))
    }

    #[test]
    fn direct_ci_is_entailed() {
        let mut v = Vocab::new();
        let _ = v.node_label("A");
        let _ = v.node_label("B");
        let mut t = HornTbox::new();
        t.push(HornCi::Exists { lhs: set(&[0]), role: sym(0), rhs: set(&[1]) });
        let ctx = EntailCtx::new(&t, fresh(&mut v), Budget::default());
        assert!(ctx.entails_exists(&set(&[0]), sym(0), &set(&[1])).unwrap());
        // Weakening the target keeps entailment.
        assert!(ctx.entails_exists(&set(&[0]), sym(0), &LabelSet::new()).unwrap());
        // Strengthening the premise keeps entailment.
        assert!(ctx.entails_exists(&set(&[0, 1]), sym(0), &set(&[1])).unwrap());
        // A stronger target is not entailed.
        assert!(!ctx.entails_exists(&set(&[0]), sym(0), &set(&[0, 1])).unwrap());
        // Nothing about other roles.
        assert!(!ctx.entails_exists(&set(&[0]), sym(1), &set(&[1])).unwrap());
    }

    #[test]
    fn entailment_through_propagation() {
        // A ⊑ ∃r.B and A ⊑ ∀r.C entail A ⊑ ∃r.(B⊓C).
        let mut v = Vocab::new();
        for n in ["A", "B", "C"] {
            v.node_label(n);
        }
        let mut t = HornTbox::new();
        t.push(HornCi::Exists { lhs: set(&[0]), role: sym(0), rhs: set(&[1]) });
        t.push(HornCi::AllValues { lhs: set(&[0]), role: sym(0), rhs: set(&[2]) });
        let ctx = EntailCtx::new(&t, fresh(&mut v), Budget::default());
        assert!(ctx.entails_exists(&set(&[0]), sym(0), &set(&[1, 2])).unwrap());
    }

    #[test]
    fn unsatisfiable_premise_entails_vacuously() {
        let mut v = Vocab::new();
        let _ = v.node_label("A");
        let mut t = HornTbox::new();
        t.push(HornCi::Bottom { lhs: set(&[0]) });
        let ctx = EntailCtx::new(&t, fresh(&mut v), Budget::default());
        assert!(ctx.entails_exists(&set(&[0]), sym(0), &set(&[5])).unwrap());
        assert!(ctx.entails_at_most_one(&set(&[0]), sym(0), &set(&[5])).unwrap());
    }

    #[test]
    fn at_most_direct_and_weakened() {
        let mut v = Vocab::new();
        for n in ["A", "B"] {
            v.node_label(n);
        }
        let mut t = HornTbox::new();
        t.push(HornCi::AtMostOne { lhs: set(&[0]), role: sym(0), rhs: set(&[1]) });
        let ctx = EntailCtx::new(&t, fresh(&mut v), Budget::default());
        assert!(ctx.entails_at_most_one(&set(&[0]), sym(0), &set(&[1])).unwrap());
        // Counting a *larger* conjunction (fewer successors) stays ≤ 1.
        assert!(ctx.entails_at_most_one(&set(&[0]), sym(0), &set(&[1, 0])).unwrap());
        // Counting a smaller conjunction (more successors) is not entailed.
        assert!(!ctx.entails_at_most_one(&set(&[0]), sym(0), &LabelSet::new()).unwrap());
        // Unconstrained premise is not entailed.
        assert!(!ctx.entails_at_most_one(&set(&[1]), sym(0), &set(&[1])).unwrap());
    }

    #[test]
    fn semantic_entailment_beyond_fast_path() {
        // ∄r.⊤ entails ∃≤1 r.K' for any K' — only the engine sees this.
        let mut v = Vocab::new();
        let _ = v.node_label("A");
        let mut t = HornTbox::new();
        t.push(HornCi::NotExists { lhs: set(&[0]), role: sym(0), rhs: LabelSet::new() });
        let ctx = EntailCtx::new(&t, fresh(&mut v), Budget::default());
        assert!(ctx.entails_at_most_one(&set(&[0]), sym(0), &LabelSet::new()).unwrap());
    }

    #[test]
    fn cached_entailment_matches_uncached() {
        let mut v = Vocab::new();
        for n in ["A", "B"] {
            v.node_label(n);
        }
        let mut t = HornTbox::new();
        t.push(HornCi::Exists { lhs: set(&[0]), role: sym(0), rhs: set(&[1]) });
        t.push(HornCi::NotExists { lhs: set(&[1]), role: sym(0), rhs: LabelSet::new() });
        let f = fresh(&mut v);
        let cache = SolverCache::new();
        let plain = EntailCtx::new(&t, f, Budget::default());
        let cached = EntailCtx::new(&t, f, Budget::default()).with_cache(&cache);
        for k in [set(&[0]), set(&[1]), LabelSet::new()] {
            for role in [sym(0), sym(0).inv(), sym(1)] {
                for kp in [set(&[0]), set(&[1]), LabelSet::new()] {
                    assert_eq!(
                        plain.entails_exists(&k, role, &kp).ok(),
                        cached.entails_exists(&k, role, &kp).ok()
                    );
                    assert_eq!(
                        plain.entails_at_most_one(&k, role, &kp).ok(),
                        cached.entails_at_most_one(&k, role, &kp).ok()
                    );
                }
            }
        }
    }
}
