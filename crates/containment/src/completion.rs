//! Completion of a Horn TBox by exhaustive finmod-cycle reversal
//! (Theorem 5.4 [Ibáñez-García et al. 2014], Lemmas D.6/D.7, Lemma 5.7).
//!
//! A *finmod cycle* is a sequence `K1, R1, …, K(n-1), R(n-1), Kn = K1`
//! with `T ⊨ Ki ⊑ ∃Ri.K(i+1)` and `T ⊨ K(i+1) ⊑ ∃≤1 Ri⁻.Ki`; in finite
//! models such a cycle of successors must close up, so the reversed
//! inclusions `K(i+1) ⊑ ∃Ri⁻.Ki` and `Ki ⊑ ∃≤1 Ri.K(i+1)` hold in every
//! finite model. The completion `T*` adds them exhaustively, after which
//! finite satisfiability modulo `T` coincides with unrestricted
//! satisfiability modulo `T*` — the bridge that lets the engine reason
//! over (possibly infinite) sparse models.
//!
//! Lemma D.7 ranges over *all* conjunctions of concept names; we instead
//! maintain a forward-closed universe of *reachable* types (seeded with the
//! schema labels, closed under requirement children and edge enrichment),
//! which is where the finmod cycles of the S-driven TBoxes of this
//! pipeline live (Lemma D.6). The `complete` flag of the result reports
//! whether any cap was hit; callers must downgrade certification when it
//! is false.
//!
//! The `|types|² × |roles|` entailment sweep of each round is the dominant
//! cost of a *cold* containment analysis. [`complete_with`] therefore (a)
//! routes every engine call through the caller's [`OracleCache`] so all
//! probes over one extended TBox share a solver context, and (b) can fan
//! the sweep out over worker threads (chunked by pair index, merged in
//! order, so the result matches the sequential sweep whenever the engine
//! budgets don't bind — warm solver contexts can resolve budget-*bound*
//! verdicts a cold context would report `Unknown`, see
//! `gts_sat::SolverCache`).

use crate::cache::OracleCache;
use crate::entail::EntailCtx;
use gts_dl::{HornCi, HornTbox};
use gts_graph::{EdgeSym, FxHashMap, FxHashSet, LabelSet, NodeLabel};
use gts_sat::Budget;

/// Configuration caps for the completion computation.
#[derive(Clone, Debug)]
pub struct CompletionConfig {
    /// Maximum number of node types in the cycle-search graph.
    pub max_nodes: usize,
    /// Maximum number of reversal rounds.
    pub max_rounds: usize,
}

impl Default for CompletionConfig {
    fn default() -> Self {
        CompletionConfig { max_nodes: 512, max_rounds: 256 }
    }
}

/// Result of [`complete`].
#[derive(Clone, Debug)]
pub struct Completion {
    /// The completed TBox `T*` (⊇ the input TBox).
    pub tbox: HornTbox,
    /// Number of concept inclusions added by reversals.
    pub added: usize,
    /// `false` if a cap or an engine budget was hit — `T*` may then be
    /// missing reversals and answers derived from it are uncertified.
    pub complete: bool,
}

/// Computes the completion `T*` of `tbox`. `schema_labels` seeds the type
/// universe (Γ_S of the S-driven pipeline); `fresh` are two concept names
/// unused in the TBox (for the entailment encodings of Corollary E.7).
pub fn complete(
    tbox: &HornTbox,
    schema_labels: &LabelSet,
    fresh: (NodeLabel, NodeLabel),
    budget: &Budget,
    cfg: &CompletionConfig,
) -> Completion {
    complete_with(tbox, schema_labels, fresh, budget, cfg, None, 1)
}

/// [`complete`] with a shared [`OracleCache`] (solver contexts + the
/// completion memo) and a worker-thread count for the entailment sweep
/// (`0` = available parallelism, `1` = sequential).
pub fn complete_with(
    tbox: &HornTbox,
    schema_labels: &LabelSet,
    fresh: (NodeLabel, NodeLabel),
    budget: &Budget,
    cfg: &CompletionConfig,
    cache: Option<&OracleCache>,
    threads: usize,
) -> Completion {
    match cache {
        Some(c) => c.completion_or_insert(tbox, schema_labels, fresh, budget, cfg, || {
            complete_inner(tbox, schema_labels, fresh, budget, cfg, cache, threads)
        }),
        None => complete_inner(tbox, schema_labels, fresh, budget, cfg, None, threads),
    }
}

fn complete_inner(
    tbox: &HornTbox,
    schema_labels: &LabelSet,
    fresh: (NodeLabel, NodeLabel),
    budget: &Budget,
    cfg: &CompletionConfig,
    cache: Option<&OracleCache>,
    threads: usize,
) -> Completion {
    let mut t = tbox.clone();
    let mut added = 0usize;
    let mut complete = true;
    // H_T edges certified in earlier rounds, by label sets. Rounds only
    // add CIs and entailment is monotone in the TBox, so positive edges
    // carry forward and need no re-probing.
    let mut known_edges: FxHashSet<(LabelSet, EdgeSym, LabelSet)> = FxHashSet::default();

    for _round in 0..cfg.max_rounds {
        let (nodes, universe_complete) = type_universe(&t, schema_labels, cfg.max_nodes);
        complete &= universe_complete;

        // Edge relation of the cycle-search graph H_T.
        let roles = t.used_roles();
        let (edges, sweep_complete) =
            entail_sweep(&t, &nodes, &roles, fresh, budget, cache, threads, &known_edges);
        complete &= sweep_complete;
        for &(i, role, j) in &edges {
            known_edges.insert((nodes[i].clone(), role, nodes[j].clone()));
        }

        // Find a finmod cycle missing its reversal.
        let edge_set: FxHashSet<(usize, EdgeSym, usize)> = edges.iter().copied().collect();
        let mut new_cis: Vec<HornCi> = Vec::new();
        'scan: for &(i, role, j) in &edges {
            if edge_set.contains(&(j, role.inv(), i)) {
                continue; // already reversible
            }
            // Path j ⇝ i through H_T (empty path allowed when i == j).
            if let Some(path) = find_path(&edges, nodes.len(), j, i) {
                let mut cycle: Vec<(usize, EdgeSym, usize)> = vec![(i, role, j)];
                cycle.extend(path);
                for (a, r, b) in cycle {
                    let rev = HornCi::Exists {
                        lhs: nodes[b].clone(),
                        role: r.inv(),
                        rhs: nodes[a].clone(),
                    };
                    let cap =
                        HornCi::AtMostOne { lhs: nodes[a].clone(), role: r, rhs: nodes[b].clone() };
                    for ci in [rev, cap] {
                        if !t.cis.contains(&ci) {
                            new_cis.push(ci);
                        }
                    }
                }
                if !new_cis.is_empty() {
                    break 'scan;
                }
            }
        }

        if new_cis.is_empty() {
            return Completion { tbox: t, added, complete };
        }
        for ci in new_cis {
            if t.push(ci) {
                added += 1;
            }
        }
    }
    Completion { tbox: t, added, complete: false }
}

/// Evaluates every `(i, role, j)` pair of the cycle-search graph, in pair
/// order; parallel workers take contiguous chunks and results are merged
/// by index, so the output never depends on the thread count.
#[allow(clippy::too_many_arguments)]
fn entail_sweep(
    t: &HornTbox,
    nodes: &[LabelSet],
    roles: &[EdgeSym],
    fresh: (NodeLabel, NodeLabel),
    budget: &Budget,
    cache: Option<&OracleCache>,
    threads: usize,
    known_edges: &FxHashSet<(LabelSet, EdgeSym, LabelSet)>,
) -> (Vec<(usize, EdgeSym, usize)>, bool) {
    let mk_ctx = || {
        let ctx = EntailCtx::new(t, fresh, budget.clone());
        match cache {
            Some(c) => ctx.with_cache(c.solver()),
            None => ctx,
        }
    };
    // Roles with no ∃-CI can never carry an H_T edge: `entails_exists` is
    // false for every consistent premise, and the universe's types are all
    // consistent closures. Skip them wholesale.
    let roles: Vec<EdgeSym> = roles
        .iter()
        .copied()
        .filter(|&r| t.cis.iter().any(|ci| matches!(ci, HornCi::Exists { role, .. } if *role == r)))
        .collect();
    // Probe order: for each (role, K') group, premises K by *decreasing*
    // size — entailment is monotone in K, so an engine-certified negative
    // for a large K answers every subset premise from the context's
    // verdict memo without another engine call. The emitted edge list is
    // restored to the canonical (i, role, j) order below, so the probe
    // order never leaks into the completion's cycle scan.
    let mut by_size: Vec<usize> = (0..nodes.len()).collect();
    by_size.sort_by_key(|&i| std::cmp::Reverse(nodes[i].len()));
    let pairs: Vec<(usize, usize, usize)> = (0..roles.len())
        .flat_map(|ri| {
            let by_size = &by_size;
            (0..nodes.len()).flat_map(move |j| by_size.iter().map(move |&i| (i, ri, j)))
        })
        .collect();
    // Map the carried-over edges to current node indices once (label sets
    // shift indices between rounds), so per-pair checks are index lookups.
    let known_idx: FxHashSet<(usize, EdgeSym, usize)> = if known_edges.is_empty() {
        FxHashSet::default()
    } else {
        let node_idx: FxHashMap<&LabelSet, usize> =
            nodes.iter().enumerate().map(|(i, s)| (s, i)).collect();
        known_edges
            .iter()
            .filter_map(|(a, r, b)| Some((*node_idx.get(a)?, *r, *node_idx.get(b)?)))
            .collect()
    };
    let workers = resolve_threads(threads, pairs.len());
    let mut complete = true;
    let mut edges = Vec::new();
    let probe_chunk = |chunk_pairs: &[(usize, usize, usize)]| -> Vec<(bool, bool)> {
        let ctx = mk_ctx();
        // Prefetch the per-(K, role) fast-path state once per role the
        // chunk actually touches, so the inner per-pair check is a few
        // subset tests with no hashing — and parallel workers don't each
        // recompute the whole matrix.
        let mut fast: Vec<Option<Vec<crate::entail::ExistsFast>>> = vec![None; roles.len()];
        for &(_, ri, _) in chunk_pairs {
            if fast[ri].is_none() {
                fast[ri] = Some(nodes.iter().map(|k| ctx.exists_fast(k, roles[ri])).collect());
            }
        }
        chunk_pairs
            .iter()
            .map(|&(i, ri, j)| {
                let role = roles[ri];
                if known_idx.contains(&(i, role, j)) {
                    return (true, true);
                }
                let Some(fast_row) = &fast[ri] else { unreachable!("prefetched above") };
                let fwd = match fast_row[i].decisive(&nodes[j]) {
                    Some(v) => v,
                    None => match ctx.entails_exists_after_fast(&nodes[i], role, &nodes[j]) {
                        Ok(b) => b,
                        Err(_) => return (false, false),
                    },
                };
                if !fwd {
                    return (false, true);
                }
                match ctx.entails_at_most_one(&nodes[j], role.inv(), &nodes[i]) {
                    Ok(b) => (b, true),
                    Err(_) => (false, false),
                }
            })
            .collect()
    };
    let results: Vec<Vec<(bool, bool)>> = if workers <= 1 {
        vec![probe_chunk(&pairs)]
    } else {
        // Contiguous chunks keep the per-worker memos effective (adjacent
        // pairs share their (role, K') group).
        let chunk = pairs.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = pairs
                .chunks(chunk)
                .map(|chunk_pairs| scope.spawn(|| probe_chunk(chunk_pairs)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("entailment worker panicked")).collect()
        })
    };
    for (&(i, ri, j), (is_edge, certified)) in pairs.iter().zip(results.into_iter().flatten()) {
        complete &= certified;
        if is_edge {
            edges.push((i, ri, j));
        }
    }
    // Canonical order: i, then the role's position in the (filtered) role
    // list, then j — the order the straightforward nested loop would use.
    edges.sort_unstable();
    (edges.into_iter().map(|(i, ri, j)| (i, roles[ri], j)).collect(), complete)
}

/// Resolves a thread-count option against the work size: `0` picks the
/// available parallelism (capped at 8); the result never exceeds the work
/// item count and parallelism is skipped entirely below a minimum batch.
fn resolve_threads(threads: usize, work_items: usize) -> usize {
    const MIN_PAIRS_PER_WORKER: usize = 64;
    let t = match threads {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8),
        t => t,
    };
    t.clamp(1, (work_items / MIN_PAIRS_PER_WORKER).max(1))
}

/// The forward-closed type universe: closures of schema-label singletons,
/// closed under requirement children and edge enrichment. All rule
/// applications run against a memoizing `TypeUniverse` over `t` (the
/// construction re-closes and re-propagates the same sets many times).
fn type_universe(t: &HornTbox, schema_labels: &LabelSet, cap: usize) -> (Vec<LabelSet>, bool) {
    let mut u = gts_sat::TypeUniverse::new(t);
    let mut seen: FxHashMap<LabelSet, ()> = FxHashMap::default();
    let mut nodes: Vec<LabelSet> = Vec::new();
    let push = |set: Option<gts_sat::TypeId>,
                u: &gts_sat::TypeUniverse,
                nodes: &mut Vec<LabelSet>,
                seen: &mut FxHashMap<LabelSet, ()>| {
        if let Some(tid) = set {
            let s = u.labels(tid);
            if !seen.contains_key(s) {
                seen.insert(s.clone(), ());
                nodes.push(s.clone());
            }
        }
    };
    let top = u.close(&LabelSet::new());
    push(top, &u, &mut nodes, &mut seen);
    for l in schema_labels.iter() {
        let c = u.close(&LabelSet::singleton(l));
        push(c, &u, &mut nodes, &mut seen);
    }
    // Also seed with lhs/rhs of existential and at-most CIs.
    for ci in &t.cis {
        if let HornCi::Exists { lhs, rhs, .. } | HornCi::AtMostOne { lhs, rhs, .. } = ci {
            let cl = u.close(lhs);
            push(cl, &u, &mut nodes, &mut seen);
            let cr = u.close(rhs);
            push(cr, &u, &mut nodes, &mut seen);
        }
    }
    let roles = t.used_roles();
    let mut idx = 0;
    let mut complete = true;
    while idx < nodes.len() {
        if nodes.len() > cap {
            complete = false;
            break;
        }
        let tau = nodes[idx].clone();
        idx += 1;
        // Requirement children.
        let tau_id = u.close(&tau).expect("universe nodes are consistent closures");
        let reqs = u.requirements_of(tau_id);
        for (role, kp) in reqs.iter() {
            let mut seed = (*u.propagate_set(&tau, *role)).clone();
            seed.union_with(kp);
            let c = u.close(&seed);
            push(c, &u, &mut nodes, &mut seen);
        }
        // Edge enrichment: a τ-node pointing at a τ'-node pushes labels.
        for &role in &roles {
            let pushset = u.propagate_set(&tau, role);
            if pushset.is_empty() {
                continue;
            }
            let snapshot: Vec<LabelSet> = nodes.clone();
            for tp in snapshot {
                if !u.edge_forbidden_memo(&tau, role, &tp) {
                    let c = u.close(&tp.union(&pushset));
                    push(c, &u, &mut nodes, &mut seen);
                }
            }
        }
    }
    (nodes, complete)
}

/// BFS path from `from` to `to` through the edge list; returns the edge
/// sequence (empty when `from == to`).
fn find_path(
    edges: &[(usize, EdgeSym, usize)],
    num_nodes: usize,
    from: usize,
    to: usize,
) -> Option<Vec<(usize, EdgeSym, usize)>> {
    if from == to {
        return Some(Vec::new());
    }
    let mut prev: Vec<Option<(usize, EdgeSym, usize)>> = vec![None; num_nodes];
    let mut visited = vec![false; num_nodes];
    visited[from] = true;
    let mut queue = std::collections::VecDeque::from([from]);
    while let Some(cur) = queue.pop_front() {
        for &(a, r, b) in edges {
            if a == cur && !visited[b] {
                visited[b] = true;
                prev[b] = Some((a, r, b));
                if b == to {
                    let mut path = Vec::new();
                    let mut node = to;
                    while node != from {
                        let step = prev[node].expect("path reconstruction");
                        path.push(step);
                        node = step.0;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(b);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_graph::{EdgeLabel, Vocab};

    fn set(labels: &[u32]) -> LabelSet {
        LabelSet::from_iter(labels.iter().copied())
    }
    fn sym(i: u32) -> EdgeSym {
        EdgeSym::fwd(EdgeLabel(i))
    }
    fn fresh(v: &mut Vocab) -> (NodeLabel, NodeLabel) {
        (v.fresh_node_label("B"), v.fresh_node_label("B"))
    }

    /// Example 5.3/5.5: T_S = {⊤⊑A, A⊑∃s.A, A⊑∃≤1 s⁻.A} has the finmod
    /// cycle A,s,A; completion adds A⊑∃s⁻.A and A⊑∃≤1 s.A.
    #[test]
    fn example_5_3_self_cycle_reversal() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let _s = v.edge_label("s");
        let mut t = HornTbox::new();
        t.push(HornCi::SubAtom { lhs: LabelSet::new(), rhs: a });
        t.push(HornCi::Exists { lhs: set(&[0]), role: sym(0), rhs: set(&[0]) });
        t.push(HornCi::AtMostOne { lhs: set(&[0]), role: sym(0).inv(), rhs: set(&[0]) });
        let result = complete(
            &t,
            &set(&[0]),
            fresh(&mut v),
            &Budget::default(),
            &CompletionConfig::default(),
        );
        assert!(result.complete);
        assert!(result.added >= 2);
        assert!(result.tbox.cis.contains(&HornCi::Exists {
            lhs: set(&[0]),
            role: sym(0).inv(),
            rhs: set(&[0]),
        }));
        assert!(result.tbox.cis.contains(&HornCi::AtMostOne {
            lhs: set(&[0]),
            role: sym(0),
            rhs: set(&[0]),
        }));
    }

    /// A two-step cycle A →r B →s A (with the matching inverse-functionality
    /// constraints) reverses both steps.
    #[test]
    fn two_step_cycle_reversal() {
        let mut v = Vocab::new();
        let _a = v.node_label("A");
        let _b = v.node_label("B");
        let mut t = HornTbox::new();
        t.push(HornCi::Exists { lhs: set(&[0]), role: sym(0), rhs: set(&[1]) });
        t.push(HornCi::AtMostOne { lhs: set(&[1]), role: sym(0).inv(), rhs: set(&[0]) });
        t.push(HornCi::Exists { lhs: set(&[1]), role: sym(1), rhs: set(&[0]) });
        t.push(HornCi::AtMostOne { lhs: set(&[0]), role: sym(1).inv(), rhs: set(&[1]) });
        let result = complete(
            &t,
            &set(&[0, 1]),
            fresh(&mut v),
            &Budget::default(),
            &CompletionConfig::default(),
        );
        assert!(result.complete);
        assert!(result.tbox.cis.contains(&HornCi::Exists {
            lhs: set(&[1]),
            role: sym(0).inv(),
            rhs: set(&[0]),
        }));
        assert!(result.tbox.cis.contains(&HornCi::Exists {
            lhs: set(&[0]),
            role: sym(1).inv(),
            rhs: set(&[1]),
        }));
    }

    /// Without the at-most constraint there is no finmod cycle and nothing
    /// is added.
    #[test]
    fn no_cycle_without_functionality() {
        let mut v = Vocab::new();
        let _a = v.node_label("A");
        let mut t = HornTbox::new();
        t.push(HornCi::Exists { lhs: set(&[0]), role: sym(0), rhs: set(&[0]) });
        let result = complete(
            &t,
            &set(&[0]),
            fresh(&mut v),
            &Budget::default(),
            &CompletionConfig::default(),
        );
        assert!(result.complete);
        assert_eq!(result.added, 0);
        assert_eq!(result.tbox, t);
    }

    /// The completion is idempotent: completing T* adds nothing.
    #[test]
    fn completion_is_idempotent() {
        let mut v = Vocab::new();
        let _a = v.node_label("A");
        let mut t = HornTbox::new();
        t.push(HornCi::SubAtom { lhs: LabelSet::new(), rhs: NodeLabel(0) });
        t.push(HornCi::Exists { lhs: set(&[0]), role: sym(0), rhs: set(&[0]) });
        t.push(HornCi::AtMostOne { lhs: set(&[0]), role: sym(0).inv(), rhs: set(&[0]) });
        let once = complete(
            &t,
            &set(&[0]),
            fresh(&mut v),
            &Budget::default(),
            &CompletionConfig::default(),
        );
        let twice = complete(
            &once.tbox,
            &set(&[0]),
            fresh(&mut v),
            &Budget::default(),
            &CompletionConfig::default(),
        );
        assert_eq!(twice.added, 0);
        assert_eq!(once.tbox, twice.tbox);
    }

    #[test]
    fn type_universe_discovers_propagated_types() {
        // ⊤⊑∀r.B: the type {B} is reachable by edge enrichment.
        let mut t = HornTbox::new();
        t.push(HornCi::AllValues { lhs: LabelSet::new(), role: sym(0), rhs: set(&[1]) });
        t.push(HornCi::Exists { lhs: set(&[0]), role: sym(0), rhs: LabelSet::new() });
        let (nodes, complete_flag) = type_universe(&t, &set(&[0]), 64);
        assert!(complete_flag);
        assert!(nodes.contains(&set(&[1])));
    }

    /// Cached + multi-threaded completion returns byte-identical results.
    #[test]
    fn cached_and_threaded_completions_agree() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let _s = v.edge_label("s");
        let mut t = HornTbox::new();
        t.push(HornCi::SubAtom { lhs: LabelSet::new(), rhs: a });
        t.push(HornCi::Exists { lhs: set(&[0]), role: sym(0), rhs: set(&[0]) });
        t.push(HornCi::AtMostOne { lhs: set(&[0]), role: sym(0).inv(), rhs: set(&[0]) });
        let f = fresh(&mut v);
        let budget = Budget::default();
        let cfg = CompletionConfig::default();
        let plain = complete(&t, &set(&[0]), f, &budget, &cfg);
        let cache = OracleCache::new();
        let cached = complete_with(&t, &set(&[0]), f, &budget, &cfg, Some(&cache), 1);
        let threaded = complete_with(&t, &set(&[0]), f, &budget, &cfg, None, 4);
        assert_eq!(plain.tbox, cached.tbox);
        assert_eq!(plain.tbox, threaded.tbox);
        assert_eq!(plain.complete, cached.complete);
        // Second cached call is a memo hit.
        let again = complete_with(&t, &set(&[0]), f, &budget, &cfg, Some(&cache), 1);
        assert_eq!(again.tbox, cached.tbox);
        assert_eq!(cache.stats().completion_hits, 1);
    }
}
