//! Completion of a Horn TBox by exhaustive finmod-cycle reversal
//! (Theorem 5.4 [Ibáñez-García et al. 2014], Lemmas D.6/D.7, Lemma 5.7).
//!
//! A *finmod cycle* is a sequence `K1, R1, …, K(n-1), R(n-1), Kn = K1`
//! with `T ⊨ Ki ⊑ ∃Ri.K(i+1)` and `T ⊨ K(i+1) ⊑ ∃≤1 Ri⁻.Ki`; in finite
//! models such a cycle of successors must close up, so the reversed
//! inclusions `K(i+1) ⊑ ∃Ri⁻.Ki` and `Ki ⊑ ∃≤1 Ri.K(i+1)` hold in every
//! finite model. The completion `T*` adds them exhaustively, after which
//! finite satisfiability modulo `T` coincides with unrestricted
//! satisfiability modulo `T*` — the bridge that lets the engine reason
//! over (possibly infinite) sparse models.
//!
//! Lemma D.7 ranges over *all* conjunctions of concept names; we instead
//! maintain a forward-closed universe of *reachable* types (seeded with the
//! schema labels, closed under requirement children and edge enrichment),
//! which is where the finmod cycles of the S-driven TBoxes of this
//! pipeline live (Lemma D.6). The `complete` flag of the result reports
//! whether any cap was hit; callers must downgrade certification when it
//! is false.

use crate::entail::EntailCtx;
use gts_dl::{HornCi, HornTbox};
use gts_graph::{EdgeSym, FxHashMap, FxHashSet, LabelSet, NodeLabel};
use gts_sat::Budget;

/// Configuration caps for the completion computation.
#[derive(Clone, Debug)]
pub struct CompletionConfig {
    /// Maximum number of node types in the cycle-search graph.
    pub max_nodes: usize,
    /// Maximum number of reversal rounds.
    pub max_rounds: usize,
}

impl Default for CompletionConfig {
    fn default() -> Self {
        CompletionConfig { max_nodes: 512, max_rounds: 256 }
    }
}

/// Result of [`complete`].
#[derive(Clone, Debug)]
pub struct Completion {
    /// The completed TBox `T*` (⊇ the input TBox).
    pub tbox: HornTbox,
    /// Number of concept inclusions added by reversals.
    pub added: usize,
    /// `false` if a cap or an engine budget was hit — `T*` may then be
    /// missing reversals and answers derived from it are uncertified.
    pub complete: bool,
}

/// Computes the completion `T*` of `tbox`. `schema_labels` seeds the type
/// universe (Γ_S of the S-driven pipeline); `fresh` are two concept names
/// unused in the TBox (for the entailment encodings of Corollary E.7).
pub fn complete(
    tbox: &HornTbox,
    schema_labels: &LabelSet,
    fresh: (NodeLabel, NodeLabel),
    budget: &Budget,
    cfg: &CompletionConfig,
) -> Completion {
    let mut t = tbox.clone();
    let mut added = 0usize;
    let mut complete = true;

    for _round in 0..cfg.max_rounds {
        let (nodes, universe_complete) = type_universe(&t, schema_labels, cfg.max_nodes);
        complete &= universe_complete;

        // Edge relation of the cycle-search graph H_T.
        let ctx = EntailCtx::new(&t, fresh, budget.clone());
        let roles = t.used_roles();
        let mut edges: Vec<(usize, EdgeSym, usize)> = Vec::new();
        for (i, k) in nodes.iter().enumerate() {
            for &role in &roles {
                for (j, kp) in nodes.iter().enumerate() {
                    let fwd = match ctx.entails_exists(k, role, kp) {
                        Ok(b) => b,
                        Err(_) => {
                            complete = false;
                            false
                        }
                    };
                    if !fwd {
                        continue;
                    }
                    let bwd = match ctx.entails_at_most_one(kp, role.inv(), k) {
                        Ok(b) => b,
                        Err(_) => {
                            complete = false;
                            false
                        }
                    };
                    if bwd {
                        edges.push((i, role, j));
                    }
                }
            }
        }

        // Find a finmod cycle missing its reversal.
        let edge_set: FxHashSet<(usize, EdgeSym, usize)> = edges.iter().copied().collect();
        let mut new_cis: Vec<HornCi> = Vec::new();
        'scan: for &(i, role, j) in &edges {
            if edge_set.contains(&(j, role.inv(), i)) {
                continue; // already reversible
            }
            // Path j ⇝ i through H_T (empty path allowed when i == j).
            if let Some(path) = find_path(&edges, nodes.len(), j, i) {
                let mut cycle: Vec<(usize, EdgeSym, usize)> = vec![(i, role, j)];
                cycle.extend(path);
                for (a, r, b) in cycle {
                    let rev = HornCi::Exists {
                        lhs: nodes[b].clone(),
                        role: r.inv(),
                        rhs: nodes[a].clone(),
                    };
                    let cap =
                        HornCi::AtMostOne { lhs: nodes[a].clone(), role: r, rhs: nodes[b].clone() };
                    for ci in [rev, cap] {
                        if !t.cis.contains(&ci) {
                            new_cis.push(ci);
                        }
                    }
                }
                if !new_cis.is_empty() {
                    break 'scan;
                }
            }
        }

        if new_cis.is_empty() {
            return Completion { tbox: t, added, complete };
        }
        for ci in new_cis {
            if t.push(ci) {
                added += 1;
            }
        }
    }
    Completion { tbox: t, added, complete: false }
}

/// The forward-closed type universe: closures of schema-label singletons,
/// closed under requirement children and edge enrichment.
fn type_universe(t: &HornTbox, schema_labels: &LabelSet, cap: usize) -> (Vec<LabelSet>, bool) {
    let mut seen: FxHashMap<LabelSet, ()> = FxHashMap::default();
    let mut nodes: Vec<LabelSet> = Vec::new();
    let push =
        |set: Option<LabelSet>, nodes: &mut Vec<LabelSet>, seen: &mut FxHashMap<LabelSet, ()>| {
            if let Some(s) = set {
                if !seen.contains_key(&s) {
                    seen.insert(s.clone(), ());
                    nodes.push(s);
                }
            }
        };
    push(t.closure(&LabelSet::new()), &mut nodes, &mut seen);
    for l in schema_labels.iter() {
        push(t.closure(&LabelSet::singleton(l)), &mut nodes, &mut seen);
    }
    // Also seed with lhs/rhs of existential and at-most CIs.
    for ci in &t.cis {
        if let HornCi::Exists { lhs, rhs, .. } | HornCi::AtMostOne { lhs, rhs, .. } = ci {
            push(t.closure(lhs), &mut nodes, &mut seen);
            push(t.closure(rhs), &mut nodes, &mut seen);
        }
    }
    let roles = t.used_roles();
    let mut idx = 0;
    let mut complete = true;
    while idx < nodes.len() {
        if nodes.len() > cap {
            complete = false;
            break;
        }
        let tau = nodes[idx].clone();
        idx += 1;
        // Requirement children.
        for (role, kp) in t.requirements(&tau) {
            let mut seed = t.propagate(&tau, role);
            seed.union_with(&kp);
            push(t.closure(&seed), &mut nodes, &mut seen);
        }
        // Edge enrichment: a τ-node pointing at a τ'-node pushes labels.
        for &role in &roles {
            let pushset = t.propagate(&tau, role);
            if pushset.is_empty() {
                continue;
            }
            let snapshot: Vec<LabelSet> = nodes.clone();
            for tp in snapshot {
                if !t.edge_forbidden(&tau, role, &tp) {
                    push(t.closure(&tp.union(&pushset)), &mut nodes, &mut seen);
                }
            }
        }
    }
    (nodes, complete)
}

/// BFS path from `from` to `to` through the edge list; returns the edge
/// sequence (empty when `from == to`).
fn find_path(
    edges: &[(usize, EdgeSym, usize)],
    num_nodes: usize,
    from: usize,
    to: usize,
) -> Option<Vec<(usize, EdgeSym, usize)>> {
    if from == to {
        return Some(Vec::new());
    }
    let mut prev: Vec<Option<(usize, EdgeSym, usize)>> = vec![None; num_nodes];
    let mut visited = vec![false; num_nodes];
    visited[from] = true;
    let mut queue = std::collections::VecDeque::from([from]);
    while let Some(cur) = queue.pop_front() {
        for &(a, r, b) in edges {
            if a == cur && !visited[b] {
                visited[b] = true;
                prev[b] = Some((a, r, b));
                if b == to {
                    let mut path = Vec::new();
                    let mut node = to;
                    while node != from {
                        let step = prev[node].expect("path reconstruction");
                        path.push(step);
                        node = step.0;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(b);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_graph::{EdgeLabel, Vocab};

    fn set(labels: &[u32]) -> LabelSet {
        LabelSet::from_iter(labels.iter().copied())
    }
    fn sym(i: u32) -> EdgeSym {
        EdgeSym::fwd(EdgeLabel(i))
    }
    fn fresh(v: &mut Vocab) -> (NodeLabel, NodeLabel) {
        (v.fresh_node_label("B"), v.fresh_node_label("B"))
    }

    /// Example 5.3/5.5: T_S = {⊤⊑A, A⊑∃s.A, A⊑∃≤1 s⁻.A} has the finmod
    /// cycle A,s,A; completion adds A⊑∃s⁻.A and A⊑∃≤1 s.A.
    #[test]
    fn example_5_3_self_cycle_reversal() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let _s = v.edge_label("s");
        let mut t = HornTbox::new();
        t.push(HornCi::SubAtom { lhs: LabelSet::new(), rhs: a });
        t.push(HornCi::Exists { lhs: set(&[0]), role: sym(0), rhs: set(&[0]) });
        t.push(HornCi::AtMostOne { lhs: set(&[0]), role: sym(0).inv(), rhs: set(&[0]) });
        let result = complete(
            &t,
            &set(&[0]),
            fresh(&mut v),
            &Budget::default(),
            &CompletionConfig::default(),
        );
        assert!(result.complete);
        assert!(result.added >= 2);
        assert!(result.tbox.cis.contains(&HornCi::Exists {
            lhs: set(&[0]),
            role: sym(0).inv(),
            rhs: set(&[0]),
        }));
        assert!(result.tbox.cis.contains(&HornCi::AtMostOne {
            lhs: set(&[0]),
            role: sym(0),
            rhs: set(&[0]),
        }));
    }

    /// A two-step cycle A →r B →s A (with the matching inverse-functionality
    /// constraints) reverses both steps.
    #[test]
    fn two_step_cycle_reversal() {
        let mut v = Vocab::new();
        let _a = v.node_label("A");
        let _b = v.node_label("B");
        let mut t = HornTbox::new();
        t.push(HornCi::Exists { lhs: set(&[0]), role: sym(0), rhs: set(&[1]) });
        t.push(HornCi::AtMostOne { lhs: set(&[1]), role: sym(0).inv(), rhs: set(&[0]) });
        t.push(HornCi::Exists { lhs: set(&[1]), role: sym(1), rhs: set(&[0]) });
        t.push(HornCi::AtMostOne { lhs: set(&[0]), role: sym(1).inv(), rhs: set(&[1]) });
        let result = complete(
            &t,
            &set(&[0, 1]),
            fresh(&mut v),
            &Budget::default(),
            &CompletionConfig::default(),
        );
        assert!(result.complete);
        assert!(result.tbox.cis.contains(&HornCi::Exists {
            lhs: set(&[1]),
            role: sym(0).inv(),
            rhs: set(&[0]),
        }));
        assert!(result.tbox.cis.contains(&HornCi::Exists {
            lhs: set(&[0]),
            role: sym(1).inv(),
            rhs: set(&[1]),
        }));
    }

    /// Without the at-most constraint there is no finmod cycle and nothing
    /// is added.
    #[test]
    fn no_cycle_without_functionality() {
        let mut v = Vocab::new();
        let _a = v.node_label("A");
        let mut t = HornTbox::new();
        t.push(HornCi::Exists { lhs: set(&[0]), role: sym(0), rhs: set(&[0]) });
        let result = complete(
            &t,
            &set(&[0]),
            fresh(&mut v),
            &Budget::default(),
            &CompletionConfig::default(),
        );
        assert!(result.complete);
        assert_eq!(result.added, 0);
        assert_eq!(result.tbox, t);
    }

    /// The completion is idempotent: completing T* adds nothing.
    #[test]
    fn completion_is_idempotent() {
        let mut v = Vocab::new();
        let _a = v.node_label("A");
        let mut t = HornTbox::new();
        t.push(HornCi::SubAtom { lhs: LabelSet::new(), rhs: NodeLabel(0) });
        t.push(HornCi::Exists { lhs: set(&[0]), role: sym(0), rhs: set(&[0]) });
        t.push(HornCi::AtMostOne { lhs: set(&[0]), role: sym(0).inv(), rhs: set(&[0]) });
        let once = complete(
            &t,
            &set(&[0]),
            fresh(&mut v),
            &Budget::default(),
            &CompletionConfig::default(),
        );
        let twice = complete(
            &once.tbox,
            &set(&[0]),
            fresh(&mut v),
            &Budget::default(),
            &CompletionConfig::default(),
        );
        assert_eq!(twice.added, 0);
        assert_eq!(once.tbox, twice.tbox);
    }

    #[test]
    fn type_universe_discovers_propagated_types() {
        // ⊤⊑∀r.B: the type {B} is reachable by edge enrichment.
        let mut t = HornTbox::new();
        t.push(HornCi::AllValues { lhs: LabelSet::new(), role: sym(0), rhs: set(&[1]) });
        t.push(HornCi::Exists { lhs: set(&[0]), role: sym(0), rhs: LabelSet::new() });
        let (nodes, complete_flag) = type_universe(&t, &set(&[0]), 64);
        assert!(complete_flag);
        assert!(nodes.contains(&set(&[1])));
    }
}
