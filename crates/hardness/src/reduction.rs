//! The EXPTIME-hardness reduction of Theorem F.1 (Appendix F): from
//! acceptance of a polynomially-space-bounded ATM to (non-)containment of
//! Boolean 2RPQs modulo schema.
//!
//! `M(w) = yes  iff  p_{M,w} ⊄_S q_M`: a counterexample graph — one that
//! satisfies the *positive* query `p` and avoids the *negative* query `q` —
//! is exactly (the encoding of) an accepting run of `M` on `w`. The
//! construction uses the nesting macro `p[q] = p·q·q⁻` throughout, and the
//! positive query performs an Euler traversal of the run tree (Figure 8).
//!
//! The generator is faithful and polynomial; correctness is exercised in
//! tests by *encoding actual runs* of small machines and evaluating both
//! queries on them (running the EXPTIME decision procedure itself on
//! reduction outputs is out of reach by design — that is the point of the
//! lower bound).

use crate::atm::{Atm, Dir, RunNode, State, Sym};
use gts_graph::{EdgeLabel, EdgeSym, Graph, NodeId, NodeLabel, Vocab};
use gts_query::{Atom, C2rpq, Regex, Var};
use gts_schema::{Mult, Schema};

/// Label handles of a reduction instance.
#[derive(Clone, Debug)]
pub struct ReductionLabels {
    /// Node label of configuration nodes.
    pub config: NodeLabel,
    /// Node label of tape-cell nodes.
    pub pos: NodeLabel,
    /// Node label of symbol nodes.
    pub symb: NodeLabel,
    /// Node label of state nodes.
    pub st: NodeLabel,
    /// Transition edge labels `[∃1, ∃2, ∀1, ∀2]`.
    pub trans: [EdgeLabel; 4],
    /// `pos_i` edge labels (index = 0-based cell).
    pub pos_edges: Vec<EdgeLabel>,
    /// `a` edge labels per alphabet symbol.
    pub sym_edges: Vec<EdgeLabel>,
    /// `q` edge labels per machine state.
    pub state_edges: Vec<EdgeLabel>,
}

/// A generated reduction instance.
#[derive(Clone, Debug)]
pub struct Reduction {
    /// The schema `S` of Figure 7.
    pub schema: Schema,
    /// The positive Boolean 2RPQ `p_{M,w}`.
    pub positive: C2rpq,
    /// The negative Boolean 2RPQ `q_M`.
    pub negative: C2rpq,
    /// Label handles (for encoding runs).
    pub labels: ReductionLabels,
    /// The space bound `m`.
    pub space: usize,
}

const EX1: usize = 0;
const EX2: usize = 1;
const ALL1: usize = 2;
const ALL2: usize = 3;

/// Builds the reduction for machine `atm` on `input` with space bound
/// `space` (Theorem F.1). The output sizes are polynomial in
/// `space · |A| · |K|`.
pub fn reduce(atm: &Atm, input: &[Sym], space: usize, vocab: &mut Vocab) -> Reduction {
    let labels = make_labels(atm, space, vocab);
    let schema = make_schema(atm, &labels);
    let positive = positive_query(atm, input, space, &labels);
    let negative = negative_query(atm, space, &labels);
    Reduction { schema, positive, negative, labels, space }
}

fn make_labels(atm: &Atm, space: usize, vocab: &mut Vocab) -> ReductionLabels {
    ReductionLabels {
        config: vocab.node_label("Config"),
        pos: vocab.node_label("Pos"),
        symb: vocab.node_label("Symb"),
        st: vocab.node_label("St"),
        trans: [
            vocab.edge_label("ex1"),
            vocab.edge_label("ex2"),
            vocab.edge_label("all1"),
            vocab.edge_label("all2"),
        ],
        pos_edges: (0..space).map(|i| vocab.edge_label(&format!("pos{}", i + 1))).collect(),
        sym_edges: (0..atm.num_syms).map(|a| vocab.edge_label(&format!("sym{a}"))).collect(),
        state_edges: (0..atm.num_states).map(|q| vocab.edge_label(&format!("st{q}"))).collect(),
    }
}

fn make_schema(atm: &Atm, l: &ReductionLabels) -> Schema {
    let mut s = Schema::new();
    for t in l.trans {
        s.set_edge(l.config, t, l.config, Mult::Opt, Mult::Opt);
    }
    for &p in &l.pos_edges {
        s.set_edge(l.config, p, l.pos, Mult::Opt, Mult::Opt);
    }
    for a in 0..atm.num_syms {
        s.set_edge(l.pos, l.sym_edges[a], l.symb, Mult::Opt, Mult::Opt);
    }
    for q in 0..atm.num_states {
        s.set_edge(l.pos, l.state_edges[q], l.st, Mult::Opt, Mult::Opt);
    }
    s
}

/// `p[q] = p·q·q⁻` with `p = ε`: the loop `q·q⁻`.
fn looped(q: Regex) -> Regex {
    Regex::Epsilon.nest(q)
}

impl ReductionLabels {
    /// `Symbol_{i,a} = Config[pos_i · a]` — a loop asserting that the tape
    /// cell `i` of this configuration holds symbol `a`.
    fn symbol(&self, i: usize, a: Sym) -> Regex {
        Regex::node(self.config)
            .nest(Regex::edge(self.pos_edges[i]).then(Regex::edge(self.sym_edges[a])))
    }

    /// `State_{i,q} = Config[pos_i · q]`.
    fn state_at(&self, i: usize, q: State) -> Regex {
        Regex::node(self.config)
            .nest(Regex::edge(self.pos_edges[i]).then(Regex::edge(self.state_edges[q])))
    }

    /// `State_q = Config[+_i pos_i · q]`.
    fn state_any(&self, q: State) -> Regex {
        Regex::node(self.config).nest(Regex::alt_all(
            self.pos_edges.iter().map(|&p| Regex::edge(p).then(Regex::edge(self.state_edges[q]))),
        ))
    }

    /// `Head_i = Config[+_q pos_i · q]`.
    fn head_at(&self, i: usize, num_states: usize) -> Regex {
        Regex::node(self.config).nest(Regex::alt_all(
            (0..num_states)
                .map(|q| Regex::edge(self.pos_edges[i]).then(Regex::edge(self.state_edges[q]))),
        ))
    }

    /// Any transition edge `∃1+∃2+∀1+∀2`.
    fn any_trans(&self) -> Regex {
        Regex::alt_all(self.trans.iter().map(|&t| Regex::edge(t)))
    }

    /// Any inverse transition edge.
    fn any_trans_inv(&self) -> Regex {
        Regex::alt_all(self.trans.iter().map(|&t| Regex::sym(EdgeSym::bwd(t))))
    }
}

/// The negative query `q_M`: a union (alternation) of bad-structure
/// detectors; a graph avoiding all of them encodes a well-formed run.
fn negative_query(atm: &Atm, space: usize, l: &ReductionLabels) -> C2rpq {
    let mut branches: Vec<Regex> = Vec::new();

    // TwoSymbols: some cell holds two different symbols.
    for i in 0..space {
        for a in 0..atm.num_syms {
            for b in (a + 1)..atm.num_syms {
                branches.push(l.symbol(i, a).then(l.symbol(i, b)));
            }
        }
    }
    // TwoHeads: two different (position, state) head markers.
    let heads: Vec<(usize, State)> =
        (0..space).flat_map(|i| (0..atm.num_states).map(move |q| (i, q))).collect();
    for (x, &(i, q)) in heads.iter().enumerate() {
        for &(j, p) in &heads[x + 1..] {
            branches.push(l.state_at(i, q).then(l.state_at(j, p)));
        }
    }
    // BadTransitionEdges: outgoing transition edges that do not fit the
    // state kind.
    for q in 0..atm.num_states {
        if atm.is_final(q) {
            branches.push(l.state_any(q).nest(l.any_trans()));
        } else if atm.universal[q] {
            branches
                .push(l.state_any(q).nest(Regex::edge(l.trans[EX1]).or(Regex::edge(l.trans[EX2]))));
        } else {
            branches.push(
                l.state_any(q).nest(Regex::edge(l.trans[ALL1]).or(Regex::edge(l.trans[ALL2]))),
            );
        }
    }
    // TwoExistentialEdges.
    for q in 0..atm.num_states {
        if !atm.is_final(q) && !atm.universal[q] {
            branches.push(
                l.state_any(q).nest(Regex::edge(l.trans[EX1])).nest(Regex::edge(l.trans[EX2])),
            );
        }
    }
    // BadTreeRoot: the initial configuration has an incoming transition.
    branches.push(l.state_any(atm.initial).nest(l.any_trans_inv()));
    // BadTreeNode: two incoming transition edges with different labels.
    for t1 in 0..4 {
        for t2 in (t1 + 1)..4 {
            branches.push(
                Regex::node(l.config)
                    .nest(Regex::sym(EdgeSym::bwd(l.trans[t1])))
                    .nest(Regex::sym(EdgeSym::bwd(l.trans[t2]))),
            );
        }
    }
    // BadTape: a Pos/St/Symb node shared between configurations.
    for i in 0..space {
        for j in (i + 1)..space {
            branches.push(
                Regex::node(l.pos)
                    .nest(Regex::sym(EdgeSym::bwd(l.pos_edges[i])))
                    .nest(Regex::sym(EdgeSym::bwd(l.pos_edges[j]))),
            );
        }
    }
    for p in 0..atm.num_states {
        for q in (p + 1)..atm.num_states {
            branches.push(
                Regex::node(l.st)
                    .nest(Regex::sym(EdgeSym::bwd(l.state_edges[p])))
                    .nest(Regex::sym(EdgeSym::bwd(l.state_edges[q]))),
            );
        }
    }
    for a in 0..atm.num_syms {
        for b in (a + 1)..atm.num_syms {
            branches.push(
                Regex::node(l.symb)
                    .nest(Regex::sym(EdgeSym::bwd(l.sym_edges[a])))
                    .nest(Regex::sym(EdgeSym::bwd(l.sym_edges[b]))),
            );
        }
    }

    C2rpq::new(2, vec![], vec![Atom { x: Var(0), y: Var(1), regex: Regex::alt_all(branches) }])
}

/// `Move_{i,q,a}`: the configuration (head at `i`, state `q`, symbol `a`)
/// has correctly executed children.
fn move_macro(atm: &Atm, i: usize, q: State, a: Sym, space: usize, l: &ReductionLabels) -> Regex {
    if atm.is_final(q) {
        return l.state_any(q).then(l.symbol(i, a));
    }
    let branch = |b: usize| -> Option<Regex> {
        let t = atm.delta[b].get(&(q, a))?;
        let ni = match t.dir {
            Dir::L => i.checked_sub(1)?,
            Dir::R => {
                if i + 1 >= space {
                    return None;
                }
                i + 1
            }
        };
        let edge = if atm.universal[q] {
            l.trans[if b == 0 { ALL1 } else { ALL2 }]
        } else {
            l.trans[if b == 0 { EX1 } else { EX2 }]
        };
        Some(looped(
            l.state_at(i, q)
                .then(l.symbol(i, a))
                .then(Regex::edge(edge))
                .then(l.state_at(ni, t.state))
                .then(l.symbol(i, t.write)),
        ))
    };
    if atm.universal[q] {
        match (branch(0), branch(1)) {
            (Some(b1), Some(b2)) => b1.then(b2),
            _ => Regex::Empty, // a required branch is impossible here
        }
    } else {
        branch(0).unwrap_or(Regex::Empty).or(branch(1).unwrap_or(Regex::Empty))
    }
}

/// The positive query `p_{M,w}` (Figure 8): an Euler traversal of the run
/// tree that verifies every configuration locally.
fn positive_query(atm: &Atm, input: &[Sym], space: usize, l: &ReductionLabels) -> C2rpq {
    // pHead: the configuration has a head somewhere.
    let p_head = Regex::node(l.config).nest(Regex::alt_all((0..space).flat_map(|i| {
        (0..atm.num_states)
            .map(move |q| Regex::edge(l.pos_edges[i]).then(Regex::edge(l.state_edges[q])))
    })));
    // pTape: every cell holds some symbol.
    let p_tape = Regex::concat_all((0..space).map(|i| {
        Regex::node(l.config).nest(Regex::alt_all(
            (0..atm.num_syms)
                .map(|a| Regex::edge(l.pos_edges[i]).then(Regex::edge(l.sym_edges[a]))),
        ))
    }));
    // pTransition: outgoing transition edges fit the state kind.
    let p_transition = Regex::alt_all((0..atm.num_states).map(|q| {
        if atm.is_final(q) {
            l.state_any(q)
        } else if atm.universal[q] {
            l.state_any(q).nest(Regex::edge(l.trans[ALL1])).nest(Regex::edge(l.trans[ALL2]))
        } else {
            l.state_any(q).nest(Regex::edge(l.trans[EX1]).or(Regex::edge(l.trans[EX2])))
        }
    }));
    // pExecution: some Move macro applies.
    let p_execution = Regex::alt_all((0..space).flat_map(|i| {
        (0..atm.num_states)
            .flat_map(move |q| (0..atm.num_syms).map(move |a| move_macro(atm, i, q, a, space, l)))
    }));
    // pTapeCopy: initial tape, or faithful copy from the parent.
    let init = atm.initial_config(input, space);
    let init_tape = Regex::concat_all((0..space).map(|i| l.symbol(i, init.tape[i])));
    let p_init = l.state_at(init.head, atm.initial).then(init_tape);
    let pos_copy = |j: usize| {
        looped(Regex::alt_all(
            (0..atm.num_syms).map(|a| l.symbol(j, a).then(l.any_trans_inv()).then(l.symbol(j, a))),
        ))
    };
    let tape_copy = Regex::alt_all((0..space).map(|i| {
        let up_head = looped(l.any_trans_inv().then(l.head_at(i, atm.num_states)));
        let copies = Regex::concat_all((0..space).filter(|&j| j != i).map(pos_copy));
        up_head.then(copies)
    }));
    let p_tape_copy = p_init.or(tape_copy);

    let p_config = p_head.then(p_tape).then(p_transition).then(p_execution).then(p_tape_copy);
    let p_accept = p_config.clone().then(l.state_any(atm.q_yes));
    let p_start = p_config.clone().then(l.state_any(atm.initial));

    // The Euler traversal (Figure 8).
    let down = p_config.then(
        Regex::edge(l.trans[ALL1]).or(Regex::edge(l.trans[EX1])).or(Regex::edge(l.trans[EX2])),
    );
    let up = Regex::alt_all([EX1, EX2, ALL2].iter().map(|&t| Regex::sym(EdgeSym::bwd(l.trans[t]))));
    let descend_to_leaf = down.star().then(p_accept).then(up.star());
    let switch = Regex::sym(EdgeSym::bwd(l.trans[ALL1])).then(Regex::edge(l.trans[ALL2]));
    let traversal = p_start
        .clone()
        .then(descend_to_leaf.clone().then(switch).star())
        .then(descend_to_leaf)
        .then(p_start);

    C2rpq::new(2, vec![], vec![Atom { x: Var(0), y: Var(1), regex: traversal }])
}

/// Encodes a run tree as a graph per the proof of Theorem F.1: one
/// `Config` node per run-tree node, with private `Pos`/`Symb`/`St` nodes.
pub fn encode_run(atm: &Atm, run: &RunNode, l: &ReductionLabels) -> Graph {
    let mut g = Graph::new();
    encode_node(atm, run, l, &mut g);
    g
}

fn encode_node(atm: &Atm, node: &RunNode, l: &ReductionLabels, g: &mut Graph) -> NodeId {
    let c = g.add_labeled_node([l.config]);
    let st = g.add_labeled_node([l.st]);
    for (i, &sym) in node.config.tape.iter().enumerate() {
        let pos = g.add_labeled_node([l.pos]);
        g.add_edge(c, l.pos_edges[i], pos);
        let symb = g.add_labeled_node([l.symb]);
        g.add_edge(pos, l.sym_edges[sym], symb);
        if i == node.config.head {
            g.add_edge(pos, l.state_edges[node.config.state], st);
        }
    }
    for (b, child) in &node.children {
        let child_id = encode_node(atm, child, l, g);
        let t = if atm.universal[node.config.state] {
            l.trans[if *b == 0 { ALL1 } else { ALL2 }]
        } else {
            l.trans[if *b == 0 { EX1 } else { EX2 }]
        };
        g.add_edge(c, t, child_id);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atm::machines;
    use crate::atm::machines::{BIT0, BIT1};

    #[test]
    fn reduction_sizes_are_polynomial() {
        let m = machines::universal_both_checks();
        let mut sizes = Vec::new();
        for space in 3..7 {
            let mut vocab = Vocab::new();
            let r = reduce(&m, &[BIT1], space, &mut vocab);
            sizes.push(r.positive.size() + r.negative.size());
        }
        // Quartic-ish growth at most: size(m+1)/size(m) bounded.
        for w in sizes.windows(2) {
            assert!(w[1] > w[0]);
            assert!((w[1] as f64) < (w[0] as f64) * 3.0, "sizes: {sizes:?}");
        }
    }

    #[test]
    fn accepting_run_encodes_to_counterexample() {
        // The heart of Theorem F.1, checked semantically: the encoded
        // accepting run satisfies p, avoids q, and conforms to S.
        let m = machines::universal_both_checks();
        let space = 4;
        let mut vocab = Vocab::new();
        let red = reduce(&m, &[BIT1], space, &mut vocab);
        let run = m.accepting_run(&[BIT1], space).expect("machine accepts");
        let g = encode_run(&m, &run, &red.labels);
        assert_eq!(red.schema.conforms(&g), Ok(()), "run encoding conforms to S");
        assert!(!red.negative.holds(&g), "well-formed run avoids q_M");
        assert!(red.positive.holds(&g), "accepting run satisfies p_{{M,w}}");
    }

    #[test]
    fn existential_machine_counterexample() {
        let m = machines::first_bit_one();
        let space = 4;
        let mut vocab = Vocab::new();
        let red = reduce(&m, &[BIT1], space, &mut vocab);
        let run = m.accepting_run(&[BIT1], space).expect("accepts 1");
        let g = encode_run(&m, &run, &red.labels);
        assert_eq!(red.schema.conforms(&g), Ok(()));
        assert!(!red.negative.holds(&g));
        assert!(red.positive.holds(&g));
    }

    #[test]
    fn rejecting_input_has_no_valid_encoding() {
        // first_bit_one rejects [0]; there is no accepting run to encode,
        // and a forged "run" that flips the verdict violates p (the leaf is
        // not accepting) — the Euler traversal cannot complete.
        let m = machines::first_bit_one();
        let space = 4;
        assert!(m.accepting_run(&[BIT0], space).is_none());
        // Encode the accepting run on input [1] but corrupt the leaf state.
        let mut vocab = Vocab::new();
        let red = reduce(&m, &[BIT0], space, &mut vocab);
        let run = m.accepting_run(&[BIT1], space).expect("accepts 1");
        let g = encode_run(&m, &run, &red.labels);
        // The tape of the root does not match input [0]: pStart's InitTape
        // fails, so the positive query does not hold.
        assert!(!red.positive.holds(&g));
    }

    #[test]
    fn corrupted_runs_trip_the_negative_query() {
        let m = machines::universal_both_checks();
        let space = 4;
        let mut vocab = Vocab::new();
        let red = reduce(&m, &[BIT1], space, &mut vocab);
        let run = m.accepting_run(&[BIT1], space).expect("accepts");
        let base = encode_run(&m, &run, &red.labels);

        // Corruption 1: a second symbol on the root's first cell.
        let mut g1 = base.clone();
        let pos0 = g1.successors(NodeId(0), EdgeSym::fwd(red.labels.pos_edges[0])).next().unwrap();
        let stray = g1.add_labeled_node([red.labels.symb]);
        g1.add_edge(pos0, red.labels.sym_edges[BIT0], stray);
        assert!(red.negative.holds(&g1), "TwoSymbols must fire");

        // Corruption 2: a second head marker.
        let mut g2 = base.clone();
        let pos1 = g2.successors(NodeId(0), EdgeSym::fwd(red.labels.pos_edges[2])).next().unwrap();
        let st2 = g2.add_labeled_node([red.labels.st]);
        g2.add_edge(pos1, red.labels.state_edges[m.q_yes], st2);
        assert!(red.negative.holds(&g2), "TwoHeads must fire");

        // Corruption 3: an incoming transition to the root.
        let mut g3 = base.clone();
        let other_config =
            g3.successors(NodeId(0), EdgeSym::fwd(red.labels.trans[ALL1])).next().unwrap();
        g3.add_edge(other_config, red.labels.trans[EX1], NodeId(0));
        assert!(red.negative.holds(&g3), "BadTreeRoot/BadTreeNode must fire");
    }

    #[test]
    fn schema_shape_matches_figure_7() {
        let m = machines::first_bit_one();
        let mut vocab = Vocab::new();
        let red = reduce(&m, &[BIT1], 4, &mut vocab);
        assert_eq!(red.schema.node_labels().len(), 4);
        // 4 transition + m pos + |A| sym + |K| state edge labels.
        assert_eq!(red.schema.edge_labels().len(), 4 + 4 + 5 + 3);
        assert_eq!(
            red.schema.mult(
                red.labels.config,
                EdgeSym::fwd(red.labels.trans[0]),
                red.labels.config
            ),
            Mult::Opt
        );
    }
}
