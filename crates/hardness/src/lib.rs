//! # gts-hardness
//!
//! The EXPTIME lower bound of *Static Analysis of Graph Database
//! Transformations* (PODS 2023, Theorem F.1 / Appendix F): a polynomial
//! reduction from acceptance of alternating Turing machines with
//! polynomially bounded space (ASPACE = EXPTIME) to non-containment of
//! Boolean 2RPQs modulo schema.
//!
//! The crate ships the ATM variant of Appendix F with a direct
//! interpreter ([`Atm::accepts`]) and run-tree reconstruction, the
//! reduction generator ([`reduce`]), and the run-encoding
//! ([`encode_run`]) used to validate the reduction semantically on small
//! machines.
//!
//! ```
//! use gts_graph::Vocab;
//! use gts_hardness::{machines, reduce};
//!
//! let m = machines::first_bit_one();
//! assert!(m.accepts(&[machines::BIT1], 4));
//! let mut vocab = Vocab::new();
//! let reduction = reduce(&m, &[machines::BIT1], 4, &mut vocab);
//! assert!(reduction.positive.size() > 0);
//! ```

#![warn(missing_docs)]

mod atm;
mod reduction;

pub use atm::{machines, Atm, Config, Dir, RunNode, State, Sym, Trans};
pub use reduction::{encode_run, reduce, Reduction, ReductionLabels};
