//! Alternating Turing machines with polynomially bounded space — the
//! special variant of Appendix F:
//!
//! * a single initial state that is never re-entered;
//! * final states `q_yes`, `q_no` with no outgoing transitions;
//! * exactly two transition tables `δ1`, `δ2`, total on non-final states;
//! * reserved symbols `□` (blank), `⊲` (left boundary), `⊳` (right
//!   boundary), with boundary-preserving transitions.
//!
//! The direct interpreter decides acceptance by a least fixpoint over the
//! reachable configuration graph (an accepting *run* is a finite tree), and
//! can reconstruct an accepting run tree — which the reduction tests use to
//! build the counterexample graph of Theorem F.1.

use gts_graph::{FxHashMap, FxHashSet};

/// A tape symbol (index into the machine's alphabet).
pub type Sym = usize;
/// A machine state (index).
pub type State = usize;

/// Head movement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// Move left.
    L,
    /// Move right.
    R,
}

/// One transition: rewrite, move, switch state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Trans {
    /// New state.
    pub state: State,
    /// Symbol written.
    pub write: Sym,
    /// Head movement.
    pub dir: Dir,
}

/// An alternating Turing machine (Appendix F variant).
#[derive(Clone, Debug)]
pub struct Atm {
    /// Number of states.
    pub num_states: usize,
    /// Number of alphabet symbols (including the reserved three).
    pub num_syms: usize,
    /// The initial state (never re-entered).
    pub initial: State,
    /// The accepting final state.
    pub q_yes: State,
    /// The rejecting final state.
    pub q_no: State,
    /// `universal[q]` iff `q ∈ K∀` (final states are neither).
    pub universal: Vec<bool>,
    /// Blank symbol `□`.
    pub blank: Sym,
    /// Left boundary `⊲`.
    pub lmark: Sym,
    /// Right boundary `⊳`.
    pub rmark: Sym,
    /// The two transition tables, keyed by `(state, read symbol)`.
    pub delta: [FxHashMap<(State, Sym), Trans>; 2],
}

/// A machine configuration: state, head position (0-based cell index), and
/// tape contents.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Config {
    /// Current state.
    pub state: State,
    /// Head position.
    pub head: usize,
    /// Tape contents (fixed length = the space bound).
    pub tape: Vec<Sym>,
}

/// A node of an accepting run tree.
#[derive(Clone, Debug)]
pub struct RunNode {
    /// The configuration at this node.
    pub config: Config,
    /// Children: `(branch index ∈ {0,1}, subtree)`. Universal nodes have
    /// both branches, existential nodes exactly one, final nodes none.
    pub children: Vec<(usize, RunNode)>,
}

impl Atm {
    /// Is `q` final?
    pub fn is_final(&self, q: State) -> bool {
        q == self.q_yes || q == self.q_no
    }

    /// The initial configuration for `input` padded to `space` cells:
    /// `⊲ · input · □ … □ · ⊳` with the head on the first input cell.
    pub fn initial_config(&self, input: &[Sym], space: usize) -> Config {
        assert!(space >= input.len() + 2, "space bound too small for the input");
        let mut tape = vec![self.blank; space];
        tape[0] = self.lmark;
        tape[space - 1] = self.rmark;
        tape[1..1 + input.len()].copy_from_slice(input);
        Config { state: self.initial, head: 1.min(space - 1), tape }
    }

    /// Applies transition table `branch` to `c`; `None` if the state is
    /// final or the move would leave the tape.
    pub fn step(&self, c: &Config, branch: usize) -> Option<Config> {
        if self.is_final(c.state) {
            return None;
        }
        let t = self.delta[branch].get(&(c.state, c.tape[c.head]))?;
        let mut tape = c.tape.clone();
        tape[c.head] = t.write;
        let head = match t.dir {
            Dir::L => c.head.checked_sub(1)?,
            Dir::R => {
                if c.head + 1 >= tape.len() {
                    return None;
                }
                c.head + 1
            }
        };
        Some(Config { state: t.state, head, tape })
    }

    /// Decides acceptance of `input` within `space` cells: least fixpoint
    /// of "accepting" over the reachable configuration graph.
    pub fn accepts(&self, input: &[Sym], space: usize) -> bool {
        let init = self.initial_config(input, space);
        // Forward reachability.
        let mut reach: FxHashSet<Config> = FxHashSet::default();
        let mut stack = vec![init.clone()];
        reach.insert(init.clone());
        while let Some(c) = stack.pop() {
            for branch in 0..2 {
                if let Some(n) = self.step(&c, branch) {
                    if reach.insert(n.clone()) {
                        stack.push(n);
                    }
                }
            }
        }
        // Least fixpoint of acceptance.
        let mut accepting: FxHashSet<Config> =
            reach.iter().filter(|c| c.state == self.q_yes).cloned().collect();
        loop {
            let mut changed = false;
            for c in &reach {
                if accepting.contains(c) || self.is_final(c.state) {
                    continue;
                }
                let succ: Vec<bool> = (0..2)
                    .map(|b| self.step(c, b).is_some_and(|n| accepting.contains(&n)))
                    .collect();
                let acc = if self.universal[c.state] {
                    succ[0] && succ[1] && self.step(c, 0).is_some() && self.step(c, 1).is_some()
                } else {
                    succ[0] || succ[1]
                };
                if acc {
                    accepting.insert(c.clone());
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        accepting.contains(&init)
    }

    /// Reconstructs an accepting run tree, if the machine accepts.
    pub fn accepting_run(&self, input: &[Sym], space: usize) -> Option<RunNode> {
        if !self.accepts(input, space) {
            return None;
        }
        // Re-derive the accepting set (small inputs only; clarity over
        // speed) and build the tree greedily, preferring shallow subtrees.
        let init = self.initial_config(input, space);
        let mut depth: FxHashMap<Config, usize> = FxHashMap::default();
        // Iterative deepening of the acceptance fixpoint to get ranks.
        let mut frontier: Vec<Config> = Vec::new();
        let mut reach: FxHashSet<Config> = FxHashSet::default();
        let mut stack = vec![init.clone()];
        reach.insert(init.clone());
        while let Some(c) = stack.pop() {
            for branch in 0..2 {
                if let Some(n) = self.step(&c, branch) {
                    if reach.insert(n.clone()) {
                        stack.push(n);
                    }
                }
            }
        }
        for c in &reach {
            if c.state == self.q_yes {
                depth.insert(c.clone(), 0);
                frontier.push(c.clone());
            }
        }
        let mut rank = 0usize;
        while !depth.contains_key(&init) && rank <= reach.len() {
            rank += 1;
            for c in &reach {
                if depth.contains_key(c) || self.is_final(c.state) {
                    continue;
                }
                let d = |b: usize| self.step(c, b).and_then(|n| depth.get(&n).copied());
                let acc = if self.universal[c.state] {
                    matches!((d(0), d(1)), (Some(a), Some(b)) if a.max(b) < rank)
                } else {
                    matches!(d(0), Some(a) if a < rank) || matches!(d(1), Some(b) if b < rank)
                };
                if acc {
                    depth.insert(c.clone(), rank);
                }
            }
        }
        fn build(atm: &Atm, c: &Config, depth: &FxHashMap<Config, usize>) -> RunNode {
            let mut children = Vec::new();
            if !atm.is_final(c.state) {
                let my_depth = depth[c];
                if atm.universal[c.state] {
                    for b in 0..2 {
                        let n = atm.step(c, b).expect("universal accepting node has both");
                        children.push((b, build(atm, &n, depth)));
                    }
                } else {
                    // Pick one accepting branch of smaller depth.
                    for b in 0..2 {
                        if let Some(n) = atm.step(c, b) {
                            if depth.get(&n).is_some_and(|&d| d < my_depth) {
                                children.push((b, build(atm, &n, depth)));
                                break;
                            }
                        }
                    }
                }
            }
            RunNode { config: c.clone(), children }
        }
        Some(build(self, &init, &depth))
    }
}

/// Builders for small test machines.
pub mod machines {
    use super::*;

    /// Alphabet: 0 = bit0, 1 = bit1, 2 = □, 3 = ⊲, 4 = ⊳.
    pub const BIT0: Sym = 0;
    /// Bit 1.
    pub const BIT1: Sym = 1;

    fn skeleton(num_states: usize, universal: Vec<bool>) -> Atm {
        Atm {
            num_states,
            num_syms: 5,
            initial: 0,
            q_yes: num_states - 2,
            q_no: num_states - 1,
            universal,
            blank: 2,
            lmark: 3,
            rmark: 4,
            delta: [FxHashMap::default(), FxHashMap::default()],
        }
    }

    /// Accepts everything: both branches of `q0` go straight to `q_yes`.
    pub fn always_accept() -> Atm {
        let mut m = skeleton(3, vec![false, false, false]);
        for s in 0..5 {
            for b in 0..2 {
                m.delta[b].insert((0, s), Trans { state: 1, write: s, dir: Dir::R });
            }
        }
        m
    }

    /// Rejects everything.
    pub fn always_reject() -> Atm {
        let mut m = skeleton(3, vec![false, false, false]);
        for s in 0..5 {
            for b in 0..2 {
                m.delta[b].insert((0, s), Trans { state: 2, write: s, dir: Dir::R });
            }
        }
        m
    }

    /// Accepts iff the first input bit is 1 (existential choice is
    /// irrelevant; both branches agree).
    pub fn first_bit_one() -> Atm {
        let mut m = skeleton(3, vec![false, false, false]);
        for b in 0..2 {
            m.delta[b].insert((0, BIT1), Trans { state: 1, write: BIT1, dir: Dir::R });
            m.delta[b].insert((0, BIT0), Trans { state: 2, write: BIT0, dir: Dir::R });
            m.delta[b].insert((0, m.blank), Trans { state: 2, write: 2, dir: Dir::R });
            m.delta[b].insert((0, m.rmark), Trans { state: 2, write: 4, dir: Dir::L });
            m.delta[b].insert((0, m.lmark), Trans { state: 2, write: 3, dir: Dir::R });
        }
        m
    }

    /// A universal root over two (identical) branches followed by a
    /// right-then-left shuffle and a verdict on the first bit — exercising
    /// a depth-3 run tree whose root has two children.
    pub fn universal_both_checks() -> Atm {
        // States: 0 = init (universal), 1 = right (exist.),
        // 2 = verdict (exist.), 3 = q_yes, 4 = q_no.
        let mut m = Atm {
            num_states: 5,
            num_syms: 5,
            initial: 0,
            q_yes: 3,
            q_no: 4,
            universal: vec![true, false, false, false, false],
            blank: 2,
            lmark: 3,
            rmark: 4,
            delta: [FxHashMap::default(), FxHashMap::default()],
        };
        for s in 0..5usize {
            let verdict = if s == BIT1 { 3 } else { 4 };
            for b in 0..2 {
                // Universal root: both branches step right into state 1.
                m.delta[b].insert((0, s), Trans { state: 1, write: s, dir: Dir::R });
                // Come back left onto the bit.
                m.delta[b].insert((1, s), Trans { state: 2, write: s, dir: Dir::L });
                // Verdict on the bit under the head.
                m.delta[b].insert((2, s), Trans { state: verdict, write: s, dir: Dir::R });
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::machines::*;
    use super::*;

    #[test]
    fn always_accept_and_reject() {
        assert!(machines::always_accept().accepts(&[BIT0], 4));
        assert!(!machines::always_reject().accepts(&[BIT0], 4));
        assert!(machines::always_accept().accepts(&[BIT1, BIT0], 5));
    }

    #[test]
    fn first_bit_machine() {
        let m = first_bit_one();
        assert!(m.accepts(&[BIT1], 4));
        assert!(!m.accepts(&[BIT0], 4));
        assert!(m.accepts(&[BIT1, BIT0], 5));
        assert!(!m.accepts(&[BIT0, BIT1], 5));
    }

    #[test]
    fn universal_machine_requires_both_branches() {
        let m = universal_both_checks();
        // The head starts on bit 1: branch "check-here" reads the cell
        // right of the bit and moves back; both verdicts look at the cell
        // under the head after one R one L = the original bit.
        assert!(m.accepts(&[BIT1], 4));
        assert!(!m.accepts(&[BIT0], 4));
    }

    #[test]
    fn accepting_run_is_well_formed() {
        let m = universal_both_checks();
        let run = m.accepting_run(&[BIT1], 4).expect("accepts");
        // Root is universal: two children.
        assert_eq!(run.children.len(), 2);
        // Every leaf is q_yes.
        fn leaves_ok(m: &Atm, n: &RunNode) -> bool {
            if n.children.is_empty() {
                n.config.state == m.q_yes
            } else {
                n.children.iter().all(|(_, c)| leaves_ok(m, c))
            }
        }
        assert!(leaves_ok(&m, &run));
        // Children are consistent with the step function.
        for (b, c) in &run.children {
            assert_eq!(m.step(&run.config, *b).unwrap(), c.config);
        }
        assert!(m.accepting_run(&[BIT0], 4).is_none());
    }

    #[test]
    fn initial_config_layout() {
        let m = first_bit_one();
        let c = m.initial_config(&[BIT1, BIT0], 6);
        assert_eq!(c.tape, vec![3, BIT1, BIT0, 2, 2, 4]);
        assert_eq!(c.head, 1);
        assert_eq!(c.state, 0);
    }

    #[test]
    fn boundary_moves_fail_safely() {
        let m = first_bit_one();
        let mut c = m.initial_config(&[BIT0], 4);
        c.head = 0;
        // Moving left off the tape yields None rather than a panic.
        let t = Trans { state: 1, write: 3, dir: Dir::L };
        let mut m2 = m.clone();
        m2.delta[0].insert((0, 3), t);
        assert!(m2.step(&c, 0).is_none());
    }
}
