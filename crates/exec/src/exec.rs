//! The rule executor: indexed C2RPQ evaluation and whole-transformation
//! execution with per-rule parallelism.
//!
//! Rule bodies are evaluated atom-by-atom into [`Relation`]s (one
//! product-BFS each, automata interned via [`Nfa::compiled`]) and joined
//! by backtracking with bitset candidate intersection. A
//! [`Transformation`] is executed by evaluating all rule bodies — in
//! parallel across a sharded `std::thread` worker pool, the same
//! work-stealing-free pattern `gts-engine` uses for analysis batches —
//! and assembling the output graph single-threaded in rule order, so the
//! result is deterministic regardless of thread count.

use crate::index::IndexedGraph;
use crate::rpq::{NodeCol, Relation};
use gts_core::{Rule, Transformation};
use gts_graph::{EdgeLabel, FxHashMap, FxHashSet, Graph, NodeId, NodeLabel};
use gts_query::{C2rpq, Nfa, Uc2rpq};
use std::collections::BTreeSet;

/// A node fact `A(f_A(t̄))` over constructor keys.
pub type NodeFact = (NodeLabel, Vec<NodeId>);
/// An edge fact `r(f(t̄), f'(t̄'))` over constructor keys.
pub type EdgeFact = (NodeFact, EdgeLabel, NodeFact);

/// Execution options.
#[derive(Clone, Debug)]
pub struct ExecOptions {
    /// Worker threads for rule-body evaluation; `0` (the default) picks
    /// the available parallelism (capped at 8), `1` runs inline.
    pub threads: usize,
    /// Minimum estimated work (`rules × (nodes + edges)`) before the
    /// *auto* mode (`threads == 0`) shards across threads — below it,
    /// spawning workers costs more than the evaluation saves (see
    /// `BENCH_exec.json::parallel_cutoff`). `0` disables the cutoff; an
    /// explicit `threads >= 2` always shards as requested. The default
    /// value [`DEFAULT_MIN_PARALLEL_WORK`] is a *placeholder*: auto mode
    /// replaces it with the process-wide measured cutoff
    /// ([`parallel_cutoff`]), which derives the crossover from this
    /// host's spawn overhead and per-element evaluation throughput
    /// instead of a constant baked in on some other machine. Set any
    /// other non-zero value to pin an explicit cutoff.
    pub min_parallel_work: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { threads: 0, min_parallel_work: DEFAULT_MIN_PARALLEL_WORK }
    }
}

/// Fallback sharding threshold of [`ExecOptions::min_parallel_work`]:
/// roughly "a multi-rule transformation over a ≥2k-element instance".
/// Auto mode treats this exact value as "use the measured cutoff"; it is
/// also the floor of the calibrated range.
pub const DEFAULT_MIN_PARALLEL_WORK: usize = 8_192;

/// The measured sharding crossover for this host (computed once per
/// process, a few milliseconds of micro-measurement).
#[derive(Clone, Debug)]
pub struct ParallelCutoff {
    /// Cores the auto mode would use (`available_parallelism`, capped 8).
    pub cores: usize,
    /// Measured cost of spawning + joining that many scoped threads, µs.
    pub spawn_overhead_micros: u64,
    /// Measured single-threaded evaluation throughput, in nanoseconds per
    /// instance element (node or edge) on a synthetic chain workload.
    pub eval_nanos_per_element: f64,
    /// The derived cutoff: estimated work (`rules × elements`) below
    /// which sharding cannot recoup its spawn overhead (with a 2× safety
    /// margin), clamped to `[DEFAULT_MIN_PARALLEL_WORK, 2^22]`.
    pub min_parallel_work: usize,
}

/// Measures (once) and returns this host's sharding crossover. On a
/// single-core host the cutoff is irrelevant — auto mode never shards —
/// but the throughput numbers are still measured for the bench report.
pub fn parallel_cutoff() -> &'static ParallelCutoff {
    static CELL: std::sync::OnceLock<ParallelCutoff> = std::sync::OnceLock::new();
    CELL.get_or_init(|| {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8);
        let spawn_overhead_micros = (0..3)
            .map(|_| {
                let t0 = std::time::Instant::now();
                std::thread::scope(|scope| {
                    for _ in 0..cores {
                        scope.spawn(|| std::hint::black_box(0u64));
                    }
                });
                t0.elapsed().as_micros() as u64
            })
            .min()
            .unwrap_or(0);
        // Synthetic chain: `A · r` over a labeled 4k-node chain — a
        // linear-time single-atom evaluation whose cost per element
        // approximates the executor's scan-dominated regime.
        let n: usize = 4_096;
        let mut vocab = gts_graph::Vocab::new();
        let a = vocab.node_label("CalibA");
        let r = vocab.edge_label("calib_r");
        let mut g = Graph::new();
        let first = g.add_labeled_node([a]);
        let mut prev = first;
        for _ in 1..n {
            let next = g.add_labeled_node([a]);
            g.add_edge(prev, r, next);
            prev = next;
        }
        let idx = IndexedGraph::build(&g);
        let q = C2rpq::new(
            2,
            vec![gts_query::Var(0), gts_query::Var(1)],
            vec![gts_query::Atom {
                x: gts_query::Var(0),
                y: gts_query::Var(1),
                regex: gts_query::Regex::node(a).then(gts_query::Regex::edge(r)),
            }],
        );
        let eval_nanos = (0..3)
            .map(|_| {
                let t0 = std::time::Instant::now();
                std::hint::black_box(eval_c2rpq(&idx, &q));
                t0.elapsed().as_nanos() as u64
            })
            .min()
            .unwrap_or(0);
        let elements = (g.num_nodes() + g.num_edges()) as f64;
        let eval_nanos_per_element = (eval_nanos as f64 / elements).max(0.1);
        // Sharding across c cores saves ~work·t_elem·(1 − 1/c) and costs
        // the spawn overhead; cut over at twice the break-even point.
        let saved_frac = 1.0 - 1.0 / cores.max(2) as f64;
        let break_even =
            (spawn_overhead_micros as f64 * 1_000.0) / (eval_nanos_per_element * saved_frac);
        let min_parallel_work =
            ((2.0 * break_even) as usize).clamp(DEFAULT_MIN_PARALLEL_WORK, 1 << 22);
        ParallelCutoff { cores, spawn_overhead_micros, eval_nanos_per_element, min_parallel_work }
    })
}

impl ExecOptions {
    /// `true` iff these options would shard rule evaluation across
    /// threads for the given work (the single source of the sharding
    /// policy — benches report it rather than re-deriving it).
    pub fn would_shard(&self, work_items: usize, instance_size: usize) -> bool {
        self.resolve_threads_for(work_items, instance_size) > 1
    }

    /// Threads for one instance, given the work items (rules) and the
    /// instance size. An explicit `threads >= 1` is honored as requested;
    /// the work-size cutoff only gates the `threads == 0` auto mode (the
    /// path where silently sharding small instances was a measured
    /// regression).
    fn resolve_threads_for(&self, work_items: usize, instance_size: usize) -> usize {
        let t = match self.threads {
            0 => {
                let estimated_work = work_items.saturating_mul(instance_size.max(1));
                let cutoff = if self.min_parallel_work == DEFAULT_MIN_PARALLEL_WORK {
                    parallel_cutoff().min_parallel_work
                } else {
                    self.min_parallel_work
                };
                if cutoff > 0 && estimated_work < cutoff {
                    return 1;
                }
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
            }
            t => t,
        };
        t.clamp(1, work_items.max(1))
    }
}

/// Evaluates a C2RPQ over the index, returning the sorted, deduplicated
/// answer tuples (aligned with [`C2rpq::free`]). Agrees with
/// [`C2rpq::eval`] on every graph (the property suites enforce this).
pub fn eval_c2rpq(idx: &IndexedGraph, q: &C2rpq) -> Vec<Vec<NodeId>> {
    let rels: Vec<Relation> =
        q.atoms.iter().map(|a| Relation::build(idx, &Nfa::compiled(&a.regex))).collect();
    eval_c2rpq_with(idx, q, &rels.iter().collect::<Vec<_>>())
}

/// [`eval_c2rpq`] over pre-built atom relations (one reference per atom,
/// so the incremental engine can share one relation between rules) — the
/// entry point that patches relations in place instead of rebuilding them
/// per evaluation.
pub(crate) fn eval_c2rpq_with(
    idx: &IndexedGraph,
    q: &C2rpq,
    rels: &[&Relation],
) -> Vec<Vec<NodeId>> {
    if rels.iter().any(|r| r.is_empty()) && !q.atoms.is_empty() {
        return Vec::new();
    }
    // Fast paths for single-atom bodies whose answer tuple is exactly the
    // atom's endpoints — the shape of every copy and rewire rule. The
    // relation already is the (distinct) answer set; skip the join.
    if let [a] = q.atoms.as_slice() {
        let rel = &rels[0];
        if a.x != a.y && q.num_vars == 2 {
            if q.free == [a.x, a.y] {
                return rel.iter_pairs().map(|(u, v)| vec![u, v]).collect();
            }
            if q.free == [a.y, a.x] {
                let mut out: Vec<Vec<NodeId>> = rel.iter_pairs().map(|(u, v)| vec![v, u]).collect();
                out.sort();
                return out;
            }
            if q.free.is_empty() {
                return vec![Vec::new()]; // non-empty relation: ∃x,y. φ(x,y)
            }
        }
        if a.x == a.y && q.num_vars == 1 {
            let mut diagonal = rel.src_support().iter().filter(|&u| rel.contains(u, u));
            if q.free == [a.x] {
                return diagonal.map(|u| vec![NodeId(u)]).collect();
            }
            if q.free.is_empty() {
                return if diagonal.next().is_some() { vec![Vec::new()] } else { Vec::new() };
            }
        }
    }
    let mut answers: FxHashSet<Vec<NodeId>> = FxHashSet::default();
    let mut asg: Vec<Option<u32>> = vec![None; q.num_vars as usize];
    backtrack(idx, q, rels, 0, &mut asg, &mut answers);
    let mut out: Vec<Vec<NodeId>> = answers.into_iter().collect();
    out.sort();
    out
}

fn backtrack(
    idx: &IndexedGraph,
    q: &C2rpq,
    rels: &[&Relation],
    var: u32,
    asg: &mut Vec<Option<u32>>,
    answers: &mut FxHashSet<Vec<NodeId>>,
) {
    if var == q.num_vars {
        answers
            .insert(q.free.iter().map(|v| NodeId(asg[v.0 as usize].expect("assigned"))).collect());
        return;
    }
    // Candidate narrowing: atoms connecting `var` to an already-assigned
    // variable contribute their (sorted CSR) relation column; every other
    // atom touching `var` contributes its column-support bitset (a value
    // with no pair in some touching relation can never extend). The
    // shortest column seeds the domain; the rest filter it.
    let mut columns: Vec<&[u32]> = Vec::new();
    let mut supports: Vec<&NodeCol> = Vec::new();
    for (i, a) in q.atoms.iter().enumerate() {
        if a.x.0 == var {
            if a.y.0 < var {
                columns.push(rels[i].sources_of(asg[a.y.0 as usize].expect("assigned")));
            } else {
                supports.push(rels[i].src_support());
            }
        }
        if a.y.0 == var {
            if a.x.0 < var {
                columns.push(rels[i].targets_of(asg[a.x.0 as usize].expect("assigned")));
            } else {
                supports.push(rels[i].tgt_support());
            }
        }
    }
    let domain: Vec<u32> = if let Some(seed) = columns.iter().min_by_key(|c| c.len()).copied() {
        seed.iter()
            .copied()
            .filter(|&v| {
                columns.iter().all(|c| std::ptr::eq(*c, seed) || c.binary_search(&v).is_ok())
                    && supports.iter().all(|s| s.contains(v))
            })
            .collect()
    } else if !supports.is_empty() {
        let (first, rest) = supports.split_first().expect("non-empty");
        first.iter().filter(|&v| rest.iter().all(|s| s.contains(v))).collect()
    } else {
        idx.all_nodes().iter().collect()
    };
    'outer: for node in domain {
        asg[var as usize] = Some(node);
        // Validate exactly the atoms whose last endpoint is `var` —
        // earlier atoms were validated when their own last endpoint was
        // assigned and have not changed since.
        for (i, a) in q.atoms.iter().enumerate() {
            if a.x.0.max(a.y.0) == var {
                let (ux, uy) = (
                    asg[a.x.0 as usize].expect("assigned"),
                    asg[a.y.0 as usize].expect("assigned"),
                );
                if !rels[i].contains(ux, uy) {
                    asg[var as usize] = None;
                    continue 'outer;
                }
            }
        }
        backtrack(idx, q, rels, var + 1, asg, answers);
        asg[var as usize] = None;
    }
}

/// Union evaluation: sorted, deduplicated answers across all disjuncts.
pub fn eval_uc2rpq(idx: &IndexedGraph, u: &Uc2rpq) -> Vec<Vec<NodeId>> {
    let mut out: BTreeSet<Vec<NodeId>> = BTreeSet::new();
    for q in &u.disjuncts {
        out.extend(eval_c2rpq(idx, q));
    }
    out.into_iter().collect()
}

/// Evaluates every rule body of `t` over the index; returns one sorted
/// tuple list per rule, in rule order. This is the parallel section of
/// [`execute_with`]: rules are dealt round-robin into one shard per
/// worker, workers share only the immutable index.
pub fn eval_rule_bodies(
    idx: &IndexedGraph,
    t: &Transformation,
    opts: &ExecOptions,
) -> Vec<Vec<Vec<NodeId>>> {
    let _span = gts_obs::span("rule_eval");
    let start = gts_obs::enabled().then(std::time::Instant::now);
    let out = eval_rule_bodies_inner(idx, t, opts);
    if let Some(t0) = start {
        phase_metrics().rule_eval.record(t0.elapsed().as_micros() as u64);
    }
    out
}

fn eval_rule_bodies_inner(
    idx: &IndexedGraph,
    t: &Transformation,
    opts: &ExecOptions,
) -> Vec<Vec<Vec<NodeId>>> {
    let bodies: Vec<&C2rpq> = t
        .rules
        .iter()
        .map(|rule| match rule {
            Rule::Node(r) => &r.body,
            Rule::Edge(r) => &r.body,
        })
        .collect();
    let instance_size = idx.num_nodes() + idx.num_edges();
    let workers = opts.resolve_threads_for(bodies.len(), instance_size);
    if workers <= 1 {
        return bodies.into_iter().map(|b| eval_c2rpq(idx, b)).collect();
    }
    let mut shards: Vec<Vec<(usize, &C2rpq)>> = vec![Vec::new(); workers];
    for (i, body) in bodies.iter().enumerate() {
        shards[i % workers].push((i, body));
    }
    let mut slots: Vec<Option<Vec<Vec<NodeId>>>> = (0..bodies.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|shard| {
                scope.spawn(move || {
                    shard
                        .into_iter()
                        .map(|(i, body)| (i, eval_c2rpq(idx, body)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (i, tuples) in handle.join().expect("executor worker panicked") {
                slots[i] = Some(tuples);
            }
        }
    });
    slots.into_iter().map(|s| s.expect("every rule evaluated")).collect()
}

/// Executes the transformation over a pre-built index.
pub fn execute_indexed(idx: &IndexedGraph, t: &Transformation, opts: &ExecOptions) -> Graph {
    let per_rule = eval_rule_bodies(idx, t, opts);
    assemble(t, &per_rule)
}

/// Executes `t` on `g` through the indexed engine with explicit options.
pub fn execute_with(t: &Transformation, g: &Graph, opts: &ExecOptions) -> Graph {
    execute_indexed(&IndexedGraph::build(g), t, opts)
}

/// Executes `t` on `g` through the indexed engine with default options
/// (automatic thread count). Produces a graph equal to
/// [`Transformation::apply`] up to constructed-node renaming; compare via
/// [`output_facts`] / [`Transformation::output_facts`].
pub fn execute(t: &Transformation, g: &Graph) -> Graph {
    execute_with(t, g, &ExecOptions::default())
}

/// Assembles the output graph from per-rule tuples, in rule order with
/// sorted tuples — fully deterministic. Unary constructors (the common
/// case: copy rules) are interned through a dedicated map with an inline
/// key, avoiding one heap allocation per constructed-node lookup.
pub(crate) fn assemble(t: &Transformation, per_rule: &[Vec<Vec<NodeId>>]) -> Graph {
    let _span = gts_obs::span("assembly");
    let start = gts_obs::enabled().then(std::time::Instant::now);
    let out = assemble_inner(t, per_rule);
    if let Some(t0) = start {
        phase_metrics().assembly.record(t0.elapsed().as_micros() as u64);
    }
    out
}

/// The per-phase latency histograms of the executor, resolved once
/// (`gts_exec_phase_micros{phase=…}` in the global registry).
pub(crate) struct PhaseMetrics {
    pub(crate) index_build: gts_obs::Histogram,
    pub(crate) rule_eval: gts_obs::Histogram,
    pub(crate) assembly: gts_obs::Histogram,
    pub(crate) index_patch: gts_obs::Histogram,
    pub(crate) delta_apply: gts_obs::Histogram,
}

pub(crate) fn phase_metrics() -> &'static PhaseMetrics {
    static CELLS: std::sync::OnceLock<PhaseMetrics> = std::sync::OnceLock::new();
    CELLS.get_or_init(|| {
        let reg = gts_obs::global();
        let name = "gts_exec_phase_micros";
        let help = "Executor phase latency (index build/patch, rule evaluation, assembly, delta)";
        PhaseMetrics {
            index_build: reg.histogram(name, help, &[("phase", "index_build")]),
            rule_eval: reg.histogram(name, help, &[("phase", "rule_eval")]),
            assembly: reg.histogram(name, help, &[("phase", "assembly")]),
            index_patch: reg.histogram(name, help, &[("phase", "index_patch")]),
            delta_apply: reg.histogram(name, help, &[("phase", "delta_apply")]),
        }
    })
}

fn assemble_inner(t: &Transformation, per_rule: &[Vec<Vec<NodeId>>]) -> Graph {
    let mut out = Graph::new();
    let total: usize = per_rule.iter().map(Vec::len).sum();
    let mut ctor1: FxHashMap<(NodeLabel, NodeId), NodeId> = FxHashMap::default();
    let mut ctorn: FxHashMap<(NodeLabel, Vec<NodeId>), NodeId> = FxHashMap::default();
    ctor1.reserve(total);
    let mut construct = |out: &mut Graph, label: NodeLabel, args: &[NodeId]| -> NodeId {
        match args {
            [arg] => *ctor1.entry((label, *arg)).or_insert_with(|| out.add_node()),
            _ => *ctorn.entry((label, args.to_vec())).or_insert_with(|| out.add_node()),
        }
    };
    for (rule, tuples) in t.rules.iter().zip(per_rule) {
        match rule {
            Rule::Node(r) => {
                for tuple in tuples {
                    let node = construct(&mut out, r.label, tuple);
                    out.add_label(node, r.label);
                }
            }
            Rule::Edge(r) => {
                for tuple in tuples {
                    let (x, y) = tuple.split_at(r.src_arity);
                    let src = construct(&mut out, r.src_label, x);
                    let tgt = construct(&mut out, r.tgt_label, y);
                    out.add_edge(src, r.edge, tgt);
                }
            }
        }
    }
    out
}

/// Executes the transformation over a pre-built index, returning both
/// the output graph and its canonical facts while evaluating each rule
/// body only once (what the differential harness wants per instance).
pub fn execute_and_facts(
    idx: &IndexedGraph,
    t: &Transformation,
    opts: &ExecOptions,
) -> (Graph, (BTreeSet<NodeFact>, BTreeSet<EdgeFact>)) {
    let per_rule = eval_rule_bodies(idx, t, opts);
    (assemble(t, &per_rule), facts_of(t, &per_rule))
}

/// The output of `t` on the indexed graph as canonical facts over
/// constructor keys — directly comparable with
/// [`Transformation::output_facts`], which is how the differential
/// harness checks indexed-vs-naive agreement and output equality.
pub fn output_facts(
    idx: &IndexedGraph,
    t: &Transformation,
    opts: &ExecOptions,
) -> (BTreeSet<NodeFact>, BTreeSet<EdgeFact>) {
    let per_rule = eval_rule_bodies(idx, t, opts);
    facts_of(t, &per_rule)
}

/// Canonical facts of pre-evaluated rule tuples.
fn facts_of(
    t: &Transformation,
    per_rule: &[Vec<Vec<NodeId>>],
) -> (BTreeSet<NodeFact>, BTreeSet<EdgeFact>) {
    let mut nodes = BTreeSet::new();
    let mut edges = BTreeSet::new();
    for (rule, tuples) in t.rules.iter().zip(per_rule) {
        match rule {
            Rule::Node(r) => {
                for tuple in tuples {
                    nodes.insert((r.label, tuple.clone()));
                }
            }
            Rule::Edge(r) => {
                for tuple in tuples {
                    let (x, y) = tuple.split_at(r.src_arity);
                    edges.insert(((r.src_label, x.to_vec()), r.edge, (r.tgt_label, y.to_vec())));
                }
            }
        }
    }
    (nodes, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_core::medical_transformation;
    use gts_graph::Vocab;
    use gts_query::{Atom, Regex, Var};

    fn medical_graph(v: &mut Vocab) -> Graph {
        let vaccine = v.node_label("Vaccine");
        let antigen = v.node_label("Antigen");
        let pathogen = v.node_label("Pathogen");
        let dt = v.edge_label("designTarget");
        let cr = v.edge_label("crossReacting");
        let ex = v.edge_label("exhibits");
        let mut g = Graph::new();
        let vac = g.add_labeled_node([vaccine]);
        let a1 = g.add_labeled_node([antigen]);
        let a2 = g.add_labeled_node([antigen]);
        let a3 = g.add_labeled_node([antigen]);
        let p = g.add_labeled_node([pathogen]);
        g.add_edge(vac, dt, a1);
        g.add_edge(a1, cr, a2);
        g.add_edge(a2, cr, a3);
        g.add_edge(p, ex, a1);
        g.add_edge(p, ex, a2);
        g.add_edge(p, ex, a3);
        g
    }

    #[test]
    fn eval_agrees_with_naive_on_example_3_2() {
        let mut v = Vocab::new();
        let g = medical_graph(&mut v);
        let vaccine = v.find_node_label("Vaccine").unwrap();
        let antigen = v.find_node_label("Antigen").unwrap();
        let dt = v.find_edge_label("designTarget").unwrap();
        let cr = v.find_edge_label("crossReacting").unwrap();
        let re = Regex::node(vaccine)
            .then(Regex::edge(dt))
            .then(Regex::edge(cr).star())
            .then(Regex::node(antigen));
        let q = C2rpq::new(2, vec![Var(0), Var(1)], vec![Atom { x: Var(0), y: Var(1), regex: re }]);
        let idx = IndexedGraph::build(&g);
        let indexed = eval_c2rpq(&idx, &q);
        let naive: BTreeSet<Vec<NodeId>> = q.eval(&g).into_iter().collect();
        assert_eq!(indexed, naive.into_iter().collect::<Vec<_>>());
        assert_eq!(indexed.len(), 3);
    }

    #[test]
    fn multi_atom_join_agrees_with_naive() {
        let mut v = Vocab::new();
        let g = medical_graph(&mut v);
        let pathogen = v.find_node_label("Pathogen").unwrap();
        let ex = v.find_edge_label("exhibits").unwrap();
        let cr = v.find_edge_label("crossReacting").unwrap();
        // q(x, z) = ∃y. Pathogen(x) ∧ exhibits(x, y) ∧ crossReacting(y, z)
        let q = C2rpq::new(
            3,
            vec![Var(0), Var(2)],
            vec![
                Atom { x: Var(0), y: Var(0), regex: Regex::node(pathogen) },
                Atom { x: Var(0), y: Var(1), regex: Regex::edge(ex) },
                Atom { x: Var(1), y: Var(2), regex: Regex::edge(cr) },
            ],
        );
        let idx = IndexedGraph::build(&g);
        let indexed = eval_c2rpq(&idx, &q);
        let mut naive: Vec<Vec<NodeId>> = q.eval(&g).into_iter().collect();
        naive.sort();
        assert_eq!(indexed, naive);
        assert!(!indexed.is_empty());
    }

    #[test]
    fn execute_matches_apply_on_example_4_1() {
        let mut v = Vocab::new();
        let t = medical_transformation(&mut v);
        let g = medical_graph(&mut v);
        let out = execute(&t, &g);
        let naive = t.apply(&g);
        assert_eq!(out.num_nodes(), naive.num_nodes());
        assert_eq!(out.num_edges(), naive.num_edges());
        let idx = IndexedGraph::build(&g);
        assert_eq!(output_facts(&idx, &t, &ExecOptions::default()), t.output_facts(&g));
    }

    #[test]
    fn threaded_execution_is_deterministic() {
        let mut v = Vocab::new();
        let t = medical_transformation(&mut v);
        let g = medical_graph(&mut v);
        let one = execute_with(&t, &g, &ExecOptions { threads: 1, min_parallel_work: 0 });
        let four = execute_with(&t, &g, &ExecOptions { threads: 4, min_parallel_work: 0 });
        // Determinism is exact graph equality, not just fact equality.
        assert_eq!(one.num_nodes(), four.num_nodes());
        assert_eq!(
            one.edges().collect::<Vec<_>>(),
            four.edges().collect::<Vec<_>>(),
            "thread count must not change the output graph"
        );
    }

    #[test]
    fn empty_transformation_and_empty_graph() {
        let t = Transformation::new();
        let g = Graph::new();
        assert_eq!(execute(&t, &g).num_nodes(), 0);
        let mut v = Vocab::new();
        let t0 = medical_transformation(&mut v);
        assert_eq!(execute(&t0, &Graph::new()).num_nodes(), 0);
    }

    #[test]
    fn boolean_body_yields_empty_tuple() {
        // A node rule with a Boolean body constructs one constant node iff
        // the body holds.
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let mark = v.node_label("NonEmpty");
        let q = C2rpq::new(1, vec![], vec![Atom { x: Var(0), y: Var(0), regex: Regex::node(a) }]);
        let mut t = Transformation::new();
        t.add_node_rule(mark, q);
        let mut g = Graph::new();
        g.add_labeled_node([a]);
        assert_eq!(execute(&t, &g).num_nodes(), 1);
        assert_eq!(execute(&t, &Graph::new()).num_nodes(), 0);
    }
}
