//! Immutable, query-optimized graph indexes.
//!
//! [`IndexedGraph`] is the execution engine's view of a
//! [`gts_graph::Graph`]: CSR (compressed sparse row) forward and reverse
//! adjacency *per edge label*, plus one node bitset per node label. It is
//! built once per instance and shared read-only by every rule evaluation —
//! the product-BFS of [`crate::rpq`] then walks plain integer slices
//! instead of filtering hash-backed adjacency lists per step.
//!
//! Million-node instances get two extra affordances:
//!
//! * **chunked parallel construction** ([`IndexBuildOptions::threads`]):
//!   edges are partitioned per label by scoped workers over contiguous
//!   node ranges, then the per-(label, direction) counting-sort fills run
//!   in parallel across the same worker pool — the sharded
//!   work-dealing pattern `gts-engine` uses for analysis batches;
//! * **memory-budget accounting** ([`IndexedGraph::approx_bytes`],
//!   [`IndexBuildOptions::budget_bytes`]): the exact CSR footprint is
//!   known from the partition counts *before* the big allocations happen,
//!   so a budgeted build fails with [`IndexError::BudgetExceeded`] instead
//!   of OOM-ing the process mid-fill.
//!
//! Rows are kept sorted by ascending node id: the product-BFS marks every
//! scanned target in a stamped visited table indexed by node id, so
//! ascending rows turn that table's accesses into forward sweeps. The
//! degree array ([`IndexedGraph::degree`]) orders BFS *sources* instead —
//! hubs first — which is where degree ordering actually pays (longest
//! per-source searches scheduled before the tail).

use gts_graph::{EdgeLabel, EdgeSym, Graph, LabelSet, NodeId, NodeLabel};

/// A structured index-construction failure. Carried up to the engine and
/// rendered as a `bad_request`-style wire error by `gts-serve` instead of
/// silently corrupting adjacency or aborting the process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IndexError {
    /// One CSR would need more than `u32::MAX` target slots; 32-bit
    /// offsets would silently truncate past this point.
    TooManyEdges {
        /// Raw edge-label index of the overflowing CSR.
        label: u32,
        /// The target count that no longer fits.
        targets: usize,
    },
    /// A budgeted build ([`IndexBuildOptions::budget_bytes`]) predicted a
    /// footprint past the budget and refused to allocate.
    BudgetExceeded {
        /// Predicted index footprint in bytes.
        approx_bytes: usize,
        /// The configured budget in bytes.
        budget_bytes: usize,
    },
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::TooManyEdges { label, targets } => write!(
                f,
                "graph index overflow: edge label {label} has {targets} targets \
                 (the CSR limit is {})",
                u32::MAX
            ),
            IndexError::BudgetExceeded { approx_bytes, budget_bytes } => write!(
                f,
                "graph index over memory budget: needs ~{approx_bytes} bytes, \
                 budget is {budget_bytes}"
            ),
        }
    }
}

impl std::error::Error for IndexError {}

/// Options for [`IndexedGraph::try_build_with`].
#[derive(Clone, Debug, Default)]
pub struct IndexBuildOptions {
    /// Worker threads for the chunked partition + fill; `0` (the default)
    /// picks the available parallelism (capped at 8) once the graph is
    /// large enough to amortize the spawns, `1` forces the serial path.
    pub threads: usize,
    /// Refuse to build when the predicted footprint
    /// ([`IndexedGraph::approx_bytes`]) exceeds this many bytes.
    pub budget_bytes: Option<usize>,
}

/// Below this many edges the chunked build's thread spawns cost more than
/// the fill saves; auto mode (`threads == 0`) stays serial under it.
const MIN_CHUNKED_EDGES: usize = 1 << 16;

impl IndexBuildOptions {
    fn resolve_threads(&self, num_edges: usize) -> usize {
        match self.threads {
            0 if num_edges < MIN_CHUNKED_EDGES => 1,
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8),
            t => t,
        }
    }
}

/// One CSR structure over node-id rows: `targets[offsets[u] ..
/// offsets[u+1]]` are the neighbors of node `u`. Shared by the adjacency
/// index here and by [`crate::rpq::Relation`]'s pair columns.
#[derive(Clone, Debug, Default)]
pub(crate) struct Csr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Csr {
    /// Guards the 32-bit offset representation: past `u32::MAX` targets
    /// the prefix sums would wrap and silently corrupt adjacency.
    fn check_len(label: u32, targets: usize) -> Result<(), IndexError> {
        if targets > u32::MAX as usize {
            return Err(IndexError::TooManyEdges { label, targets });
        }
        Ok(())
    }

    /// Counting-sort fill over one or more edge-pair chunks (the chunked
    /// parallel build hands each label its per-worker partitions without
    /// concatenating them first).
    fn try_fill_parts(
        num_nodes: usize,
        label: u32,
        parts: &[&[(u32, u32)]],
    ) -> Result<Csr, IndexError> {
        let total: usize = parts.iter().map(|p| p.len()).sum();
        Csr::check_len(label, total)?;
        let mut offsets = vec![0u32; num_nodes + 1];
        for part in parts {
            for &(src, _) in *part {
                offsets[src as usize + 1] += 1;
            }
        }
        for i in 0..num_nodes {
            offsets[i + 1] += offsets[i];
        }
        let mut targets = vec![0u32; total];
        let mut cursor = offsets.clone();
        for part in parts {
            for &(src, tgt) in *part {
                targets[cursor[src as usize] as usize] = tgt;
                cursor[src as usize] += 1;
            }
        }
        Ok(Csr { offsets, targets })
    }

    /// Builds from pair chunks in arbitrary order, sorting each row so
    /// neighbor slices are deterministic regardless of insertion order.
    pub(crate) fn try_build_parts(
        num_nodes: usize,
        label: u32,
        parts: &[&[(u32, u32)]],
    ) -> Result<Csr, IndexError> {
        let mut csr = Csr::try_fill_parts(num_nodes, label, parts)?;
        for u in 0..num_nodes {
            csr.targets[csr.offsets[u] as usize..csr.offsets[u + 1] as usize].sort_unstable();
        }
        Ok(csr)
    }

    /// Builds from pairs already sorted lexicographically (rows come out
    /// sorted without the per-row sort).
    pub(crate) fn from_sorted_pairs(num_nodes: usize, pairs: &[(u32, u32)]) -> Csr {
        Csr::check_len(0, pairs.len()).unwrap_or_else(|e| panic!("{e}"));
        Csr::try_fill_parts(num_nodes, 0, &[pairs]).expect("length checked")
    }

    /// An empty CSR with `num_nodes` rows.
    pub(crate) fn empty(num_nodes: usize) -> Csr {
        Csr { offsets: vec![0; num_nodes + 1], targets: Vec::new() }
    }

    /// Appends empty rows until there are `num_nodes` rows.
    pub(crate) fn grow_rows(&mut self, num_nodes: usize) {
        let last = *self.offsets.last().unwrap_or(&0);
        while self.offsets.len() < num_nodes + 1 {
            self.offsets.push(last);
        }
    }

    /// Number of rows.
    pub(crate) fn num_rows(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Approximate heap footprint in bytes.
    pub(crate) fn approx_bytes(&self) -> usize {
        (self.offsets.capacity() + self.targets.capacity()) * std::mem::size_of::<u32>()
    }

    #[inline]
    pub(crate) fn row(&self, u: u32) -> &[u32] {
        &self.targets[self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize]
    }
}

/// An immutable index of a finite graph, optimized for regular-path
/// evaluation: per-edge-label CSR adjacency in both directions and
/// per-node-label node bitsets.
#[derive(Clone, Debug)]
pub struct IndexedGraph {
    num_nodes: usize,
    /// `fwd[l]` / `rev[l]`: CSR adjacency of edge label `l` (forward /
    /// reverse orientation). Labels beyond the graph's maximum are absent.
    fwd: Vec<Csr>,
    rev: Vec<Csr>,
    /// `by_label[a]`: bitset of nodes carrying node label `a`.
    by_label: Vec<LabelSet>,
    /// All nodes, as a bitset (the universal frontier).
    all_nodes: LabelSet,
    /// Total (in + out) degree per node — the scheduling hint behind
    /// degree-ordered source iteration in [`crate::rpq::Relation::build`].
    degree: Vec<u32>,
    num_edges: usize,
}

impl IndexedGraph {
    /// Builds the index with default options; `O(|V| + |E| log deg)` time,
    /// touching each edge twice (once per direction). Panics on
    /// [`IndexError`] (only reachable past `u32::MAX` targets per label);
    /// fallible callers use [`IndexedGraph::try_build_with`].
    pub fn build(g: &Graph) -> IndexedGraph {
        IndexedGraph::try_build_with(g, &IndexBuildOptions::default())
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the index with explicit thread and budget options,
    /// returning a structured error instead of corrupting adjacency
    /// (offset overflow) or allocating past the budget.
    pub fn try_build_with(g: &Graph, opts: &IndexBuildOptions) -> Result<IndexedGraph, IndexError> {
        let _span = gts_obs::span("index_build");
        let start = gts_obs::enabled().then(std::time::Instant::now);
        let out = IndexedGraph::build_inner(g, opts);
        if let Some(t0) = start {
            crate::exec::phase_metrics().index_build.record(t0.elapsed().as_micros() as u64);
        }
        out
    }

    fn build_inner(g: &Graph, opts: &IndexBuildOptions) -> Result<IndexedGraph, IndexError> {
        let n = g.num_nodes();
        let workers = opts.resolve_threads(g.num_edges()).clamp(1, n.max(1));
        // Partition edges per label, forward and reverse, each worker
        // scanning a contiguous node range (every edge is seen exactly
        // once per direction via its endpoints' incident lists).
        let parts: Vec<EdgeParts> = if workers <= 1 {
            vec![partition_range(g, 0, n)]
        } else {
            let chunk = n.div_ceil(workers);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        scope.spawn(move || partition_range(g, w * chunk, ((w + 1) * chunk).min(n)))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("partition worker panicked")).collect()
            })
        };
        let num_labels = parts.iter().map(|p| p.fwd.len()).max().unwrap_or(0);

        // The budget gate: CSR sizes are exact functions of the partition
        // counts, so the check runs before the big allocations.
        if let Some(budget) = opts.budget_bytes {
            let per_label_targets: usize =
                parts.iter().map(|p| p.fwd.iter().map(Vec::len).sum::<usize>()).sum();
            let u32s = 2 * num_labels * (n + 1)   // fwd+rev offsets
                + 2 * per_label_targets           // fwd+rev targets (rev mirrors fwd)
                + n; // degree array
            let approx = u32s * std::mem::size_of::<u32>() + n / 8; // + all_nodes bitset
            if approx > budget {
                return Err(IndexError::BudgetExceeded {
                    approx_bytes: approx,
                    budget_bytes: budget,
                });
            }
        }

        // Parallel counting-sort fill: one work unit per (label,
        // direction), dealt round-robin across the same worker count.
        let mut units: Vec<(usize, bool)> = Vec::with_capacity(num_labels * 2);
        for l in 0..num_labels {
            units.push((l, false));
            units.push((l, true));
        }
        let fill = |&(l, is_rev): &(usize, bool)| -> Result<(usize, bool, Csr), IndexError> {
            let chunks: Vec<&[(u32, u32)]> = parts
                .iter()
                .filter_map(|p| {
                    let side = if is_rev { &p.rev } else { &p.fwd };
                    side.get(l).map(Vec::as_slice)
                })
                .collect();
            Ok((l, is_rev, Csr::try_build_parts(n, l as u32, &chunks)?))
        };
        let mut fwd: Vec<Csr> = vec![Csr::default(); num_labels];
        let mut rev: Vec<Csr> = vec![Csr::default(); num_labels];
        if workers <= 1 || units.len() <= 1 {
            for unit in &units {
                let (l, is_rev, csr) = fill(unit)?;
                if is_rev {
                    rev[l] = csr;
                } else {
                    fwd[l] = csr;
                }
            }
        } else {
            let num_shards = workers.min(units.len());
            let mut shards: Vec<Vec<&(usize, bool)>> = vec![Vec::new(); num_shards];
            for (i, unit) in units.iter().enumerate() {
                shards[i % num_shards].push(unit);
            }
            let fill = &fill;
            let built = std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .into_iter()
                    .map(|shard| {
                        scope.spawn(move || {
                            shard.into_iter().map(fill).collect::<Result<Vec<_>, _>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("fill worker panicked"))
                    .collect::<Result<Vec<_>, _>>()
            })?;
            for (l, is_rev, csr) in built.into_iter().flatten() {
                if is_rev {
                    rev[l] = csr;
                } else {
                    fwd[l] = csr;
                }
            }
        }

        let max_node_label = g
            .nodes()
            .filter_map(|u| g.labels(u).iter().max())
            .max()
            .map(|l| l as usize + 1)
            .unwrap_or(0);
        let mut by_label = vec![LabelSet::new(); max_node_label];
        for u in g.nodes() {
            for l in g.labels(u).iter() {
                by_label[l as usize].insert(u.0);
            }
        }
        let mut idx = IndexedGraph {
            num_nodes: n,
            fwd,
            rev,
            by_label,
            all_nodes: LabelSet::from_iter(0..n as u32),
            degree: Vec::new(),
            num_edges: g.num_edges(),
        };
        idx.recompute_degrees();
        Ok(idx)
    }

    fn recompute_degrees(&mut self) {
        let mut degree = vec![0u32; self.num_nodes];
        for csr in self.fwd.iter().chain(self.rev.iter()) {
            for (u, d) in degree.iter_mut().enumerate().take(csr.num_rows()) {
                *d += csr.row(u as u32).len() as u32;
            }
        }
        self.degree = degree;
    }

    /// Number of nodes in the indexed graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges in the indexed graph.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Bitset of every node (shared universal frontier).
    pub fn all_nodes(&self) -> &LabelSet {
        &self.all_nodes
    }

    /// Approximate heap footprint of the index in bytes — the accounting
    /// surface behind [`IndexBuildOptions::budget_bytes`] and the
    /// `scale` benchmark section.
    pub fn approx_bytes(&self) -> usize {
        self.fwd.iter().chain(self.rev.iter()).map(Csr::approx_bytes).sum::<usize>()
            + self.by_label.iter().map(LabelSet::approx_bytes).sum::<usize>()
            + self.all_nodes.approx_bytes()
            + self.degree.capacity() * std::mem::size_of::<u32>()
    }

    /// Total (in + out) degree of `u` across all edge labels.
    #[inline]
    pub fn degree(&self, u: u32) -> u32 {
        self.degree.get(u as usize).copied().unwrap_or(0)
    }

    /// Neighbors of `u` along `sym` as a sorted slice (empty for labels
    /// the graph never uses).
    #[inline]
    pub fn successors(&self, u: u32, sym: EdgeSym) -> &[u32] {
        let table = if sym.inverse { &self.rev } else { &self.fwd };
        match table.get(sym.label.0 as usize) {
            Some(csr) => csr.row(u),
            None => &[],
        }
    }

    /// `true` iff `u` has at least one `sym`-successor.
    #[inline]
    pub fn has_successor(&self, u: u32, sym: EdgeSym) -> bool {
        !self.successors(u, sym).is_empty()
    }

    /// Bitset of nodes carrying `label` (`None` when no node does).
    pub fn nodes_with_label(&self, label: NodeLabel) -> Option<&LabelSet> {
        self.by_label.get(label.0 as usize).filter(|s| !s.is_empty())
    }

    /// `true` iff node `u` carries `label`.
    #[inline]
    pub fn has_label(&self, u: u32, label: NodeLabel) -> bool {
        self.by_label.get(label.0 as usize).is_some_and(|s| s.contains(u))
    }

    /// Iterates node ids as [`NodeId`]s.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes as u32).map(NodeId)
    }

    // ── in-place patch hooks for the incremental executor ──────────────

    /// Appends empty rows/bits for nodes `num_nodes .. new_num_nodes`.
    pub(crate) fn grow_nodes(&mut self, new_num_nodes: usize) {
        for csr in self.fwd.iter_mut().chain(self.rev.iter_mut()) {
            csr.grow_rows(new_num_nodes);
        }
        for u in self.num_nodes..new_num_nodes {
            self.all_nodes.insert(u as u32);
            self.degree.push(0);
        }
        self.num_nodes = new_num_nodes;
    }

    /// Rebuilds one edge label's forward and reverse CSRs from its full
    /// (unsorted) forward pair list; `O(n + m_label)`.
    pub(crate) fn patch_label(
        &mut self,
        label: EdgeLabel,
        edges: &[(u32, u32)],
    ) -> Result<(), IndexError> {
        let l = label.0 as usize;
        while self.fwd.len() <= l {
            self.fwd.push(Csr::empty(self.num_nodes));
            self.rev.push(Csr::empty(self.num_nodes));
        }
        for (u, d) in self.degree.iter_mut().enumerate() {
            *d -= (self.fwd[l].row(u as u32).len() + self.rev[l].row(u as u32).len()) as u32;
        }
        self.fwd[l] = Csr::try_build_parts(self.num_nodes, label.0, &[edges])?;
        let mut rev_edges: Vec<(u32, u32)> = edges.iter().map(|&(s, t)| (t, s)).collect();
        rev_edges.sort_unstable();
        self.rev[l] = Csr::from_sorted_pairs(self.num_nodes, &rev_edges);
        for (u, d) in self.degree.iter_mut().enumerate() {
            *d += (self.fwd[l].row(u as u32).len() + self.rev[l].row(u as u32).len()) as u32;
        }
        Ok(())
    }

    /// Flips one node's membership in a node-label bitset.
    pub(crate) fn set_node_label(&mut self, u: u32, label: NodeLabel, present: bool) {
        let l = label.0 as usize;
        while self.by_label.len() <= l {
            self.by_label.push(LabelSet::new());
        }
        if present {
            self.by_label[l].insert(u);
        } else {
            self.by_label[l].remove(u);
        }
    }

    /// Updates the cached edge count after a patch.
    pub(crate) fn set_num_edges(&mut self, num_edges: usize) {
        self.num_edges = num_edges;
    }
}

/// Per-worker partition output: per-label forward and reverse edge pairs
/// for one contiguous node range.
struct EdgeParts {
    fwd: Vec<Vec<(u32, u32)>>,
    rev: Vec<Vec<(u32, u32)>>,
}

fn partition_range(g: &Graph, lo: usize, hi: usize) -> EdgeParts {
    let mut parts = EdgeParts { fwd: Vec::new(), rev: Vec::new() };
    for u in lo..hi {
        for (sym, v) in g.incident(NodeId(u as u32)) {
            let l = sym.label.0 as usize;
            if parts.fwd.len() <= l {
                parts.fwd.resize_with(l + 1, Vec::new);
                parts.rev.resize_with(l + 1, Vec::new);
            }
            if sym.inverse {
                parts.rev[l].push((u as u32, v.0));
            } else {
                parts.fwd[l].push((u as u32, v.0));
            }
        }
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_graph::{EdgeLabel, Vocab};

    fn fixture() -> (Vocab, Graph) {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let b = v.node_label("B");
        let r = v.edge_label("r");
        let s = v.edge_label("s");
        let mut g = Graph::new();
        let n0 = g.add_labeled_node([a]);
        let n1 = g.add_labeled_node([b]);
        let n2 = g.add_labeled_node([a, b]);
        g.add_edge(n0, r, n1);
        g.add_edge(n0, r, n2);
        g.add_edge(n2, s, n0);
        g.add_edge(n1, r, n1); // self loop
        (v, g)
    }

    #[test]
    fn csr_matches_graph_adjacency() {
        let (v, g) = fixture();
        let idx = IndexedGraph::build(&g);
        let r = v.find_edge_label("r").unwrap();
        let s = v.find_edge_label("s").unwrap();
        for u in g.nodes() {
            for sym in [EdgeSym::fwd(r), EdgeSym::bwd(r), EdgeSym::fwd(s), EdgeSym::bwd(s)] {
                let mut want: Vec<u32> = g.successors(u, sym).map(|n| n.0).collect();
                want.sort_unstable();
                want.dedup();
                assert_eq!(idx.successors(u.0, sym), want.as_slice(), "node {u:?} sym {sym:?}");
            }
        }
        assert_eq!(idx.num_nodes(), 3);
        assert_eq!(idx.num_edges(), 4);
    }

    #[test]
    fn chunked_build_agrees_with_serial() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let r = v.edge_label("r");
        let s = v.edge_label("s");
        let mut g = Graph::new();
        for i in 0..200u32 {
            let n = g.add_node();
            if i % 3 == 0 {
                g.add_label(n, a);
            }
        }
        for i in 0..200u32 {
            g.add_edge(NodeId(i), r, NodeId((i * 7 + 3) % 200));
            g.add_edge(NodeId((i * 5) % 200), s, NodeId(i));
        }
        let serial =
            IndexedGraph::try_build_with(&g, &IndexBuildOptions { threads: 1, budget_bytes: None })
                .unwrap();
        let chunked =
            IndexedGraph::try_build_with(&g, &IndexBuildOptions { threads: 4, budget_bytes: None })
                .unwrap();
        for u in 0..200u32 {
            for sym in [EdgeSym::fwd(r), EdgeSym::bwd(r), EdgeSym::fwd(s), EdgeSym::bwd(s)] {
                assert_eq!(serial.successors(u, sym), chunked.successors(u, sym));
            }
            assert_eq!(serial.degree(u), chunked.degree(u));
        }
        assert_eq!(serial.num_edges(), chunked.num_edges());
    }

    #[test]
    fn budgeted_build_refuses_oversized_graphs() {
        let (_, g) = fixture();
        let err = IndexedGraph::try_build_with(
            &g,
            &IndexBuildOptions { threads: 1, budget_bytes: Some(8) },
        )
        .unwrap_err();
        match err {
            IndexError::BudgetExceeded { approx_bytes, budget_bytes } => {
                assert!(approx_bytes > budget_bytes);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        // A generous budget builds fine and the estimate is honest.
        let idx = IndexedGraph::try_build_with(
            &g,
            &IndexBuildOptions { threads: 1, budget_bytes: Some(1 << 20) },
        )
        .unwrap();
        assert!(idx.approx_bytes() > 0 && idx.approx_bytes() < 1 << 20);
    }

    #[test]
    fn u32_overflow_guard_reports_structured_error() {
        // The guard fires on the *count*, before any allocation — which is
        // the only way to exercise a > 4-billion-target failure in a test.
        assert!(Csr::check_len(3, u32::MAX as usize).is_ok());
        let err = Csr::check_len(3, u32::MAX as usize + 1).unwrap_err();
        assert_eq!(err, IndexError::TooManyEdges { label: 3, targets: u32::MAX as usize + 1 });
        assert!(err.to_string().contains("overflow"));
    }

    #[test]
    fn degrees_count_both_directions() {
        let (_, g) = fixture();
        let idx = IndexedGraph::build(&g);
        // n0: out r×2, in s×1 → 3. n1: out r(self), in r×2 (n0→n1, self) → 3.
        assert_eq!(idx.degree(0), 3);
        assert_eq!(idx.degree(1), 3);
        assert_eq!(idx.degree(99), 0);
    }

    #[test]
    fn patch_label_matches_full_rebuild() {
        let (v, mut g) = fixture();
        let r = v.find_edge_label("r").unwrap();
        let s = v.find_edge_label("s").unwrap();
        let mut idx = IndexedGraph::build(&g);
        // Mutate label r: drop the self loop, add n2 -r-> n0.
        g.remove_edge(NodeId(1), r, NodeId(1));
        g.add_edge(NodeId(2), r, NodeId(0));
        let r_edges: Vec<(u32, u32)> =
            g.edges().filter(|&(_, l, _)| l == r).map(|(s, _, t)| (s.0, t.0)).collect();
        idx.patch_label(r, &r_edges).unwrap();
        idx.set_num_edges(g.num_edges());
        let fresh = IndexedGraph::build(&g);
        for u in 0..3u32 {
            for sym in [EdgeSym::fwd(r), EdgeSym::bwd(r), EdgeSym::fwd(s), EdgeSym::bwd(s)] {
                assert_eq!(idx.successors(u, sym), fresh.successors(u, sym), "u={u} {sym:?}");
            }
            assert_eq!(idx.degree(u), fresh.degree(u), "degree of {u}");
        }
        assert_eq!(idx.num_edges(), fresh.num_edges());
    }

    #[test]
    fn grow_nodes_extends_every_row_structure() {
        let (v, g) = fixture();
        let r = v.find_edge_label("r").unwrap();
        let mut idx = IndexedGraph::build(&g);
        idx.grow_nodes(5);
        assert_eq!(idx.num_nodes(), 5);
        assert!(idx.successors(4, EdgeSym::fwd(r)).is_empty());
        assert!(idx.all_nodes().contains(4));
        assert_eq!(idx.degree(4), 0);
    }

    #[test]
    fn label_bitsets_match_graph_labels() {
        let (v, g) = fixture();
        let idx = IndexedGraph::build(&g);
        let a = v.find_node_label("A").unwrap();
        let b = v.find_node_label("B").unwrap();
        assert_eq!(idx.nodes_with_label(a).unwrap().iter().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(idx.nodes_with_label(b).unwrap().iter().collect::<Vec<_>>(), vec![1, 2]);
        assert!(idx.has_label(2, a) && idx.has_label(2, b));
        assert!(!idx.has_label(1, a));
        // An unused label index is absent rather than panicking.
        assert!(idx.nodes_with_label(NodeLabel(99)).is_none());
        assert!(!idx.has_label(0, NodeLabel(99)));
    }

    #[test]
    fn unknown_edge_labels_have_no_successors() {
        let (_, g) = fixture();
        let idx = IndexedGraph::build(&g);
        assert!(idx.successors(0, EdgeSym::fwd(EdgeLabel(41))).is_empty());
        assert!(!idx.has_successor(0, EdgeSym::bwd(EdgeLabel(41))));
    }

    #[test]
    fn empty_graph_indexes_cleanly() {
        let idx = IndexedGraph::build(&Graph::new());
        assert_eq!(idx.num_nodes(), 0);
        assert!(idx.all_nodes().is_empty());
        assert_eq!(idx.approx_bytes(), 0);
    }
}
