//! Immutable, query-optimized graph indexes.
//!
//! [`IndexedGraph`] is the execution engine's view of a
//! [`gts_graph::Graph`]: CSR (compressed sparse row) forward and reverse
//! adjacency *per edge label*, plus one node bitset per node label. It is
//! built once per instance and shared read-only by every rule evaluation —
//! the product-BFS of [`crate::rpq`] then walks plain integer slices
//! instead of filtering hash-backed adjacency lists per step.

use gts_graph::{EdgeSym, Graph, LabelSet, NodeId, NodeLabel};

/// One CSR structure over node-id rows: `targets[offsets[u] ..
/// offsets[u+1]]` are the neighbors of node `u`. Shared by the adjacency
/// index here and by [`crate::rpq::Relation`]'s pair columns.
#[derive(Clone, Debug, Default)]
pub(crate) struct Csr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Csr {
    fn fill(num_nodes: usize, edges: &[(u32, u32)]) -> Csr {
        let mut offsets = vec![0u32; num_nodes + 1];
        for &(src, _) in edges {
            offsets[src as usize + 1] += 1;
        }
        for i in 0..num_nodes {
            offsets[i + 1] += offsets[i];
        }
        let mut targets = vec![0u32; offsets[num_nodes] as usize];
        let mut cursor = offsets.clone();
        for &(src, tgt) in edges {
            targets[cursor[src as usize] as usize] = tgt;
            cursor[src as usize] += 1;
        }
        Csr { offsets, targets }
    }

    /// Builds from pairs in arbitrary order, sorting each row so neighbor
    /// slices are deterministic regardless of edge insertion order.
    pub(crate) fn build(num_nodes: usize, edges: &[(u32, u32)]) -> Csr {
        let mut csr = Csr::fill(num_nodes, edges);
        for u in 0..num_nodes {
            csr.targets[csr.offsets[u] as usize..csr.offsets[u + 1] as usize].sort_unstable();
        }
        csr
    }

    /// Builds from pairs already sorted lexicographically (rows come out
    /// sorted without the per-row sort).
    pub(crate) fn from_sorted_pairs(num_nodes: usize, pairs: &[(u32, u32)]) -> Csr {
        Csr::fill(num_nodes, pairs)
    }

    /// Number of rows.
    pub(crate) fn num_rows(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    #[inline]
    pub(crate) fn row(&self, u: u32) -> &[u32] {
        &self.targets[self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize]
    }
}

/// An immutable index of a finite graph, optimized for regular-path
/// evaluation: per-edge-label CSR adjacency in both directions and
/// per-node-label node bitsets.
#[derive(Clone, Debug)]
pub struct IndexedGraph {
    num_nodes: usize,
    /// `fwd[l]` / `rev[l]`: CSR adjacency of edge label `l` (forward /
    /// reverse orientation). Labels beyond the graph's maximum are absent.
    fwd: Vec<Csr>,
    rev: Vec<Csr>,
    /// `by_label[a]`: bitset of nodes carrying node label `a`.
    by_label: Vec<LabelSet>,
    /// All nodes, as a bitset (the universal frontier).
    all_nodes: LabelSet,
    num_edges: usize,
}

impl IndexedGraph {
    /// Builds the index; `O(|V| + |E| log deg)` time, touching each edge
    /// twice (once per direction).
    pub fn build(g: &Graph) -> IndexedGraph {
        let _span = gts_obs::span("index_build");
        let start = gts_obs::enabled().then(std::time::Instant::now);
        let out = IndexedGraph::build_inner(g);
        if let Some(t0) = start {
            crate::exec::phase_metrics().index_build.record(t0.elapsed().as_micros() as u64);
        }
        out
    }

    fn build_inner(g: &Graph) -> IndexedGraph {
        let n = g.num_nodes();
        let max_edge_label = g.edges().map(|(_, l, _)| l.0 as usize + 1).max().unwrap_or(0);
        let mut fwd_edges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); max_edge_label];
        let mut rev_edges: Vec<Vec<(u32, u32)>> = vec![Vec::new(); max_edge_label];
        for (src, label, tgt) in g.edges() {
            fwd_edges[label.0 as usize].push((src.0, tgt.0));
            rev_edges[label.0 as usize].push((tgt.0, src.0));
        }
        let fwd = fwd_edges.iter().map(|edges| Csr::build(n, edges)).collect();
        let rev = rev_edges.iter().map(|edges| Csr::build(n, edges)).collect();
        let max_node_label = g
            .nodes()
            .filter_map(|u| g.labels(u).iter().max())
            .max()
            .map(|l| l as usize + 1)
            .unwrap_or(0);
        let mut by_label = vec![LabelSet::new(); max_node_label];
        for u in g.nodes() {
            for l in g.labels(u).iter() {
                by_label[l as usize].insert(u.0);
            }
        }
        IndexedGraph {
            num_nodes: n,
            fwd,
            rev,
            by_label,
            all_nodes: LabelSet::from_iter(0..n as u32),
            num_edges: g.num_edges(),
        }
    }

    /// Number of nodes in the indexed graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges in the indexed graph.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Bitset of every node (shared universal frontier).
    pub fn all_nodes(&self) -> &LabelSet {
        &self.all_nodes
    }

    /// Neighbors of `u` along `sym` as a sorted slice (empty for labels
    /// the graph never uses).
    #[inline]
    pub fn successors(&self, u: u32, sym: EdgeSym) -> &[u32] {
        let table = if sym.inverse { &self.rev } else { &self.fwd };
        match table.get(sym.label.0 as usize) {
            Some(csr) => csr.row(u),
            None => &[],
        }
    }

    /// `true` iff `u` has at least one `sym`-successor.
    #[inline]
    pub fn has_successor(&self, u: u32, sym: EdgeSym) -> bool {
        !self.successors(u, sym).is_empty()
    }

    /// Bitset of nodes carrying `label` (`None` when no node does).
    pub fn nodes_with_label(&self, label: NodeLabel) -> Option<&LabelSet> {
        self.by_label.get(label.0 as usize).filter(|s| !s.is_empty())
    }

    /// `true` iff node `u` carries `label`.
    #[inline]
    pub fn has_label(&self, u: u32, label: NodeLabel) -> bool {
        self.by_label.get(label.0 as usize).is_some_and(|s| s.contains(u))
    }

    /// Iterates node ids as [`NodeId`]s.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes as u32).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_graph::{EdgeLabel, Vocab};

    fn fixture() -> (Vocab, Graph) {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let b = v.node_label("B");
        let r = v.edge_label("r");
        let s = v.edge_label("s");
        let mut g = Graph::new();
        let n0 = g.add_labeled_node([a]);
        let n1 = g.add_labeled_node([b]);
        let n2 = g.add_labeled_node([a, b]);
        g.add_edge(n0, r, n1);
        g.add_edge(n0, r, n2);
        g.add_edge(n2, s, n0);
        g.add_edge(n1, r, n1); // self loop
        (v, g)
    }

    #[test]
    fn csr_matches_graph_adjacency() {
        let (v, g) = fixture();
        let idx = IndexedGraph::build(&g);
        let r = v.find_edge_label("r").unwrap();
        let s = v.find_edge_label("s").unwrap();
        for u in g.nodes() {
            for sym in [EdgeSym::fwd(r), EdgeSym::bwd(r), EdgeSym::fwd(s), EdgeSym::bwd(s)] {
                let mut want: Vec<u32> = g.successors(u, sym).map(|n| n.0).collect();
                want.sort_unstable();
                want.dedup();
                assert_eq!(idx.successors(u.0, sym), want.as_slice(), "node {u:?} sym {sym:?}");
            }
        }
        assert_eq!(idx.num_nodes(), 3);
        assert_eq!(idx.num_edges(), 4);
    }

    #[test]
    fn label_bitsets_match_graph_labels() {
        let (v, g) = fixture();
        let idx = IndexedGraph::build(&g);
        let a = v.find_node_label("A").unwrap();
        let b = v.find_node_label("B").unwrap();
        assert_eq!(idx.nodes_with_label(a).unwrap().iter().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(idx.nodes_with_label(b).unwrap().iter().collect::<Vec<_>>(), vec![1, 2]);
        assert!(idx.has_label(2, a) && idx.has_label(2, b));
        assert!(!idx.has_label(1, a));
        // An unused label index is absent rather than panicking.
        assert!(idx.nodes_with_label(NodeLabel(99)).is_none());
        assert!(!idx.has_label(0, NodeLabel(99)));
    }

    #[test]
    fn unknown_edge_labels_have_no_successors() {
        let (_, g) = fixture();
        let idx = IndexedGraph::build(&g);
        assert!(idx.successors(0, EdgeSym::fwd(EdgeLabel(41))).is_empty());
        assert!(!idx.has_successor(0, EdgeSym::bwd(EdgeLabel(41))));
    }

    #[test]
    fn empty_graph_indexes_cleanly() {
        let idx = IndexedGraph::build(&Graph::new());
        assert_eq!(idx.num_nodes(), 0);
        assert!(idx.all_nodes().is_empty());
    }
}
