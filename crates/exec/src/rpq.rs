//! RPQ evaluation over the product of a graph with a Glushkov NFA.
//!
//! The naive evaluator ([`gts_query::Nfa::pairs`]) runs one
//! node-at-a-time DFS per source over hash-backed adjacency, allocating
//! an `O(|V| · |Q|)` visited table *per source* — `O(|V|²·|Q|)` work even
//! when answers are sparse. Here:
//!
//! * sources are pre-filtered through the index's per-label node bitsets
//!   ([`gts_graph::LabelSet`]) to nodes that can take some first
//!   transition, which on anchored expressions
//!   (e.g. `Vaccine·designTarget·…`) skips almost the whole graph;
//! * each surviving source runs a worklist BFS over the product whose
//!   visited table is a *stamped* array allocated once per relation
//!   build — per-source cost is proportional to the product states
//!   actually reached, not to the graph;
//! * the resulting [`Relation`] stores its pairs as CSR columns in both
//!   orientations plus bitset column *supports*, so the join in
//!   [`crate::exec`] narrows candidate frontiers by word-level
//!   intersection and sorted-row merges.

use crate::index::{Csr, IndexedGraph};
use gts_graph::{LabelSet, NodeId};
use gts_query::{AtomSym, Nfa};

/// A binary relation over graph nodes — the answer set of one regular
/// path expression. Stored as CSR in both orientations (memory linear in
/// the pair count), with bitset *supports* per column for the join's
/// candidate-frontier intersections.
#[derive(Clone, Debug)]
pub struct Relation {
    /// Pairs grouped by source: `fwd.row(u)` = sorted targets of `u`.
    fwd: Csr,
    /// Pairs grouped by target: `rev.row(v)` = sorted sources of `v`.
    rev: Csr,
    /// Nodes with at least one outgoing pair (`{u | ∃v. (u,v)}`).
    src_support: LabelSet,
    /// Nodes with at least one incoming pair (`{v | ∃u. (u,v)}`).
    tgt_support: LabelSet,
    len: usize,
}

impl Relation {
    /// Evaluates `nfa` over the indexed graph: all pairs `(u, v)` joined
    /// by a path whose labeling the automaton accepts.
    pub fn build(idx: &IndexedGraph, nfa: &Nfa) -> Relation {
        let n = idx.num_nodes();
        let useful = nfa.useful_states();
        let mut pairs: Vec<(u32, u32)> = Vec::new();

        // Identity pairs: a nullable expression relates every node to
        // itself, no search needed.
        if nfa.is_final(nfa.initial()) {
            pairs.extend((0..n as u32).map(|u| (u, u)));
        }

        // Source filter: only nodes able to take some useful first
        // transition can reach anything beyond themselves.
        let mut sources = LabelSet::new();
        for &(sym, q) in nfa.transitions(nfa.initial()) {
            if !useful[q] {
                continue;
            }
            match sym {
                AtomSym::Node(a) => {
                    if let Some(s) = idx.nodes_with_label(a) {
                        sources.union_with(s);
                    }
                }
                AtomSym::Edge(r) => {
                    for u in 0..n as u32 {
                        if idx.has_successor(u, r) {
                            sources.insert(u);
                        }
                    }
                }
            }
        }

        let mut bfs = ProductBfs::new(n, nfa.num_states());
        let mut row: Vec<u32> = Vec::new();
        for u in sources.iter() {
            row.clear();
            bfs.run(idx, nfa, &useful, u, &mut row);
            pairs.extend(row.iter().map(|&v| (u, v)));
        }
        pairs.sort_unstable();
        pairs.dedup();

        let fwd = Csr::from_sorted_pairs(n, &pairs);
        let mut src_support = LabelSet::new();
        let mut tgt_support = LabelSet::new();
        for &(u, v) in &pairs {
            src_support.insert(u);
            tgt_support.insert(v);
        }
        let len = pairs.len();
        for p in &mut pairs {
            *p = (p.1, p.0);
        }
        pairs.sort_unstable();
        let rev = Csr::from_sorted_pairs(n, &pairs);
        Relation { fwd, rev, src_support, tgt_support, len }
    }

    /// Nodes with at least one outgoing pair — the candidate frontier for
    /// a join variable in source position.
    pub fn src_support(&self) -> &LabelSet {
        &self.src_support
    }

    /// Nodes with at least one incoming pair — the candidate frontier for
    /// a join variable in target position.
    pub fn tgt_support(&self) -> &LabelSet {
        &self.tgt_support
    }

    /// Number of pairs in the relation.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the relation has no pairs.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All `v` with `(u, v)` in the relation, sorted.
    pub fn targets_of(&self, u: u32) -> &[u32] {
        self.fwd.row(u)
    }

    /// All `u` with `(u, v)` in the relation, sorted.
    pub fn sources_of(&self, v: u32) -> &[u32] {
        self.rev.row(v)
    }

    /// Membership test (binary search in the source's row).
    pub fn contains(&self, u: u32, v: u32) -> bool {
        self.fwd.row(u).binary_search(&v).is_ok()
    }

    /// Iterates all pairs in `(u, v)` lexicographic order.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.fwd.num_rows()).flat_map(move |u| {
            self.fwd.row(u as u32).iter().map(move |&v| (NodeId(u as u32), NodeId(v)))
        })
    }
}

/// Reusable single-source product-search state. The visited table covers
/// `|V| × |Q|` product states but is allocated *once* per relation build
/// and reset in `O(1)` by bumping a generation stamp, so each source only
/// pays for the product states it actually reaches.
struct ProductBfs {
    states: usize,
    stamp: u32,
    visited: Vec<u32>,
    worklist: Vec<(u32, u32)>,
}

impl ProductBfs {
    fn new(num_nodes: usize, states: usize) -> ProductBfs {
        ProductBfs { states, stamp: 0, visited: vec![0; num_nodes * states], worklist: Vec::new() }
    }

    #[inline]
    fn mark(&mut self, node: u32, state: u32) -> bool {
        let slot = &mut self.visited[node as usize * self.states + state as usize];
        let fresh = *slot != self.stamp;
        *slot = self.stamp;
        fresh
    }

    /// Appends to `result` every node reachable from `start` along an
    /// accepted path (including `start` itself when the automaton is
    /// nullable). May append a node more than once — one entry per
    /// accepting product state — so callers deduplicate.
    fn run(
        &mut self,
        idx: &IndexedGraph,
        nfa: &Nfa,
        useful: &[bool],
        start: u32,
        result: &mut Vec<u32>,
    ) {
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            // Stamp wrapped: the table may contain stale "visited" marks.
            self.visited.fill(0);
            self.stamp = 1;
        }
        self.worklist.clear();
        self.mark(start, 0);
        self.worklist.push((start, 0));
        if nfa.is_final(0) {
            result.push(start);
        }
        while let Some((u, s)) = self.worklist.pop() {
            for &(sym, q) in nfa.transitions(s as usize) {
                if !useful[q] {
                    continue;
                }
                let q = q as u32;
                match sym {
                    AtomSym::Node(a) => {
                        if idx.has_label(u, a) && self.mark(u, q) {
                            if nfa.is_final(q as usize) {
                                result.push(u);
                            }
                            self.worklist.push((u, q));
                        }
                    }
                    AtomSym::Edge(r) => {
                        for &v in idx.successors(u, r) {
                            if self.mark(v, q) {
                                if nfa.is_final(q as usize) {
                                    result.push(v);
                                }
                                self.worklist.push((v, q));
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_graph::{FxHashSet, Graph, Vocab};
    use gts_query::Regex;

    /// Builds the medical chain: vac -dt-> a1 -cr-> a2 -cr-> a3.
    fn medical() -> (Vocab, Graph) {
        let mut v = Vocab::new();
        let vaccine = v.node_label("Vaccine");
        let antigen = v.node_label("Antigen");
        let dt = v.edge_label("designTarget");
        let cr = v.edge_label("crossReacting");
        let mut g = Graph::new();
        let vac = g.add_labeled_node([vaccine]);
        let a1 = g.add_labeled_node([antigen]);
        let a2 = g.add_labeled_node([antigen]);
        let a3 = g.add_labeled_node([antigen]);
        g.add_edge(vac, dt, a1);
        g.add_edge(a1, cr, a2);
        g.add_edge(a2, cr, a3);
        (v, g)
    }

    fn assert_agrees(re: &Regex, g: &Graph) {
        let nfa = Nfa::from_regex(re);
        let idx = IndexedGraph::build(g);
        let rel = Relation::build(&idx, &nfa);
        let naive = nfa.pairs(g);
        let indexed: FxHashSet<(NodeId, NodeId)> = rel.iter_pairs().collect();
        assert_eq!(indexed, naive, "regex {re:?}");
        assert_eq!(rel.len(), naive.len());
    }

    #[test]
    fn anchored_star_expression_agrees_with_naive() {
        let (v, g) = medical();
        let vaccine = v.find_node_label("Vaccine").unwrap();
        let antigen = v.find_node_label("Antigen").unwrap();
        let dt = v.find_edge_label("designTarget").unwrap();
        let cr = v.find_edge_label("crossReacting").unwrap();
        let re = Regex::node(vaccine)
            .then(Regex::edge(dt))
            .then(Regex::edge(cr).star())
            .then(Regex::node(antigen));
        assert_agrees(&re, &g);
        // And the indexed answer is the expected 3 pairs.
        let rel = Relation::build(&IndexedGraph::build(&g), &Nfa::from_regex(&re));
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.targets_of(0).len(), 3);
        assert!(rel.contains(0, 3));
        assert_eq!(rel.sources_of(3), &[0]);
        assert_eq!(rel.src_support().iter().collect::<Vec<_>>(), vec![0]);
        assert_eq!(rel.tgt_support().len(), 3);
    }

    #[test]
    fn nullable_and_inverse_expressions_agree_with_naive() {
        let (v, g) = medical();
        let dt = v.find_edge_label("designTarget").unwrap();
        let cr = v.find_edge_label("crossReacting").unwrap();
        for re in [
            Regex::Epsilon,
            Regex::Empty,
            Regex::edge(cr).star(),
            Regex::sym(gts_graph::EdgeSym::bwd(cr)),
            Regex::edge(dt).then(Regex::sym(gts_graph::EdgeSym::bwd(dt))),
            Regex::edge(cr).or(Regex::Epsilon),
        ] {
            assert_agrees(&re, &g);
        }
    }

    #[test]
    fn self_loops_and_empty_graphs() {
        let mut v = Vocab::new();
        let r = v.edge_label("r");
        let mut g = Graph::new();
        let n = g.add_node();
        g.add_edge(n, r, n);
        assert_agrees(&Regex::edge(r).star(), &g);
        assert_agrees(&Regex::edge(r), &Graph::new());
    }
}
