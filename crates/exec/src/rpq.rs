//! RPQ evaluation over the product of a graph with a Glushkov NFA.
//!
//! The naive evaluator ([`gts_query::Nfa::pairs`]) runs one
//! node-at-a-time DFS per source over hash-backed adjacency, allocating
//! an `O(|V| · |Q|)` visited table *per source* — `O(|V|²·|Q|)` work even
//! when answers are sparse. Here:
//!
//! * sources are pre-filtered through the index's per-label node bitsets
//!   ([`gts_graph::LabelSet`]) to nodes that can take some first
//!   transition, which on anchored expressions
//!   (e.g. `Vaccine·designTarget·…`) skips almost the whole graph, and
//!   walked in descending-degree order — hub sources run their (longest)
//!   searches first;
//! * each surviving source runs a worklist BFS over the product whose
//!   visited table is allocated once per relation build and reset in
//!   `O(1)` by a generation stamp. The table is *adaptive*
//!   ([`Visited`]): a dense stamp array while `|V| · |Q|` fits a fixed
//!   budget, a stamped hash map past it — million-node graphs with large
//!   automata no longer materialize multi-hundred-MB tables;
//! * the resulting [`Relation`] stores its pairs as CSR columns in both
//!   orientations plus per-column *supports*, so the join in
//!   [`crate::exec`] narrows candidate frontiers cheaply. Supports are
//!   adaptive too ([`NodeCol`]): sparse answer sets on huge graphs keep a
//!   sorted id vector instead of a bitset sized to the highest node id.

use crate::index::{Csr, IndexedGraph};
use gts_graph::{FxHashMap, LabelSet, NodeId};
use gts_query::{AtomSym, Nfa};

/// An adaptive set of node ids — the column-support representation of
/// [`Relation`]. Dense bitsets are ideal when a column touches a sizable
/// fraction of the graph, but a bitset is sized to its *highest* set bit:
/// a 3-pair relation on a million-node graph would still allocate ~125 KB
/// per column. Sparse columns therefore keep a sorted vector and the
/// representation flips to a bitset only when it is the smaller encoding
/// (roughly one bit per 32 ids of span).
#[derive(Clone, Debug)]
pub enum NodeCol {
    /// Sorted, deduplicated node ids.
    Sparse(Vec<u32>),
    /// Dense bitset over node ids.
    Dense(LabelSet),
}

impl NodeCol {
    /// Builds from a sorted, deduplicated id vector, choosing the smaller
    /// representation.
    pub(crate) fn from_sorted_vec(ids: Vec<u32>) -> NodeCol {
        match ids.last() {
            // Dense wins once the 4-bytes-per-id vector outweighs the
            // max_id/8-byte bitset.
            Some(&max) if ids.len() as u64 * 32 >= max as u64 => {
                NodeCol::Dense(LabelSet::from_iter(ids))
            }
            _ => NodeCol::Sparse(ids),
        }
    }

    /// Membership test: `O(1)` dense, `O(log len)` sparse.
    #[inline]
    pub fn contains(&self, u: u32) -> bool {
        match self {
            NodeCol::Sparse(ids) => ids.binary_search(&u).is_ok(),
            NodeCol::Dense(set) => set.contains(u),
        }
    }

    /// Number of ids in the column.
    pub fn len(&self) -> usize {
        match self {
            NodeCol::Sparse(ids) => ids.len(),
            NodeCol::Dense(set) => set.len(),
        }
    }

    /// `true` iff the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates the ids in ascending order.
    pub fn iter(&self) -> NodeColIter<'_> {
        match self {
            NodeCol::Sparse(ids) => NodeColIter::Sparse(ids.iter()),
            NodeCol::Dense(set) => NodeColIter::Dense(Box::new(set.iter())),
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        match self {
            NodeCol::Sparse(ids) => ids.capacity() * std::mem::size_of::<u32>(),
            NodeCol::Dense(set) => set.approx_bytes(),
        }
    }
}

/// Ascending iterator over a [`NodeCol`].
pub enum NodeColIter<'a> {
    /// Iterating a sparse column.
    Sparse(std::slice::Iter<'a, u32>),
    /// Iterating a dense column.
    Dense(Box<dyn Iterator<Item = u32> + 'a>),
}

impl Iterator for NodeColIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match self {
            NodeColIter::Sparse(it) => it.next().copied(),
            NodeColIter::Dense(it) => it.next(),
        }
    }
}

/// A binary relation over graph nodes — the answer set of one regular
/// path expression. Stored as CSR in both orientations (memory linear in
/// the pair count), with adaptive *supports* per column for the join's
/// candidate-frontier narrowing.
#[derive(Clone, Debug)]
pub struct Relation {
    /// Pairs grouped by source: `fwd.row(u)` = sorted targets of `u`.
    fwd: Csr,
    /// Pairs grouped by target: `rev.row(v)` = sorted sources of `v`.
    rev: Csr,
    /// Nodes with at least one outgoing pair (`{u | ∃v. (u,v)}`).
    src_support: NodeCol,
    /// Nodes with at least one incoming pair (`{v | ∃u. (u,v)}`).
    tgt_support: NodeCol,
    len: usize,
}

impl Relation {
    /// Evaluates `nfa` over the indexed graph: all pairs `(u, v)` joined
    /// by a path whose labeling the automaton accepts.
    pub fn build(idx: &IndexedGraph, nfa: &Nfa) -> Relation {
        let n = idx.num_nodes();
        let useful = nfa.useful_states();
        let mut pairs: Vec<(u32, u32)> = Vec::new();

        // Identity pairs: a nullable expression relates every node to
        // itself, no search needed.
        if nfa.is_final(nfa.initial()) {
            pairs.extend((0..n as u32).map(|u| (u, u)));
        }

        // Source filter: only nodes able to take some useful first
        // transition can reach anything beyond themselves.
        let sources = first_transition_sources(idx, nfa, &useful);

        // Degree order: hub sources have the largest product frontiers;
        // running the long searches first front-loads the heavy rows
        // (classic longest-task-first scheduling — and the final
        // sort/dedup makes the answer independent of this order anyway).
        let mut src_list: Vec<u32> = sources.iter().collect();
        src_list.sort_by_key(|&u| (std::cmp::Reverse(idx.degree(u)), u));

        let mut bfs = ProductBfs::new(n, nfa.num_states());
        let mut row: Vec<u32> = Vec::new();
        for u in src_list {
            row.clear();
            bfs.run(idx, nfa, &useful, u, &mut row);
            pairs.extend(row.iter().map(|&v| (u, v)));
        }
        pairs.sort_unstable();
        pairs.dedup();
        Relation::from_sorted_pairs(n, pairs)
    }

    /// Builds the CSR columns and supports from sorted, deduplicated
    /// `(source, target)` pairs. Consumes `pairs` as scratch for the
    /// reverse orientation.
    pub(crate) fn from_sorted_pairs(n: usize, mut pairs: Vec<(u32, u32)>) -> Relation {
        let fwd = Csr::from_sorted_pairs(n, &pairs);
        let mut src_ids: Vec<u32> = pairs.iter().map(|&(u, _)| u).collect();
        src_ids.dedup();
        let len = pairs.len();
        for p in &mut pairs {
            *p = (p.1, p.0);
        }
        pairs.sort_unstable();
        let rev = Csr::from_sorted_pairs(n, &pairs);
        let mut tgt_ids: Vec<u32> = pairs.iter().map(|&(v, _)| v).collect();
        tgt_ids.dedup();
        Relation {
            fwd,
            rev,
            src_support: NodeCol::from_sorted_vec(src_ids),
            tgt_support: NodeCol::from_sorted_vec(tgt_ids),
            len,
        }
    }

    /// Replaces the rows of the given sources with new (sorted,
    /// deduplicated) target lists, rebuilding both orientations and the
    /// supports in `O(n + len)`; `num_nodes` may exceed the old row count
    /// when the patch accompanies added nodes. Returns the per-source
    /// row diffs — what the incremental executor patches matches from.
    pub(crate) fn patch_rows(
        &mut self,
        num_nodes: usize,
        changes: &FxHashMap<u32, Vec<u32>>,
    ) -> Vec<RowDiff> {
        let old_rows = self.fwd.num_rows();
        let mut diffs: Vec<RowDiff> = Vec::with_capacity(changes.len());
        for (&u, new_row) in changes {
            let old_row: &[u32] = if (u as usize) < old_rows { self.fwd.row(u) } else { &[] };
            let (removed, added) = diff_sorted(old_row, new_row);
            if !removed.is_empty() || !added.is_empty() {
                diffs.push(RowDiff { source: u, removed, added });
            }
        }
        diffs.sort_by_key(|d| d.source);
        if diffs.is_empty() {
            // Nothing changed beyond (possibly) new empty rows.
            self.fwd.grow_rows(num_nodes);
            self.rev.grow_rows(num_nodes);
            return diffs;
        }

        let row_of = |u: u32| -> &[u32] {
            match changes.get(&u) {
                Some(row) => row.as_slice(),
                None if (u as usize) < old_rows => self.fwd.row(u),
                None => &[],
            }
        };
        let mut pairs: Vec<(u32, u32)> =
            Vec::with_capacity((0..num_nodes as u32).map(|u| row_of(u).len()).sum());
        for u in 0..num_nodes as u32 {
            pairs.extend(row_of(u).iter().map(|&v| (u, v)));
        }
        *self = Relation::from_sorted_pairs(num_nodes, pairs);
        diffs
    }

    /// Nodes with at least one outgoing pair — the candidate frontier for
    /// a join variable in source position.
    pub fn src_support(&self) -> &NodeCol {
        &self.src_support
    }

    /// Nodes with at least one incoming pair — the candidate frontier for
    /// a join variable in target position.
    pub fn tgt_support(&self) -> &NodeCol {
        &self.tgt_support
    }

    /// Number of pairs in the relation.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the relation has no pairs.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate heap footprint in bytes (CSR columns plus supports).
    pub fn approx_bytes(&self) -> usize {
        self.fwd.approx_bytes()
            + self.rev.approx_bytes()
            + self.src_support.approx_bytes()
            + self.tgt_support.approx_bytes()
    }

    /// All `v` with `(u, v)` in the relation, sorted.
    pub fn targets_of(&self, u: u32) -> &[u32] {
        if (u as usize) < self.fwd.num_rows() {
            self.fwd.row(u)
        } else {
            &[]
        }
    }

    /// All `u` with `(u, v)` in the relation, sorted.
    pub fn sources_of(&self, v: u32) -> &[u32] {
        if (v as usize) < self.rev.num_rows() {
            self.rev.row(v)
        } else {
            &[]
        }
    }

    /// Membership test (binary search in the source's row).
    pub fn contains(&self, u: u32, v: u32) -> bool {
        self.targets_of(u).binary_search(&v).is_ok()
    }

    /// Iterates all pairs in `(u, v)` lexicographic order.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.fwd.num_rows()).flat_map(move |u| {
            self.fwd.row(u as u32).iter().map(move |&v| (NodeId(u as u32), NodeId(v)))
        })
    }
}

/// One changed relation row: the targets that disappeared and appeared
/// for a single source.
#[derive(Clone, Debug)]
pub(crate) struct RowDiff {
    pub(crate) source: u32,
    pub(crate) removed: Vec<u32>,
    pub(crate) added: Vec<u32>,
}

/// Set difference both ways over two sorted slices.
fn diff_sorted(old: &[u32], new: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let (mut removed, mut added) = (Vec::new(), Vec::new());
    let (mut i, mut j) = (0, 0);
    while i < old.len() || j < new.len() {
        match (old.get(i), new.get(j)) {
            (Some(&a), Some(&b)) if a == b => {
                i += 1;
                j += 1;
            }
            (Some(&a), Some(&b)) if a < b => {
                removed.push(a);
                i += 1;
            }
            (Some(_), Some(&b)) => {
                added.push(b);
                j += 1;
            }
            (Some(&a), None) => {
                removed.push(a);
                i += 1;
            }
            (None, Some(&b)) => {
                added.push(b);
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    (removed, added)
}

/// The prefiltered BFS sources of `nfa` over `idx`: nodes able to take
/// some useful first transition (shared by [`Relation::build`] and the
/// incremental executor's frontier seeding).
pub(crate) fn first_transition_sources(idx: &IndexedGraph, nfa: &Nfa, useful: &[bool]) -> LabelSet {
    let mut sources = LabelSet::new();
    for &(sym, q) in nfa.transitions(nfa.initial()) {
        if !useful[q] {
            continue;
        }
        match sym {
            AtomSym::Node(a) => {
                if let Some(s) = idx.nodes_with_label(a) {
                    sources.union_with(s);
                }
            }
            AtomSym::Edge(r) => {
                for u in 0..idx.num_nodes() as u32 {
                    if idx.has_successor(u, r) {
                        sources.insert(u);
                    }
                }
            }
        }
    }
    sources
}

/// A stamped product-state visited table, adaptive in its backing store:
/// a dense `|V| · |Q|` array of generation stamps while that fits
/// [`Visited::DENSE_MAX`] slots (64 MiB of `u32`), a stamped hash map
/// beyond — the dense table is reset in `O(1)` per source by bumping the
/// stamp, the sparse one pays a hash per mark but keeps million-node ×
/// many-state products from allocating gigabytes.
pub(crate) enum Visited {
    /// Dense stamp array indexed `node * states + state`.
    Dense { stamp: u32, slots: Vec<u32> },
    /// Stamped map keyed `node * states + state`.
    Sparse { stamp: u32, map: FxHashMap<u64, u32> },
}

impl Visited {
    const DENSE_MAX: usize = 1 << 24;

    pub(crate) fn new(num_nodes: usize, states: usize) -> Visited {
        if num_nodes.saturating_mul(states.max(1)) <= Visited::DENSE_MAX {
            Visited::Dense { stamp: 0, slots: vec![0; num_nodes * states.max(1)] }
        } else {
            Visited::Sparse { stamp: 0, map: FxHashMap::default() }
        }
    }

    /// Starts a fresh generation (invalidating all marks in `O(1)` except
    /// on stamp wraparound).
    pub(crate) fn next_round(&mut self) {
        match self {
            Visited::Dense { stamp, slots } => {
                *stamp = stamp.wrapping_add(1);
                if *stamp == 0 {
                    slots.fill(0);
                    *stamp = 1;
                }
            }
            Visited::Sparse { stamp, map } => {
                *stamp = stamp.wrapping_add(1);
                if *stamp == 0 {
                    map.clear();
                    *stamp = 1;
                }
            }
        }
    }

    /// Marks `(node, state)`; `true` iff it was unmarked this generation.
    #[inline]
    pub(crate) fn mark(&mut self, states: usize, node: u32, state: u32) -> bool {
        match self {
            Visited::Dense { stamp, slots } => {
                let slot = &mut slots[node as usize * states + state as usize];
                let fresh = *slot != *stamp;
                *slot = *stamp;
                fresh
            }
            Visited::Sparse { stamp, map } => {
                let key = node as u64 * states as u64 + state as u64;
                let slot = map.entry(key).or_insert(0);
                let fresh = *slot != *stamp;
                *slot = *stamp;
                fresh
            }
        }
    }
}

/// Reusable single-source product-search state: one [`Visited`] table
/// shared across every source of a relation build.
pub(crate) struct ProductBfs {
    states: usize,
    visited: Visited,
    worklist: Vec<(u32, u32)>,
}

impl ProductBfs {
    pub(crate) fn new(num_nodes: usize, states: usize) -> ProductBfs {
        ProductBfs {
            states: states.max(1),
            visited: Visited::new(num_nodes, states),
            worklist: Vec::new(),
        }
    }

    /// Appends to `result` every node reachable from `start` along an
    /// accepted path (including `start` itself when the automaton is
    /// nullable). May append a node more than once — one entry per
    /// accepting product state — so callers deduplicate.
    pub(crate) fn run(
        &mut self,
        idx: &IndexedGraph,
        nfa: &Nfa,
        useful: &[bool],
        start: u32,
        result: &mut Vec<u32>,
    ) {
        self.visited.next_round();
        self.worklist.clear();
        self.visited.mark(self.states, start, 0);
        self.worklist.push((start, 0));
        if nfa.is_final(0) {
            result.push(start);
        }
        while let Some((u, s)) = self.worklist.pop() {
            for &(sym, q) in nfa.transitions(s as usize) {
                if !useful[q] {
                    continue;
                }
                let q = q as u32;
                match sym {
                    AtomSym::Node(a) => {
                        if idx.has_label(u, a) && self.visited.mark(self.states, u, q) {
                            if nfa.is_final(q as usize) {
                                result.push(u);
                            }
                            self.worklist.push((u, q));
                        }
                    }
                    AtomSym::Edge(r) => {
                        for &v in idx.successors(u, r) {
                            if self.visited.mark(self.states, v, q) {
                                if nfa.is_final(q as usize) {
                                    result.push(v);
                                }
                                self.worklist.push((v, q));
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_graph::{FxHashSet, Graph, Vocab};
    use gts_query::Regex;

    /// Builds the medical chain: vac -dt-> a1 -cr-> a2 -cr-> a3.
    fn medical() -> (Vocab, Graph) {
        let mut v = Vocab::new();
        let vaccine = v.node_label("Vaccine");
        let antigen = v.node_label("Antigen");
        let dt = v.edge_label("designTarget");
        let cr = v.edge_label("crossReacting");
        let mut g = Graph::new();
        let vac = g.add_labeled_node([vaccine]);
        let a1 = g.add_labeled_node([antigen]);
        let a2 = g.add_labeled_node([antigen]);
        let a3 = g.add_labeled_node([antigen]);
        g.add_edge(vac, dt, a1);
        g.add_edge(a1, cr, a2);
        g.add_edge(a2, cr, a3);
        (v, g)
    }

    fn assert_agrees(re: &Regex, g: &Graph) {
        let nfa = Nfa::from_regex(re);
        let idx = IndexedGraph::build(g);
        let rel = Relation::build(&idx, &nfa);
        let naive = nfa.pairs(g);
        let indexed: FxHashSet<(NodeId, NodeId)> = rel.iter_pairs().collect();
        assert_eq!(indexed, naive, "regex {re:?}");
        assert_eq!(rel.len(), naive.len());
    }

    #[test]
    fn anchored_star_expression_agrees_with_naive() {
        let (v, g) = medical();
        let vaccine = v.find_node_label("Vaccine").unwrap();
        let antigen = v.find_node_label("Antigen").unwrap();
        let dt = v.find_edge_label("designTarget").unwrap();
        let cr = v.find_edge_label("crossReacting").unwrap();
        let re = Regex::node(vaccine)
            .then(Regex::edge(dt))
            .then(Regex::edge(cr).star())
            .then(Regex::node(antigen));
        assert_agrees(&re, &g);
        // And the indexed answer is the expected 3 pairs.
        let rel = Relation::build(&IndexedGraph::build(&g), &Nfa::from_regex(&re));
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.targets_of(0).len(), 3);
        assert!(rel.contains(0, 3));
        assert_eq!(rel.sources_of(3), &[0]);
        assert_eq!(rel.src_support().iter().collect::<Vec<_>>(), vec![0]);
        assert_eq!(rel.tgt_support().len(), 3);
    }

    #[test]
    fn nullable_and_inverse_expressions_agree_with_naive() {
        let (v, g) = medical();
        let dt = v.find_edge_label("designTarget").unwrap();
        let cr = v.find_edge_label("crossReacting").unwrap();
        for re in [
            Regex::Epsilon,
            Regex::Empty,
            Regex::edge(cr).star(),
            Regex::sym(gts_graph::EdgeSym::bwd(cr)),
            Regex::edge(dt).then(Regex::sym(gts_graph::EdgeSym::bwd(dt))),
            Regex::edge(cr).or(Regex::Epsilon),
        ] {
            assert_agrees(&re, &g);
        }
    }

    #[test]
    fn self_loops_and_empty_graphs() {
        let mut v = Vocab::new();
        let r = v.edge_label("r");
        let mut g = Graph::new();
        let n = g.add_node();
        g.add_edge(n, r, n);
        assert_agrees(&Regex::edge(r).star(), &g);
        assert_agrees(&Regex::edge(r), &Graph::new());
    }

    #[test]
    fn node_col_picks_sparse_for_scattered_ids() {
        let sparse = NodeCol::from_sorted_vec(vec![3, 1_000_000]);
        assert!(matches!(sparse, NodeCol::Sparse(_)));
        assert!(sparse.contains(3) && sparse.contains(1_000_000) && !sparse.contains(4));
        assert_eq!(sparse.iter().collect::<Vec<_>>(), vec![3, 1_000_000]);
        let dense = NodeCol::from_sorted_vec((0..128).collect());
        assert!(matches!(dense, NodeCol::Dense(_)));
        assert_eq!(dense.len(), 128);
        assert!(dense.approx_bytes() <= 4 * 128);
    }

    #[test]
    fn sparse_visited_table_agrees_with_dense() {
        let mut dense = Visited::Dense { stamp: 0, slots: vec![0; 4 * 3] };
        let mut sparse = Visited::Sparse { stamp: 0, map: FxHashMap::default() };
        for v in [&mut dense, &mut sparse] {
            v.next_round();
            assert!(v.mark(3, 2, 1));
            assert!(!v.mark(3, 2, 1));
            assert!(v.mark(3, 2, 2));
            v.next_round();
            assert!(v.mark(3, 2, 1), "new round invalidates old marks");
        }
    }

    #[test]
    fn patch_rows_matches_fresh_build_and_reports_diffs() {
        let (v, mut g) = medical();
        let cr = v.find_edge_label("crossReacting").unwrap();
        let dt = v.find_edge_label("designTarget").unwrap();
        let re = Regex::edge(dt).then(Regex::edge(cr).star());
        let nfa = Nfa::from_regex(&re);
        let idx = IndexedGraph::build(&g);
        let mut rel = Relation::build(&idx, &nfa);

        // Cut the chain at a2 -cr-> a3 and recompute the one affected row.
        g.remove_edge(NodeId(2), cr, NodeId(3));
        let idx2 = IndexedGraph::build(&g);
        let fresh = Relation::build(&idx2, &nfa);
        let mut changes = FxHashMap::default();
        changes.insert(0u32, fresh.targets_of(0).to_vec());
        let diffs = rel.patch_rows(g.num_nodes(), &changes);
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].source, 0);
        assert_eq!(diffs[0].removed, vec![3]);
        assert!(diffs[0].added.is_empty());
        let patched: Vec<_> = rel.iter_pairs().collect();
        let want: Vec<_> = fresh.iter_pairs().collect();
        assert_eq!(patched, want);
        assert_eq!(rel.len(), fresh.len());
        assert_eq!(rel.sources_of(2), fresh.sources_of(2));
        assert_eq!(
            rel.src_support().iter().collect::<Vec<_>>(),
            fresh.src_support().iter().collect::<Vec<_>>()
        );
    }
}
