//! Incremental delta execution: patch a transformation's output instead
//! of re-running it.
//!
//! [`Incremental`] holds a base instance, its index, the per-atom
//! [`Relation`]s of every rule body, and a reference-counted *fact view*
//! of the output. Applying a [`GraphDelta`] then costs work proportional
//! to what the delta can actually influence:
//!
//! 1. the index is patched in place — only the edge labels the delta
//!    touches rebuild their CSR pair ([`IndexedGraph`]'s `patch_label`),
//!    node-label bitsets flip individual bits;
//! 2. for each relation, the **affected sources** are computed by a
//!    *backward* product-BFS seeded at every (node, NFA-state) pair that
//!    can take a changed transition — removed edges and labels are
//!    consulted as virtual adjacency so the traversal covers the union of
//!    the old and new graphs. A source outside this set provably keeps its
//!    row: any accepting path it gains or loses must cross a changed
//!    transition, which would put it in the backward-reachable set;
//! 3. only affected rows re-run the forward product-BFS; the relation is
//!    patched and reports per-source row diffs ([`RowDiff`]);
//! 4. row diffs become output diffs: rules whose body is a single-atom
//!    fast-path shape (the copy/rewire rules that dominate real
//!    transformations) map pair diffs straight to fact refcount updates;
//!    general multi-atom rules re-join over the patched relations and
//!    merge-diff against their stored tuples.
//!
//! When the delta's frontier is too large for this to win — the touched
//! fraction exceeds `1/`[`FALLBACK_TOUCH_DIVISOR`] of the instance, or the
//! backward frontier exceeds `1/`[`FALLBACK_FRONTIER_DIVISOR`] of the
//! nodes — the engine falls back to a full rebuild and says so in the
//! returned [`DeltaOutcome`] (the crossover the `delta` benchmark section
//! measures).

use crate::exec::{assemble, eval_c2rpq_with, phase_metrics, EdgeFact, ExecOptions, NodeFact};
use crate::index::IndexedGraph;
use crate::rpq::{ProductBfs, Relation, RowDiff, Visited};
use gts_core::{Rule, Transformation};
use gts_graph::{DeltaEffects, EdgeLabel, FxHashMap, FxHashSet, Graph, GraphDelta, NodeId};
use gts_query::{AtomSym, C2rpq, Nfa, Regex};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Full-rebuild crossover on delta size: a delta whose effective changes
/// exceed `elements / FALLBACK_TOUCH_DIVISOR` skips the incremental path
/// outright (measured in `BENCH_exec.json::delta`; patching cost grows
/// with the frontier and overtakes a rebuild around this fraction).
pub const FALLBACK_TOUCH_DIVISOR: usize = 20;

/// Deltas touching at most this many atoms never fall back on the touch
/// ratio (tiny deltas on tiny graphs are cheap either way; the frontier
/// cap still guards the incremental path).
pub const MIN_FALLBACK_TOUCHED: usize = 8;

/// Full-rebuild crossover on frontier size: once the backward-reachable
/// affected-source set passes `num_nodes / FALLBACK_FRONTIER_DIVISOR`,
/// re-running that many forward searches approaches full-build cost.
pub const FALLBACK_FRONTIER_DIVISOR: usize = 8;

/// How an [`Incremental::apply_delta`] call was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DeltaStrategy {
    /// Patched: index, affected relation rows, and fact diffs only.
    #[default]
    Incremental,
    /// The delta crossed a fallback threshold; everything was rebuilt.
    FullRebuild,
}

/// What applying one delta did — the measurement surface of the `delta`
/// benchmark section and the wire-level `delta` verb.
#[derive(Clone, Debug, Default)]
pub struct DeltaOutcome {
    /// Which path satisfied the delta.
    pub strategy: DeltaStrategy,
    /// Effective atomic changes after no-op filtering
    /// ([`DeltaEffects::touched`]).
    pub touched: usize,
    /// Relation rows recomputed across all relations (the frontier).
    pub affected_sources: usize,
    /// Multi-atom rules that re-ran their join.
    pub rules_reevaluated: usize,
    /// Output facts that became live.
    pub facts_added: usize,
    /// Output facts that died.
    pub facts_removed: usize,
}

/// One distinct rule-body atom: its compiled automaton and current
/// relation. Shared between every atom with the same regex, so a patched
/// relation is recomputed once no matter how many rules use it.
struct RelEntry {
    nfa: Arc<Nfa>,
    useful: Vec<bool>,
    rel: Relation,
}

/// The single-atom fast-path shapes of [`eval_c2rpq_with`], used to turn
/// relation row diffs directly into output-tuple diffs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Shape {
    /// `free == [x, y]` (or swapped): tuples *are* the relation pairs.
    Pairs { swap: bool },
    /// `free == []` over `φ(x, y)`: one empty tuple iff the relation is
    /// non-empty.
    Bool,
    /// `free == [x]` over `φ(x, x)`: the relation's diagonal.
    Diag,
    /// `free == []` over `φ(x, x)`: one empty tuple iff the diagonal is.
    BoolDiag,
    /// Anything else: stored tuples, re-joined when affected.
    General,
}

fn shape_of(q: &C2rpq) -> Shape {
    if let [a] = q.atoms.as_slice() {
        if a.x != a.y && q.num_vars == 2 {
            if q.free == [a.x, a.y] {
                return Shape::Pairs { swap: false };
            }
            if q.free == [a.y, a.x] {
                return Shape::Pairs { swap: true };
            }
            if q.free.is_empty() {
                return Shape::Bool;
            }
        }
        if a.x == a.y && q.num_vars == 1 {
            if q.free == [a.x] {
                return Shape::Diag;
            }
            if q.free.is_empty() {
                return Shape::BoolDiag;
            }
        }
    }
    Shape::General
}

/// Per-rule incremental state.
struct RuleState {
    /// Index into [`Incremental::rels`] per body atom.
    rel_ids: Vec<usize>,
    shape: Shape,
    /// Current sorted tuple list — stored only for [`Shape::General`];
    /// the fast-path shapes derive tuples from their relation on demand.
    tuples: Option<Vec<Vec<NodeId>>>,
    /// Some body variable appears in no atom, so its domain is
    /// `all_nodes` and growing the graph can change the answer even with
    /// no relation diff.
    floating_var: bool,
    /// Number of diagonal pairs `(u, u)`, for the `Diag`/`BoolDiag`
    /// shapes.
    diag_count: usize,
}

fn rule_body(rule: &Rule) -> &C2rpq {
    match rule {
        Rule::Node(r) => &r.body,
        Rule::Edge(r) => &r.body,
    }
}

/// A transformation pinned to an evolving instance: holds the graph, its
/// index, every body atom's relation, and the reference-counted output
/// fact view, all patched in place by [`Incremental::apply_delta`].
pub struct Incremental {
    t: Transformation,
    graph: Graph,
    idx: IndexedGraph,
    /// Current forward edge pairs per edge label — the input
    /// `IndexedGraph::patch_label` rebuilds a touched label from.
    label_edges: Vec<Vec<(u32, u32)>>,
    rels: Vec<RelEntry>,
    rules: Vec<RuleState>,
    /// Fact multiplicity across rules; a fact is live while its count is
    /// positive.
    node_counts: FxHashMap<NodeFact, u32>,
    edge_counts: FxHashMap<EdgeFact, u32>,
    node_facts: BTreeSet<NodeFact>,
    edge_facts: BTreeSet<EdgeFact>,
}

impl Incremental {
    /// Builds the initial state: one full execution's worth of work.
    pub fn new(t: &Transformation, g: &Graph) -> Incremental {
        let mut inc = Incremental {
            t: t.clone(),
            graph: g.clone(),
            idx: IndexedGraph::build(g),
            label_edges: Vec::new(),
            rels: Vec::new(),
            rules: Vec::new(),
            node_counts: FxHashMap::default(),
            edge_counts: FxHashMap::default(),
            node_facts: BTreeSet::new(),
            edge_facts: BTreeSet::new(),
        };
        inc.rebuild_derived();
        inc
    }

    /// The current (patched) instance.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The current (patched) index.
    pub fn index(&self) -> &IndexedGraph {
        &self.idx
    }

    /// Live output node facts, canonically ordered.
    pub fn node_facts(&self) -> &BTreeSet<NodeFact> {
        &self.node_facts
    }

    /// Live output edge facts, canonically ordered.
    pub fn edge_facts(&self) -> &BTreeSet<EdgeFact> {
        &self.edge_facts
    }

    /// The fact view as an owned pair — directly comparable with
    /// [`crate::output_facts`] on the patched instance.
    pub fn output_facts(&self) -> (BTreeSet<NodeFact>, BTreeSet<EdgeFact>) {
        (self.node_facts.clone(), self.edge_facts.clone())
    }

    /// Assembles the output graph from the current per-rule tuples —
    /// identical to [`crate::execute`] on the patched instance (same
    /// tuples, same deterministic assembly).
    pub fn output_graph(&self) -> Graph {
        let per_rule: Vec<Vec<Vec<NodeId>>> =
            (0..self.rules.len()).map(|i| self.current_tuples(i)).collect();
        assemble(&self.t, &per_rule)
    }

    /// Approximate heap footprint of the incremental state (index plus
    /// relations; the fact view is output-sized).
    pub fn approx_bytes(&self) -> usize {
        self.idx.approx_bytes()
            + self.rels.iter().map(|e| e.rel.approx_bytes()).sum::<usize>()
            + self.label_edges.iter().map(|v| v.capacity() * 8).sum::<usize>()
    }

    /// Applies `delta` to the instance and patches the output state,
    /// falling back to a full rebuild past the crossover thresholds.
    /// On an `Err` (a delta referencing out-of-range node ids) the state
    /// is unchanged.
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> Result<DeltaOutcome, String> {
        let _span = gts_obs::span("delta_apply");
        let start = gts_obs::enabled().then(std::time::Instant::now);
        let out = self.apply_delta_inner(delta);
        if let Some(t0) = start {
            phase_metrics().delta_apply.record(t0.elapsed().as_micros() as u64);
        }
        out
    }

    fn apply_delta_inner(&mut self, delta: &GraphDelta) -> Result<DeltaOutcome, String> {
        let elements = (self.idx.num_nodes() + self.idx.num_edges()).max(1);
        let fx = delta.apply_in_place(&mut self.graph)?;
        let touched = fx.touched();
        if touched == 0 {
            return Ok(DeltaOutcome { touched, ..DeltaOutcome::default() });
        }
        if touched > MIN_FALLBACK_TOUCHED
            && touched.saturating_mul(FALLBACK_TOUCH_DIVISOR) > elements
        {
            return Ok(self.rebuild_full(touched));
        }

        self.patch_index(&fx)?;

        // Affected sources per distinct relation.
        let n = self.idx.num_nodes();
        let frontier_cap = (n / FALLBACK_FRONTIER_DIVISOR).max(1024);
        let maps = ChangeMaps::new(&fx);
        let mut affected_per_rel: Vec<Vec<u32>> = Vec::with_capacity(self.rels.len());
        let mut affected_total = 0usize;
        for entry in &self.rels {
            match affected_sources(&self.idx, entry, &maps, &fx, frontier_cap) {
                Some(affected) => {
                    affected_total += affected.len();
                    affected_per_rel.push(affected);
                }
                None => return Ok(self.rebuild_full(touched)),
            }
        }
        if affected_total > frontier_cap {
            return Ok(self.rebuild_full(touched));
        }

        // Re-run the forward search only for affected rows; patch each
        // relation and keep its row diffs.
        let mut diffs_per_rel: Vec<Vec<RowDiff>> = Vec::with_capacity(self.rels.len());
        for (entry, affected) in self.rels.iter_mut().zip(&affected_per_rel) {
            if affected.is_empty() {
                // No seeds and no fresh nodes: the relation is untouched.
                diffs_per_rel.push(Vec::new());
                continue;
            }
            let mut bfs = ProductBfs::new(n, entry.nfa.num_states());
            let mut changes: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
            let mut row: Vec<u32> = Vec::new();
            for &u in affected {
                row.clear();
                bfs.run(&self.idx, &entry.nfa, &entry.useful, u, &mut row);
                row.sort_unstable();
                row.dedup();
                changes.insert(u, row.clone());
            }
            diffs_per_rel.push(entry.rel.patch_rows(n, &changes));
        }

        // Turn row diffs into output-fact diffs per rule.
        let mut facts_added = 0usize;
        let mut facts_removed = 0usize;
        let mut rules_reevaluated = 0usize;
        for i in 0..self.rules.len() {
            let shape = self.rules[i].shape;
            let rel0 = self.rules[i].rel_ids.first().copied();
            match shape {
                Shape::Pairs { swap } => {
                    let diffs = &diffs_per_rel[rel0.expect("single atom")];
                    let tuple = |u: u32, v: u32| {
                        if swap {
                            vec![NodeId(v), NodeId(u)]
                        } else {
                            vec![NodeId(u), NodeId(v)]
                        }
                    };
                    let mut removed: Vec<Vec<NodeId>> = Vec::new();
                    let mut added: Vec<Vec<NodeId>> = Vec::new();
                    for d in diffs {
                        removed.extend(d.removed.iter().map(|&v| tuple(d.source, v)));
                        added.extend(d.added.iter().map(|&v| tuple(d.source, v)));
                    }
                    for t in &removed {
                        facts_removed += usize::from(self.apply_tuple(i, t, false) < 0);
                    }
                    for t in &added {
                        facts_added += usize::from(self.apply_tuple(i, t, true) > 0);
                    }
                }
                Shape::Diag | Shape::BoolDiag => {
                    let diffs = &diffs_per_rel[rel0.expect("single atom")];
                    let mut removed: Vec<u32> = Vec::new();
                    let mut added: Vec<u32> = Vec::new();
                    for d in diffs {
                        if d.removed.binary_search(&d.source).is_ok() {
                            removed.push(d.source);
                        }
                        if d.added.binary_search(&d.source).is_ok() {
                            added.push(d.source);
                        }
                    }
                    let st = &mut self.rules[i];
                    let was_live = st.diag_count > 0;
                    st.diag_count = st.diag_count + added.len() - removed.len();
                    let is_live = st.diag_count > 0;
                    if shape == Shape::Diag {
                        for &u in &removed {
                            facts_removed +=
                                usize::from(self.apply_tuple(i, &[NodeId(u)], false) < 0);
                        }
                        for &u in &added {
                            facts_added += usize::from(self.apply_tuple(i, &[NodeId(u)], true) > 0);
                        }
                    } else {
                        if was_live && !is_live {
                            facts_removed += usize::from(self.apply_tuple(i, &[], false) < 0);
                        }
                        if !was_live && is_live {
                            facts_added += usize::from(self.apply_tuple(i, &[], true) > 0);
                        }
                    }
                }
                Shape::Bool => {
                    let r = rel0.expect("single atom");
                    let diffs = &diffs_per_rel[r];
                    let gained: usize = diffs.iter().map(|d| d.added.len()).sum();
                    let lost: usize = diffs.iter().map(|d| d.removed.len()).sum();
                    let now = self.rels[r].rel.len();
                    let before = now + lost - gained;
                    if before > 0 && now == 0 {
                        facts_removed += usize::from(self.apply_tuple(i, &[], false) < 0);
                    }
                    if before == 0 && now > 0 {
                        facts_added += usize::from(self.apply_tuple(i, &[], true) > 0);
                    }
                }
                Shape::General => {
                    let st = &self.rules[i];
                    let affected = st.rel_ids.iter().any(|&r| !diffs_per_rel[r].is_empty())
                        || (fx.added_nodes > 0 && st.floating_var);
                    if !affected {
                        continue;
                    }
                    rules_reevaluated += 1;
                    let refs: Vec<&Relation> =
                        st.rel_ids.iter().map(|&r| &self.rels[r].rel).collect();
                    let new_tuples = eval_c2rpq_with(&self.idx, rule_body(&self.t.rules[i]), &refs);
                    let old_tuples = self.rules[i].tuples.take().expect("stored for General");
                    // Merge-diff the sorted tuple lists.
                    let (mut a, mut b) = (0usize, 0usize);
                    while a < old_tuples.len() || b < new_tuples.len() {
                        match (old_tuples.get(a), new_tuples.get(b)) {
                            (Some(x), Some(y)) if x == y => {
                                a += 1;
                                b += 1;
                            }
                            (Some(x), Some(y)) if x < y => {
                                let x = x.clone();
                                facts_removed += usize::from(self.apply_tuple(i, &x, false) < 0);
                                a += 1;
                            }
                            (Some(_), Some(y)) | (None, Some(y)) => {
                                let y = y.clone();
                                facts_added += usize::from(self.apply_tuple(i, &y, true) > 0);
                                b += 1;
                            }
                            (Some(x), None) => {
                                let x = x.clone();
                                facts_removed += usize::from(self.apply_tuple(i, &x, false) < 0);
                                a += 1;
                            }
                            (None, None) => unreachable!(),
                        }
                    }
                    self.rules[i].tuples = Some(new_tuples);
                }
            }
        }

        Ok(DeltaOutcome {
            strategy: DeltaStrategy::Incremental,
            touched,
            affected_sources: affected_total,
            rules_reevaluated,
            facts_added,
            facts_removed,
        })
    }

    /// Patches the index and the per-label edge lists from the effective
    /// changes (removals first, so a label or edge removed and re-added
    /// ends present).
    fn patch_index(&mut self, fx: &DeltaEffects) -> Result<(), String> {
        let _span = gts_obs::span("index_patch");
        let start = gts_obs::enabled().then(std::time::Instant::now);
        if fx.added_nodes > 0 {
            self.idx.grow_nodes(self.graph.num_nodes());
        }
        let mut touched_labels: BTreeSet<u32> = BTreeSet::new();
        let mut removed_per_label: FxHashMap<u32, FxHashSet<(u32, u32)>> = FxHashMap::default();
        for &(s, l, t) in &fx.removed_edges {
            removed_per_label.entry(l.0).or_default().insert((s.0, t.0));
            touched_labels.insert(l.0);
        }
        for &(_, l, _) in &fx.added_edges {
            touched_labels.insert(l.0);
        }
        if let Some(&max) = touched_labels.iter().max() {
            if self.label_edges.len() <= max as usize {
                self.label_edges.resize_with(max as usize + 1, Vec::new);
            }
        }
        for (&l, removed) in &removed_per_label {
            self.label_edges[l as usize].retain(|p| !removed.contains(p));
        }
        for &(s, l, t) in &fx.added_edges {
            self.label_edges[l.0 as usize].push((s.0, t.0));
        }
        for &l in &touched_labels {
            let edges = &self.label_edges[l as usize];
            self.idx.patch_label(EdgeLabel(l), edges).map_err(|e| e.to_string())?;
        }
        for &(u, l) in &fx.removed_labels {
            self.idx.set_node_label(u.0, l, false);
        }
        for &(u, l) in &fx.added_labels {
            self.idx.set_node_label(u.0, l, true);
        }
        self.idx.set_num_edges(self.graph.num_edges());
        if let Some(t0) = start {
            phase_metrics().index_patch.record(t0.elapsed().as_micros() as u64);
        }
        Ok(())
    }

    /// The crossover fallback: rebuild index, relations, tuples, and fact
    /// view from the already-patched graph.
    fn rebuild_full(&mut self, touched: usize) -> DeltaOutcome {
        let old_nodes = std::mem::take(&mut self.node_facts);
        let old_edges = std::mem::take(&mut self.edge_facts);
        self.idx = IndexedGraph::build(&self.graph);
        self.rebuild_derived();
        DeltaOutcome {
            strategy: DeltaStrategy::FullRebuild,
            touched,
            affected_sources: 0,
            rules_reevaluated: self.rules.len(),
            facts_added: self.node_facts.difference(&old_nodes).count()
                + self.edge_facts.difference(&old_edges).count(),
            facts_removed: old_nodes.difference(&self.node_facts).count()
                + old_edges.difference(&self.edge_facts).count(),
        }
    }

    /// (Re)builds everything derived from `graph` + `idx`: per-label edge
    /// lists, deduplicated relations, rule states, and the fact view.
    fn rebuild_derived(&mut self) {
        self.label_edges.clear();
        for (s, l, t) in self.graph.edges() {
            let li = l.0 as usize;
            if self.label_edges.len() <= li {
                self.label_edges.resize_with(li + 1, Vec::new);
            }
            self.label_edges[li].push((s.0, t.0));
        }

        let mut by_regex: FxHashMap<Regex, usize> = FxHashMap::default();
        let mut rels: Vec<RelEntry> = Vec::new();
        let mut rules: Vec<RuleState> = Vec::new();
        for rule in &self.t.rules {
            let body = rule_body(rule);
            let mut rel_ids = Vec::with_capacity(body.atoms.len());
            for a in &body.atoms {
                let id = *by_regex.entry(a.regex.clone()).or_insert_with(|| {
                    let nfa = Nfa::compiled(&a.regex);
                    let useful = nfa.useful_states();
                    let rel = Relation::build(&self.idx, &nfa);
                    rels.push(RelEntry { nfa, useful, rel });
                    rels.len() - 1
                });
                rel_ids.push(id);
            }
            let shape = shape_of(body);
            let floating_var =
                (0..body.num_vars).any(|v| !body.atoms.iter().any(|a| a.x.0 == v || a.y.0 == v));
            let diag_count = match shape {
                Shape::Diag | Shape::BoolDiag => {
                    let rel = &rels[rel_ids[0]].rel;
                    rel.src_support().iter().filter(|&u| rel.contains(u, u)).count()
                }
                _ => 0,
            };
            let tuples = (shape == Shape::General).then(|| {
                let refs: Vec<&Relation> = rel_ids.iter().map(|&r| &rels[r].rel).collect();
                eval_c2rpq_with(&self.idx, body, &refs)
            });
            rules.push(RuleState { rel_ids, shape, tuples, floating_var, diag_count });
        }
        self.rels = rels;
        self.rules = rules;

        self.node_counts.clear();
        self.edge_counts.clear();
        self.node_facts.clear();
        self.edge_facts.clear();
        for i in 0..self.rules.len() {
            for tuple in self.current_tuples(i) {
                self.apply_tuple(i, &tuple, true);
            }
        }
    }

    /// The rule's current sorted tuple list (what [`eval_c2rpq_with`]
    /// would return), derived from its shape.
    fn current_tuples(&self, i: usize) -> Vec<Vec<NodeId>> {
        let st = &self.rules[i];
        let rel = st.rel_ids.first().map(|&r| &self.rels[r].rel);
        match st.shape {
            Shape::Pairs { swap: false } => {
                rel.expect("single atom").iter_pairs().map(|(u, v)| vec![u, v]).collect()
            }
            Shape::Pairs { swap: true } => {
                let mut out: Vec<Vec<NodeId>> =
                    rel.expect("single atom").iter_pairs().map(|(u, v)| vec![v, u]).collect();
                out.sort();
                out
            }
            Shape::Bool => {
                let rel = rel.expect("single atom");
                if rel.is_empty() {
                    Vec::new()
                } else {
                    vec![Vec::new()]
                }
            }
            Shape::Diag => {
                let rel = rel.expect("single atom");
                rel.src_support()
                    .iter()
                    .filter(|&u| rel.contains(u, u))
                    .map(|u| vec![NodeId(u)])
                    .collect()
            }
            Shape::BoolDiag => {
                if st.diag_count > 0 {
                    vec![Vec::new()]
                } else {
                    Vec::new()
                }
            }
            Shape::General => st.tuples.clone().expect("stored for General"),
        }
    }

    /// Bumps the refcount of the fact `rule_i` derives from `tuple`.
    /// Returns `+1` when a fact became live, `-1` when one died, `0`
    /// otherwise.
    fn apply_tuple(&mut self, rule_i: usize, tuple: &[NodeId], add: bool) -> i32 {
        match &self.t.rules[rule_i] {
            Rule::Node(r) => {
                bump(&mut self.node_counts, &mut self.node_facts, (r.label, tuple.to_vec()), add)
            }
            Rule::Edge(r) => {
                let (x, y) = tuple.split_at(r.src_arity);
                let fact = ((r.src_label, x.to_vec()), r.edge, (r.tgt_label, y.to_vec()));
                bump(&mut self.edge_counts, &mut self.edge_facts, fact, add)
            }
        }
    }
}

fn bump<F: Ord + Clone + std::hash::Hash>(
    counts: &mut FxHashMap<F, u32>,
    live: &mut BTreeSet<F>,
    fact: F,
    add: bool,
) -> i32 {
    if add {
        let c = counts.entry(fact.clone()).or_insert(0);
        *c += 1;
        if *c == 1 {
            live.insert(fact);
            return 1;
        }
        0
    } else {
        match counts.get_mut(&fact) {
            Some(c) if *c > 1 => {
                *c -= 1;
                0
            }
            Some(_) => {
                counts.remove(&fact);
                live.remove(&fact);
                -1
            }
            None => {
                debug_assert!(false, "removed a fact that was never derived");
                0
            }
        }
    }
}

/// Delta-derived lookup structures for the backward product-BFS: changed
/// transitions seed it, removed edges/labels extend the traversed
/// adjacency to the old graph.
struct ChangeMaps {
    /// `(node, label)` pairs whose node label was removed.
    removed_labels: FxHashSet<(u32, u32)>,
    /// All `(node, label)` node-label changes, added and removed.
    changed_labels: Vec<(u32, u32)>,
    /// All `(src, label, tgt)` edge changes, added and removed.
    changed_edges: Vec<(u32, u32, u32)>,
    /// Removed edges by `(label, tgt) → srcs` (backward step along `r`).
    removed_by_tgt: FxHashMap<(u32, u32), Vec<u32>>,
    /// Removed edges by `(label, src) → tgts` (backward step along `r⁻`).
    removed_by_src: FxHashMap<(u32, u32), Vec<u32>>,
}

impl ChangeMaps {
    fn new(fx: &DeltaEffects) -> ChangeMaps {
        let mut maps = ChangeMaps {
            removed_labels: fx.removed_labels.iter().map(|&(n, l)| (n.0, l.0)).collect(),
            changed_labels: fx
                .added_labels
                .iter()
                .chain(&fx.removed_labels)
                .map(|&(n, l)| (n.0, l.0))
                .collect(),
            changed_edges: fx
                .added_edges
                .iter()
                .chain(&fx.removed_edges)
                .map(|&(s, l, t)| (s.0, l.0, t.0))
                .collect(),
            removed_by_tgt: FxHashMap::default(),
            removed_by_src: FxHashMap::default(),
        };
        for &(s, l, t) in &fx.removed_edges {
            maps.removed_by_tgt.entry((l.0, t.0)).or_default().push(s.0);
            maps.removed_by_src.entry((l.0, s.0)).or_default().push(t.0);
        }
        maps
    }
}

/// The sources whose relation rows may have changed: nodes `u` such that
/// `(u, initial)` forward-reaches some changed product transition over the
/// union of the old and new graphs — computed as a backward BFS from the
/// changed-transition seeds, with removed edges and labels consulted as
/// virtual adjacency. Fresh nodes are always included (their rows start
/// from nothing). Returns `None` when the frontier or the visited-mark
/// budget exceeds `cap` (the caller falls back to a full rebuild).
fn affected_sources(
    idx: &IndexedGraph,
    entry: &RelEntry,
    maps: &ChangeMaps,
    fx: &DeltaEffects,
    cap: usize,
) -> Option<Vec<u32>> {
    let nfa = &entry.nfa;
    let useful = &entry.useful;
    let states = nfa.num_states().max(1);
    // Forward search visits exactly {initial} ∪ useful states.
    let ok = |p: usize| p == 0 || useful[p];
    let mark_cap = cap.saturating_mul(4).max(1 << 16);

    // Reverse NFA transitions among visitable states: into[q] = (sym, p).
    let mut into: Vec<Vec<(AtomSym, usize)>> = vec![Vec::new(); states];
    for p in 0..nfa.num_states() {
        if !ok(p) {
            continue;
        }
        for &(sym, q) in nfa.transitions(p) {
            if useful[q] {
                into[q].push((sym, p));
            }
        }
    }

    let mut visited = Visited::new(idx.num_nodes(), states);
    visited.next_round();
    let mut work: Vec<(u32, u32)> = Vec::new();
    let mut affected: Vec<u32> = Vec::new();
    let mut marks = 0usize;
    macro_rules! mark {
        ($u:expr, $p:expr) => {{
            let (u, p) = ($u, $p);
            if visited.mark(states, u, p) {
                marks += 1;
                if p == 0 {
                    affected.push(u);
                }
                work.push((u, p));
            }
        }};
    }

    // Seeds: (node-before-step, state-before-step) of every changed
    // transition instance.
    for p in 0..nfa.num_states() {
        if !ok(p) {
            continue;
        }
        for &(sym, q) in nfa.transitions(p) {
            if !useful[q] {
                continue;
            }
            match sym {
                AtomSym::Node(a) => {
                    for &(nd, l) in &maps.changed_labels {
                        if l == a.0 {
                            mark!(nd, p as u32);
                        }
                    }
                }
                AtomSym::Edge(es) => {
                    for &(s, l, t) in &maps.changed_edges {
                        if l == es.label.0 {
                            mark!(if es.inverse { t } else { s }, p as u32);
                        }
                    }
                }
            }
        }
    }

    while let Some((v, q)) = work.pop() {
        if affected.len() > cap || marks > mark_cap {
            return None;
        }
        for &(sym, p) in &into[q as usize] {
            let p = p as u32;
            match sym {
                // A Node(a) step stays in place: (v, p) precedes (v, q)
                // iff v carried `a` in the old or new labeling.
                AtomSym::Node(a) => {
                    if idx.has_label(v, a) || maps.removed_labels.contains(&(v, a.0)) {
                        mark!(v, p);
                    }
                }
                // An Edge step u →_es v: predecessors are v's successors
                // along the inverse symbol, plus removed-edge endpoints.
                AtomSym::Edge(es) => {
                    for &u in idx.successors(v, es.inv()) {
                        mark!(u, p);
                    }
                    let key = (es.label.0, v);
                    let extra = if es.inverse {
                        maps.removed_by_src.get(&key)
                    } else {
                        maps.removed_by_tgt.get(&key)
                    };
                    if let Some(us) = extra {
                        for &u in us {
                            mark!(u, p);
                        }
                    }
                }
            }
        }
    }

    // Fresh nodes always recompute (from-nothing rows are cheap).
    for u in fx.first_new_node..fx.first_new_node + fx.added_nodes as u32 {
        if visited.mark(states, u, 0) {
            affected.push(u);
        }
    }
    if affected.len() > cap {
        return None;
    }
    affected.sort_unstable();
    Some(affected)
}

/// Applies `delta` through `inc` — the free-function spelling of
/// [`Incremental::apply_delta`] used by the engine and benches.
pub fn execute_delta(inc: &mut Incremental, delta: &GraphDelta) -> Result<DeltaOutcome, String> {
    inc.apply_delta(delta)
}

/// Convenience: builds the incremental state for `t` over `g` with
/// default options (one full execution's worth of work).
pub fn incremental(t: &Transformation, g: &Graph, _opts: &ExecOptions) -> Incremental {
    Incremental::new(t, g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{output_facts, ExecOptions};
    use gts_core::medical_transformation;
    use gts_graph::{LabelSet, Vocab};

    fn medical_graph(v: &mut Vocab) -> Graph {
        let vaccine = v.node_label("Vaccine");
        let antigen = v.node_label("Antigen");
        let pathogen = v.node_label("Pathogen");
        let dt = v.edge_label("designTarget");
        let cr = v.edge_label("crossReacting");
        let ex = v.edge_label("exhibits");
        let mut g = Graph::new();
        let vac = g.add_labeled_node([vaccine]);
        let a1 = g.add_labeled_node([antigen]);
        let a2 = g.add_labeled_node([antigen]);
        let a3 = g.add_labeled_node([antigen]);
        let p = g.add_labeled_node([pathogen]);
        g.add_edge(vac, dt, a1);
        g.add_edge(a1, cr, a2);
        g.add_edge(a2, cr, a3);
        g.add_edge(p, ex, a1);
        g.add_edge(p, ex, a2);
        g.add_edge(p, ex, a3);
        g
    }

    /// Incremental facts must equal a from-scratch execution on the
    /// patched graph, and the assembled output graphs must be identical.
    fn assert_agrees_with_full(inc: &Incremental, t: &Transformation) {
        let idx = IndexedGraph::build(inc.graph());
        let want = output_facts(&idx, t, &ExecOptions::default());
        assert_eq!(inc.output_facts(), want);
        let full = crate::exec::execute(t, inc.graph());
        let out = inc.output_graph();
        assert_eq!(out.num_nodes(), full.num_nodes());
        assert_eq!(out.edges().collect::<Vec<_>>(), full.edges().collect::<Vec<_>>());
    }

    #[test]
    fn single_edge_deltas_agree_with_full_execution() {
        let mut v = Vocab::new();
        let t = medical_transformation(&mut v);
        let g = medical_graph(&mut v);
        let cr = v.find_edge_label("crossReacting").unwrap();
        let mut inc = Incremental::new(&t, &g);
        assert_agrees_with_full(&inc, &t);

        // Cut the chain: a2 -cr-> a3 disappears from the closure.
        let cut =
            GraphDelta { removed_edges: vec![(NodeId(2), cr, NodeId(3))], ..GraphDelta::default() };
        let out = inc.apply_delta(&cut).unwrap();
        assert_eq!(out.strategy, DeltaStrategy::Incremental);
        assert!(out.facts_removed > 0);
        assert_agrees_with_full(&inc, &t);

        // Re-link it; the closure comes back.
        let relink =
            GraphDelta { added_edges: vec![(NodeId(2), cr, NodeId(3))], ..GraphDelta::default() };
        let out = inc.apply_delta(&relink).unwrap();
        assert_eq!(out.strategy, DeltaStrategy::Incremental);
        assert!(out.facts_added > 0);
        assert_agrees_with_full(&inc, &t);
    }

    #[test]
    fn node_label_and_fresh_node_deltas_agree() {
        let mut v = Vocab::new();
        let t = medical_transformation(&mut v);
        let g = medical_graph(&mut v);
        let antigen = v.find_node_label("Antigen").unwrap();
        let cr = v.find_edge_label("crossReacting").unwrap();
        let mut inc = Incremental::new(&t, &g);

        // A fresh antigen spliced into the chain.
        let splice = GraphDelta {
            added_nodes: vec![LabelSet::from_iter([antigen.0])],
            added_edges: vec![(NodeId(3), cr, NodeId(5))],
            ..GraphDelta::default()
        };
        inc.apply_delta(&splice).unwrap();
        assert_agrees_with_full(&inc, &t);

        // Remove a label mid-chain (a2 stops being an Antigen).
        let unlabel =
            GraphDelta { removed_labels: vec![(NodeId(2), antigen)], ..GraphDelta::default() };
        inc.apply_delta(&unlabel).unwrap();
        assert_agrees_with_full(&inc, &t);
    }

    #[test]
    fn tombstone_delta_agrees() {
        let mut v = Vocab::new();
        let t = medical_transformation(&mut v);
        let g = medical_graph(&mut v);
        let mut inc = Incremental::new(&t, &g);
        let tomb = GraphDelta { removed_nodes: vec![NodeId(1)], ..GraphDelta::default() };
        inc.apply_delta(&tomb).unwrap();
        assert_agrees_with_full(&inc, &t);
    }

    #[test]
    fn oversized_delta_falls_back_to_full_rebuild() {
        let mut v = Vocab::new();
        let t = medical_transformation(&mut v);
        let g = medical_graph(&mut v);
        let mut inc = Incremental::new(&t, &g);
        // Tombstone most of the graph: way past the touch crossover.
        let wipe = GraphDelta {
            removed_nodes: vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            ..GraphDelta::default()
        };
        let out = inc.apply_delta(&wipe).unwrap();
        assert_eq!(out.strategy, DeltaStrategy::FullRebuild);
        assert_agrees_with_full(&inc, &t);
    }

    #[test]
    fn empty_delta_is_a_noop() {
        let mut v = Vocab::new();
        let t = medical_transformation(&mut v);
        let g = medical_graph(&mut v);
        let mut inc = Incremental::new(&t, &g);
        let before = inc.output_facts();
        let out = inc.apply_delta(&GraphDelta::default()).unwrap();
        assert_eq!(out.touched, 0);
        assert_eq!(out.facts_added + out.facts_removed, 0);
        assert_eq!(inc.output_facts(), before);
    }

    #[test]
    fn bad_delta_leaves_state_consistent() {
        let mut v = Vocab::new();
        let t = medical_transformation(&mut v);
        let g = medical_graph(&mut v);
        let mut inc = Incremental::new(&t, &g);
        let bad = GraphDelta { removed_nodes: vec![NodeId(99)], ..GraphDelta::default() };
        assert!(inc.apply_delta(&bad).is_err());
        assert_agrees_with_full(&inc, &t);
    }
}
