//! The static↔dynamic differential harness.
//!
//! The paper's analyses make universally-quantified claims about runtime
//! behavior: a *certified* type-check "holds" means every output of `T`
//! on a source-conforming instance conforms to the target schema; a
//! certified equivalence "holds" means `T1` and `T2` produce identical
//! outputs on every conforming instance. This module *watches those
//! claims be right*: it samples random conforming instances
//! ([`gts_schema::random_conforming_graph`]), executes the
//! transformations through the indexed engine, and cross-checks the
//! dynamic observations against the static verdict — any disagreement is
//! a soundness bug in one of the two towers and is reported with the
//! witnessing instance graph.
//!
//! Every run also replays the naive evaluator
//! ([`Transformation::apply`]/[`Transformation::output_facts`]) against
//! the indexed engine, so the harness doubles as a differential test of
//! the execution layer itself.

use crate::exec::{execute_and_facts, output_facts, ExecOptions};
use crate::index::IndexedGraph;
use gts_core::{Decision, Transformation};
use gts_graph::{Graph, Vocab};
use gts_schema::{random_conforming_graph, ConformanceError, Schema};
use rand::Rng;

/// Configuration of one differential run.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Number of instances to sample.
    pub instances: usize,
    /// Requested nodes per schema label in each instance.
    pub size_per_label: usize,
    /// Generation attempts per instance before it is skipped.
    pub attempts: usize,
    /// Worker threads handed to the executor.
    pub threads: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig { instances: 8, size_per_label: 3, attempts: 5, threads: 1 }
    }
}

/// One observed static/dynamic disagreement, with the witnessing input.
#[derive(Clone, Debug)]
pub enum Disagreement {
    /// A certified "type check holds" verdict, but this conforming input
    /// produced a non-conforming output.
    TypeCheck {
        /// The conforming input instance.
        instance: Graph,
        /// How its output violates the target schema.
        violation: ConformanceError,
    },
    /// A certified "equivalent" verdict, but the transformations disagree
    /// on this conforming input.
    Equivalence {
        /// The conforming input instance.
        instance: Graph,
    },
    /// The indexed engine and the naive evaluator disagree on this input
    /// (an execution-layer bug, independent of any analysis).
    EngineMismatch {
        /// The input instance.
        instance: Graph,
    },
}

/// Outcome of a differential run.
#[derive(Clone, Debug, Default)]
pub struct HarnessReport {
    /// Instances actually generated and checked.
    pub checked: usize,
    /// Instances skipped because generation failed within its attempts.
    pub skipped: usize,
    /// All observed disagreements (soundness bugs if non-empty).
    pub disagreements: Vec<Disagreement>,
    /// For a failing static verdict: `true` iff some sampled instance
    /// concretely witnessed the failure (not guaranteed — random sampling
    /// may miss the counterexample region).
    pub witnessed_failure: bool,
    /// An *uncertified* "holds" verdict was contradicted by a sampled
    /// instance. Not a soundness disagreement — uncertified answers carry
    /// no guarantee — but a signal that the engine budgets were too low.
    pub uncertified_holds_refuted: bool,
}

impl HarnessReport {
    /// `true` iff no static/dynamic disagreement was observed.
    pub fn ok(&self) -> bool {
        self.disagreements.is_empty()
    }

    /// Human-readable report; disagreement instances are rendered in DOT
    /// so a failure message carries its counterexample graph.
    pub fn render(&self, vocab: &Vocab) -> String {
        let mut s = format!(
            "checked {} instance(s), skipped {}, {} disagreement(s)\n",
            self.checked,
            self.skipped,
            self.disagreements.len()
        );
        for d in &self.disagreements {
            match d {
                Disagreement::TypeCheck { instance, violation } => {
                    s.push_str(&format!(
                        "type-check disagreement: output violates target ({violation:?})\n\
                         on input:\n{}\n",
                        instance.to_dot(vocab)
                    ));
                }
                Disagreement::Equivalence { instance } => {
                    s.push_str(&format!(
                        "equivalence disagreement: outputs differ on input:\n{}\n",
                        instance.to_dot(vocab)
                    ));
                }
                Disagreement::EngineMismatch { instance } => {
                    s.push_str(&format!(
                        "indexed/naive engine mismatch on input:\n{}\n",
                        instance.to_dot(vocab)
                    ));
                }
            }
        }
        s
    }
}

/// Differentially validates a type-checking verdict: samples conforming
/// `source`-instances, executes `t`, and checks the outputs against
/// `target`. A certified "holds" verdict must see only conforming
/// outputs; violations under a "fails" verdict are recorded as witnesses.
pub fn differential_type_check<R: Rng>(
    t: &Transformation,
    source: &Schema,
    target: &Schema,
    verdict: &Decision,
    cfg: &HarnessConfig,
    rng: &mut R,
) -> HarnessReport {
    let mut report = HarnessReport::default();
    let opts = ExecOptions { threads: cfg.threads, ..ExecOptions::default() };
    for _ in 0..cfg.instances {
        let Some(g) = random_conforming_graph(source, cfg.size_per_label, cfg.attempts, rng) else {
            report.skipped += 1;
            continue;
        };
        report.checked += 1;
        let idx = IndexedGraph::build(&g);
        let (out, facts) = execute_and_facts(&idx, t, &opts);
        if facts != t.output_facts(&g) {
            report.disagreements.push(Disagreement::EngineMismatch { instance: g });
            continue;
        }
        match target.conforms(&out) {
            Ok(()) => {}
            Err(violation) => match (verdict.holds, verdict.certified) {
                (true, true) => {
                    report.disagreements.push(Disagreement::TypeCheck { instance: g, violation })
                }
                (true, false) => report.uncertified_holds_refuted = true,
                (false, _) => report.witnessed_failure = true,
            },
        }
    }
    report
}

/// Differentially validates an equivalence verdict: samples conforming
/// `source`-instances and compares the two transformations' output facts.
/// A certified "holds" verdict must see only identical outputs;
/// divergences under a "fails" verdict are recorded as witnesses.
pub fn differential_equivalence<R: Rng>(
    t1: &Transformation,
    t2: &Transformation,
    source: &Schema,
    verdict: &Decision,
    cfg: &HarnessConfig,
    rng: &mut R,
) -> HarnessReport {
    let mut report = HarnessReport::default();
    let opts = ExecOptions { threads: cfg.threads, ..ExecOptions::default() };
    for _ in 0..cfg.instances {
        let Some(g) = random_conforming_graph(source, cfg.size_per_label, cfg.attempts, rng) else {
            report.skipped += 1;
            continue;
        };
        report.checked += 1;
        let idx = IndexedGraph::build(&g);
        let (f1, f2) = (output_facts(&idx, t1, &opts), output_facts(&idx, t2, &opts));
        if f1 != t1.output_facts(&g) || f2 != t2.output_facts(&g) {
            report.disagreements.push(Disagreement::EngineMismatch { instance: g });
            continue;
        }
        if f1 != f2 {
            match (verdict.holds, verdict.certified) {
                (true, true) => {
                    report.disagreements.push(Disagreement::Equivalence { instance: g })
                }
                (true, false) => report.uncertified_holds_refuted = true,
                (false, _) => report.witnessed_failure = true,
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_core::medical_transformation;
    use gts_query::{Atom, C2rpq, Regex, Var};
    use gts_schema::Mult;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn medical_schemas(v: &mut Vocab) -> (Schema, Schema) {
        let vaccine = v.node_label("Vaccine");
        let antigen = v.node_label("Antigen");
        let pathogen = v.node_label("Pathogen");
        let dt = v.edge_label("designTarget");
        let cr = v.edge_label("crossReacting");
        let ex = v.edge_label("exhibits");
        let targets = v.edge_label("targets");
        let mut s0 = Schema::new();
        s0.set_edge(vaccine, dt, antigen, Mult::One, Mult::Star);
        s0.set_edge(antigen, cr, antigen, Mult::Star, Mult::Star);
        s0.set_edge(pathogen, ex, antigen, Mult::Plus, Mult::Star);
        let mut s1 = Schema::new();
        s1.set_edge(vaccine, dt, antigen, Mult::One, Mult::Star);
        s1.set_edge(vaccine, targets, antigen, Mult::Plus, Mult::Star);
        s1.set_edge(pathogen, ex, antigen, Mult::Plus, Mult::Star);
        (s0, s1)
    }

    #[test]
    fn medical_type_check_verdict_is_dynamically_consistent() {
        let mut v = Vocab::new();
        let t0 = medical_transformation(&mut v);
        let (s0, s1) = medical_schemas(&mut v);
        // The paper's Example 1.1 verdict: T0 : S0 → S1 type checks.
        let verdict = Decision { holds: true, certified: true };
        let mut rng = StdRng::seed_from_u64(11);
        let report =
            differential_type_check(&t0, &s0, &s1, &verdict, &HarnessConfig::default(), &mut rng);
        assert!(report.ok(), "{}", report.render(&v));
        assert!(report.checked > 0);
    }

    #[test]
    fn failing_verdicts_get_witnessed() {
        let mut v = Vocab::new();
        let t0 = medical_transformation(&mut v);
        let (s0, _) = medical_schemas(&mut v);
        // T0 : S0 → S0 does not type check (S0 lacks `targets`); random
        // conforming instances witness the violation immediately.
        let verdict = Decision { holds: false, certified: true };
        let mut rng = StdRng::seed_from_u64(5);
        let report =
            differential_type_check(&t0, &s0, &s0, &verdict, &HarnessConfig::default(), &mut rng);
        assert!(report.ok());
        assert!(report.witnessed_failure, "sampled instances should expose the violation");
        assert!(!report.uncertified_holds_refuted);
    }

    #[test]
    fn uncertified_holds_refutations_are_flagged_not_buried() {
        let mut v = Vocab::new();
        let t0 = medical_transformation(&mut v);
        let (s0, _) = medical_schemas(&mut v);
        // An (hypothetical) uncertified "holds" verdict for T0 : S0 → S0
        // is contradicted by every sampled instance: not a soundness
        // disagreement, but it must be surfaced, not counted as a
        // witnessed failure.
        let verdict = Decision { holds: true, certified: false };
        let mut rng = StdRng::seed_from_u64(5);
        let report =
            differential_type_check(&t0, &s0, &s0, &verdict, &HarnessConfig::default(), &mut rng);
        assert!(report.ok());
        assert!(report.uncertified_holds_refuted);
        assert!(!report.witnessed_failure);
    }

    #[test]
    fn equivalence_of_identical_transformations_is_consistent() {
        let mut v = Vocab::new();
        let t0 = medical_transformation(&mut v);
        let (s0, _) = medical_schemas(&mut v);
        let verdict = Decision { holds: true, certified: true };
        let mut rng = StdRng::seed_from_u64(23);
        let report = differential_equivalence(
            &t0,
            &t0.clone(),
            &s0,
            &verdict,
            &HarnessConfig::default(),
            &mut rng,
        );
        assert!(report.ok(), "{}", report.render(&v));
        assert!(report.checked > 0);
    }

    #[test]
    fn inequivalence_gets_witnessed() {
        let mut v = Vocab::new();
        let t1 = medical_transformation(&mut v);
        let mut t2 = t1.clone();
        // Drop the `targets` rule: outputs differ on any input with a
        // designTarget edge.
        t2.rules.remove(3);
        let (s0, _) = medical_schemas(&mut v);
        let verdict = Decision { holds: false, certified: true };
        let mut rng = StdRng::seed_from_u64(7);
        let report =
            differential_equivalence(&t1, &t2, &s0, &verdict, &HarnessConfig::default(), &mut rng);
        assert!(report.ok());
        assert!(report.witnessed_failure);
    }

    #[test]
    fn unsatisfiable_schemas_report_skips() {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let r = v.edge_label("r");
        // A needs an r-successor A, but each A may have at most one
        // incoming r... satisfiable actually; make it impossible instead:
        // A requires an r-edge to B, but B admits none.
        let b = v.node_label("B");
        let mut s = Schema::new();
        s.set_edge(a, r, b, Mult::One, Mult::Zero);
        let q =
            C2rpq::new(1, vec![Var(0)], vec![Atom { x: Var(0), y: Var(0), regex: Regex::node(a) }]);
        let mut t = Transformation::new();
        t.add_node_rule(a, q);
        let verdict = Decision { holds: true, certified: true };
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = HarnessConfig { instances: 2, attempts: 2, ..HarnessConfig::default() };
        let report = differential_type_check(&t, &s, &s, &verdict, &cfg, &mut rng);
        assert_eq!(report.checked + report.skipped, 2);
    }
}
