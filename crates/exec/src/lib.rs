//! # gts-exec
//!
//! A high-performance execution engine for the paper's graph
//! transformations (*Static Analysis of Graph Database Transformations*,
//! PODS 2023, Section 4) over concrete finite instances — the *dynamic*
//! counterpart to the static analyses of `gts-core`/`gts-engine`.
//!
//! The naive semantics ([`gts_core::Transformation::apply`]) re-runs an
//! NFA product per candidate node pair through hash-backed adjacency.
//! This crate replaces that hot path with:
//!
//! * [`IndexedGraph`] — an immutable CSR-style index built once per
//!   instance: forward/reverse adjacency per edge label plus per-label
//!   node bitsets;
//! * [`Relation`] — RPQ evaluation by frontier-based BFS over the
//!   product of the graph with the interned Glushkov automaton
//!   ([`gts_query::Nfa::compiled`]), with [`gts_graph::LabelSet`] bitset
//!   frontiers and an anchored-source prefilter;
//! * [`execute`] / [`execute_with`] — whole-transformation execution
//!   with per-rule parallelism over a sharded `std::thread` worker pool
//!   (the same work-stealing-free pattern as `gts-engine`'s batches),
//!   deterministic regardless of thread count;
//! * the **differential harness** ([`differential_type_check`],
//!   [`differential_equivalence`]) — samples random conforming
//!   instances, executes the transformations, and cross-checks the
//!   observed outputs against the static verdicts, reporting any
//!   counterexample instance.
//!
//! ## Quickstart
//!
//! ```
//! use gts_core::prelude::*;
//! use gts_exec::{execute, IndexedGraph, output_facts, ExecOptions};
//!
//! let mut vocab = Vocab::new();
//! let t0 = medical_transformation(&mut vocab);
//! let vaccine = vocab.find_node_label("Vaccine").unwrap();
//! let antigen = vocab.find_node_label("Antigen").unwrap();
//! let dt = vocab.find_edge_label("designTarget").unwrap();
//!
//! let mut g = Graph::new();
//! let v = g.add_labeled_node([vaccine]);
//! let a = g.add_labeled_node([antigen]);
//! g.add_edge(v, dt, a);
//!
//! // Indexed execution agrees with the naive semantics, fact for fact.
//! let out = execute(&t0, &g);
//! assert_eq!(out.num_nodes(), 2);
//! let idx = IndexedGraph::build(&g);
//! assert_eq!(output_facts(&idx, &t0, &ExecOptions::default()), t0.output_facts(&g));
//! ```

#![warn(missing_docs)]

mod delta;
mod exec;
mod harness;
mod index;
mod rpq;

pub use delta::{
    execute_delta, incremental, DeltaOutcome, DeltaStrategy, Incremental,
    FALLBACK_FRONTIER_DIVISOR, FALLBACK_TOUCH_DIVISOR, MIN_FALLBACK_TOUCHED,
};
pub use exec::{
    eval_c2rpq, eval_rule_bodies, eval_uc2rpq, execute, execute_and_facts, execute_indexed,
    execute_with, output_facts, parallel_cutoff, EdgeFact, ExecOptions, NodeFact, ParallelCutoff,
    DEFAULT_MIN_PARALLEL_WORK,
};
pub use harness::{
    differential_equivalence, differential_type_check, Disagreement, HarnessConfig, HarnessReport,
};
pub use index::{IndexBuildOptions, IndexError, IndexedGraph};
pub use rpq::{NodeCol, NodeColIter, Relation};
