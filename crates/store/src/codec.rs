//! Minimal byte codec for record payloads: little-endian fixed-width
//! integers and length-prefixed byte strings. Decoding is total — every
//! method returns `Option`, and `None` means the payload is malformed
//! (treat as corruption: drop the record, stay on the cold path).

/// Payload encoder. A thin veneer over `Vec<u8>` so record payloads are
/// written the same way everywhere.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// Appends a raw byte.
    pub fn u8(&mut self, v: u8) -> &mut Enc {
        self.buf.push(v);
        self
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) -> &mut Enc {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) -> &mut Enc {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `usize` as a `u64` (portable across word sizes).
    pub fn usize(&mut self, v: usize) -> &mut Enc {
        self.u64(v as u64)
    }

    /// Appends a length-prefixed (`u32`) byte string.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Enc {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Enc {
        self.bytes(v.as_bytes())
    }

    /// Consumes the encoder, yielding the payload bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Payload decoder over a borrowed byte slice. Each read advances an
/// internal cursor; any out-of-bounds read returns `None` permanently.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let out = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        let b = self.take(8)?;
        Some(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a `u64` and converts to `usize` (fails if it doesn't fit).
    pub fn usize(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Option<&'a str> {
        std::str::from_utf8(self.bytes()?).ok()
    }

    /// `true` when the cursor has consumed every byte — decoders should
    /// check this last so trailing garbage is treated as corruption.
    pub fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut e = Enc::new();
        e.u8(7).u32(0xdead_beef).u64(u64::MAX).usize(42).bytes(b"raw").str("text");
        let payload = e.finish();
        let mut d = Dec::new(&payload);
        assert_eq!(d.u8(), Some(7));
        assert_eq!(d.u32(), Some(0xdead_beef));
        assert_eq!(d.u64(), Some(u64::MAX));
        assert_eq!(d.usize(), Some(42));
        assert_eq!(d.bytes(), Some(&b"raw"[..]));
        assert_eq!(d.str(), Some("text"));
        assert!(d.done());
    }

    #[test]
    fn short_reads_fail_closed() {
        let mut d = Dec::new(&[1, 2, 3]);
        assert_eq!(d.u32(), None);
        // A failed read leaves the cursor where it was; nothing panics.
        assert_eq!(d.u8(), Some(1));
        let mut d = Dec::new(&[200, 0, 0, 0, 1, 2]); // claims 200 bytes, has 2
        assert_eq!(d.bytes(), None);
        let mut d = Dec::new(&[2, 0, 0, 0, 0xff, 0xfe]); // invalid UTF-8
        assert_eq!(d.str(), None);
    }
}
