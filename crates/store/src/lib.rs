//! # gts-store
//!
//! The on-disk cache substrate of the `gts` workspace: a dependency-free,
//! std-only record log under `.gts/cache/`, one file per analysis-session
//! identity, holding the memoized oracle state (containment verdicts,
//! completion memos, per-TBox solver snapshots) that otherwise dies with
//! the process.
//!
//! ## File layout
//!
//! ```text
//! header  := MAGIC("GTSC") VERSION(u32 LE) ID_LEN(u32 LE) ID(bytes) ID_CRC(u32 LE)
//! record  := LEN(u32 LE) CRC(u32 LE) KIND(u8) PAYLOAD(LEN-1 bytes)
//! file    := header record*
//! ```
//!
//! `ID` is the full canonical identity of the session the log caches for
//! (vocabulary + rendered schema + engine budgets) — the *preimage* of the
//! file's fingerprint name, stored so a 64-bit fingerprint collision
//! between two identities can never hydrate the wrong cache. `LEN` covers
//! the kind byte plus the payload; `CRC` is CRC-32 (IEEE) over the same
//! bytes.
//!
//! ## Failure semantics
//!
//! Every way a file can be wrong degrades to the **cold path**, never to a
//! wrong verdict:
//!
//! * missing file / unreadable file → no records;
//! * bad magic, unknown version, identity mismatch → no records (the file
//!   is superseded wholesale on the next flush);
//! * truncated tail (a torn append) → every complete record before the
//!   tear is returned, the tear is dropped;
//! * CRC mismatch (bit flip) → decoding stops at the flipped record; the
//!   prefix is returned. (A corrupt length field cannot be distinguished
//!   from a corrupt body, so resynchronizing past a bad record would risk
//!   misframing — stopping is the safe choice.)
//!
//! Appends go through `O_APPEND` writes of whole records, so a crash can
//! only ever produce a truncated tail. Snapshot installs
//! ([`install_snapshot`]) go through a temp file + rename.

#![warn(missing_docs)]

use std::io::Write as _;
use std::path::{Path, PathBuf};

mod b64;
mod codec;

pub use b64::{base64_decode, base64_encode};
pub use codec::{Dec, Enc};

/// The four magic bytes opening every store file.
pub const MAGIC: [u8; 4] = *b"GTSC";

/// The store format version. Bump on ANY change to record payload
/// encodings: a version mismatch invalidates the whole file (cold path),
/// which is exactly what a format change must do.
pub const FORMAT_VERSION: u32 = 1;

/// Hard bound on one record's length; longer length fields are treated as
/// corruption (they would otherwise ask the loader to allocate garbage).
pub const MAX_RECORD_BYTES: usize = 256 << 20;

/// 64-bit FNV-1a — the workspace's standard content fingerprint.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Fast 64-bit content hash for **in-memory** bookkeeping (flush dedup
/// sets, pending-snapshot buckets): folds eight bytes per multiply, so it
/// is an order of magnitude faster than [`fnv64`] on the multi-kilobyte
/// keys solver snapshots carry. The value is never persisted — anything
/// written to disk or used as a file name keeps using [`fnv64`], whose
/// output is part of the store contract.
pub fn hash64(bytes: &[u8]) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut h: u64 = (bytes.len() as u64).wrapping_mul(SEED);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        h = (h.rotate_left(5) ^ w).wrapping_mul(SEED);
    }
    let mut tail = 0u64;
    for &b in chunks.remainder() {
        tail = (tail << 8) | b as u64;
    }
    (h.rotate_left(5) ^ tail).wrapping_mul(SEED)
}

/// Slicing-by-8 lookup tables for [`crc32`], built at compile time.
/// `CRC_TABLES[0]` is the classic byte-at-a-time table; table `k` maps a
/// byte to its CRC contribution from `k` positions further back, so eight
/// table lookups retire eight input bytes per iteration.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            let mask = 0u32.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
            j += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xff) as usize];
            i += 1;
        }
        k += 1;
    }
    t
};

/// CRC-32 (IEEE 802.3, reflected) over `bytes`. Slicing-by-8: the hot
/// path of every store load and flush (a warm multi-megabyte store is
/// checksummed on each start, so the byte-at-a-time loop was the single
/// largest cost of a warm start).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = CRC_TABLES[7][(lo & 0xff) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xff) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xff) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xff) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xff) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xff) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// One decoded log record: a kind tag (meaning assigned by the layer that
/// wrote it — see `gts-engine`'s disk module) and an opaque payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// Consumer-defined record kind.
    pub kind: u8,
    /// The payload bytes (encoded with [`Enc`] by convention).
    pub payload: Vec<u8>,
}

/// Why a load returned fewer records than the file might hold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadStatus {
    /// No file (or an unreadable one): the cold path, nothing lost.
    Missing,
    /// Header + every record decoded and checksummed clean.
    Clean,
    /// The file's magic/version/identity did not match: all records
    /// ignored (the file belongs to another format or identity).
    HeaderMismatch,
    /// A truncated or checksum-failing tail was dropped; the returned
    /// records are the clean prefix.
    TruncatedTail,
}

/// Outcome of loading a store file: the clean records plus what happened.
#[derive(Clone, Debug)]
pub struct Loaded {
    /// Every record that decoded and checksummed clean, in write order.
    pub records: Vec<Record>,
    /// Load disposition (clean / degraded / ignored).
    pub status: LoadStatus,
    /// Total bytes read from the file (0 when missing).
    pub bytes: usize,
}

impl Loaded {
    fn empty(status: LoadStatus) -> Loaded {
        Loaded { records: Vec::new(), status, bytes: 0 }
    }

    /// `true` when the tail of the file was lost to corruption.
    pub fn degraded(&self) -> bool {
        self.status == LoadStatus::TruncatedTail
    }
}

fn header_bytes(identity: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + identity.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(identity.len() as u32).to_le_bytes());
    out.extend_from_slice(identity.as_bytes());
    out.extend_from_slice(&crc32(identity.as_bytes()).to_le_bytes());
    out
}

fn record_bytes(rec: &Record) -> Vec<u8> {
    let len = 1 + rec.payload.len();
    let mut body = Vec::with_capacity(len);
    body.push(rec.kind);
    body.extend_from_slice(&rec.payload);
    let mut out = Vec::with_capacity(8 + len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

fn read_u32(bytes: &[u8], pos: usize) -> Option<u32> {
    bytes.get(pos..pos + 4).map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

/// Serializes a whole store (header + records) to bytes — the snapshot
/// shape shipped over the wire by the server's `cache_export` verb.
pub fn encode_store(identity: &str, records: &[Record]) -> Vec<u8> {
    let mut out = header_bytes(identity);
    for rec in records {
        out.extend_from_slice(&record_bytes(rec));
    }
    out
}

/// Decodes the identity string out of a store's header, verifying magic,
/// version, and the identity checksum. `None` = not a usable store.
pub fn decode_identity(bytes: &[u8]) -> Option<(String, usize)> {
    if bytes.len() < 12 || bytes[..4] != MAGIC {
        return None;
    }
    if read_u32(bytes, 4)? != FORMAT_VERSION {
        return None;
    }
    let id_len = read_u32(bytes, 8)? as usize;
    if id_len > MAX_RECORD_BYTES {
        return None;
    }
    let id_end = 12usize.checked_add(id_len)?;
    let id = bytes.get(12..id_end)?;
    if read_u32(bytes, id_end)? != crc32(id) {
        return None;
    }
    let id = std::str::from_utf8(id).ok()?;
    Some((id.to_owned(), id_end + 4))
}

/// Decodes store bytes. When `expect_identity` is given, a header whose
/// identity differs yields [`LoadStatus::HeaderMismatch`] and no records —
/// fingerprint-named files can collide; identities cannot.
pub fn decode_store(bytes: &[u8], expect_identity: Option<&str>) -> Loaded {
    let Some((identity, mut pos)) = decode_identity(bytes) else {
        return Loaded { bytes: bytes.len(), ..Loaded::empty(LoadStatus::HeaderMismatch) };
    };
    if expect_identity.is_some_and(|want| want != identity) {
        return Loaded { bytes: bytes.len(), ..Loaded::empty(LoadStatus::HeaderMismatch) };
    }
    let mut records = Vec::new();
    let mut status = LoadStatus::Clean;
    while pos < bytes.len() {
        let frame = (|| {
            let len = read_u32(bytes, pos)? as usize;
            if len == 0 || len > MAX_RECORD_BYTES {
                return None;
            }
            let crc = read_u32(bytes, pos + 4)?;
            let body = bytes.get(pos + 8..pos + 8 + len)?;
            if crc32(body) != crc {
                return None;
            }
            Some((Record { kind: body[0], payload: body[1..].to_vec() }, 8 + len))
        })();
        match frame {
            Some((rec, advance)) => {
                records.push(rec);
                pos += advance;
            }
            None => {
                status = LoadStatus::TruncatedTail;
                break;
            }
        }
    }
    Loaded { records, status, bytes: bytes.len() }
}

/// Loads a store file, tolerating every corruption mode (see the module
/// docs). A missing file is [`LoadStatus::Missing`] with no records.
pub fn load_file(path: &Path, expect_identity: Option<&str>) -> Loaded {
    match std::fs::read(path) {
        Ok(bytes) => decode_store(&bytes, expect_identity),
        Err(_) => Loaded::empty(LoadStatus::Missing),
    }
}

/// Appends `records` to the store at `path`, creating it (and its parent
/// directories) with a fresh header when absent. A present file whose
/// header does not match `identity` (collision, format bump, corrupt
/// header) is **replaced** — its records belong to another identity or an
/// unreadable format, so keeping them has no value.
pub fn append_records(path: &Path, identity: &str, records: &[Record]) -> std::io::Result<usize> {
    if records.is_empty() {
        return Ok(0);
    }
    let reusable = matches!(
        std::fs::read(path).ok().as_deref().map(decode_identity),
        Some(Some((ref id, _))) if id == identity
    );
    let mut body = Vec::new();
    for rec in records {
        body.extend_from_slice(&record_bytes(rec));
    }
    if reusable {
        let mut f = std::fs::OpenOptions::new().append(true).open(path)?;
        f.write_all(&body)?;
        f.flush()?;
    } else {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut fresh = header_bytes(identity);
        fresh.extend_from_slice(&body);
        write_atomic(path, &fresh)?;
    }
    Ok(body.len())
}

/// Validates `bytes` as a store snapshot and installs it at `path`
/// atomically (temp file + rename). Returns the snapshot's identity. A
/// snapshot that fails header validation is rejected — never written.
pub fn install_snapshot(path: &Path, bytes: &[u8]) -> Result<String, String> {
    let Some((identity, _)) = decode_identity(bytes) else {
        return Err("snapshot is not a valid store (bad magic, version, or header)".into());
    };
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(|e| format!("cannot create cache dir: {e}"))?;
    }
    write_atomic(path, bytes).map_err(|e| format!("cannot install snapshot: {e}"))?;
    Ok(identity)
}

fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, bytes)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// The filename (under a cache dir) of the store for a 64-bit session
/// fingerprint: 16 hex digits + `.gtsc`.
pub fn store_path(dir: &Path, fingerprint: u64) -> PathBuf {
    dir.join(format!("{fingerprint:016x}.gtsc"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: u8, payload: &[u8]) -> Record {
        Record { kind, payload: payload.to_vec() }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf43926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414fa339);
    }

    #[test]
    fn roundtrip_encode_decode() {
        let records = vec![rec(1, b"hello"), rec(2, &[0u8; 100]), rec(255, b"")];
        let bytes = encode_store("identity-A", &records);
        assert_eq!(decode_identity(&bytes).unwrap().0, "identity-A");
        let loaded = decode_store(&bytes, Some("identity-A"));
        assert_eq!(loaded.status, LoadStatus::Clean);
        assert_eq!(loaded.records, records);
    }

    #[test]
    fn identity_mismatch_yields_no_records() {
        let bytes = encode_store("identity-A", &[rec(1, b"x")]);
        let loaded = decode_store(&bytes, Some("identity-B"));
        assert_eq!(loaded.status, LoadStatus::HeaderMismatch);
        assert!(loaded.records.is_empty());
        // Without an expectation, the stored identity is trusted.
        assert_eq!(decode_store(&bytes, None).records.len(), 1);
    }

    #[test]
    fn version_and_magic_mismatches_are_cold() {
        let mut bytes = encode_store("id", &[rec(1, b"x")]);
        bytes[0] = b'X';
        assert_eq!(decode_store(&bytes, None).status, LoadStatus::HeaderMismatch);
        let mut bytes = encode_store("id", &[rec(1, b"x")]);
        bytes[4] = 0xff; // version
        assert_eq!(decode_store(&bytes, None).status, LoadStatus::HeaderMismatch);
    }

    #[test]
    fn truncated_tail_returns_clean_prefix() {
        let records = vec![rec(1, b"first"), rec(2, b"second"), rec(3, b"third")];
        let bytes = encode_store("id", &records);
        // Cut mid-way through the last record.
        for cut in 1..=6 {
            let truncated = &bytes[..bytes.len() - cut];
            let loaded = decode_store(truncated, Some("id"));
            assert_eq!(loaded.status, LoadStatus::TruncatedTail);
            assert_eq!(loaded.records, records[..2], "cut {cut}");
        }
    }

    #[test]
    fn bit_flips_stop_at_the_flipped_record() {
        let records = vec![rec(1, b"aaaa"), rec(2, b"bbbb"), rec(3, b"cccc")];
        let clean = encode_store("id", &records);
        let header_len = decode_identity(&clean).unwrap().1;
        // Flip one bit in every byte position past the header; the loader
        // must never panic, never return a record that fails its CRC, and
        // always return a prefix of the true record list.
        for pos in header_len..clean.len() {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x40;
            let loaded = decode_store(&bytes, Some("id"));
            assert!(
                loaded.records.len() < records.len(),
                "flip at {pos} must lose at least the flipped record"
            );
            assert_eq!(loaded.records, records[..loaded.records.len()], "flip at {pos}");
        }
        // A flipped header bit invalidates the whole file.
        let mut bytes = clean;
        bytes[6] ^= 1;
        assert!(decode_store(&bytes, Some("id")).records.is_empty());
    }

    #[test]
    fn absurd_length_fields_are_corruption_not_allocation() {
        let mut bytes = encode_store("id", &[rec(1, b"x")]);
        let header_len = decode_identity(&bytes).unwrap().1;
        bytes[header_len..header_len + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let loaded = decode_store(&bytes, Some("id"));
        assert_eq!(loaded.status, LoadStatus::TruncatedTail);
        assert!(loaded.records.is_empty());
    }

    #[test]
    fn file_append_and_reload() {
        let dir = std::env::temp_dir().join(format!("gts-store-test-{}", std::process::id()));
        let path = store_path(&dir, 0xdead_beef);
        let _ = std::fs::remove_file(&path);
        assert_eq!(load_file(&path, Some("id")).status, LoadStatus::Missing);
        append_records(&path, "id", &[rec(1, b"one")]).unwrap();
        append_records(&path, "id", &[rec(2, b"two"), rec(3, b"three")]).unwrap();
        let loaded = load_file(&path, Some("id"));
        assert_eq!(loaded.status, LoadStatus::Clean);
        assert_eq!(loaded.records.len(), 3);
        // A different identity REPLACES the file (fingerprint collision:
        // newest wins, never mixed).
        append_records(&path, "other-id", &[rec(9, b"nine")]).unwrap();
        let loaded = load_file(&path, Some("other-id"));
        assert_eq!(loaded.records, vec![rec(9, b"nine")]);
        assert_eq!(load_file(&path, Some("id")).status, LoadStatus::HeaderMismatch);
        // Snapshot install replaces wholesale after validation.
        let snap = encode_store("id", &[rec(7, b"seven")]);
        assert_eq!(install_snapshot(&path, &snap).unwrap(), "id");
        assert_eq!(load_file(&path, Some("id")).records, vec![rec(7, b"seven")]);
        assert!(install_snapshot(&path, b"garbage").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_append_degrades_then_recovers() {
        let dir = std::env::temp_dir().join(format!("gts-store-torn-{}", std::process::id()));
        let path = store_path(&dir, 1);
        let _ = std::fs::remove_file(&path);
        append_records(&path, "id", &[rec(1, b"one"), rec(2, b"two")]).unwrap();
        // Simulate a torn append: chop the last 3 bytes.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let loaded = load_file(&path, Some("id"));
        assert_eq!(loaded.status, LoadStatus::TruncatedTail);
        assert_eq!(loaded.records.len(), 1);
        // The next append still lands; the torn bytes stay dead (the
        // loader stops there) but the file keeps working as a cache for
        // everything already clean. A later snapshot install compacts.
        let snap = encode_store("id", &loaded.records);
        install_snapshot(&path, &snap).unwrap();
        append_records(&path, "id", &[rec(3, b"three")]).unwrap();
        let reloaded = load_file(&path, Some("id"));
        assert_eq!(reloaded.status, LoadStatus::Clean);
        assert_eq!(reloaded.records.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
