//! Standard-alphabet base64 (RFC 4648, with `=` padding) for shipping
//! store snapshots inside the NDJSON serve protocol. Dependency-free.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes `bytes` as padded base64.
pub fn base64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = *chunk.get(1).unwrap_or(&0) as u32;
        let b2 = *chunk.get(2).unwrap_or(&0) as u32;
        let n = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 { ALPHABET[(n >> 6) as usize & 63] as char } else { '=' });
        out.push(if chunk.len() > 2 { ALPHABET[n as usize & 63] as char } else { '=' });
    }
    out
}

fn decode_char(c: u8) -> Option<u32> {
    match c {
        b'A'..=b'Z' => Some((c - b'A') as u32),
        b'a'..=b'z' => Some((c - b'a' + 26) as u32),
        b'0'..=b'9' => Some((c - b'0' + 52) as u32),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Decodes padded base64. `None` on any malformed input (bad length,
/// bad character, padding in the wrong place).
pub fn base64_decode(text: &str) -> Option<Vec<u8>> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, quad) in bytes.chunks(4).enumerate() {
        let last = (i + 1) * 4 == bytes.len();
        let pad = quad.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 || (pad > 0 && !last) {
            return None;
        }
        let mut n: u32 = 0;
        for &c in &quad[..4 - pad] {
            n = (n << 6) | decode_char(c)?;
        }
        n <<= 6 * pad as u32;
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        let vectors: &[(&[u8], &str)] = &[
            (b"", ""),
            (b"f", "Zg=="),
            (b"fo", "Zm8="),
            (b"foo", "Zm9v"),
            (b"foob", "Zm9vYg=="),
            (b"fooba", "Zm9vYmE="),
            (b"foobar", "Zm9vYmFy"),
        ];
        for (raw, enc) in vectors {
            assert_eq!(base64_encode(raw), *enc);
            assert_eq!(base64_decode(enc).as_deref(), Some(*raw));
        }
    }

    #[test]
    fn roundtrip_all_byte_values() {
        let raw: Vec<u8> = (0u8..=255).collect();
        assert_eq!(base64_decode(&base64_encode(&raw)).unwrap(), raw);
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(base64_decode("Zg="), None); // bad length
        assert_eq!(base64_decode("Zg==Zg=="), None); // padding mid-stream
        assert_eq!(base64_decode("Z!=="), None); // bad char
        assert_eq!(base64_decode("===="), None); // too much padding
    }
}
