//! The session ⇄ store bridge: persisting an [`crate::AnalysisSession`]'s
//! cached oracle state to a `gts-store` record log and replaying it.
//!
//! ## Record kinds
//!
//! | kind | payload | semantics |
//! |------|---------|-----------|
//! | [`KIND_VERDICT`] | canonical pair key, flags byte | one containment verdict; appended incrementally, first-wins on replay |
//! | [`KIND_COMPLETION`] | self-contained completion memo entry | appended incrementally, first-wins on replay |
//! | [`KIND_SOLVER`] | portable TBox key + `gts_sat` portable context snapshot | whole-context snapshot; **last**-wins on replay (later snapshots carry supersets) |
//!
//! Every payload is self-describing and exact-keyed, so replay can never
//! install state under the wrong question — the store header already
//! pins the session identity (vocabulary, schema, budgets), and solver /
//! completion records additionally carry their full TBox key material.
//!
//! ## Flush strategy
//!
//! A [`DiskBinding`] tracks what the file already holds and appends only
//! the delta: new verdicts and completions individually, and a fresh
//! snapshot of any per-TBox solver context whose serialized size grew.
//! When accumulated appends dwarf a full snapshot (re-appended solver
//! snapshots supersede their predecessors in place), the flush compacts
//! by installing a fresh full store atomically. Flushes happen on demand
//! ([`crate::AnalysisSession::flush_disk`], the server's periodic flush)
//! and when the last session clone holding the binding drops.
//!
//! Concurrent writers (two processes sharing a cache dir) are tolerated,
//! not coordinated: appends are single `O_APPEND` writes, so interleaving
//! can at worst tear the tail, which the loader drops — degraded, never
//! wrong.

use crate::session::Memo;
use gts_core::containment::OracleCache;
use gts_core::Decision;
use gts_store::{append_records, load_file, Dec, Enc, LoadStatus, Loaded, Record};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Record kind: one canonical containment verdict.
pub const KIND_VERDICT: u8 = 1;
/// Record kind: one per-TBox solver-context snapshot.
pub const KIND_SOLVER: u8 = 2;
/// Record kind: one completion-memo entry.
pub const KIND_COMPLETION: u8 = 3;

/// What replaying a store contributed to a session.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HydrateReport {
    /// Containment verdicts installed into the memo.
    pub verdicts: usize,
    /// Completion-memo entries installed.
    pub completions: usize,
    /// Per-TBox solver snapshots staged for lazy hydration.
    pub solver_snapshots: usize,
    /// `true` when a corrupt tail was dropped (the records above are the
    /// clean prefix — still sound, just fewer).
    pub degraded: bool,
}

impl HydrateReport {
    /// Total entries contributed.
    pub fn total(&self) -> usize {
        self.verdicts + self.completions + self.solver_snapshots
    }
}

/// What one flush wrote.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlushReport {
    /// Records written (appended, or total in the compacted store).
    pub records: usize,
    /// Bytes written.
    pub bytes: usize,
    /// `true` when the flush rewrote the file as one fresh snapshot
    /// instead of appending.
    pub compacted: bool,
}

fn verdict_record(key: &str, d: Decision) -> Record {
    let mut e = Enc::new();
    e.str(key);
    e.u8((d.holds as u8) | ((d.certified as u8) << 1));
    Record { kind: KIND_VERDICT, payload: e.finish() }
}

fn decode_verdict(payload: &[u8]) -> Option<(String, Decision)> {
    let mut d = Dec::new(payload);
    let key = d.str()?.to_owned();
    let flags = d.u8()?;
    if flags > 3 || !d.done() {
        return None;
    }
    Some((key, Decision { holds: flags & 1 != 0, certified: flags & 2 != 0 }))
}

fn solver_record(key: &[u8], payload: &[u8]) -> Record {
    let mut e = Enc::new();
    e.bytes(key);
    e.bytes(payload);
    Record { kind: KIND_SOLVER, payload: e.finish() }
}

fn decode_solver(payload: &[u8]) -> Option<(Vec<u8>, Vec<u8>)> {
    let (key, snap) = decode_solver_borrowed(payload)?;
    Some((key.to_vec(), snap.to_vec()))
}

/// The zero-copy view of a solver record — for passes that only hash or
/// measure (multi-kilobyte snapshots make the owned decode a real cost).
fn decode_solver_borrowed(payload: &[u8]) -> Option<(&[u8], &[u8])> {
    let mut d = Dec::new(payload);
    let key = d.bytes()?;
    let snap = d.bytes()?;
    if !d.done() {
        return None;
    }
    Some((key, snap))
}

/// Replays decoded store records into a session's memo and oracle cache.
/// Verdicts and completions install directly (first wins — locally
/// decided state is never overridden); solver snapshots are staged in the
/// [`gts_sat::SolverCache`] and claimed lazily when their TBox is first
/// probed. Used by both the disk path and the wire path (`cache_import`).
pub(crate) fn apply_records(
    loaded: &Loaded,
    memo: &Mutex<Memo>,
    cache: &OracleCache,
) -> HydrateReport {
    let mut report = HydrateReport {
        degraded: loaded.status == LoadStatus::TruncatedTail,
        ..HydrateReport::default()
    };
    let mut solver_pairs: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    let mut completion_payloads: Vec<&[u8]> = Vec::new();
    {
        let mut memo = memo.lock().unwrap();
        for rec in &loaded.records {
            match rec.kind {
                KIND_VERDICT => {
                    if let Some((key, d)) = decode_verdict(&rec.payload) {
                        if let std::collections::hash_map::Entry::Vacant(e) = memo.map.entry(key) {
                            e.insert(d);
                            report.verdicts += 1;
                        }
                    }
                }
                KIND_SOLVER => {
                    if let Some(pair) = decode_solver(&rec.payload) {
                        solver_pairs.push(pair);
                    }
                }
                KIND_COMPLETION => completion_payloads.push(&rec.payload),
                // Unknown kinds: a newer writer under the same format
                // version added a record type we cannot use — skip.
                _ => {}
            }
        }
        memo.hydrated += report.verdicts as u64;
    }
    report.completions = cache.import_completions(completion_payloads.iter().copied());
    // `import_portable` keeps the last snapshot per exact key, matching
    // the log's supersession order.
    report.solver_snapshots = cache.solver().import_portable(solver_pairs);
    report
}

/// Serializes the full current cached state as store records (all
/// verdicts, all completions, all solver snapshots).
fn full_records(memo: &Mutex<Memo>, cache: &OracleCache) -> Vec<Record> {
    let mut records: Vec<Record> = Vec::new();
    {
        let memo = memo.lock().unwrap();
        records.extend(memo.map.iter().map(|(k, &d)| verdict_record(k, d)));
    }
    records.extend(
        cache
            .export_completions()
            .into_iter()
            .map(|p| Record { kind: KIND_COMPLETION, payload: p }),
    );
    records
        .extend(cache.solver().export_portable().into_iter().map(|(k, p)| solver_record(&k, &p)));
    records
}

/// Serializes a session's full cached state as store-file bytes.
pub(crate) fn export_store_bytes(
    identity: &str,
    memo: &Mutex<Memo>,
    cache: &OracleCache,
) -> Vec<u8> {
    gts_store::encode_store(identity, &full_records(memo, cache))
}

/// Tracking of what the bound file already holds, so flushes append only
/// deltas. All sets key by [`gts_store::hash64`] of the record's
/// identifying material (in-memory only, never persisted) — a hash
/// collision merely skips persisting one record (the next full
/// compaction picks it up), never corrupts replay.
#[derive(Default)]
struct PersistState {
    verdict_keys: gts_core::graph::FxHashSet<u64>,
    completion_payloads: gts_core::graph::FxHashSet<u64>,
    /// Portable-key FNV → serialized snapshot length last persisted (the
    /// payload only ever grows, so a changed length marks new state).
    solver_sizes: gts_core::graph::FxHashMap<u64, usize>,
    /// Bytes appended since the store was last written whole.
    appended_bytes: usize,
    /// Size of the file when last written whole (header + records).
    base_bytes: usize,
}

/// A session's live connection to its on-disk store. Shared (`Arc`) by
/// every clone of the bound session; flushes explicitly on
/// [`DiskBinding::flush`] and implicitly when the last clone drops.
pub struct DiskBinding {
    path: PathBuf,
    /// The identity captured at bind time (a clone's vocabulary may grow
    /// afterwards through ad-hoc interning; persisted state stays keyed
    /// by the identity it was hydrated under).
    identity: String,
    memo: Arc<Mutex<Memo>>,
    cache: Arc<OracleCache>,
    state: Mutex<PersistState>,
}

impl DiskBinding {
    /// Opens (or prepares to create) the store at `path`, replaying its
    /// clean records into `memo`/`cache`.
    pub(crate) fn open(
        path: PathBuf,
        identity: String,
        memo: Arc<Mutex<Memo>>,
        cache: Arc<OracleCache>,
    ) -> (DiskBinding, HydrateReport) {
        let loaded = load_file(&path, Some(&identity));
        let report = apply_records(&loaded, &memo, &cache);
        let mut state = PersistState { base_bytes: loaded.bytes, ..PersistState::default() };
        // Everything the file already holds needs no re-append.
        for rec in &loaded.records {
            match rec.kind {
                KIND_VERDICT => {
                    if let Some((key, _)) = decode_verdict(&rec.payload) {
                        state.verdict_keys.insert(gts_store::hash64(key.as_bytes()));
                    }
                }
                KIND_SOLVER => {
                    if let Some((key, snap)) = decode_solver_borrowed(&rec.payload) {
                        state.solver_sizes.insert(gts_store::hash64(key), snap.len());
                    }
                }
                KIND_COMPLETION => {
                    state.completion_payloads.insert(gts_store::hash64(&rec.payload));
                }
                _ => {}
            }
        }
        let binding = DiskBinding { path, identity, memo, cache, state: Mutex::new(state) };
        (binding, report)
    }

    /// The bound file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The identity the store is keyed by.
    pub fn identity(&self) -> &str {
        &self.identity
    }

    /// Writes everything cached since the last flush: appends the delta,
    /// or compacts into a fresh snapshot when superseded records dominate
    /// the file. A flush with nothing new writes nothing.
    pub fn flush(&self) -> std::io::Result<FlushReport> {
        let mut state = self.state.lock().unwrap();
        let mut delta: Vec<Record> = Vec::new();
        {
            let memo = self.memo.lock().unwrap();
            for (key, &d) in &memo.map {
                if state.verdict_keys.insert(gts_store::hash64(key.as_bytes())) {
                    delta.push(verdict_record(key, d));
                }
            }
        }
        for payload in self.cache.export_completions() {
            if state.completion_payloads.insert(gts_store::hash64(&payload)) {
                delta.push(Record { kind: KIND_COMPLETION, payload });
            }
        }
        for (key, payload) in self.cache.solver().export_portable() {
            let h = gts_store::hash64(&key);
            if state.solver_sizes.get(&h) != Some(&payload.len()) {
                state.solver_sizes.insert(h, payload.len());
                delta.push(solver_record(&key, &payload));
            }
        }
        if delta.is_empty() {
            return Ok(FlushReport::default());
        }
        let delta_bytes: usize = delta.iter().map(|r| 8 + 1 + r.payload.len()).sum();
        // Compact when appends (largely superseded solver snapshots)
        // outweigh a fresh full store.
        let compact = state.appended_bytes + delta_bytes > (state.base_bytes.max(1 << 16)) * 4;
        if compact {
            let bytes =
                gts_store::encode_store(&self.identity, &full_records(&self.memo, &self.cache));
            gts_store::install_snapshot(&self.path, &bytes).map_err(std::io::Error::other)?;
            state.base_bytes = bytes.len();
            state.appended_bytes = 0;
            Ok(FlushReport { records: delta.len(), bytes: bytes.len(), compacted: true })
        } else {
            let written = append_records(&self.path, &self.identity, &delta)?;
            state.appended_bytes += written;
            Ok(FlushReport { records: delta.len(), bytes: written, compacted: false })
        }
    }
}

impl Drop for DiskBinding {
    fn drop(&mut self) {
        // Best-effort: a failing final flush must not panic in drop; the
        // cache degrades to whatever the last successful flush persisted.
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use crate::AnalysisSession;
    use gts_core::prelude::*;

    fn fixture() -> (Vocab, Schema, Transformation) {
        let mut v = Vocab::new();
        let a = v.node_label("A");
        let r = v.edge_label("r");
        let mut s = Schema::new();
        s.set_edge(a, r, a, Mult::Star, Mult::Star);
        let mut t = Transformation::new();
        t.add_node_rule(
            a,
            C2rpq::new(1, vec![Var(0)], vec![Atom { x: Var(0), y: Var(0), regex: Regex::node(a) }]),
        );
        (v, s, t)
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gts-disk-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn drop_flushes_and_reopen_hydrates_warm() {
        let dir = tmp_dir("roundtrip");
        let (v, s, t) = fixture();
        {
            let (mut sess, report) =
                AnalysisSession::with_disk(s.clone(), v.clone(), Default::default(), &dir);
            assert_eq!(report.total(), 0, "first open finds nothing");
            let d = sess.type_check(&t, &s).unwrap();
            assert!(d.holds && d.certified);
            assert!(sess.stats().misses > 0);
        } // last clone drops → flush
        let (mut warm, report) =
            AnalysisSession::with_disk(s.clone(), v.clone(), Default::default(), &dir);
        assert!(report.verdicts > 0, "verdicts came back: {report:?}");
        assert!(!report.degraded);
        let d = warm.type_check(&t, &s).unwrap();
        assert!(d.holds && d.certified);
        let stats = warm.stats();
        assert_eq!(stats.misses, 0, "the warm run decided nothing: {stats:?}");
        assert_eq!(stats.hydrated as usize, report.verdicts);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_budgets_use_separate_stores() {
        let dir = tmp_dir("budgets");
        let (v, s, t) = fixture();
        {
            let (mut sess, _) =
                AnalysisSession::with_disk(s.clone(), v.clone(), Default::default(), &dir);
            sess.type_check(&t, &s).unwrap();
        }
        let large = gts_core::containment::ContainmentOptions {
            budget: Budget::large(),
            ..Default::default()
        };
        let (sess, report) = AnalysisSession::with_disk(s.clone(), v.clone(), large, &dir);
        assert_eq!(report.total(), 0, "budget is part of the identity");
        assert!(sess.disk_path().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_store_degrades_to_clean_prefix_and_identical_verdicts() {
        let dir = tmp_dir("truncate");
        let (v, s, t) = fixture();
        {
            let (mut sess, _) =
                AnalysisSession::with_disk(s.clone(), v.clone(), Default::default(), &dir);
            sess.type_check(&t, &s).unwrap();
        }
        let path = {
            let sess = AnalysisSession::new(s.clone(), v.clone());
            gts_store::store_path(&dir, sess.store_fingerprint())
        };
        // Chop mid-record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (mut warm, report) =
            AnalysisSession::with_disk(s.clone(), v.clone(), Default::default(), &dir);
        assert!(report.degraded, "the torn tail was detected");
        // Verdicts agree with a fresh session regardless.
        let d_warm = warm.type_check(&t, &s).unwrap();
        let mut fresh = AnalysisSession::new(s.clone(), v.clone());
        let d_fresh = fresh.type_check(&t, &s).unwrap();
        assert_eq!(d_warm, d_fresh);
        // Bit-flip the header: the whole store is ignored, cold path.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[5] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let (mut cold, report) =
            AnalysisSession::with_disk(s.clone(), v.clone(), Default::default(), &dir);
        assert_eq!(report.total(), 0);
        assert_eq!(cold.type_check(&t, &s).unwrap(), d_fresh);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_bytes_hydrate_a_twin_session_over_the_wire() {
        let (v, s, t) = fixture();
        let mut src = AnalysisSession::new(s.clone(), v.clone());
        src.type_check(&t, &s).unwrap();
        let bytes = src.export_store_bytes();

        let mut twin = AnalysisSession::new(s.clone(), v.clone());
        let report = twin.hydrate_from_bytes(&bytes).expect("identity matches");
        assert!(report.verdicts > 0);
        twin.type_check(&t, &s).unwrap();
        assert_eq!(twin.stats().misses, 0, "twin answered fully warm");

        // A session with a different identity refuses the snapshot.
        let mut v2 = v.clone();
        v2.node_label("Extra");
        let mut other = AnalysisSession::new(s.clone(), v2);
        assert!(other.hydrate_from_bytes(&bytes).is_none());
    }
}
