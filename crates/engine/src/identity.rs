//! Canonical session identity: the preimage and fingerprint that key both
//! the `gts-serve` session pool and the on-disk store files.
//!
//! A cached verdict depends on the *entire* vocabulary in intern order
//! (label ids on the wire are positional, so two contexts only share
//! state when their label numbering agrees), the source schema, and the
//! engine budgets (a verdict decided under small budgets may be
//! `uncertified` where larger budgets would certify). The canonical key
//! spells all of it out byte-for-byte; the fingerprint is its FNV-1a hash,
//! sized for file names and wire frames. Consumers that pool or persist
//! on the fingerprint must compare the key on use — FNV is not
//! collision-resistant, and the memos are correctness-critical.

use gts_core::containment::ContainmentOptions;
use gts_core::graph::Vocab;
use gts_core::schema::Schema;

/// The canonical identity preimage of a session over `schema`.
pub fn canonical_key(schema: &Schema, vocab: &Vocab, opts: &ContainmentOptions) -> String {
    use std::fmt::Write as _;
    let mut key = String::new();
    for l in vocab.node_labels() {
        key.push_str(vocab.node_name(l));
        key.push('\x1f');
    }
    key.push('\x1e');
    for l in vocab.edge_labels() {
        key.push_str(vocab.edge_name(l));
        key.push('\x1f');
    }
    key.push('\x1e');
    key.push_str(&schema.render(vocab));
    key.push('\x1e');
    let _ = write!(
        key,
        "{:?}|{}|{}",
        opts.budget.cache_key(),
        opts.completion.max_nodes,
        opts.completion.max_rounds
    );
    key
}

/// Hashes a canonical key down to its 64-bit fingerprint (FNV-1a — the
/// same digest `gts-serve` renders as the 16-hex-digit session id).
pub fn fingerprint_of(key: &str) -> u64 {
    gts_store::fnv64(key.as_bytes())
}

/// The fingerprint of a session over `schema` under `opts`.
pub fn fingerprint(schema: &Schema, vocab: &Vocab, opts: &ContainmentOptions) -> u64 {
    fingerprint_of(&canonical_key(schema, vocab, opts))
}
