//! # gts-engine
//!
//! Cached, batchable execution of the paper's static analyses (*Static
//! Analysis of Graph Database Transformations*, PODS 2023, Section 4 /
//! Appendix B). The three analyses — type checking, equivalence, schema
//! elicitation — all bottom out in the same containment-modulo-schema
//! oracle (`gts-containment`); this crate owns the shared substrate those
//! reductions would otherwise rebuild per call:
//!
//! * [`AnalysisSession`] — per-(schema, vocabulary) state: the source
//!   schema, engine budgets, and a containment memo keyed on
//!   canonicalized query pairs, shared by every analysis (and every
//!   session clone) so repeated questions are hash lookups;
//! * [`Batch`] — many requests ([`Request::TypeCheck`] /
//!   [`Request::Equivalence`] / [`Request::Elicit`]) executed across a
//!   `std::thread` worker pool with a work-stealing-free sharded queue,
//!   all workers warming one memo;
//! * [`Json`] — a dependency-free JSON builder for machine-readable
//!   results (`gts batch`, `BENCH_baseline.json`).
//!
//! Compiled Glushkov automata are interned one layer down
//! ([`gts_core::query::nfa_cache_stats`]) and benefit cold paths too; the
//! session layer adds the verdict-level reuse.
//!
//! ## Quickstart
//!
//! ```
//! use gts_core::prelude::*;
//! use gts_engine::AnalysisSession;
//!
//! // A one-label schema with an r-self-loop, and the identity-style
//! // transformation copying nodes and edges.
//! let mut vocab = Vocab::new();
//! let a = vocab.node_label("A");
//! let r = vocab.edge_label("r");
//! let mut schema = Schema::new();
//! schema.set_edge(a, r, a, Mult::Star, Mult::Star);
//! let mut t = Transformation::new();
//! t.add_node_rule(
//!     a,
//!     C2rpq::new(1, vec![Var(0)], vec![Atom { x: Var(0), y: Var(0), regex: Regex::node(a) }]),
//! );
//! t.add_edge_rule(
//!     r,
//!     (a, 1),
//!     (a, 1),
//!     C2rpq::new(
//!         2,
//!         vec![Var(0), Var(1)],
//!         vec![Atom { x: Var(0), y: Var(1), regex: Regex::edge(r) }],
//!     ),
//! );
//!
//! // A session owns the schema-wide shared state; analyses route every
//! // containment question through its memo.
//! let mut session = AnalysisSession::new(schema.clone(), vocab);
//! let check = session.type_check(&t, &schema).unwrap();
//! assert!(check.holds && check.certified);
//!
//! // Re-analysis replays cached verdicts instead of re-deciding them.
//! session.type_check(&t, &schema).unwrap();
//! let stats = session.stats();
//! assert!(stats.hits > 0);
//! assert_eq!(stats.hit_rate() > 0.0, true);
//! ```

#![warn(missing_docs)]

mod batch;
pub mod disk;
pub mod identity;
mod json;
mod session;
pub mod stats;

pub use batch::{Batch, BatchResult, Request, Verdict};
pub use disk::{DiskBinding, FlushReport, HydrateReport};
pub use json::{Json, JsonError};
pub use session::{AnalysisSession, CacheStats};
pub use stats::{oracle_snapshot, session_cache_snapshot, snapshot_to_json};
