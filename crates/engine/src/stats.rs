//! The canonical stats shapes, built once as [`gts_obs::Snapshot`]s.
//!
//! `gts batch --stats`, the CLI `--stats` flag, and the serve `stats`
//! verb used to hand-assemble overlapping-but-divergent JSON objects.
//! They now all call these builders, so the field names and nesting of
//! every stats surface agree by construction. [`snapshot_to_json`]
//! bridges into the [`Json`] document model for surfaces that embed the
//! snapshot in a larger frame.

use crate::json::Json;
use crate::session::CacheStats;
use gts_core::containment::OracleCacheStats;
use gts_obs::{Snapshot, Value};

/// The canonical oracle-cache stats object (solver + completion layers).
/// Field names are stable wire surface — `gts batch --stats`, the serve
/// `stats` verb, and the benchmarks all expose exactly this shape.
pub fn oracle_snapshot(oracle: &OracleCacheStats) -> Snapshot {
    let mut s = Snapshot::new();
    s.set("decides", oracle.solver.decides)
        .set("solver_cache_hits", oracle.solver.cache_hits)
        .set("solver_cache_misses", oracle.solver.cache_misses)
        .set("solver_entries", oracle.solver.entries)
        .set("cores_tried", oracle.solver.cores_tried)
        .set("cores_deduped", oracle.solver.cores_deduped)
        .set("types_interned", oracle.solver.types_interned)
        .set("realize_hits", oracle.solver.realize_hits)
        .set("realize_misses", oracle.solver.realize_misses)
        .set("completion_hits", oracle.completion_hits)
        .set("completion_misses", oracle.completion_misses);
    s
}

/// The canonical session containment-memo stats object.
pub fn session_cache_snapshot(stats: &CacheStats) -> Snapshot {
    let mut s = Snapshot::new();
    s.set("hits", stats.hits)
        .set("misses", stats.misses)
        .set("entries", stats.entries)
        .set("approx_bytes", stats.approx_bytes)
        .set("hydrated", stats.hydrated)
        .set("hit_rate", stats.hit_rate());
    s
}

/// Converts an observability snapshot into the [`Json`] document model
/// (order-preserving).
pub fn snapshot_to_json(snapshot: &Snapshot) -> Json {
    let mut obj = Json::obj();
    for (key, value) in snapshot.entries() {
        match value {
            Value::Bool(b) => obj.set(key, *b),
            Value::U64(n) => obj.set(key, *n),
            Value::I64(n) => obj.set(key, *n),
            Value::F64(x) => obj.set(key, *x),
            Value::Str(s) => obj.set(key, s.as_str()),
            Value::Nested(inner) => obj.set(key, snapshot_to_json(inner)),
        };
    }
    obj
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_snapshot_shape_is_stable() {
        let s = oracle_snapshot(&OracleCacheStats::default());
        let keys: Vec<&str> = s.entries().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "decides",
                "solver_cache_hits",
                "solver_cache_misses",
                "solver_entries",
                "cores_tried",
                "cores_deduped",
                "types_interned",
                "realize_hits",
                "realize_misses",
                "completion_hits",
                "completion_misses",
            ]
        );
    }

    #[test]
    fn snapshot_to_json_round_trips_the_shape() {
        let mut inner = Snapshot::new();
        inner.set("hits", 2u64);
        let mut s = Snapshot::new();
        s.set("ok", true).set("rate", 0.5).set("cache", inner);
        let json = snapshot_to_json(&s);
        // `Json::compact` and `Snapshot::to_json` differ in whitespace;
        // compare through the parser for structural equality.
        let reparsed = Json::parse(&s.to_json()).expect("snapshot JSON parses");
        assert_eq!(json.compact(), reparsed.compact());
    }
}
