//! A minimal JSON document builder (the build environment is offline, so
//! no serde): enough to emit batch results and benchmark reports as
//! machine-readable, stably ordered JSON.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (emitted without a fraction).
    Int(i64),
    /// A float (emitted via Rust's shortest round-trip formatting; NaN and
    /// infinities render as `null` per JSON's number grammar).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends `key: value` to an object (panics on non-objects — a
    /// builder misuse, not a data error).
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Obj(fields) => fields.push((key.to_owned(), value.into())),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Renders with two-space indentation and a trailing newline (the
    /// format of the `BENCH_*.json` artifacts).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    /// Renders compactly on one line.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let mut num = format!("{f}");
                    // `2f64` formats as "2"; keep the value visibly floating.
                    if !num.contains('.') && !num.contains('e') {
                        num.push_str(".0");
                    }
                    out.push_str(&num);
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind);
            }),
            Json::Obj(fields) => write_seq(out, indent, '{', '}', fields.len(), |out, i, ind| {
                write_escaped(out, &fields[i].0);
                out.push_str(": ");
                fields[i].1.write(out, ind);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if let Some(level) = indent {
            out.push('\n');
            out.push_str(&"  ".repeat(level + 1));
        }
        item(out, i, indent.map(|l| l + 1));
        if i + 1 < len {
            out.push(',');
            if indent.is_none() {
                out.push(' ');
            }
        }
    }
    if let Some(level) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(level));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}

impl From<u64> for Json {
    fn from(i: u64) -> Json {
        Json::Int(i as i64)
    }
}

impl From<usize> for Json {
    fn from(i: usize) -> Json {
        Json::Int(i as i64)
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Float(f)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let mut doc = Json::obj();
        doc.set("name", "baseline").set("n", 3u64).set("ok", true);
        doc.set("items", Json::Arr(vec![Json::Int(1), Json::Null]));
        assert_eq!(
            doc.compact(),
            r#"{"name": "baseline", "n": 3, "ok": true, "items": [1, null]}"#
        );
        let pretty = doc.pretty();
        assert!(pretty.contains("\n  \"name\": \"baseline\","), "{pretty}");
        assert!(pretty.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\n\u{1}".into());
        assert_eq!(j.compact(), "\"a\\\"b\\\\c\\n\\u0001\"");
    }

    #[test]
    fn floats_render_as_numbers() {
        assert_eq!(Json::Float(1.5).compact(), "1.5");
        assert_eq!(Json::Float(2.0).compact(), "2.0");
        assert_eq!(Json::Float(f64::NAN).compact(), "null");
    }
}
