//! A minimal JSON document builder *and parser* (the build environment is
//! offline, so no serde): enough to emit batch results and benchmark
//! reports as machine-readable, stably ordered JSON — and, since the
//! `gts-serve` wire protocol is newline-delimited JSON, to read such
//! documents back. [`Json::parse`] accepts the full value grammar of RFC
//! 8259 (escapes including `\uXXXX` surrogate pairs, exponent-form
//! numbers, arbitrary nesting up to a depth guard) and round-trips with
//! [`Json::compact`]; the escape battery below pins the behaviour down
//! character class by character class.

use std::fmt::Write as _;

/// Why a JSON text failed to parse: a message and the byte offset it
/// refers to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the problem.
    pub msg: String,
    /// Byte offset into the input where the problem was detected.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (emitted without a fraction).
    Int(i64),
    /// A float (emitted via Rust's shortest round-trip formatting; NaN and
    /// infinities render as `null` per JSON's number grammar).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends `key: value` to an object (panics on non-objects — a
    /// builder misuse, not a data error).
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Obj(fields) => fields.push((key.to_owned(), value.into())),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Renders with two-space indentation and a trailing newline (the
    /// format of the `BENCH_*.json` artifacts).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    /// Renders compactly on one line.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    /// Parses a JSON text (one value, optionally surrounded by
    /// whitespace). Integers that fit an `i64` parse as [`Json::Int`];
    /// every other number parses as [`Json::Float`].
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the value"));
        }
        Ok(v)
    }

    /// Object field lookup (first match; `None` on missing keys and
    /// non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload (ints directly; floats only when exactly
    /// representable — out-of-range floats return `None` rather than a
    /// silently saturated value).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            // The upper bound is exclusive: 2^63 itself is a valid f64
            // but not a valid i64.
            Json::Float(f)
                if f.fract() == 0.0
                    && *f >= -9_223_372_036_854_775_808.0
                    && *f < 9_223_372_036_854_775_808.0 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// The non-negative integer payload.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// The numeric payload, widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// `true` iff this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let mut num = format!("{f}");
                    // `2f64` formats as "2"; keep the value visibly floating.
                    if !num.contains('.') && !num.contains('e') {
                        num.push_str(".0");
                    }
                    out.push_str(&num);
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind);
            }),
            Json::Obj(fields) => write_seq(out, indent, '{', '}', fields.len(), |out, i, ind| {
                write_escaped(out, &fields[i].0);
                out.push_str(": ");
                fields[i].1.write(out, ind);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if let Some(level) = indent {
            out.push('\n');
            out.push_str(&"  ".repeat(level + 1));
        }
        item(out, i, indent.map(|l| l + 1));
        if i + 1 < len {
            out.push(',');
            if indent.is_none() {
                out.push(' ');
            }
        }
    }
    if let Some(level) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(level));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nesting guard: deeper documents than this are rejected rather than
/// risking a stack overflow on hostile wire input.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError { msg: msg.into(), at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nests too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(self.err("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the longest escape-free UTF-8 run at once.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a `\uXXXX` low surrogate
                                // must follow; the pair decodes together.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                        }
                        other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char).to_digit(16).ok_or_else(|| self.err("bad hex in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| JsonError { msg: format!("bad number `{text}`"), at: start })
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}

impl From<u64> for Json {
    fn from(i: u64) -> Json {
        Json::Int(i as i64)
    }
}

impl From<usize> for Json {
    fn from(i: usize) -> Json {
        Json::Int(i as i64)
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Float(f)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let mut doc = Json::obj();
        doc.set("name", "baseline").set("n", 3u64).set("ok", true);
        doc.set("items", Json::Arr(vec![Json::Int(1), Json::Null]));
        assert_eq!(
            doc.compact(),
            r#"{"name": "baseline", "n": 3, "ok": true, "items": [1, null]}"#
        );
        let pretty = doc.pretty();
        assert!(pretty.contains("\n  \"name\": \"baseline\","), "{pretty}");
        assert!(pretty.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\n\u{1}".into());
        assert_eq!(j.compact(), "\"a\\\"b\\\\c\\n\\u0001\"");
    }

    #[test]
    fn floats_render_as_numbers() {
        assert_eq!(Json::Float(1.5).compact(), "1.5");
        assert_eq!(Json::Float(2.0).compact(), "2.0");
        assert_eq!(Json::Float(f64::NAN).compact(), "null");
    }

    // ---- The wire-format battery: since `gts-serve` ships these
    // documents over TCP, writing and parsing must agree byte-for-byte on
    // every character class. ----

    fn roundtrip(j: &Json) {
        let compact = Json::parse(&j.compact()).unwrap_or_else(|e| panic!("{e}: {}", j.compact()));
        assert_eq!(&compact, j, "compact roundtrip of {}", j.compact());
        let pretty = Json::parse(&j.pretty()).unwrap();
        assert_eq!(&pretty, j, "pretty roundtrip of {}", j.pretty());
    }

    #[test]
    fn every_control_character_roundtrips() {
        for c in 0u32..0x20 {
            let s = format!("a{}b", char::from_u32(c).unwrap());
            let j = Json::Str(s.clone());
            let rendered = j.compact();
            // Control characters never appear raw in the rendering.
            assert!(rendered.chars().all(|c| c as u32 >= 0x20), "raw control char in {rendered:?}");
            roundtrip(&j);
        }
    }

    #[test]
    fn unicode_strings_roundtrip() {
        for s in [
            "plain ascii",
            "ümlaut and ⊑ and ∃",
            "astral 🚀🧬 plane",
            "\u{7f}", // DEL is not escaped by JSON but must survive
            "mixed \" quote \\ back \n newline \u{0} nul 🚀",
            "ends with backslash \\",
            "\u{e000}\u{fffd}", // private use + replacement char
        ] {
            roundtrip(&Json::Str(s.into()));
        }
    }

    #[test]
    fn u_escapes_parse_including_surrogate_pairs() {
        assert_eq!(Json::parse(r#""\u0041""#).unwrap(), Json::Str("A".into()));
        assert_eq!(Json::parse(r#""\u00e9""#).unwrap(), Json::Str("\u{e9}".into()));
        assert_eq!(Json::parse(r#""\u00E9""#).unwrap(), Json::Str("\u{e9}".into()));
        // U+1F680 encodes as the surrogate pair D83D DE80.
        assert_eq!(Json::parse(r#""\ud83d\ude80""#).unwrap(), Json::Str("\u{1f680}".into()));
        // The solidus escape is legal even though we never emit it.
        assert_eq!(Json::parse(r#""a\/b""#).unwrap(), Json::Str("a/b".into()));
    }

    #[test]
    fn malformed_strings_are_rejected() {
        for bad in [
            r#""\ud83d""#,      // lone high surrogate
            r#""\ude80""#,      // lone low surrogate
            r#""\ud83dA""#,     // high surrogate + non-surrogate
            r#""\uZZZZ""#,      // bad hex
            r#""\u00""#,        // truncated hex
            r#""\q""#,          // unknown escape
            r#""unterminated"#, // no closing quote
            "\"raw\u{1}ctl\"",  // raw control character
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn numbers_parse_and_roundtrip() {
        assert_eq!(Json::parse("0").unwrap(), Json::Int(0));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("9223372036854775807").unwrap(), Json::Int(i64::MAX));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::parse("-2.5e3").unwrap(), Json::Float(-2500.0));
        assert_eq!(Json::parse("1E2").unwrap(), Json::Float(100.0));
        for j in [Json::Int(i64::MIN), Json::Int(i64::MAX), Json::Float(0.1), Json::Float(-1e300)] {
            roundtrip(&j);
        }
        // Integral floats outside the i64 range must not saturate
        // through as_i64 (2^63 parses as a float, not an i64).
        assert_eq!(Json::parse("9223372036854775808").unwrap().as_i64(), None);
        assert_eq!(Json::Float(1e19).as_i64(), None);
        assert_eq!(Json::Float(-1e19).as_i64(), None);
        assert_eq!(Json::Float(9000.0).as_i64(), Some(9000));
        assert_eq!(Json::Float(-9.223372036854776e18).as_i64(), Some(i64::MIN));
    }

    #[test]
    fn documents_roundtrip() {
        let mut inner = Json::obj();
        inner.set("labels", Json::Arr(vec!["a\nb".into(), Json::Null, Json::Bool(false)]));
        let mut doc = Json::obj();
        doc.set("op", "analyze").set("v", 1u64).set("nested", inner);
        doc.set("empty_obj", Json::obj()).set("empty_arr", Json::Arr(vec![]));
        roundtrip(&doc);
        // Parsed fields are reachable through the accessors.
        let parsed = Json::parse(&doc.compact()).unwrap();
        assert_eq!(parsed.get("op").and_then(Json::as_str), Some("analyze"));
        assert_eq!(parsed.get("v").and_then(Json::as_u64), Some(1));
        assert_eq!(
            parsed
                .get("nested")
                .and_then(|n| n.get("labels"))
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(3)
        );
        assert!(parsed.get("missing").is_none());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "  ",
            "{",
            "}",
            "[1,",
            "[1 2]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a: 1}",
            "tru",
            "nulll",
            "1 2",
            "{} []",
            "--1",
            "+1",
            "0x10",
            "NaN",
            "Infinity",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        // The depth guard trips instead of overflowing the stack.
        let deep = "[".repeat(5000) + &"]".repeat(5000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.msg.contains("deeply"), "{err}");
    }

    #[test]
    fn whitespace_and_duplicate_keys_follow_the_grammar() {
        let j = Json::parse(" \r\n\t{ \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(j.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        // Duplicate keys are preserved in order; `get` returns the first.
        let dup = Json::parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(dup.get("k").and_then(Json::as_i64), Some(1));
    }
}
